"""repro: reproduction of "Reducing Communication in Graph Neural Network
Training" (Tripathy, Yelick, Buluc -- CAGNET, SC 2020).

The package implements the paper's full system on a virtual distributed
runtime:

* :mod:`repro.comm` -- the torch.distributed/NCCL stand-in: process
  meshes, collectives that really move numpy blocks, alpha-beta cost
  accounting under a Summit-like machine profile;
* :mod:`repro.sparse` -- from-scratch CSR storage, SpMM kernels, block
  distributions, the hypersparsity analysis, and the SpMM performance
  model;
* :mod:`repro.graph` -- graph generators (R-MAT, Erdos-Renyi, SBM), GCN
  normalisation, random vertex permutation, and synthetic stand-ins for
  the Reddit / Amazon / Protein datasets of Table VI;
* :mod:`repro.partition` -- edge-cut metrics, random baselines, and a
  multilevel (Metis-like) k-way partitioner;
* :mod:`repro.nn` -- the serial GCN reference with the paper's explicit
  forward/backward equations, loss, and optimisers;
* :mod:`repro.dist` -- the paper's contribution: the 1D (three variants),
  1.5D, 2D (SUMMA) and 3D (Split-SpMM) distributed training algorithms,
  all verified bit-close against the serial reference;
* :mod:`repro.analysis` -- the Section IV closed-form communication
  costs and the Fig. 2 / Fig. 3 reproductions at published dataset sizes.

Quickstart::

    from repro import make_synthetic, make_algorithm

    ds = make_synthetic(n=512, avg_degree=8, f=32, n_classes=4)
    algo = make_algorithm("2d", p=16, dataset=ds)
    history = algo.fit(ds.features, ds.labels, epochs=10)
    print(history.final_loss, history.mean_breakdown())
"""

from repro.analysis import (
    Model2DEpoch,
    crossover_p_2d_vs_1d,
    figure2_throughput,
    figure3_breakdown,
    words_1d,
    words_2d,
    words_3d,
)
from repro.comm import Category, VirtualRuntime
from repro.config import COMMODITY, SUMMIT, MachineProfile, get_profile
from repro.dist import (
    ALGORITHMS,
    DistGCN1D,
    DistGCN2D,
    DistGCN3D,
    DistGCN15D,
    make_algorithm,
)
from repro.graph import (
    Dataset,
    gcn_normalize,
    make_standin,
    make_synthetic,
    published_spec,
)
from repro.nn import GCN, SGD, Adam, SerialTrainer
from repro.sparse import CSRMatrix, spmm

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "VirtualRuntime",
    "Category",
    "MachineProfile",
    "SUMMIT",
    "COMMODITY",
    "get_profile",
    "CSRMatrix",
    "spmm",
    "Dataset",
    "make_synthetic",
    "make_standin",
    "published_spec",
    "gcn_normalize",
    "GCN",
    "SerialTrainer",
    "SGD",
    "Adam",
    "ALGORITHMS",
    "make_algorithm",
    "DistGCN1D",
    "DistGCN15D",
    "DistGCN2D",
    "DistGCN3D",
    "Model2DEpoch",
    "figure2_throughput",
    "figure3_breakdown",
    "words_1d",
    "words_2d",
    "words_3d",
    "crossover_p_2d_vs_1d",
]
