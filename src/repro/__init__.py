"""repro: reproduction of "Reducing Communication in Graph Neural Network
Training" (Tripathy, Yelick, Buluc -- CAGNET, SC 2020).

The package implements the paper's full system on a virtual distributed
runtime:

* :mod:`repro.comm` -- the torch.distributed/NCCL stand-in: process
  meshes, collectives that really move numpy blocks, alpha-beta cost
  accounting under a Summit-like machine profile;
* :mod:`repro.sparse` -- from-scratch CSR storage, SpMM kernels, block
  distributions, the hypersparsity analysis, and the SpMM performance
  model;
* :mod:`repro.graph` -- graph generators (R-MAT, Erdos-Renyi, SBM), GCN
  normalisation, random vertex permutation, and synthetic stand-ins for
  the Reddit / Amazon / Protein datasets of Table VI;
* :mod:`repro.partition` -- edge-cut metrics, random baselines, and a
  multilevel (Metis-like) k-way partitioner;
* :mod:`repro.nn` -- the serial GCN reference with the paper's explicit
  forward/backward equations, loss, and optimisers;
* :mod:`repro.dist` -- the paper's contribution: the 1D (five backward
  variants, including the partition-aware ghost-row exchange), 1.5D, 2D
  (SUMMA) and 3D (Split-SpMM) distributed training algorithms, all
  verified bit-close against the serial reference, plus the
  ``Distribution`` partition-to-layout bridge;
* :mod:`repro.parallel` -- the true multiprocess execution backend:
  ranks as OS processes, collectives over shared memory, the virtual
  runtime's ledger and losses as the correctness oracle;
* :mod:`repro.analysis` -- the Section IV closed-form communication
  costs and the Fig. 2 / Fig. 3 reproductions at published dataset sizes;
* :mod:`repro.obs` -- wall-clock observability: span tracing across
  driver and workers, Chrome/Perfetto trace export, Prometheus metrics,
  and the model-vs-measured drift report.

Quickstart::

    from repro import make_synthetic, make_algorithm

    ds = make_synthetic(n=512, avg_degree=8, f=32, n_classes=4)
    algo = make_algorithm("2d", p=16, dataset=ds)
    history = algo.fit(ds.features, ds.labels, epochs=10)
    print(history.final_loss, history.mean_breakdown())

Top-level names resolve lazily (PEP 562): ``import repro`` is cheap and
pulls a sub-package in only when one of its exports is first touched.
"""

from importlib import import_module

__version__ = "0.1.0"

#: Top-level export -> providing sub-module.  Resolved on first access so
#: ``import repro`` does not eagerly import every sub-package.
_EXPORTS = {
    "VirtualRuntime": "repro.comm",
    "Category": "repro.comm",
    "MachineProfile": "repro.config",
    "SUMMIT": "repro.config",
    "COMMODITY": "repro.config",
    "get_profile": "repro.config",
    "CSRMatrix": "repro.sparse",
    "spmm": "repro.sparse",
    "Dataset": "repro.graph",
    "make_synthetic": "repro.graph",
    "make_standin": "repro.graph",
    "published_spec": "repro.graph",
    "gcn_normalize": "repro.graph",
    "GCN": "repro.nn",
    "SerialTrainer": "repro.nn",
    "SGD": "repro.nn",
    "Adam": "repro.nn",
    "ALGORITHMS": "repro.dist",
    "Distribution": "repro.dist",
    "make_algorithm": "repro.dist",
    "make_distribution": "repro.dist",
    "make_runtime_for": "repro.dist",
    "ProcessBackend": "repro.parallel",
    "ParallelRuntime": "repro.parallel",
    "ParallelAlgorithm": "repro.parallel",
    "DistAlgorithm": "repro.dist",
    "DistGCN1D": "repro.dist",
    "DistGCN15D": "repro.dist",
    "DistGCN2D": "repro.dist",
    "DistGCN3D": "repro.dist",
    "GraphModel": "repro.simulate",
    "predict_epoch": "repro.simulate",
    "sweep": "repro.simulate",
    "evaluate_schedule": "repro.simulate",
    "get_machine": "repro.simulate",
    "list_machines": "repro.simulate",
    "MergedTrace": "repro.obs",
    "SpanRecorder": "repro.obs",
    "traced_fit": "repro.obs",
    "export_chrome_trace": "repro.obs",
    "validate_chrome_trace": "repro.obs",
    "metrics_from_trace": "repro.obs",
    "drift_report": "repro.obs",
    "format_drift_report": "repro.obs",
    "Model2DEpoch": "repro.analysis",
    "figure2_throughput": "repro.analysis",
    "figure3_breakdown": "repro.analysis",
    "words_1d": "repro.analysis",
    "words_2d": "repro.analysis",
    "words_3d": "repro.analysis",
    "crossover_p_2d_vs_1d": "repro.analysis",
}

#: Sub-packages reachable as attributes (``import repro; repro.comm``),
#: matching the behaviour the eager imports used to provide.
_SUBPACKAGES = (
    "analysis", "cli", "comm", "config", "dist", "graph", "nn", "obs",
    "parallel", "partition", "sampling", "simulate", "sparse",
)

__all__ = ["__version__"] + sorted(_EXPORTS)


def __getattr__(name: str):
    """Lazy top-level exports (PEP 562 module ``__getattr__``)."""
    if name in _EXPORTS:
        value = getattr(import_module(_EXPORTS[name]), name)
        globals()[name] = value  # cache: subsequent lookups skip this hook
        return value
    if name in _SUBPACKAGES:
        value = import_module(f"repro.{name}")
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__) | set(_SUBPACKAGES))
