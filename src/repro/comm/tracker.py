"""Per-rank, per-category accounting of communication and compute.

The paper's Figure 3 breaks epoch time into five categories::

    scomm   communicating sparse matrices (adjacency blocks)
    dcomm   communicating dense matrices (activations, gradients, partials)
    trpose  computing/communicating matrix transposes
    spmm    local sparse x dense multiplies
    misc    everything else (local GEMM, elementwise ops, optimiser)

The tracker records, for every virtual rank, modeled seconds plus exact
byte/message counts in each category.  The distributed algorithms are bulk
synchronous: an epoch is a sequence of *steps* (a collective or a local
kernel applied across ranks) and the epoch's wall-clock is the sum over
steps of the **maximum** per-rank time within that step.  The tracker
supports that reduction via :meth:`CommTracker.step_scope`.
"""

from __future__ import annotations

import contextlib
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

__all__ = ["Category", "CommTracker", "CategoryTotals"]


class Category:
    """Canonical category names (mirroring Fig. 3's legend)."""

    SCOMM = "scomm"
    DCOMM = "dcomm"
    TRPOSE = "trpose"
    SPMM = "spmm"
    MISC = "misc"

    ALL = (SCOMM, DCOMM, TRPOSE, SPMM, MISC)
    #: Categories that represent network traffic (have byte counts).
    COMM = (SCOMM, DCOMM, TRPOSE)


@dataclass
class CategoryTotals:
    """Aggregated totals for one category."""

    seconds: float = 0.0
    bytes: int = 0
    messages: int = 0
    flops: int = 0

    def add(self, seconds: float = 0.0, nbytes: int = 0, messages: int = 0,
            flops: int = 0) -> None:
        self.seconds += seconds
        self.bytes += nbytes
        self.messages += messages
        self.flops += flops

    def merged(self, other: "CategoryTotals") -> "CategoryTotals":
        return CategoryTotals(
            self.seconds + other.seconds,
            self.bytes + other.bytes,
            self.messages + other.messages,
            self.flops + other.flops,
        )


class CommTracker:
    """Accounting ledger for a virtual distributed run.

    Two views are kept simultaneously:

    * **per-rank totals** -- exact bytes/messages/flops each rank incurred,
      used to validate the paper's per-process bounds and to study load
      balance;
    * **bulk-synchronous wall clock** -- within each step the slowest rank
      sets the pace; ``wall_seconds`` accumulates those maxima, broken down
      by category so Fig. 3 can be regenerated.

    Steps are delimited with :meth:`step_scope`; charges recorded outside a
    scope form an implicit single-charge step (max == the one charge).
    """

    def __init__(self, nranks: int):
        if nranks < 1:
            raise ValueError(f"tracker needs >= 1 rank, got {nranks}")
        self.nranks = nranks
        self.per_rank: List[Dict[str, CategoryTotals]] = [
            defaultdict(CategoryTotals) for _ in range(nranks)
        ]
        #: wall-clock seconds per category under the bulk-synchronous model
        self.wall: Dict[str, float] = defaultdict(float)
        self._step: Optional[List[Dict[str, float]]] = None
        self._nsteps = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def charge(
        self,
        rank: int,
        category: str,
        seconds: float,
        nbytes: int = 0,
        messages: int = 0,
        flops: int = 0,
    ) -> None:
        """Record work done by / traffic through one rank."""
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range (nranks={self.nranks})")
        if category not in Category.ALL:
            raise ValueError(f"unknown category {category!r}; use Category.*")
        if seconds < 0 or nbytes < 0:
            raise ValueError("negative charge")
        self.per_rank[rank][category].add(seconds, nbytes, messages, flops)
        if self._step is not None:
            self._step[rank][category] = self._step[rank].get(category, 0.0) + seconds
        else:
            # Standalone charge: it is its own step; only this rank worked,
            # so the step's max time is simply this charge.
            self.wall[category] += seconds
            self._nsteps += 1

    @contextlib.contextmanager
    def step_scope(self) -> Iterator[None]:
        """Delimit one bulk-synchronous step.

        All charges inside the scope happen "in parallel" across ranks; on
        exit the per-category wall clock advances by the **maximum**
        per-rank time in the step, attributed per category in proportion to
        the slowest rank's own category split.
        """
        if self._step is not None:
            # Nested scopes flatten into the outer step; this keeps call
            # sites composable (an algorithm step may call a helper that
            # also opens a scope).
            yield
            return
        self._step = [dict() for _ in range(self.nranks)]
        try:
            yield
        finally:
            step, self._step = self._step, None
            totals = [sum(cat.values()) for cat in step]
            if any(t > 0 for t in totals):
                slowest = max(range(self.nranks), key=lambda r: totals[r])
                for category, secs in step[slowest].items():
                    self.wall[category] += secs
            self._nsteps += 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def nsteps(self) -> int:
        """Number of bulk-synchronous steps recorded."""
        return self._nsteps

    def wall_seconds(self, category: Optional[str] = None) -> float:
        """Bulk-synchronous wall clock, total or for one category."""
        if category is None:
            return sum(self.wall.values())
        return self.wall.get(category, 0.0)

    def rank_totals(self, rank: int) -> Mapping[str, CategoryTotals]:
        return self.per_rank[rank]

    def total_bytes(self, category: Optional[str] = None) -> int:
        """Exact bytes over all ranks (total, or for one category)."""
        cats = Category.ALL if category is None else (category,)
        return sum(
            self.per_rank[r][c].bytes for r in range(self.nranks) for c in cats
        )

    def comm_bytes(self) -> int:
        """Total network traffic (scomm + dcomm + trpose)."""
        return sum(self.total_bytes(c) for c in Category.COMM)

    def max_rank_bytes(self, category: Optional[str] = None) -> int:
        """Largest per-rank byte count -- the paper's per-process metric."""
        cats = Category.ALL if category is None else (category,)
        return max(
            sum(self.per_rank[r][c].bytes for c in cats)
            for r in range(self.nranks)
        )

    def total_messages(self, category: Optional[str] = None) -> int:
        cats = Category.ALL if category is None else (category,)
        return sum(
            self.per_rank[r][c].messages for r in range(self.nranks) for c in cats
        )

    def total_flops(self, category: Optional[str] = None) -> int:
        cats = Category.ALL if category is None else (category,)
        return sum(
            self.per_rank[r][c].flops for r in range(self.nranks) for c in cats
        )

    def breakdown(self) -> Dict[str, float]:
        """Wall seconds per category -- one stacked bar of Fig. 3."""
        return {c: self.wall.get(c, 0.0) for c in Category.ALL}

    def snapshot(self) -> "CommTracker":
        """Deep copy of the current ledger (for before/after deltas)."""
        clone = CommTracker(self.nranks)
        for r in range(self.nranks):
            for c, t in self.per_rank[r].items():
                clone.per_rank[r][c] = CategoryTotals(
                    t.seconds, t.bytes, t.messages, t.flops
                )
        clone.wall = defaultdict(float, self.wall)
        clone._nsteps = self._nsteps
        return clone

    def delta_since(self, before: "CommTracker") -> Dict[str, CategoryTotals]:
        """Aggregate category totals accumulated since ``before``."""
        out: Dict[str, CategoryTotals] = {}
        for c in Category.ALL:
            cur = CategoryTotals()
            prev = CategoryTotals()
            for r in range(self.nranks):
                cur = cur.merged(self.per_rank[r][c])
                prev = prev.merged(before.per_rank[r][c])
            out[c] = CategoryTotals(
                cur.seconds - prev.seconds,
                cur.bytes - prev.bytes,
                cur.messages - prev.messages,
                cur.flops - prev.flops,
            )
        return out

    def reset(self) -> None:
        """Clear all accounting (keeps the rank count)."""
        self.__init__(self.nranks)
