"""Per-rank, per-category accounting of communication and compute.

The paper's Figure 3 breaks epoch time into five categories::

    scomm   communicating sparse matrices (adjacency blocks)
    dcomm   communicating dense matrices (activations, gradients, partials)
    trpose  computing/communicating matrix transposes
    spmm    local sparse x dense multiplies
    misc    everything else (local GEMM, elementwise ops, optimiser)

The tracker records, for every virtual rank, modeled seconds plus exact
byte/message counts in each category.  The distributed algorithms are bulk
synchronous: an epoch is a sequence of *steps* (a collective or a local
kernel applied across ranks) and the epoch's wall-clock is the sum over
steps of the **maximum** per-rank time within that step.  The tracker
supports that reduction via :meth:`CommTracker.step_scope`.
"""

from __future__ import annotations

import struct
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["Category", "CommTracker", "CategoryTotals"]


class Category:
    """Canonical category names (mirroring Fig. 3's legend)."""

    SCOMM = "scomm"
    DCOMM = "dcomm"
    TRPOSE = "trpose"
    SPMM = "spmm"
    MISC = "misc"

    ALL = (SCOMM, DCOMM, TRPOSE, SPMM, MISC)
    #: Categories that represent network traffic (have byte counts).
    COMM = (SCOMM, DCOMM, TRPOSE)


@dataclass
class CategoryTotals:
    """Aggregated totals for one category."""

    seconds: float = 0.0
    bytes: int = 0
    messages: int = 0
    flops: int = 0

    def add(self, seconds: float = 0.0, nbytes: int = 0, messages: int = 0,
            flops: int = 0) -> None:
        self.seconds += seconds
        self.bytes += nbytes
        self.messages += messages
        self.flops += flops

    def merged(self, other: "CategoryTotals") -> "CategoryTotals":
        return CategoryTotals(
            self.seconds + other.seconds,
            self.bytes + other.bytes,
            self.messages + other.messages,
            self.flops + other.flops,
        )


class _StepScope:
    """Context manager delimiting one bulk-synchronous step.

    Only the outermost scope "owns" the step: nested scopes are no-ops on
    enter and exit, flattening into the owner exactly as the previous
    generator-based implementation did.
    """

    __slots__ = ("_tracker", "_owner")

    def __init__(self, tracker: "CommTracker"):
        self._tracker = tracker
        self._owner = False

    def __enter__(self) -> None:
        tracker = self._tracker
        if tracker._step is None:
            tracker._step = [{} for _ in range(tracker.nranks)]
            self._owner = True

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._owner:
            return False
        tracker = self._tracker
        step, tracker._step = tracker._step, None
        slowest = None
        worst = 0.0
        for rank_step in step:
            if rank_step:
                total = sum(rank_step.values())
                if total > worst:
                    worst = total
                    slowest = rank_step
        if slowest is not None:
            wall = tracker.wall
            for category, secs in slowest.items():
                wall[category] += secs
        tracker._nsteps += 1
        return False


class CommTracker:
    """Accounting ledger for a virtual distributed run.

    Two views are kept simultaneously:

    * **per-rank totals** -- exact bytes/messages/flops each rank incurred,
      used to validate the paper's per-process bounds and to study load
      balance;
    * **bulk-synchronous wall clock** -- within each step the slowest rank
      sets the pace; ``wall_seconds`` accumulates those maxima, broken down
      by category so Fig. 3 can be regenerated.

    Steps are delimited with :meth:`step_scope`; charges recorded outside a
    scope form an implicit single-charge step (max == the one charge).
    """

    def __init__(self, nranks: int):
        if nranks < 1:
            raise ValueError(f"tracker needs >= 1 rank, got {nranks}")
        self.nranks = nranks
        self.per_rank: List[Dict[str, CategoryTotals]] = [
            defaultdict(CategoryTotals) for _ in range(nranks)
        ]
        #: wall-clock seconds per category under the bulk-synchronous model
        self.wall: Dict[str, float] = defaultdict(float)
        self._step: Optional[List[Dict[str, float]]] = None
        self._nsteps = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def charge(
        self,
        rank: int,
        category: str,
        seconds: float,
        nbytes: int = 0,
        messages: int = 0,
        flops: int = 0,
    ) -> None:
        """Record work done by / traffic through one rank."""
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range (nranks={self.nranks})")
        if category not in Category.ALL:
            raise ValueError(f"unknown category {category!r}; use Category.*")
        if seconds < 0 or nbytes < 0:
            raise ValueError("negative charge")
        self.per_rank[rank][category].add(seconds, nbytes, messages, flops)
        if self._step is not None:
            self._step[rank][category] = self._step[rank].get(category, 0.0) + seconds
        else:
            # Standalone charge: it is its own step; only this rank worked,
            # so the step's max time is simply this charge.
            self.wall[category] += seconds
            self._nsteps += 1

    def charge_group(
        self,
        ranks: Sequence[int],
        category: str,
        seconds: float,
        nbytes: int = 0,
        messages: int = 0,
        flops: int = 0,
    ) -> None:
        """Charge every rank in ``ranks`` the *same* amounts, in one call.

        The batched fast path for collectives: argument checks run once
        per call instead of once per rank, and the per-phase counters are
        accumulated in plain locals before touching the ledger dicts.
        Outside a :meth:`step_scope` the whole group charge forms one
        bulk-synchronous step (every rank worked the same ``seconds``, so
        the step's max is ``seconds`` -- exactly what wrapping the
        per-rank loop in a scope used to record; the scope is entered via
        ``self.step_scope`` so a :class:`~repro.comm.trace.StepTracer`
        still itemises it).  The resulting per-rank ledger is
        byte-for-byte identical to the per-rank loop.
        """
        if category not in Category.ALL:
            raise ValueError(f"unknown category {category!r}; use Category.*")
        if seconds < 0 or nbytes < 0:
            raise ValueError("negative charge")
        if self._step is None:
            with self.step_scope():
                self._charge_group_in_step(
                    ranks, category, seconds, nbytes, messages, flops
                )
        else:
            self._charge_group_in_step(
                ranks, category, seconds, nbytes, messages, flops
            )

    def charge_many(self, category: str, items: Sequence[tuple]) -> None:
        """Batched per-rank charges forming one bulk-synchronous step.

        ``items`` holds ``(rank, seconds, nbytes, messages, flops)``
        tuples -- the shape the distributed algorithms cache for their
        static per-stage kernel charges, so steady-state epochs charge
        straight from the precomputed list.  Semantics match issuing the
        individual :meth:`charge` calls inside one :meth:`step_scope`.
        """
        if category not in Category.ALL:
            raise ValueError(f"unknown category {category!r}; use Category.*")
        if self._step is None:
            with self.step_scope():
                self._charge_many_in_step(category, items)
        else:
            self._charge_many_in_step(category, items)

    def _charge_many_in_step(self, category: str, items) -> None:
        nranks = self.nranks
        per_rank = self.per_rank
        step = self._step
        for rank, seconds, nbytes, messages, flops in items:
            if not 0 <= rank < nranks:
                raise IndexError(
                    f"rank {rank} out of range (nranks={nranks})"
                )
            if seconds < 0 or nbytes < 0:
                raise ValueError("negative charge")
            t = per_rank[rank][category]
            t.seconds += seconds
            t.bytes += nbytes
            t.messages += messages
            t.flops += flops
            d = step[rank]
            d[category] = d.get(category, 0.0) + seconds

    def _charge_group_in_step(
        self,
        ranks: Sequence[int],
        category: str,
        seconds: float,
        nbytes: int,
        messages: int,
        flops: int,
    ) -> None:
        nranks = self.nranks
        per_rank = self.per_rank
        step = self._step
        for rank in ranks:
            if not 0 <= rank < nranks:
                raise IndexError(
                    f"rank {rank} out of range (nranks={nranks})"
                )
            t = per_rank[rank][category]
            t.seconds += seconds
            t.bytes += nbytes
            t.messages += messages
            t.flops += flops
            d = step[rank]
            d[category] = d.get(category, 0.0) + seconds

    def step_scope(self) -> "_StepScope":
        """Delimit one bulk-synchronous step.

        All charges inside the scope happen "in parallel" across ranks; on
        exit the per-category wall clock advances by the **maximum**
        per-rank time in the step, attributed per category in proportion to
        the slowest rank's own category split.  Nested scopes flatten into
        the outer step, which keeps call sites composable (an algorithm
        step may call a helper that also opens a scope).

        Implemented as a small slotted context-manager class rather than a
        ``contextlib`` generator: scopes delimit every collective and every
        charged kernel sweep, so the generator machinery was measurable
        overhead on the executed hot path.
        """
        return _StepScope(self)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def nsteps(self) -> int:
        """Number of bulk-synchronous steps recorded."""
        return self._nsteps

    def wall_seconds(self, category: Optional[str] = None) -> float:
        """Bulk-synchronous wall clock, total or for one category."""
        if category is None:
            return sum(self.wall.values())
        return self.wall.get(category, 0.0)

    def rank_totals(self, rank: int) -> Mapping[str, CategoryTotals]:
        return self.per_rank[rank]

    def total_bytes(self, category: Optional[str] = None) -> int:
        """Exact bytes over all ranks (total, or for one category)."""
        cats = Category.ALL if category is None else (category,)
        return sum(
            self.per_rank[r][c].bytes for r in range(self.nranks) for c in cats
        )

    def comm_bytes(self) -> int:
        """Total network traffic (scomm + dcomm + trpose)."""
        return sum(self.total_bytes(c) for c in Category.COMM)

    def max_rank_bytes(self, category: Optional[str] = None) -> int:
        """Largest per-rank byte count -- the paper's per-process metric."""
        cats = Category.ALL if category is None else (category,)
        return max(
            sum(self.per_rank[r][c].bytes for c in cats)
            for r in range(self.nranks)
        )

    def total_messages(self, category: Optional[str] = None) -> int:
        cats = Category.ALL if category is None else (category,)
        return sum(
            self.per_rank[r][c].messages for r in range(self.nranks) for c in cats
        )

    def total_flops(self, category: Optional[str] = None) -> int:
        cats = Category.ALL if category is None else (category,)
        return sum(
            self.per_rank[r][c].flops for r in range(self.nranks) for c in cats
        )

    def breakdown(self) -> Dict[str, float]:
        """Wall seconds per category -- one stacked bar of Fig. 3."""
        return {c: self.wall.get(c, 0.0) for c in Category.ALL}

    def state_bytes(self) -> bytes:
        """Canonical byte serialisation of the full ledger state.

        Fixed little-endian layout -- per-rank ``(seconds, bytes,
        messages, flops)`` in :data:`Category.ALL` order, then the wall
        clock per category, then the step count.  Two trackers are
        byte-identical here iff every number in their ledgers is equal,
        which is what the process backend's digest checks hash.
        """
        pack = struct.pack
        parts = []
        for r in range(self.nranks):
            totals = self.per_rank[r]
            for c in Category.ALL:
                t = totals[c]
                parts.append(pack("<dqqq", t.seconds, t.bytes,
                                  t.messages, t.flops))
        for c in Category.ALL:
            parts.append(pack("<d", self.wall.get(c, 0.0)))
        parts.append(pack("<q", self._nsteps))
        return b"".join(parts)

    def restore_state_bytes(self, data: bytes) -> None:
        """Install a ledger serialised by :meth:`state_bytes`.

        The inverse of :meth:`state_bytes` for checkpoint/resume:
        overwrites every total so a resumed run's ledger continues
        byte-for-byte from where the saved run stopped.  The blob's
        length is validated against this tracker's rank count -- a
        checkpoint from a different ``P`` fails loudly here instead of
        silently misattributing ranks.
        """
        ncat = len(Category.ALL)
        expected = self.nranks * ncat * 32 + ncat * 8 + 8
        if len(data) != expected:
            raise ValueError(
                f"ledger state is {len(data)} bytes but a {self.nranks}"
                f"-rank tracker serialises to {expected}; checkpoint "
                f"was written for a different configuration")
        unpack = struct.unpack_from
        off = 0
        per_rank: List[Dict[str, CategoryTotals]] = []
        for _ in range(self.nranks):
            totals: Dict[str, CategoryTotals] = defaultdict(CategoryTotals)
            for c in Category.ALL:
                seconds, nbytes, messages, flops = unpack("<dqqq", data, off)
                off += 32
                totals[c] = CategoryTotals(seconds, nbytes, messages, flops)
            per_rank.append(totals)
        wall: Dict[str, float] = defaultdict(float)
        for c in Category.ALL:
            (wall[c],) = unpack("<d", data, off)
            off += 8
        (nsteps,) = unpack("<q", data, off)
        self.per_rank = per_rank
        self.wall = wall
        self._nsteps = int(nsteps)
        self._step = None

    def snapshot(self) -> "CommTracker":
        """Deep copy of the current ledger (for before/after deltas)."""
        clone = CommTracker(self.nranks)
        for r in range(self.nranks):
            for c, t in self.per_rank[r].items():
                clone.per_rank[r][c] = CategoryTotals(
                    t.seconds, t.bytes, t.messages, t.flops
                )
        clone.wall = defaultdict(float, self.wall)
        clone._nsteps = self._nsteps
        return clone

    def delta_since(self, before: "CommTracker") -> Dict[str, CategoryTotals]:
        """Aggregate category totals accumulated since ``before``."""
        out: Dict[str, CategoryTotals] = {}
        for c in Category.ALL:
            cur = CategoryTotals()
            prev = CategoryTotals()
            for r in range(self.nranks):
                cur = cur.merged(self.per_rank[r][c])
                prev = prev.merged(before.per_rank[r][c])
            out[c] = CategoryTotals(
                cur.seconds - prev.seconds,
                cur.bytes - prev.bytes,
                cur.messages - prev.messages,
                cur.flops - prev.flops,
            )
        return out

    def reset(self) -> None:
        """Clear all accounting (keeps the rank count)."""
        self.__init__(self.nranks)
