"""Process meshes: 1D chains, 2D grids, and 3D meshes of virtual ranks.

The paper organises processes three ways (Section IV):

* **1D**: a chain of ``P`` ranks, each owning a block row (or column).
* **2D**: a ``Pr x Pc`` grid (Algorithm 2, SUMMA); the square case
  ``Pr = Pc = sqrt(P)`` is the one analysed and implemented by the authors,
  but the rectangular case (Section IV-C.6) is also well-defined and we
  support it.
* **3D**: a ``p1 x p2 x p3`` mesh (Split-3D-SpMM, Section IV-D); each 2D
  plane is a "layer" and the third dimension is the "fiber".

A mesh knows how to map a linear rank to grid coordinates and back, and how
to enumerate the *communication groups* (process rows, columns, fibers,
layers) that collectives operate over.  Rank numbering is row-major, which
matches how ``torch.distributed`` process groups would be built from a flat
world.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "ProcessMesh",
    "Mesh1D",
    "Mesh2D",
    "Mesh3D",
    "is_perfect_square",
    "is_perfect_cube",
    "square_side",
    "cube_side",
]


def is_perfect_square(p: int) -> bool:
    """True when ``p`` is a perfect square (valid square 2D grid size)."""
    if p < 1:
        return False
    r = math.isqrt(p)
    return r * r == p


def square_side(p: int) -> int:
    """``sqrt(p)`` for perfect squares, raising otherwise."""
    r = math.isqrt(p)
    if r * r != p:
        raise ValueError(f"P={p} is not a perfect square; need Pr=Pc=sqrt(P)")
    return r


def is_perfect_cube(p: int) -> bool:
    """True when ``p`` is a perfect cube (valid cubic 3D mesh size)."""
    if p < 1:
        return False
    r = round(p ** (1.0 / 3.0))
    return r**3 == p or (r + 1) ** 3 == p or (r - 1) ** 3 == p and False


def cube_side(p: int) -> int:
    """``cbrt(p)`` for perfect cubes, raising otherwise."""
    r = round(p ** (1.0 / 3.0))
    for cand in (r - 1, r, r + 1):
        if cand > 0 and cand**3 == p:
            return cand
    raise ValueError(f"P={p} is not a perfect cube; need a cbrt(P)^3 mesh")


@dataclass(frozen=True)
class ProcessMesh:
    """Base class: a logical arrangement of ``size`` ranks.

    Subclasses fix the dimensionality and provide coordinate mappings plus
    group enumeration.  Groups are returned as tuples of linear ranks, in
    coordinate order, so collectives can address them directly.
    """

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"mesh needs at least one rank, got {self.size}")

    @property
    def ndim(self) -> int:
        raise NotImplementedError

    def coords(self, rank: int) -> Tuple[int, ...]:
        """Grid coordinates of a linear rank."""
        raise NotImplementedError

    def rank_of(self, *coords: int) -> int:
        """Linear rank of grid coordinates (inverse of :meth:`coords`)."""
        raise NotImplementedError

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range for mesh of size {self.size}")


@dataclass(frozen=True)
class Mesh1D(ProcessMesh):
    """A chain of ``size`` ranks; rank i owns block row/column i."""

    @property
    def ndim(self) -> int:
        return 1

    def coords(self, rank: int) -> Tuple[int]:
        self._check_rank(rank)
        return (rank,)

    def rank_of(self, i: int) -> int:  # type: ignore[override]
        self._check_rank(i)
        return i

    def world_group(self) -> Tuple[int, ...]:
        """All ranks, in order -- the only group a 1D mesh has."""
        return tuple(range(self.size))


@dataclass(frozen=True)
class Mesh2D(ProcessMesh):
    """A ``rows x cols`` grid; rank = i*cols + j for coordinates (i, j)."""

    rows: int = 0
    cols: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"invalid grid {self.rows}x{self.cols}")
        if self.rows * self.cols != self.size:
            raise ValueError(
                f"grid {self.rows}x{self.cols} does not tile {self.size} ranks"
            )

    @classmethod
    def square(cls, p: int) -> "Mesh2D":
        """The ``sqrt(P) x sqrt(P)`` grid used by the paper's implementation."""
        s = square_side(p)
        return cls(size=p, rows=s, cols=s)

    @classmethod
    def rectangular(cls, rows: int, cols: int) -> "Mesh2D":
        """An explicit ``Pr x Pc`` grid (Section IV-C.6)."""
        return cls(size=rows * cols, rows=rows, cols=cols)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def is_square(self) -> bool:
        return self.rows == self.cols

    def coords(self, rank: int) -> Tuple[int, int]:
        self._check_rank(rank)
        return divmod(rank, self.cols)

    def rank_of(self, i: int, j: int) -> int:  # type: ignore[override]
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise IndexError(f"coords ({i},{j}) outside {self.rows}x{self.cols} grid")
        return i * self.cols + j

    def row_group(self, i: int) -> Tuple[int, ...]:
        """Ranks of process row ``i``: P(i, :) in the paper's notation."""
        return tuple(self.rank_of(i, j) for j in range(self.cols))

    def col_group(self, j: int) -> Tuple[int, ...]:
        """Ranks of process column ``j``: P(:, j)."""
        return tuple(self.rank_of(i, j) for i in range(self.rows))

    def row_groups(self) -> List[Tuple[int, ...]]:
        return [self.row_group(i) for i in range(self.rows)]

    def col_groups(self) -> List[Tuple[int, ...]]:
        return [self.col_group(j) for j in range(self.cols)]


@dataclass(frozen=True)
class Mesh3D(ProcessMesh):
    """A ``p1 x p2 x p3`` mesh; rank = (i*p2 + j)*p3 + k for (i, j, k).

    Following Split-3D-SpGEMM terminology (Azad et al., cited as [3]):
    fixing ``k`` gives a 2D **layer**; varying ``k`` with (i, j) fixed walks
    a **fiber** -- the dimension along which partial products are
    reduce-scattered.
    """

    p1: int = 0
    p2: int = 0
    p3: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if min(self.p1, self.p2, self.p3) < 1:
            raise ValueError(f"invalid 3D mesh {self.p1}x{self.p2}x{self.p3}")
        if self.p1 * self.p2 * self.p3 != self.size:
            raise ValueError(
                f"mesh {self.p1}x{self.p2}x{self.p3} does not tile {self.size} ranks"
            )

    @classmethod
    def cubic(cls, p: int) -> "Mesh3D":
        """The ``cbrt(P)^3`` mesh of Section IV-D."""
        s = cube_side(p)
        return cls(size=p, p1=s, p2=s, p3=s)

    @property
    def ndim(self) -> int:
        return 3

    def coords(self, rank: int) -> Tuple[int, int, int]:
        self._check_rank(rank)
        ij, k = divmod(rank, self.p3)
        i, j = divmod(ij, self.p2)
        return i, j, k

    def rank_of(self, i: int, j: int, k: int) -> int:  # type: ignore[override]
        if not (0 <= i < self.p1 and 0 <= j < self.p2 and 0 <= k < self.p3):
            raise IndexError(
                f"coords ({i},{j},{k}) outside {self.p1}x{self.p2}x{self.p3} mesh"
            )
        return (i * self.p2 + j) * self.p3 + k

    def layer_group(self, k: int) -> Tuple[int, ...]:
        """All ranks of layer ``k`` (a full 2D grid), row-major."""
        return tuple(
            self.rank_of(i, j, k) for i in range(self.p1) for j in range(self.p2)
        )

    def row_group(self, i: int, k: int) -> Tuple[int, ...]:
        """Process row i within layer k: P(i, :, k)."""
        return tuple(self.rank_of(i, j, k) for j in range(self.p2))

    def col_group(self, j: int, k: int) -> Tuple[int, ...]:
        """Process column j within layer k: P(:, j, k)."""
        return tuple(self.rank_of(i, j, k) for i in range(self.p1))

    def fiber_group(self, i: int, j: int) -> Tuple[int, ...]:
        """The fiber P(i, j, :) across layers -- the reduction dimension."""
        return tuple(self.rank_of(i, j, k) for k in range(self.p3))

    def fiber_groups(self) -> List[Tuple[int, ...]]:
        return [
            self.fiber_group(i, j) for i in range(self.p1) for j in range(self.p2)
        ]


def validate_group(group: Sequence[int], size: int) -> Tuple[int, ...]:
    """Validate a communication group: unique in-range ranks, order kept."""
    g = tuple(int(r) for r in group)
    if len(g) == 0:
        raise ValueError("empty communication group")
    if len(set(g)) != len(g):
        raise ValueError(f"duplicate ranks in group {g}")
    for r in g:
        if not 0 <= r < size:
            raise IndexError(f"rank {r} out of range for world of size {size}")
    return g
