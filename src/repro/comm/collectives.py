"""Simulated collectives: real data movement + alpha-beta cost accounting.

Each collective does two things:

1. **Really moves the data** between virtual ranks (numpy arrays or sparse
   blocks), so the distributed algorithms are bit-exact executable programs
   whose outputs can be compared against the serial reference -- exactly the
   verification the paper performs ("outputs the same embeddings up to
   floating point accumulation errors").
2. **Charges the tracker** with modeled seconds (from
   :mod:`repro.comm.cost_model`) and with the per-process critical-path
   byte counts -- the quantity the paper's ``T_comm`` formulas bound.  Every
   rank participating in a collective is charged the collective's
   critical-path bytes and modeled seconds; this matches the paper's
   convention of quoting *per-process* communication cost.

Payloads may be ``numpy.ndarray`` (dense blocks), objects exposing an
``nbytes_on_wire`` attribute (our CSR blocks), or ``None`` (empty
contribution).  Reductions require dense arrays of identical shape.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence

import numpy as np

from repro.comm import cost_model as cm
from repro.comm.mesh import validate_group
from repro.comm.tracker import Category, CommTracker
from repro.config import INDEX_BYTES, MachineProfile

__all__ = ["Collectives", "payload_nbytes"]


def payload_nbytes(payload: Any) -> int:
    """Wire size of a payload in bytes.

    Dense arrays report ``.nbytes``; sparse blocks report
    ``.nbytes_on_wire`` (data + indices + indptr); ``None`` is free.
    """
    if payload is None:
        return 0
    wire = getattr(payload, "nbytes_on_wire", None)
    if wire is not None:
        return int(wire)
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


def _copy(payload: Any) -> Any:
    """Simulate receipt: a rank gets its own buffer, never an alias."""
    if payload is None:
        return None
    copy = getattr(payload, "copy", None)
    if copy is None:
        raise TypeError(f"payload of type {type(payload).__name__} is not copyable")
    return copy()


class Collectives:
    """NCCL/MPI-style collectives over a group of virtual ranks.

    Ranks are addressed by world rank; groups come from
    :class:`repro.comm.mesh.ProcessMesh` group enumerators.  Per-rank data
    is passed as ``{rank: payload}`` mappings and results come back the same
    way, which keeps the SPMD algorithms readable::

        received = coll.broadcast(row_group, root=r, value=block,
                                  category=Category.SCOMM)
    """

    def __init__(self, profile: MachineProfile, tracker: CommTracker):
        self.profile = profile
        self.tracker = tracker
        self.world_size = tracker.nranks

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _charge_group(
        self, group: Sequence[int], category: str, cost: cm.CollectiveCost
    ) -> None:
        with self.tracker.step_scope():
            for rank in group:
                self.tracker.charge(
                    rank,
                    category,
                    cost.seconds,
                    nbytes=cost.bytes_critical,
                    messages=cost.messages,
                )

    @staticmethod
    def _require_dense(payload: Any, what: str) -> np.ndarray:
        if not isinstance(payload, np.ndarray):
            raise TypeError(f"{what} requires dense ndarray payloads, "
                            f"got {type(payload).__name__}")
        return payload

    # ------------------------------------------------------------------ #
    # collectives
    # ------------------------------------------------------------------ #
    def broadcast(
        self,
        group: Sequence[int],
        root: int,
        value: Any,
        category: str = Category.DCOMM,
        pipelined: bool = False,
    ) -> Dict[int, Any]:
        """Broadcast ``value`` from ``root`` to every rank in ``group``.

        Returns ``{rank: copy_of_value}``; the root keeps the original
        object (no self-send).  ``pipelined=True`` models SUMMA's pipelined
        broadcast, dropping the ``lg p`` latency factor (Section IV-C).
        """
        group = validate_group(group, self.world_size)
        if root not in group:
            raise ValueError(f"root {root} not in group {group}")
        nbytes = payload_nbytes(value)
        cost = cm.broadcast_cost(self.profile, nbytes, len(group), pipelined,
                                 span=self.world_size)
        self._charge_group(group, category, cost)
        return {r: (value if r == root else _copy(value)) for r in group}

    def sendrecv(
        self,
        src: int,
        dst: int,
        value: Any,
        category: str = Category.DCOMM,
    ) -> Any:
        """Point-to-point send; returns the copy that ``dst`` receives."""
        validate_group([src, dst] if src != dst else [src], self.world_size)
        if src == dst:
            return value
        nbytes = payload_nbytes(value)
        cost = cm.p2p_cost(self.profile, nbytes, span=self.world_size)
        with self.tracker.step_scope():
            self.tracker.charge(src, category, cost.seconds, nbytes=0,
                                messages=cost.messages)
            self.tracker.charge(dst, category, cost.seconds, nbytes=nbytes,
                                messages=cost.messages)
        return _copy(value)

    def allgather(
        self,
        group: Sequence[int],
        values: Mapping[int, Any],
        category: str = Category.DCOMM,
    ) -> Dict[int, list]:
        """Every rank receives the list of all group contributions (in
        group order).  Result payloads are copies except each rank's own."""
        group = validate_group(group, self.world_size)
        self._check_contributions(group, values)
        total = sum(payload_nbytes(values[r]) for r in group)
        cost = cm.allgather_cost(self.profile, total, len(group),
                                 span=self.world_size)
        self._charge_group(group, category, cost)
        return {
            r: [values[s] if s == r else _copy(values[s]) for s in group]
            for r in group
        }

    def gather(
        self,
        group: Sequence[int],
        values: Mapping[int, Any],
        root: int,
        category: str = Category.DCOMM,
    ) -> list:
        """Root receives the list of all contributions, in group order."""
        group = validate_group(group, self.world_size)
        if root not in group:
            raise ValueError(f"root {root} not in group {group}")
        self._check_contributions(group, values)
        total = sum(payload_nbytes(values[r]) for r in group)
        cost = cm.gather_cost(self.profile, total, len(group),
                              span=self.world_size)
        self._charge_group(group, category, cost)
        return [values[s] if s == root else _copy(values[s]) for s in group]

    def scatter(
        self,
        group: Sequence[int],
        shards: Sequence[Any],
        root: int,
        category: str = Category.DCOMM,
    ) -> Dict[int, Any]:
        """Root distributes ``shards[i]`` to the i-th rank of ``group``."""
        group = validate_group(group, self.world_size)
        if root not in group:
            raise ValueError(f"root {root} not in group {group}")
        if len(shards) != len(group):
            raise ValueError(
                f"got {len(shards)} shards for a group of {len(group)}"
            )
        total = sum(payload_nbytes(s) for s in shards)
        cost = cm.scatter_cost(self.profile, total, len(group),
                               span=self.world_size)
        self._charge_group(group, category, cost)
        return {
            r: (shards[i] if r == root else _copy(shards[i]))
            for i, r in enumerate(group)
        }

    def allreduce(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        category: str = Category.DCOMM,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    ) -> Dict[int, np.ndarray]:
        """Elementwise reduction of same-shape arrays; all ranks get it.

        The default op is addition -- the semiring-overloadable aggregation
        the paper mentions (Combinatorial BLAS / CTF semiring interface).
        """
        group = validate_group(group, self.world_size)
        self._check_contributions(group, values)
        acc = self._reduce_arrays(group, values, op)
        nbytes = int(acc.nbytes)
        cost = cm.allreduce_cost(self.profile, nbytes, len(group),
                                 span=self.world_size)
        self._charge_group(group, category, cost)
        return {r: acc.copy() for r in group}

    def reduce(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        root: int,
        category: str = Category.DCOMM,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    ) -> np.ndarray:
        """Reduction to a single root rank."""
        group = validate_group(group, self.world_size)
        if root not in group:
            raise ValueError(f"root {root} not in group {group}")
        self._check_contributions(group, values)
        acc = self._reduce_arrays(group, values, op)
        cost = cm.reduce_cost(self.profile, int(acc.nbytes), len(group),
                              span=self.world_size)
        self._charge_group(group, category, cost)
        return acc

    def reduce_scatter(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        category: str = Category.DCOMM,
        axis: int = 0,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    ) -> Dict[int, np.ndarray]:
        """Reduce same-shape arrays, then scatter shards along ``axis``.

        The i-th rank of the group receives the i-th block of the reduced
        array split into ``len(group)`` near-equal blocks along ``axis``.
        This is the operation the 1D backward pass uses to turn per-rank
        ``n x f`` outer-product partials into a block-row-distributed
        ``G^{l-1}`` (Section IV-A.3).
        """
        group = validate_group(group, self.world_size)
        self._check_contributions(group, values)
        acc = self._reduce_arrays(group, values, op)
        return self._reduce_scatter_impl(
            group, acc, int(acc.nbytes), category, axis
        )

    def _reduce_scatter_impl(
        self,
        group: Sequence[int],
        acc: np.ndarray,
        wire_nbytes: int,
        category: str,
        axis: int,
    ) -> Dict[int, np.ndarray]:
        """Charge and shard a reduced array (dense/sparse charging paths
        share everything except the wire size)."""
        cost = cm.reduce_scatter_cost(self.profile, wire_nbytes,
                                      len(group), span=self.world_size)
        self._charge_group(group, category, cost)
        shards = np.array_split(acc, len(group), axis=axis)
        return {r: np.ascontiguousarray(shards[i]) for i, r in enumerate(group)}

    def sparse_reduce_scatter(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        category: str = Category.DCOMM,
        axis: int = 0,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    ) -> Dict[int, np.ndarray]:
        """Reduce-scatter that ships only the nonzero rows of each input.

        The SparCML-style reduction of Section IV-A.3: when ``P`` exceeds
        the average degree, the per-rank outer-product partials
        ``A[:, rows_i] G_i`` are mostly empty rows, so each contribution
        travels as (nonzero rows + row indices) instead of the dense
        ``n x f`` buffer.  Numerics are **identical** to
        :meth:`reduce_scatter` (same accumulation, same shards); only the
        charged wire size changes -- "sparse routing changes bytes, never
        numerics".
        """
        group = validate_group(group, self.world_size)
        self._check_contributions(group, values)
        acc = self._reduce_arrays(group, values, op)
        # Critical-path buffer size: the largest sparse contribution
        # (nonzero rows + one index per row) plays the role the uniform
        # dense buffer plays in reduce_scatter_cost.
        wire = 0
        for r in group:
            arr = self._require_dense(values[r], "sparse reduce-scatter")
            nz_rows = int(np.count_nonzero(arr.any(axis=1 - axis)))
            row_bytes = arr.nbytes // max(arr.shape[axis], 1)
            wire = max(wire, nz_rows * (row_bytes + INDEX_BYTES))
        return self._reduce_scatter_impl(group, acc, int(wire), category, axis)

    def alltoall(
        self,
        group: Sequence[int],
        buckets: Mapping[int, Sequence[Any]],
        category: str = Category.DCOMM,
    ) -> Dict[int, list]:
        """Personalised exchange: rank ``group[i]`` sends ``buckets[gi][j]``
        to ``group[j]``; each receiver gets contributions in sender order."""
        group = validate_group(group, self.world_size)
        p = len(group)
        for r in group:
            if r not in buckets:
                raise KeyError(f"rank {r} missing from alltoall buckets")
            if len(buckets[r]) != p:
                raise ValueError(
                    f"rank {r} supplied {len(buckets[r])} buckets, expected {p}"
                )
        total = max(
            sum(payload_nbytes(b) for b in buckets[r]) for r in group
        )
        cost = cm.alltoall_cost(self.profile, total, p, span=self.world_size)
        self._charge_group(group, category, cost)
        out: Dict[int, list] = {}
        for j, dst in enumerate(group):
            out[dst] = [
                buckets[src][j] if src == dst else _copy(buckets[src][j])
                for src in group
            ]
        return out

    def barrier(self, group: Sequence[int]) -> None:
        """Synchronise a group; charged as a zero-byte allreduce latency."""
        group = validate_group(group, self.world_size)
        if len(group) <= 1:
            return
        alpha = self.profile.alpha_for_span(len(group))
        lat = 2 * alpha * max(1.0, np.log2(len(group)))
        with self.tracker.step_scope():
            for rank in group:
                self.tracker.charge(rank, Category.MISC, lat, messages=1)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_contributions(group: Sequence[int], values: Mapping[int, Any]) -> None:
        missing = [r for r in group if r not in values]
        if missing:
            raise KeyError(f"missing contributions from ranks {missing}")

    def _reduce_arrays(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        op: Callable[[np.ndarray, np.ndarray], np.ndarray],
    ) -> np.ndarray:
        first = self._require_dense(values[group[0]], "reduction")
        acc = first.copy()
        for r in group[1:]:
            arr = self._require_dense(values[r], "reduction")
            if arr.shape != acc.shape:
                raise ValueError(
                    f"reduction shape mismatch: {arr.shape} vs {acc.shape}"
                )
            acc = op(acc, arr)
        return acc
