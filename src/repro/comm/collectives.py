"""Simulated collectives: real data movement + alpha-beta cost accounting.

Each collective does two things:

1. **Really moves the data** between virtual ranks (numpy arrays or sparse
   blocks), so the distributed algorithms are bit-exact executable programs
   whose outputs can be compared against the serial reference -- exactly the
   verification the paper performs ("outputs the same embeddings up to
   floating point accumulation errors").
2. **Charges the tracker** with modeled seconds (from
   :mod:`repro.comm.cost_model`) and with the per-process critical-path
   byte counts -- the quantity the paper's ``T_comm`` formulas bound.  Every
   rank participating in a collective is charged the collective's
   critical-path bytes and modeled seconds; this matches the paper's
   convention of quoting *per-process* communication cost.

Data movement is **copy-on-write**: by default every receiving rank gets a
*read-only view* of the transmitted payload (``ndarray.flags.writeable =
False``) -- one buffer stands in for the P identical buffers a real
cluster would hold, so the single-process simulation stops paying P deep
copies per collective, and an in-place write through any *received*
payload raises instead of silently corrupting the peers sharing it.
That protection is one-directional: the sender still holds its original
writable buffer, so a caller that mutates a payload *after* sending it
would change what every receiver sees -- senders must treat transmitted
buffers as frozen (every algorithm in :mod:`repro.dist` does), or pass
``materialize=True`` to recover the historical private-writable-copy
semantics.  Sparse blocks (:class:`CSRMatrix`) are structurally
immutable throughout the codebase and are shared as-is, which also
preserves their cached ``to_scipy()`` wrapper across epochs.  The
charged bytes and modeled seconds are **identical** either way -- the
ledger models the real machine, not the simulation shortcut.

Payloads may be ``numpy.ndarray`` (dense blocks), objects exposing an
``nbytes_on_wire`` attribute (our CSR blocks), or ``None`` (empty
contribution).  Reductions require dense arrays of identical shape.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import sanitize as _sanitize
from repro.comm import cost_model as cm
from repro.comm.plan import CommPlan
from repro.comm.tracker import Category, CommTracker
from repro.config import INDEX_BYTES, MachineProfile
from repro.obs import profile as _profile

__all__ = ["Collectives", "payload_nbytes"]


def payload_nbytes(payload: Any) -> int:
    """Wire size of a payload in bytes.

    Dense arrays report ``.nbytes``; sparse blocks report
    ``.nbytes_on_wire`` (data + indices + indptr); ``None`` is free.
    """
    if payload is None:
        return 0
    wire = getattr(payload, "nbytes_on_wire", None)
    if wire is not None:
        return int(wire)
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


def _copy(payload: Any) -> Any:
    """Materialised receipt: a rank gets its own private buffer."""
    if payload is None:
        return None
    copy = getattr(payload, "copy", None)
    if copy is None:
        raise TypeError(f"payload of type {type(payload).__name__} is not copyable")
    return copy()


def _axis_shards(acc: np.ndarray, bounds, axis: int) -> list:
    """Views of ``acc`` split at ``bounds`` (half-open) along ``axis``.

    The one shard-slicing implementation every reduce-scatter path
    (charged or data-plane, virtual or multiprocess) goes through.
    """
    if axis == 0:
        return [acc[lo:hi] for lo, hi in bounds]
    shards = []
    index = [slice(None)] * acc.ndim
    for lo, hi in bounds:
        index[axis] = slice(lo, hi)
        shards.append(acc[tuple(index)])
    return shards


def _readonly(payload: Any, name: str = "collective") -> Any:
    """Copy-on-write receipt: a shared read-only view of the payload.

    Dense arrays come back as views with the writeable flag cleared, so
    an accidental in-place mutation raises instead of corrupting every
    peer that shares the buffer.  Sparse blocks and ``None`` pass through
    unchanged (CSR blocks are structurally immutable by convention --
    every operation returns a new matrix).

    ``name`` labels the collective handing out the receipt: the
    writeable flag cannot stop the *sender* from writing through the
    original buffer, so under ``REPRO_SANITIZE=1`` the view is also
    content-hashed and re-verified at epoch boundaries -- a drift raises
    naming ``name``.
    """
    if isinstance(payload, np.ndarray):
        view = payload.view()
        view.flags.writeable = False
        san = _sanitize.ACTIVE
        if san is not None:
            san.register_cow(name, view)
        return view
    return payload


class Collectives:
    """NCCL/MPI-style collectives over a group of virtual ranks.

    Ranks are addressed by world rank; groups come from
    :class:`repro.comm.mesh.ProcessMesh` group enumerators.  Per-rank data
    is passed as ``{rank: payload}`` mappings and results come back the same
    way, which keeps the SPMD algorithms readable::

        received = coll.broadcast(row_group, root=r, value=block,
                                  category=Category.SCOMM)

    Group validation and reduction scratch go through a
    :class:`~repro.comm.plan.CommPlan`, so steady-state epochs hit caches
    instead of re-deriving the same structure every call.
    """

    def __init__(self, profile: MachineProfile, tracker: CommTracker,
                 plan: Optional[CommPlan] = None):
        self.profile = profile
        self.tracker = tracker
        self.world_size = tracker.nranks
        self.plan = plan if plan is not None else CommPlan(tracker.nranks)
        # Alpha-beta costs are pure functions of (payload bytes, group
        # size, flags) for a fixed profile, and the executed epochs walk
        # the same payload shapes every time -- so each distinct cost is
        # computed once.  Bounded by the number of distinct payload
        # sizes, which is small and static per run.
        self._cost_cache: Dict[tuple, cm.CollectiveCost] = {}

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _group(self, group: Sequence[int]):
        return self.plan.group(group)

    def _cost(self, kind: str, fn, nbytes: int, p: int,
              *flags) -> cm.CollectiveCost:
        key = (kind, nbytes, p) + flags
        cost = self._cost_cache.get(key)
        if cost is None:
            cost = fn(self.profile, nbytes, p, *flags,
                      span=self.world_size)
            self._cost_cache[key] = cost
        return cost

    def _p2p_cost(self, nbytes: int) -> cm.CollectiveCost:
        key = ("p2p", nbytes)
        cost = self._cost_cache.get(key)
        if cost is None:
            cost = cm.p2p_cost(self.profile, nbytes, span=self.world_size)
            self._cost_cache[key] = cost
        return cost

    def _charge_group(
        self, group: Sequence[int], category: str, cost: cm.CollectiveCost
    ) -> None:
        self.tracker.charge_group(
            group,
            category,
            cost.seconds,
            nbytes=cost.bytes_critical,
            messages=cost.messages,
        )

    @staticmethod
    def _require_dense(payload: Any, what: str) -> np.ndarray:
        if not isinstance(payload, np.ndarray):
            raise TypeError(f"{what} requires dense ndarray payloads, "
                            f"got {type(payload).__name__}")
        return payload

    # ------------------------------------------------------------------ #
    # collectives
    # ------------------------------------------------------------------ #
    def broadcast(
        self,
        group: Sequence[int],
        root: int,
        value: Any,
        category: str = Category.DCOMM,
        pipelined: bool = False,
        materialize: bool = False,
    ) -> Dict[int, Any]:
        """Broadcast ``value`` from ``root`` to every rank in ``group``.

        Returns ``{rank: payload}`` where every payload is one shared
        read-only view of ``value`` (``materialize=True``: the root keeps
        the original object and every other rank gets a private writable
        copy).  ``pipelined=True`` models SUMMA's pipelined broadcast,
        dropping the ``lg p`` latency factor (Section IV-C).
        """
        group = self._group(group)
        if root not in group:
            raise ValueError(f"root {root} not in group {group}")
        nbytes = payload_nbytes(value)
        cost = self._cost("bc", cm.broadcast_cost, nbytes, len(group),
                          pipelined)
        self._charge_group(group, category, cost)
        if materialize:
            return {r: (value if r == root else _copy(value)) for r in group}
        shared = _readonly(value, "broadcast")
        return {r: shared for r in group}

    def broadcast_many(
        self,
        items: Sequence[Tuple[Sequence[int], int, Any]],
        category: str = Category.DCOMM,
        pipelined: bool = False,
    ) -> list:
        """Concurrent broadcasts over disjoint groups, charged as one step.

        ``items`` holds ``(group, root, value)`` triples -- the shape of a
        SUMMA stage, where every process row (or column) broadcasts its
        piece at once.  Returns the received payload per item (one shared
        read-only view each; every rank of the item's group receives that
        same buffer).  Exactly equivalent to calling :meth:`broadcast`
        per item inside one ``step_scope``, minus the per-call and
        per-rank dictionary overhead.
        """
        tracker = self.tracker
        out = []
        with tracker.step_scope():
            for group, root, value in items:
                group = self._group(group)
                if root not in group:
                    raise ValueError(f"root {root} not in group {group}")
                nbytes = payload_nbytes(value)
                cost = self._cost("bc", cm.broadcast_cost, nbytes,
                                  len(group), pipelined)
                tracker.charge_group(
                    group, category, cost.seconds,
                    nbytes=cost.bytes_critical, messages=cost.messages,
                )
                out.append(_readonly(value, "broadcast_many"))
        return out

    def sendrecv(
        self,
        src: int,
        dst: int,
        value: Any,
        category: str = Category.DCOMM,
        materialize: bool = False,
    ) -> Any:
        """Point-to-point send; returns what ``dst`` receives (a shared
        read-only view by default, a private copy with ``materialize``)."""
        self._group((src, dst) if src != dst else (src,))
        if src == dst:
            return value
        nbytes = payload_nbytes(value)
        cost = self._p2p_cost(nbytes)
        with self.tracker.step_scope():
            self.tracker.charge(src, category, cost.seconds, nbytes=0,
                                messages=cost.messages)
            self.tracker.charge(dst, category, cost.seconds, nbytes=nbytes,
                                messages=cost.messages)
        return _copy(value) if materialize else _readonly(value, "sendrecv")

    def broadcast_charges(
        self,
        items: Sequence[Tuple[Sequence[int], int, Any]],
        pipelined: bool = False,
    ) -> list:
        """Flattened per-rank charge tuples for a broadcast set.

        The executed epochs broadcast the same payload shapes over the
        same groups every time, so algorithms precompute this list once
        and replay it with :meth:`CommTracker.charge_many` -- identical
        ledger, none of the per-epoch cost/validation work.  Tuples are
        ``(rank, seconds, nbytes, messages, flops)``.
        """
        return self.broadcast_charges_sized(
            [(group, root, payload_nbytes(value))
             for group, root, value in items],
            pipelined,
        )

    def broadcast_charges_sized(
        self,
        items: Sequence[Tuple[Sequence[int], int, int]],
        pipelined: bool = False,
    ) -> list:
        """:meth:`broadcast_charges` from wire sizes instead of payloads.

        ``items`` holds ``(group, root, nbytes)`` triples.  The size-based
        form is what multiprocess workers use: a rank-local process knows
        every payload's *shape* (block structure is global knowledge) but
        holds only its own ranks' buffers.
        """
        flat = []
        for group, root, nbytes in items:
            group = self._group(group)
            if root not in group:
                raise ValueError(f"root {root} not in group {group}")
            cost = self._cost("bc", cm.broadcast_cost,
                              int(nbytes), len(group), pipelined)
            flat.extend(
                (r, cost.seconds, cost.bytes_critical, cost.messages, 0)
                for r in group
            )
        return flat

    def allgather_charges(
        self, items: Sequence[Tuple[Sequence[int], int]]
    ) -> list:
        """Flattened charge tuples for an all-gather set.

        ``items`` holds ``(group, total_nbytes)`` pairs (the sum of all
        contributions, exactly what :meth:`allgather` charges); see
        :meth:`broadcast_charges` for the replay-caching rationale.
        """
        flat = []
        for group, nbytes in items:
            group = self._group(group)
            cost = self._cost("ag", cm.allgather_cost, int(nbytes),
                              len(group))
            flat.extend(
                (r, cost.seconds, cost.bytes_critical, cost.messages, 0)
                for r in group
            )
        return flat

    def allreduce_charges(
        self, items: Sequence[Tuple[Sequence[int], int]]
    ) -> list:
        """Flattened charge tuples for an all-reduce set.

        ``items`` holds ``(group, reduced_nbytes)`` pairs; see
        :meth:`broadcast_charges` for the replay-caching rationale.
        """
        flat = []
        for group, nbytes in items:
            group = self._group(group)
            cost = self._cost("ar", cm.allreduce_cost, int(nbytes),
                              len(group))
            flat.extend(
                (r, cost.seconds, cost.bytes_critical, cost.messages, 0)
                for r in group
            )
        return flat

    def reduce_scatter_charges(
        self, items: Sequence[Tuple[Sequence[int], int]]
    ) -> list:
        """Flattened charge tuples for a reduce-scatter set.

        ``items`` holds ``(group, reduced_nbytes)`` pairs (see
        :meth:`broadcast_charges` for the replay-caching rationale).
        """
        flat = []
        for group, nbytes in items:
            group = self._group(group)
            cost = self._cost("rs", cm.reduce_scatter_cost, int(nbytes),
                              len(group))
            flat.extend(
                (r, cost.seconds, cost.bytes_critical, cost.messages, 0)
                for r in group
            )
        return flat

    def sendrecv_charges(
        self, items: Sequence[Tuple[int, int, Any]]
    ) -> list:
        """Flattened charge tuples for a point-to-point exchange set
        (see :meth:`broadcast_charges`); self-sends charge nothing."""
        return self.sendrecv_charges_sized(
            [(src, dst, payload_nbytes(value)) for src, dst, value in items]
        )

    def sendrecv_charges_sized(
        self, items: Sequence[Tuple[int, int, int]]
    ) -> list:
        """:meth:`sendrecv_charges` from wire sizes instead of payloads
        (``(src, dst, nbytes)`` triples; see
        :meth:`broadcast_charges_sized` for why sizes)."""
        flat = []
        for src, dst, nbytes in items:
            if src == dst:
                self._group((src,))
                continue
            self._group((src, dst))
            nbytes = int(nbytes)
            cost = self._p2p_cost(nbytes)
            flat.append((src, cost.seconds, 0, cost.messages, 0))
            flat.append((dst, cost.seconds, nbytes, cost.messages, 0))
        return flat

    def sendrecv_many(
        self,
        items: Sequence[Tuple[int, int, Any]],
        category: str = Category.DCOMM,
    ) -> list:
        """Concurrent point-to-point exchanges, charged as one step.

        ``items`` holds ``(src, dst, value)`` triples (e.g. the Split-3D
        fiber-plane exchange); returns what each ``dst`` receives, in
        item order.  Equivalent to per-item :meth:`sendrecv` calls inside
        one ``step_scope``; self-sends pass the value through uncharged,
        exactly as :meth:`sendrecv` does.
        """
        tracker = self.tracker
        out = []
        with tracker.step_scope():
            for src, dst, value in items:
                if src == dst:
                    self._group((src,))
                    out.append(value)
                    continue
                self._group((src, dst))
                nbytes = payload_nbytes(value)
                cost = self._p2p_cost(nbytes)
                tracker.charge(src, category, cost.seconds, nbytes=0,
                               messages=cost.messages)
                tracker.charge(dst, category, cost.seconds, nbytes=nbytes,
                               messages=cost.messages)
                out.append(_readonly(value, "sendrecv_many"))
        return out

    def gather_rows_charges_sized(
        self, items: Sequence[Tuple[int, int, int]]
    ) -> list:
        """Flattened charge tuples for one ghost-row exchange.

        ``items`` holds ``(rank, recv_nbytes, nsources)`` triples: the
        exact bytes a rank *receives* (its distinct remote-neighbour
        rows -- the paper's ``r_i`` ghost rows times the dense row size)
        and the number of distinct source ranks it fetches them from.
        Accounting is receive-side, like :meth:`sendrecv`'s destination
        charge: modeled seconds are ``nsources * alpha + beta * nbytes``
        per rank (one message per source, concurrent within the step)
        and only received bytes hit the ledger -- so a ghost exchange's
        dcomm delta is exactly ``sum_i r_i * f * itemsize``, the
        quantity ``edgecut_P(A)`` bounds per process.
        """
        alpha = self.profile.alpha_for_span(self.world_size)
        beta = self.profile.beta_effective(self.world_size)
        flat = []
        for rank, nbytes, nsources in items:
            nbytes = int(nbytes)
            nsources = int(nsources)
            flat.append(
                (rank, nsources * alpha + beta * nbytes, nbytes,
                 nsources, 0)
            )
        return flat

    def gather_rows_data(
        self,
        pairs: Sequence[Tuple[int, int, np.ndarray]],
        blocks: Mapping[int, np.ndarray],
    ) -> list:
        """Data plane of a ghost-row exchange (no charge).

        ``pairs`` holds ``(src, dst, src_local_rows)`` transfers in one
        fixed global order; ``blocks`` maps each locally-held rank to
        its dense block rows.  Returns, per pair, the selected rows of
        ``src``'s block as a read-only array (``None`` for pairs whose
        destination is not local, on the multiprocess backend).
        """
        out = []
        for src, dst, idx in pairs:
            rows = blocks[src][idx]
            rows.flags.writeable = False
            out.append(rows)
        return out

    def gather_rows(
        self,
        pairs: Sequence[Tuple[int, int, np.ndarray]],
        blocks: Mapping[int, np.ndarray],
        row_nbytes: int,
        category: str = Category.DCOMM,
    ) -> list:
        """Charged ghost-row exchange: fetch selected remote rows.

        The variable-size primitive behind the 1D ``ghost`` variant
        (Section IV-A.8's partitioned training): each destination rank
        receives, from each source it names, exactly the rows listed --
        no full all-gather.  ``row_nbytes`` is the wire size of one
        dense row (``f * itemsize``).  Charges per destination are
        derived from the pair list (see
        :meth:`gather_rows_charges_sized`); callers with static
        structure precompute those charges once and replay them with
        ``charge_many`` + :meth:`gather_rows_data` instead.
        """
        totals: Dict[int, Tuple[int, int]] = {}
        for src, dst, idx in pairs:
            if src == dst:
                raise ValueError(
                    f"gather_rows pair ({src}, {dst}) is a self-send; own "
                    "rows are already local"
                )
            nbytes, nsources = totals.get(dst, (0, 0))
            totals[dst] = (nbytes + len(idx) * int(row_nbytes),
                           nsources + 1)
        self.tracker.charge_many(
            category,
            self.gather_rows_charges_sized(
                [(dst, nbytes, nsources)
                 for dst, (nbytes, nsources) in sorted(totals.items())]
            ),
        )
        return self.gather_rows_data(pairs, blocks)

    def allgather(
        self,
        group: Sequence[int],
        values: Mapping[int, Any],
        category: str = Category.DCOMM,
        materialize: bool = False,
    ) -> Dict[int, list]:
        """Every rank receives the list of all group contributions (in
        group order).  Payloads are shared read-only views by default;
        with ``materialize`` each rank gets private copies (except its
        own contribution)."""
        group = self._group(group)
        self._check_contributions(group, values)
        total = sum(payload_nbytes(values[r]) for r in group)
        cost = self._cost("ag", cm.allgather_cost, total, len(group))
        self._charge_group(group, category, cost)
        if materialize:
            return {
                r: [values[s] if s == r else _copy(values[s]) for s in group]
                for r in group
            }
        shared = [_readonly(values[s], "allgather") for s in group]
        return {r: list(shared) for r in group}

    def gather(
        self,
        group: Sequence[int],
        values: Mapping[int, Any],
        root: int,
        category: str = Category.DCOMM,
        materialize: bool = False,
    ) -> list:
        """Root receives the list of all contributions, in group order."""
        group = self._group(group)
        if root not in group:
            raise ValueError(f"root {root} not in group {group}")
        self._check_contributions(group, values)
        total = sum(payload_nbytes(values[r]) for r in group)
        cost = self._cost("ga", cm.gather_cost, total, len(group))
        self._charge_group(group, category, cost)
        if materialize:
            return [values[s] if s == root else _copy(values[s]) for s in group]
        return [_readonly(values[s], "gather") for s in group]

    def scatter(
        self,
        group: Sequence[int],
        shards: Sequence[Any],
        root: int,
        category: str = Category.DCOMM,
        materialize: bool = False,
    ) -> Dict[int, Any]:
        """Root distributes ``shards[i]`` to the i-th rank of ``group``."""
        group = self._group(group)
        if root not in group:
            raise ValueError(f"root {root} not in group {group}")
        if len(shards) != len(group):
            raise ValueError(
                f"got {len(shards)} shards for a group of {len(group)}"
            )
        total = sum(payload_nbytes(s) for s in shards)
        cost = self._cost("sc", cm.scatter_cost, total, len(group))
        self._charge_group(group, category, cost)
        if materialize:
            return {
                r: (shards[i] if r == root else _copy(shards[i]))
                for i, r in enumerate(group)
            }
        return {r: _readonly(shards[i], "scatter") for i, r in enumerate(group)}

    def allreduce(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        category: str = Category.DCOMM,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
        materialize: bool = False,
        donate_first: bool = False,
    ) -> Dict[int, np.ndarray]:
        """Elementwise reduction of same-shape arrays; all ranks get it.

        The default op is addition -- the semiring-overloadable aggregation
        the paper mentions (Combinatorial BLAS / CTF semiring interface).
        Every rank receives the *same* read-only reduced array (one
        buffer, not P copies); ``materialize=True`` hands each rank a
        private writable copy.  ``donate_first=True`` lets the reduction
        accumulate directly into the leading rank's contribution buffer
        (NCCL-style in-place all-reduce) -- only for callers that own
        that buffer exclusively and discard it afterwards.
        """
        group = self._group(group)
        self._check_contributions(group, values)
        acc = self._reduce_arrays(group, values, op,
                                  donate_first=donate_first)
        nbytes = int(acc.nbytes)
        cost = self._cost("ar", cm.allreduce_cost, nbytes, len(group))
        self._charge_group(group, category, cost)
        if materialize:
            return {r: acc.copy() for r in group}
        shared = _readonly(acc, "allreduce")
        return {r: shared for r in group}

    def reduce(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        root: int,
        category: str = Category.DCOMM,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    ) -> np.ndarray:
        """Reduction to a single root rank (root owns the fresh buffer)."""
        group = self._group(group)
        if root not in group:
            raise ValueError(f"root {root} not in group {group}")
        self._check_contributions(group, values)
        acc = self._reduce_arrays(group, values, op)
        cost = self._cost("re", cm.reduce_cost, int(acc.nbytes),
                          len(group))
        self._charge_group(group, category, cost)
        return acc

    def reduce_scatter(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        category: str = Category.DCOMM,
        axis: int = 0,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
        materialize: bool = False,
        bounds: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> Dict[int, np.ndarray]:
        """Reduce same-shape arrays, then scatter shards along ``axis``.

        The i-th rank of the group receives the i-th block of the reduced
        array split into ``len(group)`` near-equal blocks along ``axis``
        (``bounds`` overrides the split with explicit half-open ranges --
        partition-aware 1D layouts shard at their distribution's row
        ranges).  This is the operation the 1D backward pass uses to turn
        per-rank ``n x f`` outer-product partials into a
        block-row-distributed ``G^{l-1}`` (Section IV-A.3).

        The reduction runs in place over one freshly-owned contiguous
        accumulator and the returned shards are read-only views into it
        (zero shard copies); ``materialize=True`` returns private
        contiguous copies instead.
        """
        group = self._group(group)
        self._check_contributions(group, values)
        acc = self._reduce_arrays(group, values, op)
        return self._reduce_scatter_impl(
            group, acc, int(acc.nbytes), category, axis, materialize,
            bounds=bounds,
        )

    def _reduce_scatter_impl(
        self,
        group: Sequence[int],
        acc: np.ndarray,
        wire_nbytes: int,
        category: str,
        axis: int,
        materialize: bool,
        bounds: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> Dict[int, np.ndarray]:
        """Charge and shard a reduced array (dense/sparse charging paths
        share everything except the wire size).  ``bounds`` never touches
        the charges -- shard placement is layout, not volume."""
        cost = self._cost("rs", cm.reduce_scatter_cost, wire_nbytes,
                          len(group))
        self._charge_group(group, category, cost)
        if bounds is None:
            bounds = self.plan.split(acc.shape[axis], len(group))
        elif len(bounds) != len(group):
            raise ValueError(
                f"got {len(bounds)} shard bounds for a group of "
                f"{len(group)}"
            )
        shards = _axis_shards(acc, bounds, axis)
        if materialize:
            return {
                r: np.ascontiguousarray(shards[i])
                for i, r in enumerate(group)
            }
        return {r: _readonly(shards[i], "reduce_scatter") for i, r in enumerate(group)}

    def sparse_reduce_scatter(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        category: str = Category.DCOMM,
        axis: int = 0,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
        materialize: bool = False,
        bounds: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> Dict[int, np.ndarray]:
        """Reduce-scatter that ships only the nonzero rows of each input.

        The SparCML-style reduction of Section IV-A.3: when ``P`` exceeds
        the average degree, the per-rank outer-product partials
        ``A[:, rows_i] G_i`` are mostly empty rows, so each contribution
        travels as (nonzero rows + row indices) instead of the dense
        ``n x f`` buffer.  Numerics are **identical** to
        :meth:`reduce_scatter` (same accumulation, same shards); only the
        charged wire size changes -- "sparse routing changes bytes, never
        numerics".
        """
        group = self._group(group)
        self._check_contributions(group, values)
        acc = self._reduce_arrays(group, values, op)
        # Critical-path buffer size: the largest sparse contribution
        # (nonzero rows + one index per row) plays the role the uniform
        # dense buffer plays in reduce_scatter_cost.
        wire = 0
        for r in group:
            arr = self._require_dense(values[r], "sparse reduce-scatter")
            nz_rows = int(np.count_nonzero(arr.any(axis=1 - axis)))
            row_bytes = arr.nbytes // max(arr.shape[axis], 1)
            wire = max(wire, nz_rows * (row_bytes + INDEX_BYTES))
        return self._reduce_scatter_impl(
            group, acc, int(wire), category, axis, materialize,
            bounds=bounds,
        )

    def alltoall(
        self,
        group: Sequence[int],
        buckets: Mapping[int, Sequence[Any]],
        category: str = Category.DCOMM,
        materialize: bool = False,
    ) -> Dict[int, list]:
        """Personalised exchange: rank ``group[i]`` sends ``buckets[gi][j]``
        to ``group[j]``; each receiver gets contributions in sender order."""
        group = self._group(group)
        p = len(group)
        for r in group:
            if r not in buckets:
                raise KeyError(f"rank {r} missing from alltoall buckets")
            if len(buckets[r]) != p:
                raise ValueError(
                    f"rank {r} supplied {len(buckets[r])} buckets, expected {p}"
                )
        total = max(
            sum(payload_nbytes(b) for b in buckets[r]) for r in group
        )
        cost = self._cost("aa", cm.alltoall_cost, total, p)
        self._charge_group(group, category, cost)
        out: Dict[int, list] = {}
        for j, dst in enumerate(group):
            if materialize:
                out[dst] = [
                    buckets[src][j] if src == dst else _copy(buckets[src][j])
                    for src in group
                ]
            else:
                out[dst] = [_readonly(buckets[src][j], "alltoall") for src in group]
        return out

    # ------------------------------------------------------------------ #
    # data plane (no charging)
    #
    # The executed epochs split static collectives into a *charge replay*
    # (cached ``*_charges`` lists, identical on every backend) and a
    # *data movement* step.  The methods below are the data step: they
    # move payloads but never touch the ledger.  This base class is the
    # everything-is-local implementation; the multiprocess backend
    # (:mod:`repro.parallel.collectives`) overrides them to really cross
    # process boundaries through shared memory.  Contract: callers pass
    # contributions for the ranks they hold (all of them here) and
    # receive results for those same ranks.
    # ------------------------------------------------------------------ #
    def routed_broadcast_data(
        self, routes: Sequence[Tuple[Sequence[int], int]],
        blocks: Mapping[int, Any],
    ) -> list:
        """Received payload per ``(group, root)`` route (one shared
        read-only view each), charging nothing."""
        return [_readonly(blocks[root], "routed_broadcast") for _, root in routes]

    def routed_sendrecv_data(
        self, pairs: Sequence[Tuple[int, int]], payloads: Mapping[int, Any]
    ) -> list:
        """What each ``dst`` receives per ``(src, dst)`` pair (self-sends
        pass through), charging nothing."""
        return [
            payloads[src] if src == dst else _readonly(payloads[src], "routed_sendrecv")
            for src, dst in pairs
        ]

    def allgather_data(
        self, group: Sequence[int], values: Mapping[int, Any]
    ) -> Dict[int, list]:
        """:meth:`allgather`'s data movement only (no charge)."""
        group = self._group(group)
        self._check_contributions(group, values)
        shared = [_readonly(values[s], "allgather_data") for s in group]
        return {r: list(shared) for r in group}

    def allreduce_data(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
        donate_first: bool = False,
    ) -> Dict[int, np.ndarray]:
        """:meth:`allreduce`'s data movement only (no charge)."""
        group = self._group(group)
        self._check_contributions(group, values)
        acc = self._reduce_arrays(group, values, op,
                                  donate_first=donate_first)
        shared = _readonly(acc, "allreduce_data")
        return {r: shared for r in group}

    def reduce_scatter_data(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        axis: int = 0,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
        bounds: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> Dict[int, np.ndarray]:
        """:meth:`reduce_scatter`'s data movement only (no charge).

        The fold runs in group order into one freshly-owned accumulator
        and the returned shards are read-only views into it.
        """
        group = self._group(group)
        self._check_contributions(group, values)
        acc = self._reduce_arrays(group, values, op)
        acc.flags.writeable = False
        if bounds is None:
            bounds = self.plan.split(acc.shape[axis], len(group))
        shards = _axis_shards(acc, bounds, axis)
        return {r: shards[i] for i, r in enumerate(group)}

    def barrier(self, group: Sequence[int]) -> None:
        """Synchronise a group; charged as a zero-byte allreduce latency."""
        group = self._group(group)
        if len(group) <= 1:
            return
        alpha = self.profile.alpha_for_span(len(group))
        lat = 2 * alpha * max(1.0, np.log2(len(group)))
        self.tracker.charge_group(group, Category.MISC, lat, messages=1)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_contributions(group: Sequence[int], values: Mapping[int, Any]) -> None:
        missing = [r for r in group if r not in values]
        if missing:
            raise KeyError(f"missing contributions from ranks {missing}")

    def _reduce_arrays(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        op: Callable[[np.ndarray, np.ndarray], np.ndarray],
        donate_first: bool = False,
    ) -> np.ndarray:
        """Reduce the group's arrays into one freshly-owned accumulator.

        The accumulator is allocated once and ufunc ops accumulate into
        it in place (``op(acc, arr, out=acc)``) -- the historical
        ``acc = op(acc, arr)`` chain allocated a fresh array per rank.
        The result buffer is fresh (never a shared workspace) because
        reduction results escape the call: gradients from consecutive
        layers may share a shape, and handing both the same scratch
        buffer would corrupt the earlier one.  ``donate_first`` callers
        assert exclusive ownership of the leading contribution, letting
        it serve as the accumulator directly.
        """
        prof = _profile.ACTIVE
        t0 = prof.clock() if prof is not None else 0.0
        first = self._require_dense(values[group[0]], "reduction")
        if donate_first and first.flags.writeable:
            acc = first
        else:
            acc = first.copy()
        in_place = isinstance(op, np.ufunc)
        for r in group[1:]:
            arr = self._require_dense(values[r], "reduction")
            if arr.shape != acc.shape:
                raise ValueError(
                    f"reduction shape mismatch: {arr.shape} vs {acc.shape}"
                )
            if in_place:
                op(acc, arr, out=acc)
            else:
                acc = op(acc, arr)
        if prof is not None:
            folds = max(0, len(group) - 1)
            prof.add("reduce.fold", prof.clock() - t0,
                     folds * acc.size,
                     (folds + 1) * acc.nbytes + acc.nbytes)
        return acc
