"""Communication plans: precomputed groups, splits, and reusable buffers.

The executed runtime is bulk-synchronous and *static*: every epoch of a
distributed algorithm walks the same collectives over the same groups
with the same payload shapes.  Before this layer existed each collective
call re-validated its group, re-derived ``array_split`` boundaries, and
re-allocated scratch arrays -- pure Python overhead charged to wall clock
that the alpha-beta cost model never sees.  A :class:`CommPlan` caches
those invariants once (typically at ``DistAlgorithm.setup``):

* **groups** -- validated rank tuples, interned so repeat calls are a
  dict hit instead of a per-rank range check;
* **splits** -- near-equal contiguous ``(lo, hi)`` boundaries (the
  ``numpy.array_split`` convention shared by every distribution helper);
* **workspaces** -- reusable scratch arrays keyed by ``(key, shape,
  dtype)`` for buffers whose lifetime is provably call-local (gather
  targets, SUMMA accumulators hoisted per layer).

Plans only cache *structure*; they never touch the ledger, so the
charged bytes and modeled seconds are byte-for-byte identical with and
without a plan (asserted in ``tests/test_comm_plan.py`` against the
pre-plan ledger constants and the PR 2 schedule oracle).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.comm.mesh import ProcessMesh, validate_group

__all__ = ["CommPlan"]


class CommPlan:
    """Cache of communication-structure invariants for one runtime.

    Cheap to construct; every cache fills lazily on first use and is
    keyed so that repeated epochs hit the same entries.  ``hits`` /
    ``misses`` counters expose cache effectiveness to tests and
    benchmarks.
    """

    __slots__ = ("world_size", "mesh", "_groups", "_splits", "_workspaces",
                 "_memos", "hits", "misses")

    def __init__(self, world_size: int, mesh: Optional[ProcessMesh] = None):
        if world_size < 1:
            raise ValueError(f"plan needs >= 1 rank, got {world_size}")
        self.world_size = world_size
        self.mesh = mesh
        self._groups: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        self._splits: Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]] = {}
        self._workspaces: Dict[tuple, np.ndarray] = {}
        self._memos: Dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # groups
    # ------------------------------------------------------------------ #
    def group(self, ranks: Iterable[int]) -> Tuple[int, ...]:
        """Validated rank tuple, interned across calls.

        First use pays the full :func:`~repro.comm.mesh.validate_group`
        check; every later call with the same membership is a dict hit.
        """
        key = ranks if type(ranks) is tuple else tuple(ranks)
        cached = self._groups.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        validated = validate_group(key, self.world_size)
        self._groups[validated] = validated
        return validated

    # ------------------------------------------------------------------ #
    # splits
    # ------------------------------------------------------------------ #
    def split(self, n: int, parts: int) -> Tuple[Tuple[int, int], ...]:
        """``parts`` near-equal contiguous ``(lo, hi)`` ranges over ``n``.

        Matches ``numpy.array_split`` (the first ``n % parts`` ranges get
        the extra element), computed once per ``(n, parts)``.
        """
        key = (int(n), int(parts))
        cached = self._splits.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        n, parts = key
        if parts < 1:
            raise ValueError(f"need >= 1 part, got {parts}")
        if n < 0:
            raise ValueError(f"negative length {n}")
        base, extra = divmod(n, parts)
        ranges = []
        start = 0
        for i in range(parts):
            stop = start + base + (1 if i < extra else 0)
            ranges.append((start, stop))
            start = stop
        cached = tuple(ranges)
        self._splits[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # workspaces
    # ------------------------------------------------------------------ #
    def workspace(self, key: Any, shape: Tuple[int, ...],
                  dtype: Any = np.float64) -> np.ndarray:
        """A reusable scratch array for a call-local buffer.

        The same ``(key, shape, dtype)`` returns the same array on every
        call -- contents are whatever the previous use left behind, so
        callers must fully overwrite it.  Only use for buffers that are
        consumed before the next request for the same key; buffers that
        escape a call (collective results, cached layer state) must own
        fresh storage instead.
        """
        wkey = (key, tuple(int(s) for s in shape), np.dtype(dtype))
        buf = self._workspaces.get(wkey)
        if buf is not None:
            self.hits += 1
            return buf
        self.misses += 1
        buf = np.empty(wkey[1], dtype=wkey[2])
        self._workspaces[wkey] = buf
        return buf

    # ------------------------------------------------------------------ #
    # structure memos
    # ------------------------------------------------------------------ #
    #: Memo capacity: unlike groups/splits (tiny, bounded by mesh
    #: structure), memo values can hold O(nnz) arrays and their keys may
    #: reference whole operands -- a long-lived runtime cycling through
    #: algorithm instances must not accumulate them without bound.
    MEMO_CAP = 64

    def memo(self, key: Any, builder: Callable[[], Any]) -> Any:
        """An arbitrary derived *structure*, built once per key.

        For communication structures that do not fit the group/split
        molds -- e.g. the ghost-row exchange's (src, dst, rows) route
        list, derived from sparse block structure at setup and replayed
        every epoch.  ``builder()`` runs on the first request; the result
        must be treated as immutable by every consumer (it is shared
        across epochs and, on the multiprocess backend, re-derived
        identically in every worker).  Never touches the ledger.
        Entries are evicted FIFO beyond :data:`MEMO_CAP`, so keying on
        operand objects cannot pin unbounded memory.
        """
        cached = self._memos.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        value = builder()
        while len(self._memos) >= self.MEMO_CAP:
            self._memos.pop(next(iter(self._memos)))
        self._memos[key] = value
        return value

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def cached_entries(self) -> int:
        return (len(self._groups) + len(self._splits)
                + len(self._workspaces) + len(self._memos))

    def stats(self) -> Dict[str, int]:
        """Cache effectiveness counters (for tests and benchmarks)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "groups": len(self._groups),
            "splits": len(self._splits),
            "workspaces": len(self._workspaces),
            "memos": len(self._memos),
        }

    def clear(self) -> None:
        """Drop every cached entry (e.g. between unrelated runs)."""
        self._groups.clear()
        self._splits.clear()
        self._workspaces.clear()
        self._memos.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CommPlan(world_size={self.world_size}, "
                f"entries={self.cached_entries}, hits={self.hits}, "
                f"misses={self.misses})")
