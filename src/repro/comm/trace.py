"""Step-level tracing of a virtual distributed run.

The tracker aggregates; the tracer *itemises*.  Wrapping a
:class:`~repro.comm.tracker.CommTracker` with :class:`StepTracer` records
one event per bulk-synchronous step -- the per-category seconds of the
slowest rank, which rank it was, and the step's total -- so a run can be
profiled the way the paper profiles its Figure 3 bars, but at step
granularity:

* ``top_steps(k)`` -- where did the epoch actually go?  (e.g. "the 8
  SUMMA dense broadcasts of layer 0 dominate");
* ``straggler_counts()`` -- which rank sets the pace how often (the load
  -balance diagnostic behind the random-permutation ablation);
* ``timeline()`` -- a text Gantt of the epoch.

Tracing is strictly additive: it observes ``step_scope`` exits without
changing any charge, so traced and untraced runs are identical in every
ledger number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.comm.tracker import CommTracker

__all__ = ["StepEvent", "StepTracer"]


@dataclass(frozen=True)
class StepEvent:
    """One bulk-synchronous step, as experienced by the slowest rank.

    ``slowest_rank`` is ``-1`` for balanced steps (the slowest rank is
    within 1 % of the mean pace) -- collectives charge every participant
    identically, so pure communication steps are balanced by
    construction, and a single-rank run is always balanced (there is no
    one to straggle against); genuine stragglers come from skewed local
    compute.
    """

    index: int
    slowest_rank: int
    seconds_by_category: Dict[str, float]

    @property
    def balanced(self) -> bool:
        return self.slowest_rank < 0

    @property
    def seconds(self) -> float:
        return sum(self.seconds_by_category.values())

    @property
    def dominant_category(self) -> str:
        if not self.seconds_by_category:
            return "idle"
        return max(
            self.seconds_by_category, key=lambda c: self.seconds_by_category[c]
        )


class StepTracer:
    """Record per-step events by intercepting a tracker's step scopes."""

    def __init__(self, tracker: CommTracker):
        self.tracker = tracker
        self.events: List[StepEvent] = []
        self._original_scope = tracker.step_scope
        self._installed = False

    # ------------------------------------------------------------------ #
    def install(self) -> "StepTracer":
        """Start recording (idempotent)."""
        if self._installed:
            return self
        tracker = self.tracker
        tracer = self

        import contextlib

        # Wrap by snapshotting wall clocks and per-rank seconds around the
        # original scope: tracing never alters any charge.
        @contextlib.contextmanager
        def traced_scope_robust():
            if tracker._step is not None:
                with tracer._original_scope():
                    yield
                return
            wall_before = dict(tracker.wall)
            rank_secs_before = [
                {c: t.seconds for c, t in tracker.per_rank[r].items()}
                for r in range(tracker.nranks)
            ]
            try:
                with tracer._original_scope():
                    yield
            finally:
                tracer._capture(wall_before, rank_secs_before)

        tracker.step_scope = traced_scope_robust  # type: ignore[assignment]
        self._installed = True
        return self

    def _capture(self, wall_before, rank_secs_before) -> None:
        """Record the step event for charges since the snapshots.

        Runs in a ``finally`` so an exception mid-step cannot desynchronise
        the trace from the ledger: whatever was charged before the failure
        is itemised exactly like a completed step.
        """
        tracker = self.tracker
        delta = {
            c: tracker.wall.get(c, 0.0) - wall_before.get(c, 0.0)
            for c in sorted(set(tracker.wall) | set(wall_before))
        }
        delta = {c: v for c, v in delta.items() if v > 0}
        if not delta:
            return
        # Identify the slowest rank (largest per-rank seconds delta);
        # report -1 when the step is balanced to fp noise.
        totals = []
        for r in range(tracker.nranks):
            before = rank_secs_before[r]
            totals.append(sum(
                t.seconds - before.get(c, 0.0)
                for c, t in tracker.per_rank[r].items()
            ))
        worst = max(totals)
        slowest = totals.index(worst)
        mean = sum(totals) / len(totals)
        # Balanced: the slowest rank is within 1% of the mean pace
        # (collectives charge every participant identically, so pure
        # communication steps land here by construction).  At nranks == 1
        # worst == mean always, so a single rank -- with no one to
        # straggle against -- reports the sentinel too.
        if worst <= mean * 1.01:
            slowest = -1
        self.events.append(
            StepEvent(
                index=len(self.events),
                slowest_rank=slowest,
                seconds_by_category=delta,
            )
        )

    def uninstall(self) -> None:
        if self._installed:
            self.tracker.step_scope = self._original_scope  # type: ignore
            self._installed = False

    def __enter__(self) -> "StepTracer":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------ #
    # reports
    # ------------------------------------------------------------------ #
    def total_seconds(self) -> float:
        return sum(e.seconds for e in self.events)

    def top_steps(self, k: int = 10) -> List[StepEvent]:
        """The k most expensive steps, slowest first."""
        return sorted(self.events, key=lambda e: -e.seconds)[:k]

    def straggler_counts(self) -> Dict[int, int]:
        """How often each rank was the step's slowest -- load balance.

        Key ``-1`` counts balanced steps (no straggler).
        """
        out: Dict[int, int] = {}
        for e in self.events:
            out[e.slowest_rank] = out.get(e.slowest_rank, 0) + 1
        return out

    def seconds_by_category(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for e in self.events:
            for c, s in e.seconds_by_category.items():
                out[c] = out.get(c, 0.0) + s
        return out

    def timeline(self, width: int = 60, max_rows: int = 40) -> str:
        """A text Gantt chart of the recorded steps.

        An empty run renders as the ``(no steps recorded)`` sentinel; a
        single step fills the full bar width against itself.  ``width``
        and ``max_rows`` must be positive -- a silent empty chart would
        read as "nothing happened" when steps were in fact recorded.
        """
        if width < 1:
            raise ValueError(f"timeline width must be >= 1, got {width}")
        if max_rows < 1:
            raise ValueError(
                f"timeline max_rows must be >= 1, got {max_rows}"
            )
        if not self.events:
            return "(no steps recorded)"
        total = self.total_seconds()
        count = len(self.events)
        lines = [f"timeline: {count} step{'s' if count != 1 else ''}, "
                 f"{total * 1e3:.3f} ms total"]
        shown = self.events[:max_rows]
        peak = max(e.seconds for e in self.events) or 1.0
        for e in shown:
            bar = "#" * max(1, int(width * e.seconds / peak))
            lines.append(
                f"  step {e.index:4d} [{e.dominant_category:6s}] "
                f"{e.seconds * 1e6:9.1f} us |{bar}"
            )
        if count > max_rows:
            lines.append(f"  ... {count - max_rows} more steps")
        return "\n".join(lines)
