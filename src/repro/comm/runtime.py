"""The distributed runtime surface: P ranks, a mesh, collectives, a ledger.

Two execution backends implement one :class:`Runtime` protocol:

* :class:`VirtualRuntime` (here) -- the single-process simulator: "parallel"
  steps are executed rank-by-rank in rank order, which makes every
  distributed algorithm a reproducible, debuggable program whose numerical
  output can be asserted against the serial reference;
* :class:`repro.parallel.runtime.WorkerRuntime` -- the rank-local view one
  OS process holds inside the true multiprocess backend
  (:mod:`repro.parallel`), where collectives really cross process
  boundaries through shared memory.

Both bundle:

* a :class:`~repro.comm.mesh.ProcessMesh` (1D / 2D / 3D logical topology);
* a :class:`~repro.comm.collectives.Collectives` instance that really
  moves per-rank numpy blocks while charging alpha-beta costs;
* a :class:`~repro.comm.tracker.CommTracker` ledger;
* helpers for charging **local compute** (SpMM / GEMM / elementwise) using
  the machine profile's rates, so the Fig. 2 / Fig. 3 reproductions can
  report a full modeled epoch time.

The contract that keeps the two backends interchangeable: the *ledger* is
global and deterministic (every backend charges every rank of every
collective and kernel, from structure alone), while the *data* is local
(``local_ranks`` names the ranks whose buffers this runtime instance may
touch).  The virtual runtime is the degenerate case where every rank is
local.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.comm.collectives import Collectives
from repro.comm.mesh import Mesh1D, Mesh2D, Mesh3D, ProcessMesh
from repro.comm.plan import CommPlan
from repro.comm.tracker import Category, CommTracker
from repro.config import MachineProfile, SUMMIT

__all__ = ["Runtime", "RuntimeBase", "VirtualRuntime", "as_runtime"]


class Runtime:
    """The protocol every execution backend's runtime satisfies.

    Documented as a plain base class (duck typing is how the algorithms
    consume it); the attributes below are the full surface
    :class:`repro.dist.base.DistAlgorithm` relies on:

    ``mesh``          the :class:`ProcessMesh` topology (``size`` ranks);
    ``profile``       the :class:`MachineProfile` priced by the ledger;
    ``tracker``       the full-world :class:`CommTracker` ledger;
    ``plan``          the :class:`CommPlan` structure cache;
    ``coll``          the :class:`Collectives` implementation;
    ``local_ranks``   the ranks whose data lives in this process;
    ``is_local``      membership test for ``local_ranks``;
    ``gather_blocks`` uncharged assembly of a ``{rank: block}`` dict
                      across processes (identity when everything is
                      local) -- the verification read-out path;
    ``charge_*``      local-kernel charging helpers.
    """


class RuntimeBase(Runtime):
    """Shared implementation: ledger helpers + the local-rank contract.

    Subclasses populate ``mesh``/``profile``/``tracker``/``plan``/``coll``
    (see :meth:`_init_core`) and override the locality hooks when ranks
    are spread over several processes.
    """

    #: human-readable backend name (``describe`` embeds it).
    backend = "virtual"

    def _init_core(self, mesh: ProcessMesh,
                   profile: Optional[MachineProfile]) -> None:
        self.mesh = mesh
        self.profile = profile if profile is not None else SUMMIT
        self.tracker = CommTracker(mesh.size)
        self.plan = CommPlan(mesh.size, mesh)
        self._local_ranks: Tuple[int, ...] = tuple(range(mesh.size))

    # ------------------------------------------------------------------ #
    # locality
    # ------------------------------------------------------------------ #
    @property
    def local_ranks(self) -> Tuple[int, ...]:
        """The ranks whose buffers live in this process (ascending)."""
        return self._local_ranks

    def is_local(self, rank: int) -> bool:
        return True

    def gather_blocks(self, blocks: Dict[int, Any]) -> Dict[int, Any]:
        """Assemble a per-rank block dict across processes (uncharged).

        The verification/read-out path (``_assemble``,
        ``gather_log_probs``): a driver-side convenience a real system
        would pay for once at the end of a run, so it never touches the
        ledger.  With every rank local this is the identity.
        """
        return blocks

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return self.mesh.size

    @property
    def mesh2d(self) -> Mesh2D:
        """The mesh, checked to be 2D (for SUMMA code paths)."""
        if not isinstance(self.mesh, Mesh2D):
            raise TypeError(f"expected a 2D mesh, have {type(self.mesh).__name__}")
        return self.mesh

    @property
    def mesh3d(self) -> Mesh3D:
        if not isinstance(self.mesh, Mesh3D):
            raise TypeError(f"expected a 3D mesh, have {type(self.mesh).__name__}")
        return self.mesh

    def reset_stats(self) -> None:
        """Clear the ledger (e.g. between warm-up and measured epochs)."""
        self.tracker.reset()

    # ------------------------------------------------------------------ #
    # local-compute charging
    # ------------------------------------------------------------------ #
    def charge_spmm(self, rank: int, flops: int, seconds: float) -> None:
        """Charge a local SpMM kernel (time from the SpMM perf model)."""
        self.tracker.charge(rank, Category.SPMM, seconds, flops=int(flops))

    def charge_gemm(self, rank: int, flops: int) -> None:
        """Charge a local dense matmul at the profile's GEMM rate.

        The paper reports local GEMM under "misc" ("Local dense matrix
        multiply (GEMM) calls are inexpensive and thus reported under
        misc", Fig. 3 caption), and we follow that attribution.
        """
        seconds = flops / self.profile.gemm_flops + self.profile.kernel_launch_overhead
        self.tracker.charge(rank, Category.MISC, seconds, flops=int(flops))

    def charge_elementwise(self, rank: int, nbytes_touched: int) -> None:
        """Charge a memory-bound elementwise kernel (activation, mask...)."""
        seconds = (
            nbytes_touched / self.profile.memory_bandwidth
            + self.profile.kernel_launch_overhead
        )
        self.tracker.charge(rank, Category.MISC, seconds)

    def charge_transpose(self, rank: int, nbytes: int, messages: int = 1) -> None:
        """Charge transpose work/traffic under the 'trpose' category."""
        seconds = self.profile.alpha + self.profile.beta * nbytes
        self.tracker.charge(
            rank, Category.TRPOSE, seconds, nbytes=nbytes, messages=messages
        )

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def epoch_breakdown(self) -> dict:
        """Per-category modeled wall seconds (one Fig. 3 stacked bar)."""
        return self.tracker.breakdown()

    def modeled_seconds(self) -> float:
        return self.tracker.wall_seconds()

    def _topology(self) -> str:
        mesh = self.mesh
        if isinstance(mesh, Mesh2D):
            return f"2D {mesh.rows}x{mesh.cols}"
        if isinstance(mesh, Mesh3D):
            return f"3D {mesh.p1}x{mesh.p2}x{mesh.p3}"
        return f"1D chain of {mesh.size}"

    def describe(self) -> str:
        """One-line human description of the machine."""
        return (f"{type(self).__name__}({self._topology()}, "
                f"profile={self.profile.name})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.describe()


class VirtualRuntime(RuntimeBase):
    """A simulated distributed machine with ``mesh.size`` ranks.

    Typical construction for the paper's configurations::

        rt = VirtualRuntime.make_1d(P)          # Algorithm 1
        rt = VirtualRuntime.make_2d(P)          # Algorithm 2 (square grid)
        rt = VirtualRuntime.make_2d_rect(Pr, Pc)
        rt = VirtualRuntime.make_3d(P)          # Split-3D-SpMM
    """

    def __init__(self, mesh: ProcessMesh, profile: Optional[MachineProfile] = None):
        self._init_core(mesh, profile)
        self.coll = Collectives(self.profile, self.tracker, plan=self.plan)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def make_1d(cls, p: int, profile: Optional[MachineProfile] = None
                ) -> "VirtualRuntime":
        return cls(Mesh1D(size=p), profile)

    @classmethod
    def make_2d(cls, p: int, profile: Optional[MachineProfile] = None
                ) -> "VirtualRuntime":
        return cls(Mesh2D.square(p), profile)

    @classmethod
    def make_2d_rect(cls, rows: int, cols: int,
                     profile: Optional[MachineProfile] = None) -> "VirtualRuntime":
        return cls(Mesh2D.rectangular(rows, cols), profile)

    @classmethod
    def make_3d(cls, p: int, profile: Optional[MachineProfile] = None
                ) -> "VirtualRuntime":
        return cls(Mesh3D.cubic(p), profile)


def as_runtime(rt_or_p: Union[VirtualRuntime, int],
               topology: str = "1d",
               profile: Optional[MachineProfile] = None) -> VirtualRuntime:
    """Coerce an int (rank count) or runtime into a runtime.

    Convenience for APIs that accept either ``P`` or a pre-built runtime.
    """
    if isinstance(rt_or_p, VirtualRuntime):
        return rt_or_p
    p = int(rt_or_p)
    if topology == "1d":
        return VirtualRuntime.make_1d(p, profile)
    if topology == "2d":
        return VirtualRuntime.make_2d(p, profile)
    if topology == "3d":
        return VirtualRuntime.make_3d(p, profile)
    raise ValueError(f"unknown topology {topology!r}")
