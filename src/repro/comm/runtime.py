"""The virtual distributed runtime: P ranks, a mesh, collectives, a ledger.

A :class:`VirtualRuntime` stands in for a ``torch.distributed`` world with
an NCCL backend running on a GPU cluster.  It bundles:

* a :class:`~repro.comm.mesh.ProcessMesh` (1D / 2D / 3D logical topology);
* a :class:`~repro.comm.collectives.Collectives` instance that really
  moves per-rank numpy blocks while charging alpha-beta costs;
* a :class:`~repro.comm.tracker.CommTracker` ledger;
* helpers for charging **local compute** (SpMM / GEMM / elementwise) using
  the machine profile's rates, so the Fig. 2 / Fig. 3 reproductions can
  report a full modeled epoch time.

The runtime is deliberately single-process and deterministic: "parallel"
steps are executed rank-by-rank in rank order, which makes every
distributed algorithm a reproducible, debuggable program whose numerical
output can be asserted against the serial reference.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.comm.collectives import Collectives
from repro.comm.mesh import Mesh1D, Mesh2D, Mesh3D, ProcessMesh
from repro.comm.plan import CommPlan
from repro.comm.tracker import Category, CommTracker
from repro.config import MachineProfile, SUMMIT

__all__ = ["VirtualRuntime"]


class VirtualRuntime:
    """A simulated distributed machine with ``mesh.size`` ranks.

    Typical construction for the paper's configurations::

        rt = VirtualRuntime.make_1d(P)          # Algorithm 1
        rt = VirtualRuntime.make_2d(P)          # Algorithm 2 (square grid)
        rt = VirtualRuntime.make_2d_rect(Pr, Pc)
        rt = VirtualRuntime.make_3d(P)          # Split-3D-SpMM
    """

    def __init__(self, mesh: ProcessMesh, profile: Optional[MachineProfile] = None):
        self.mesh = mesh
        self.profile = profile if profile is not None else SUMMIT
        self.tracker = CommTracker(mesh.size)
        self.plan = CommPlan(mesh.size, mesh)
        self.coll = Collectives(self.profile, self.tracker, plan=self.plan)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def make_1d(cls, p: int, profile: Optional[MachineProfile] = None
                ) -> "VirtualRuntime":
        return cls(Mesh1D(size=p), profile)

    @classmethod
    def make_2d(cls, p: int, profile: Optional[MachineProfile] = None
                ) -> "VirtualRuntime":
        return cls(Mesh2D.square(p), profile)

    @classmethod
    def make_2d_rect(cls, rows: int, cols: int,
                     profile: Optional[MachineProfile] = None) -> "VirtualRuntime":
        return cls(Mesh2D.rectangular(rows, cols), profile)

    @classmethod
    def make_3d(cls, p: int, profile: Optional[MachineProfile] = None
                ) -> "VirtualRuntime":
        return cls(Mesh3D.cubic(p), profile)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return self.mesh.size

    @property
    def mesh2d(self) -> Mesh2D:
        """The mesh, checked to be 2D (for SUMMA code paths)."""
        if not isinstance(self.mesh, Mesh2D):
            raise TypeError(f"expected a 2D mesh, have {type(self.mesh).__name__}")
        return self.mesh

    @property
    def mesh3d(self) -> Mesh3D:
        if not isinstance(self.mesh, Mesh3D):
            raise TypeError(f"expected a 3D mesh, have {type(self.mesh).__name__}")
        return self.mesh

    def reset_stats(self) -> None:
        """Clear the ledger (e.g. between warm-up and measured epochs)."""
        self.tracker.reset()

    # ------------------------------------------------------------------ #
    # local-compute charging
    # ------------------------------------------------------------------ #
    def charge_spmm(self, rank: int, flops: int, seconds: float) -> None:
        """Charge a local SpMM kernel (time from the SpMM perf model)."""
        self.tracker.charge(rank, Category.SPMM, seconds, flops=int(flops))

    def charge_gemm(self, rank: int, flops: int) -> None:
        """Charge a local dense matmul at the profile's GEMM rate.

        The paper reports local GEMM under "misc" ("Local dense matrix
        multiply (GEMM) calls are inexpensive and thus reported under
        misc", Fig. 3 caption), and we follow that attribution.
        """
        seconds = flops / self.profile.gemm_flops + self.profile.kernel_launch_overhead
        self.tracker.charge(rank, Category.MISC, seconds, flops=int(flops))

    def charge_elementwise(self, rank: int, nbytes_touched: int) -> None:
        """Charge a memory-bound elementwise kernel (activation, mask...)."""
        seconds = (
            nbytes_touched / self.profile.memory_bandwidth
            + self.profile.kernel_launch_overhead
        )
        self.tracker.charge(rank, Category.MISC, seconds)

    def charge_transpose(self, rank: int, nbytes: int, messages: int = 1) -> None:
        """Charge transpose work/traffic under the 'trpose' category."""
        seconds = self.profile.alpha + self.profile.beta * nbytes
        self.tracker.charge(
            rank, Category.TRPOSE, seconds, nbytes=nbytes, messages=messages
        )

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def epoch_breakdown(self) -> dict:
        """Per-category modeled wall seconds (one Fig. 3 stacked bar)."""
        return self.tracker.breakdown()

    def modeled_seconds(self) -> float:
        return self.tracker.wall_seconds()

    def describe(self) -> str:
        """One-line human description of the virtual machine."""
        mesh = self.mesh
        if isinstance(mesh, Mesh2D):
            topo = f"2D {mesh.rows}x{mesh.cols}"
        elif isinstance(mesh, Mesh3D):
            topo = f"3D {mesh.p1}x{mesh.p2}x{mesh.p3}"
        else:
            topo = f"1D chain of {mesh.size}"
        return f"VirtualRuntime({topo}, profile={self.profile.name})"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.describe()


def as_runtime(rt_or_p: Union[VirtualRuntime, int],
               topology: str = "1d",
               profile: Optional[MachineProfile] = None) -> VirtualRuntime:
    """Coerce an int (rank count) or runtime into a runtime.

    Convenience for APIs that accept either ``P`` or a pre-built runtime.
    """
    if isinstance(rt_or_p, VirtualRuntime):
        return rt_or_p
    p = int(rt_or_p)
    if topology == "1d":
        return VirtualRuntime.make_1d(p, profile)
    if topology == "2d":
        return VirtualRuntime.make_2d(p, profile)
    if topology == "3d":
        return VirtualRuntime.make_3d(p, profile)
    raise ValueError(f"unknown topology {topology!r}")
