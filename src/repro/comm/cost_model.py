"""Alpha-beta cost formulas for point-to-point and collective operations.

The paper analyses every algorithm in the alpha-beta model (Section III-A):
sending a message of ``n`` words costs ``alpha + beta * n``.  Collectives
follow the classical costs from Chan et al. [11] and Thakur et al. [28],
which the paper cites for its ``alpha lg P + beta n f (P-1)/P`` bounds:

===================  =============================================
collective            cost charged (p ranks, m bytes per rank)
===================  =============================================
broadcast             ``lg p * alpha + beta * m``            (pipelined tree;
                      SUMMA-style broadcasts drop the ``lg p`` latency factor
                      via pipelining, which we expose as ``pipelined=True``)
reduce                ``lg p * alpha + beta * m`` (+ gamma compute, ignored)
all-gather            ``lg p * alpha + beta * m * (p-1)/p``  (ring/recursive
                      doubling; ``m`` = total result bytes)
reduce-scatter        ``lg p * alpha + beta * m * (p-1)/p``  (recursive halving)
all-reduce            ``2 lg p * alpha + 2 beta * m * (p-1)/p``
                      (reduce-scatter + all-gather)
all-to-all            ``(p-1) * alpha + beta * m * (p-1)/p`` (pairwise)
===================  =============================================

These functions return **modeled seconds**; the actual data movement is
performed (and byte counts recorded exactly) by
:mod:`repro.comm.collectives`.  Keeping the two separate means the measured
byte counts validate the analysis even if one disagrees with the time model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.config import MachineProfile

__all__ = [
    "CollectiveCost",
    "p2p_cost",
    "broadcast_cost",
    "reduce_cost",
    "allgather_cost",
    "reduce_scatter_cost",
    "allreduce_cost",
    "alltoall_cost",
    "gather_cost",
    "scatter_cost",
]


@dataclass(frozen=True)
class CollectiveCost:
    """Cost of one collective: modeled time plus volume accounting.

    ``bytes_on_wire`` is the total traffic the operation puts on the
    network (summed over ranks); ``bytes_critical`` is the volume on the
    critical path of a single rank -- this is the quantity the paper's
    per-process ``T_comm`` formulas bound.  ``messages`` counts messages on
    the critical path (the latency multiplier).
    """

    seconds: float
    bytes_on_wire: int
    bytes_critical: int
    messages: int

    def __add__(self, other: "CollectiveCost") -> "CollectiveCost":
        return CollectiveCost(
            self.seconds + other.seconds,
            self.bytes_on_wire + other.bytes_on_wire,
            self.bytes_critical + other.bytes_critical,
            self.messages + other.messages,
        )


def _lg(p: int) -> float:
    """``ceil(log2 p)`` with ``lg 1 = 0`` -- the latency multiplier."""
    if p <= 1:
        return 0.0
    return float(math.ceil(math.log2(p)))


def p2p_cost(profile: MachineProfile, nbytes: int,
             span: Optional[int] = None) -> CollectiveCost:
    """One point-to-point message of ``nbytes``.

    ``span`` is the physical spread of the communicating job (usually the
    world size); it selects the bandwidth tier.  Two ranks of a 64-rank
    job talk over the inter-node network, not NVLink.
    """
    if nbytes < 0:
        raise ValueError(f"negative message size: {nbytes}")
    span = 2 if span is None else span
    alpha = profile.alpha_for_span(span)
    beta = profile.beta_effective(span)
    return CollectiveCost(alpha + beta * nbytes, nbytes, nbytes, 1)


def broadcast_cost(
    profile: MachineProfile, nbytes: int, nranks: int, pipelined: bool = False,
    span: Optional[int] = None,
) -> CollectiveCost:
    """Broadcast ``nbytes`` from one root to ``nranks`` ranks.

    ``pipelined=True`` models the SUMMA-style broadcast the paper invokes in
    Section IV-C ("high-level algorithms such as SUMMA can avoid the lg P
    factor in the latency term through pipelining"): latency is charged as a
    single alpha and bandwidth once.
    """
    if nranks <= 1 or nbytes == 0:
        return CollectiveCost(0.0, 0, 0, 0)
    span = nranks if span is None else max(span, nranks)
    alpha = profile.alpha_for_span(span)
    beta = profile.beta_effective(span)
    lat_factor = 1.0 if pipelined else _lg(nranks)
    seconds = lat_factor * alpha + beta * nbytes
    wire = nbytes * (nranks - 1)
    return CollectiveCost(seconds, wire, nbytes, max(1, int(lat_factor)))


def reduce_cost(profile: MachineProfile, nbytes: int, nranks: int,
                span: Optional[int] = None) -> CollectiveCost:
    """Tree reduction of per-rank buffers of ``nbytes`` down to one root."""
    if nranks <= 1 or nbytes == 0:
        return CollectiveCost(0.0, 0, 0, 0)
    span = nranks if span is None else max(span, nranks)
    alpha = profile.alpha_for_span(span)
    beta = profile.beta_effective(span)
    seconds = _lg(nranks) * alpha + beta * nbytes
    wire = nbytes * (nranks - 1)
    return CollectiveCost(seconds, wire, nbytes, int(_lg(nranks)))


def allgather_cost(
    profile: MachineProfile, total_bytes: int, nranks: int,
    span: Optional[int] = None,
) -> CollectiveCost:
    """All-gather where the concatenated result has ``total_bytes``.

    Ring/recursive-doubling bandwidth term ``beta * m * (p-1)/p`` from
    Chan et al., which the paper rounds up to ``beta * m``.
    """
    if nranks <= 1 or total_bytes == 0:
        return CollectiveCost(0.0, 0, 0, 0)
    span = nranks if span is None else max(span, nranks)
    alpha = profile.alpha_for_span(span)
    beta = profile.beta_effective(span)
    moved = total_bytes * (nranks - 1) / nranks
    seconds = _lg(nranks) * alpha + beta * moved
    wire = int(moved * nranks)
    return CollectiveCost(seconds, wire, int(moved), int(_lg(nranks)))


def reduce_scatter_cost(
    profile: MachineProfile, total_bytes: int, nranks: int,
    span: Optional[int] = None,
) -> CollectiveCost:
    """Reduce-scatter of per-rank buffers of ``total_bytes`` each.

    Each rank ends with a reduced ``total_bytes / nranks`` shard; recursive
    halving moves ``beta * m * (p-1)/p`` per rank -- exactly the
    ``beta n f (P-1)/P`` term in the paper's 1D backpropagation analysis
    (Section IV-A.3).
    """
    if nranks <= 1 or total_bytes == 0:
        return CollectiveCost(0.0, 0, 0, 0)
    span = nranks if span is None else max(span, nranks)
    alpha = profile.alpha_for_span(span)
    beta = profile.beta_effective(span)
    moved = total_bytes * (nranks - 1) / nranks
    seconds = _lg(nranks) * alpha + beta * moved
    wire = int(moved * nranks)
    return CollectiveCost(seconds, wire, int(moved), int(_lg(nranks)))


def allreduce_cost(
    profile: MachineProfile, nbytes: int, nranks: int,
    span: Optional[int] = None,
) -> CollectiveCost:
    """All-reduce = reduce-scatter + all-gather (Thakur et al.)."""
    if nranks <= 1 or nbytes == 0:
        return CollectiveCost(0.0, 0, 0, 0)
    rs = reduce_scatter_cost(profile, nbytes, nranks, span)
    ag = allgather_cost(profile, nbytes, nranks, span)
    return rs + ag


def alltoall_cost(
    profile: MachineProfile, total_bytes: int, nranks: int,
    span: Optional[int] = None,
) -> CollectiveCost:
    """Pairwise all-to-all: each rank holds ``total_bytes`` split p ways."""
    if nranks <= 1 or total_bytes == 0:
        return CollectiveCost(0.0, 0, 0, 0)
    span = nranks if span is None else max(span, nranks)
    alpha = profile.alpha_for_span(span)
    beta = profile.beta_effective(span)
    moved = total_bytes * (nranks - 1) / nranks
    seconds = (nranks - 1) * alpha + beta * moved
    wire = int(moved * nranks)
    return CollectiveCost(seconds, wire, int(moved), nranks - 1)


def gather_cost(profile: MachineProfile, total_bytes: int, nranks: int,
                span: Optional[int] = None) -> CollectiveCost:
    """Gather shards into one root (binomial tree, bandwidth ``~m``)."""
    if nranks <= 1 or total_bytes == 0:
        return CollectiveCost(0.0, 0, 0, 0)
    span = nranks if span is None else max(span, nranks)
    alpha = profile.alpha_for_span(span)
    beta = profile.beta_effective(span)
    moved = total_bytes * (nranks - 1) / nranks
    seconds = _lg(nranks) * alpha + beta * moved
    wire = int(moved)
    return CollectiveCost(seconds, wire, int(moved), int(_lg(nranks)))


def scatter_cost(profile: MachineProfile, total_bytes: int, nranks: int,
                 span: Optional[int] = None) -> CollectiveCost:
    """Scatter from one root; mirror image of :func:`gather_cost`."""
    return gather_cost(profile, total_bytes, nranks, span)
