"""Communication substrate: meshes, collectives, cost model, accounting.

This package is the stand-in for ``torch.distributed`` + NCCL on the Summit
supercomputer.  See :mod:`repro.comm.runtime` for the entry point.
"""

from repro.comm.cost_model import (
    CollectiveCost,
    allgather_cost,
    allreduce_cost,
    alltoall_cost,
    broadcast_cost,
    gather_cost,
    p2p_cost,
    reduce_cost,
    reduce_scatter_cost,
    scatter_cost,
)
from repro.comm.collectives import Collectives, payload_nbytes
from repro.comm.mesh import Mesh1D, Mesh2D, Mesh3D, ProcessMesh
from repro.comm.runtime import VirtualRuntime
from repro.comm.trace import StepEvent, StepTracer
from repro.comm.tracker import Category, CategoryTotals, CommTracker

__all__ = [
    "CollectiveCost",
    "Collectives",
    "Category",
    "CategoryTotals",
    "CommTracker",
    "Mesh1D",
    "Mesh2D",
    "Mesh3D",
    "ProcessMesh",
    "VirtualRuntime",
    "StepTracer",
    "StepEvent",
    "payload_nbytes",
    "broadcast_cost",
    "reduce_cost",
    "allgather_cost",
    "reduce_scatter_cost",
    "allreduce_cost",
    "alltoall_cost",
    "gather_cost",
    "scatter_cost",
    "p2p_cost",
]
