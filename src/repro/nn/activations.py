"""Activation functions with exact derivatives.

The paper's communication analysis distinguishes **elementwise**
activations (ReLU: no communication, ``H^l`` keeps ``H^{l-1}``'s
distribution) from **row-wise** ones (log_softmax: each process needs its
full row of ``Z``, costing an all-gather along process rows in the 2D/3D
algorithms -- Sections IV-C.2 and IV-D.2).  Each activation therefore
carries an ``elementwise`` flag that the distributed algorithms consult
when deciding whether to communicate.

``backward(z, grad_h)`` returns ``dL/dZ`` given ``dL/dH`` -- the
``∇H ⊙ σ'(Z)`` composition in the paper's Equation 1 (generalised to
non-elementwise σ, where the Jacobian is row-wise rather than diagonal).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Activation", "ReLU", "Identity", "LogSoftmax", "get_activation"]


class Activation:
    """Interface: a differentiable map applied to pre-activations ``Z``."""

    name: str = "base"
    #: True when sigma acts entrywise (no communication needed to apply it
    #: to a distributed matrix).
    elementwise: bool = True

    def forward(self, z: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, z: np.ndarray, grad_h: np.ndarray) -> np.ndarray:
        """``dL/dZ`` from ``dL/dH`` at pre-activation ``z``."""
        raise NotImplementedError


class ReLU(Activation):
    """``max(0, z)``; subgradient 0 at 0 (the PyTorch convention)."""

    name = "relu"
    elementwise = True

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(z, 0.0)

    def backward(self, z: np.ndarray, grad_h: np.ndarray) -> np.ndarray:
        return np.where(z > 0.0, grad_h, 0.0)


class Identity(Activation):
    """No-op activation (useful for linear layers and tests)."""

    name = "identity"
    elementwise = True

    def forward(self, z: np.ndarray) -> np.ndarray:
        return z

    def backward(self, z: np.ndarray, grad_h: np.ndarray) -> np.ndarray:
        return grad_h


class LogSoftmax(Activation):
    """Row-wise ``log softmax`` -- the paper's output activation.

    NOT elementwise: "the output of log_softmax for a row of Z is only
    dependent on the values within that row" (Section IV-D.2), so a
    row-distributed ``Z`` needs a row all-gather before applying it.
    """

    name = "log_softmax"
    elementwise = False

    def forward(self, z: np.ndarray) -> np.ndarray:
        zmax = z.max(axis=1, keepdims=True)
        shifted = z - zmax
        lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        return shifted - lse

    def backward(self, z: np.ndarray, grad_h: np.ndarray) -> np.ndarray:
        # d log_softmax: dZ = dH - softmax(Z) * rowsum(dH)
        p = np.exp(self.forward(z))
        return grad_h - p * grad_h.sum(axis=1, keepdims=True)


_REGISTRY = {a.name: a for a in (ReLU(), Identity(), LogSoftmax())}


def get_activation(name: str) -> Activation:
    """Look up an activation by name (shared stateless instances)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
