"""GNN layer variants beyond GCN: GraphSAGE and GIN.

The paper: "our distributed algorithms can be used to implement anything
that is supported by PyTorch Geometric, which already implements a vast
majority of top GNN models in the literature."  The claim rests on every
such layer reducing to the same two primitives the distributed algorithms
provide -- SpMM against (normalised) adjacency operators and local dense
algebra.  This module demonstrates it with two canonical variants, each
with explicit closed-form gradients in the style of the paper's Section
III-D derivations:

* **GraphSAGE** (Hamilton et al., cited as [17]), mean aggregator::

      Z = H W_self + (A_rw H) W_neigh

  (``A_rw`` = row-normalised adjacency; the concat formulation folded
  into two weight matrices);
* **GIN** (Xu et al., cited as [32] -- the Weisfeiler-Lehman
  expressiveness result the paper invokes)::

      Z = ((1 + eps) H + A H) W      (sum aggregation, eps trainable)

Both layers cache exactly what their backward needs, mirroring the
``A G`` reuse pattern of the paper's GCN derivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nn.activations import Activation, ReLU
from repro.sparse.csr import CSRMatrix
from repro.sparse.spmm import spmm

__all__ = ["SAGELayer", "SAGECache", "GINLayer", "GINCache"]


@dataclass
class SAGECache:
    h_in: np.ndarray
    ah: np.ndarray     # A_rw H
    z: np.ndarray


class SAGELayer:
    """GraphSAGE-mean with explicit gradients.

    Forward: ``H' = sigma(H W_self + (A H) W_neigh)`` where ``A`` should
    be the row-normalised (mean-aggregating) adjacency.
    """

    def __init__(
        self,
        w_self: np.ndarray,
        w_neigh: np.ndarray,
        activation: Optional[Activation] = None,
    ):
        w_self = np.asarray(w_self, dtype=np.float64)
        w_neigh = np.asarray(w_neigh, dtype=np.float64)
        if w_self.shape != w_neigh.shape:
            raise ValueError(
                f"weight shapes differ: {w_self.shape} vs {w_neigh.shape}"
            )
        self.w_self = w_self
        self.w_neigh = w_neigh
        self.activation = activation if activation is not None else ReLU()

    @property
    def weights(self) -> Tuple[np.ndarray, np.ndarray]:
        return (self.w_self, self.w_neigh)

    def forward(
        self, a: CSRMatrix, h_in: np.ndarray
    ) -> Tuple[np.ndarray, SAGECache]:
        if h_in.shape[1] != self.w_self.shape[0]:
            raise ValueError(
                f"input width {h_in.shape[1]} != {self.w_self.shape[0]}"
            )
        ah = spmm(a, h_in)
        z = h_in @ self.w_self + ah @ self.w_neigh
        return self.activation.forward(z), SAGECache(h_in=h_in, ah=ah, z=z)

    def backward(
        self, a_t: CSRMatrix, cache: SAGECache, grad_h: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns ``(grad_h_in, grad_w_self, grad_w_neigh)``.

        ``dL/dH = G W_self^T + A^T (G W_neigh^T)`` -- the transpose
        operator appears exactly as in the paper's Equation 2.
        """
        g = self.activation.backward(cache.z, grad_h)
        grad_w_self = cache.h_in.T @ g
        grad_w_neigh = cache.ah.T @ g
        grad_h_in = g @ self.w_self.T + spmm(a_t, g @ self.w_neigh.T)
        return grad_h_in, grad_w_self, grad_w_neigh


@dataclass
class GINCache:
    h_in: np.ndarray
    combined: np.ndarray   # (1 + eps) H + A H
    ah: np.ndarray
    z: np.ndarray


class GINLayer:
    """Graph Isomorphism Network layer with a trainable ``eps``.

    Sum aggregation gives GIN the Weisfeiler-Lehman expressiveness the
    paper cites; pass the *unnormalised* 0/1 adjacency for the canonical
    formulation.
    """

    def __init__(
        self,
        weight: np.ndarray,
        eps: float = 0.0,
        activation: Optional[Activation] = None,
    ):
        self.weight = np.asarray(weight, dtype=np.float64)
        self.eps = float(eps)
        self.activation = activation if activation is not None else ReLU()

    def forward(
        self, a: CSRMatrix, h_in: np.ndarray
    ) -> Tuple[np.ndarray, GINCache]:
        if h_in.shape[1] != self.weight.shape[0]:
            raise ValueError(
                f"input width {h_in.shape[1]} != {self.weight.shape[0]}"
            )
        ah = spmm(a, h_in)
        combined = (1.0 + self.eps) * h_in + ah
        z = combined @ self.weight
        return self.activation.forward(z), GINCache(
            h_in=h_in, combined=combined, ah=ah, z=z
        )

    def backward(
        self, a_t: CSRMatrix, cache: GINCache, grad_h: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Returns ``(grad_h_in, grad_w, grad_eps)``."""
        g = self.activation.backward(cache.z, grad_h)
        grad_w = cache.combined.T @ g
        gc = g @ self.weight.T            # dL/d combined
        grad_eps = float(np.sum(gc * cache.h_in))
        grad_h_in = (1.0 + self.eps) * gc + spmm(a_t, gc)
        return grad_h_in, grad_w, grad_eps
