"""Optimisers: SGD (with momentum) and Adam.

The paper's update is plain full-batch gradient descent
(``W^{l} = W^{l} - Y^{l}``, Section III-D, with the learning rate folded
into ``Y``); "This step does not require communication" because ``W`` and
``Y`` are replicated on every process.  The optimisers below therefore run
identically (and redundantly) on every virtual rank in the distributed
algorithms -- which is also how the real implementation behaves.

Optimisers mutate the weight arrays **in place** so replicated copies on
virtual ranks that share the serial weights object stay consistent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Interface: apply one step given parameters and their gradients."""

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        raise NotImplementedError

    @staticmethod
    def _check(params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError(
                f"{len(params)} params but {len(grads)} grads"
            )
        for i, (p, g) in enumerate(zip(params, grads)):
            if p.shape != g.shape:
                raise ValueError(
                    f"param {i} shape {p.shape} != grad shape {g.shape}"
                )


class SGD(Optimizer):
    """Full-batch gradient descent, optionally with classical momentum.

    With ``momentum=0`` this is exactly the paper's update rule.
    """

    def __init__(self, lr: float = 1e-2, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        self._check(params, grads)
        if self.momentum == 0.0:
            for p, g in zip(params, grads):
                p -= self.lr * g
            return
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for v, p, g in zip(self._velocity, params, grads):
            v *= self.momentum
            v += g
            p -= self.lr * v


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction -- the PyG default."""

    def __init__(
        self,
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Optional[List[np.ndarray]] = None
        self._v: Optional[List[np.ndarray]] = None
        self._t = 0

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        self._check(params, grads)
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for m, v, p, g in zip(self._m, self._v, params, grads):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
