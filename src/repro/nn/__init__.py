"""Neural-network substrate: GCN layers, loss, optimisers, serial model."""

from repro.nn.activations import (
    Activation,
    Identity,
    LogSoftmax,
    ReLU,
    get_activation,
)
from repro.nn.init import init_gcn_weights, xavier_uniform
from repro.nn.layers import GCNLayer, LayerCache
from repro.nn.loss import accuracy, nll_loss, one_hot
from repro.nn.model import GCN, EpochResult, SerialTrainer, TrainHistory
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.serialize import load_csr, load_weights, save_csr, save_weights
from repro.nn.variants import GINLayer, SAGELayer

__all__ = [
    "Activation",
    "ReLU",
    "Identity",
    "LogSoftmax",
    "get_activation",
    "xavier_uniform",
    "init_gcn_weights",
    "GCNLayer",
    "LayerCache",
    "nll_loss",
    "accuracy",
    "one_hot",
    "GCN",
    "EpochResult",
    "TrainHistory",
    "SerialTrainer",
    "Optimizer",
    "SGD",
    "Adam",
    "save_weights",
    "load_weights",
    "save_csr",
    "load_csr",
    "SAGELayer",
    "GINLayer",
]
