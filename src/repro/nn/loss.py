"""Masked negative log-likelihood loss and classification metrics.

The paper trains node classification with log_softmax outputs; the
matching loss is NLL over the training vertices.  ``nll_loss`` returns
both the scalar loss and its gradient with respect to the log-probability
matrix, normalised by the number of supervised vertices so gradients are
scale-free in graph size.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["nll_loss", "accuracy", "one_hot"]


def _as_mask(n: int, mask: Optional[np.ndarray]) -> np.ndarray:
    if mask is None:
        return np.ones(n, dtype=bool)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (n,):
        raise ValueError(f"mask shape {mask.shape} does not match {n} rows")
    return mask


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Dense one-hot encoding of integer class labels."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ValueError(f"labels outside [0, {n_classes})")
    out = np.zeros((labels.size, n_classes), dtype=np.float64)
    out[np.arange(labels.size), labels] = 1.0
    return out


def nll_loss(
    log_probs: np.ndarray,
    labels: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Masked mean NLL and its gradient w.r.t. ``log_probs``.

    ``loss = -mean_{i in mask} log_probs[i, labels[i]]``;
    ``grad[i, c] = -1[c == labels[i]] / |mask|`` on masked rows, 0 elsewhere.
    """
    n, k = log_probs.shape
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} does not match {n} rows")
    mask = _as_mask(n, mask)
    count = int(mask.sum())
    if count == 0:
        raise ValueError("empty training mask")
    rows = np.flatnonzero(mask)
    picked = log_probs[rows, labels[rows]]
    loss = -float(picked.sum()) / count
    grad = np.zeros_like(log_probs)
    grad[rows, labels[rows]] = -1.0 / count
    return loss, grad


def accuracy(
    log_probs: np.ndarray,
    labels: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> float:
    """Fraction of masked vertices whose argmax class is correct."""
    n = log_probs.shape[0]
    labels = np.asarray(labels, dtype=np.int64)
    mask = _as_mask(n, mask)
    rows = np.flatnonzero(mask)
    if rows.size == 0:
        raise ValueError("empty evaluation mask")
    pred = log_probs[rows].argmax(axis=1)
    return float(np.mean(pred == labels[rows]))
