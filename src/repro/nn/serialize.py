"""Model and dataset checkpointing.

Training the paper's largest graph takes hours even on 100 GPUs, so a
production library needs restartable state.  Checkpoints are plain
``.npz`` archives: portable, dependency-free, and safe to load (no
pickled code).  Weight round-trips are bit-exact, so a resumed run
continues the exact trajectory -- an extension of the determinism the
verification story relies on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "save_weights",
    "load_weights",
    "save_csr",
    "load_csr",
]

_META_KEY = "__repro_meta__"


def save_weights(
    path: Union[str, Path],
    weights: Sequence[np.ndarray],
    metadata: dict = None,
) -> None:
    """Save a list of weight matrices (plus JSON-able metadata) to .npz."""
    path = Path(path)
    arrays = {f"weight_{i}": np.asarray(w) for i, w in enumerate(weights)}
    meta = {"num_weights": len(weights)}
    if metadata:
        meta.update(metadata)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_weights(path: Union[str, Path]) -> Tuple[List[np.ndarray], dict]:
    """Load weights + metadata saved by :func:`save_weights`."""
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro checkpoint")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        count = int(meta.pop("num_weights"))
        weights = [archive[f"weight_{i}"].copy() for i in range(count)]
    return weights, meta


def save_csr(path: Union[str, Path], matrix: CSRMatrix) -> None:
    """Persist a CSR matrix (e.g. a normalised adjacency) to .npz."""
    np.savez(
        Path(path),
        indptr=matrix.indptr,
        indices=matrix.indices,
        data=matrix.data,
        shape=np.asarray(matrix.shape, dtype=np.int64),
    )


def load_csr(path: Union[str, Path]) -> CSRMatrix:
    """Load a CSR matrix saved by :func:`save_csr` (validated)."""
    with np.load(Path(path)) as archive:
        for key in ("indptr", "indices", "data", "shape"):
            if key not in archive:
                raise ValueError(f"{path} is not a repro CSR archive")
        shape = tuple(int(x) for x in archive["shape"])
        return CSRMatrix(
            archive["indptr"].copy(),
            archive["indices"].copy(),
            archive["data"].copy(),
            shape,
        )
