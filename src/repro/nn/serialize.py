"""Model and dataset checkpointing.

Training the paper's largest graph takes hours even on 100 GPUs, so a
production library needs restartable state.  Checkpoints are plain
``.npz`` archives: portable, dependency-free, and safe to load (no
pickled code).  Weight round-trips are bit-exact, so a resumed run
continues the exact trajectory -- an extension of the determinism the
verification story relies on.

Every write here is atomic (tmp file + ``os.replace``): a crash mid
checkpoint can truncate the tmp file, never the published one, so a
recovery either sees the previous complete checkpoint or none at all.
Full training checkpoints (:func:`save_checkpoint`) additionally carry
a SHA-1 content digest that :func:`load_checkpoint` verifies, and they
persist optimizer state -- Adam's ``m``/``v``/step and SGD's momentum
buffers -- because weights alone silently change the optimization
trajectory on resume.

This module deliberately does not import ``repro.comm`` or
``repro.dist``: the checkpoint stores the ledger as opaque bytes plus
category names in the metadata, and the training layer reconstructs
its own types from them.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "save_weights",
    "load_weights",
    "save_csr",
    "load_csr",
    "optimizer_state",
    "restore_optimizer",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_epochs",
]

_META_KEY = "__repro_meta__"
_DIGEST_KEY = "digest"


def _atomic_savez(path: Path, arrays: dict) -> None:
    """Write an .npz atomically: tmp file in the same dir + rename.

    ``np.savez`` appends ``.npz`` when handed a bare path, so the tmp
    file is written through an open handle, which it uses as-is.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_weights(
    path: Union[str, Path],
    weights: Sequence[np.ndarray],
    metadata: dict = None,
) -> None:
    """Save a list of weight matrices (plus JSON-able metadata) to .npz."""
    path = Path(path)
    arrays = {f"weight_{i}": np.asarray(w) for i, w in enumerate(weights)}
    meta = {"num_weights": len(weights)}
    if metadata:
        meta.update(metadata)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    _atomic_savez(path, arrays)


def load_weights(path: Union[str, Path]) -> Tuple[List[np.ndarray], dict]:
    """Load weights + metadata saved by :func:`save_weights`."""
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro checkpoint")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        count = int(meta.pop("num_weights"))
        weights = [archive[f"weight_{i}"].copy() for i in range(count)]
    return weights, meta


def save_csr(path: Union[str, Path], matrix: CSRMatrix) -> None:
    """Persist a CSR matrix (e.g. a normalised adjacency) to .npz."""
    _atomic_savez(
        Path(path),
        {
            "indptr": matrix.indptr,
            "indices": matrix.indices,
            "data": matrix.data,
            "shape": np.asarray(matrix.shape, dtype=np.int64),
        },
    )


def load_csr(path: Union[str, Path]) -> CSRMatrix:
    """Load a CSR matrix saved by :func:`save_csr` (validated)."""
    with np.load(Path(path)) as archive:
        for key in ("indptr", "indices", "data", "shape"):
            if key not in archive:
                raise ValueError(f"{path} is not a repro CSR archive")
        shape = tuple(int(x) for x in archive["shape"])
        return CSRMatrix(
            archive["indptr"].copy(),
            archive["indices"].copy(),
            archive["data"].copy(),
            shape,
        )


# ---------------------------------------------------------------------------
# Optimizer state
# ---------------------------------------------------------------------------

def optimizer_state(optimizer) -> Tuple[dict, List[np.ndarray]]:
    """Extract (JSON-able meta, state arrays) from an optimizer.

    Supports the library's two optimizers by duck type: SGD (``lr``,
    ``momentum``, lazy ``_velocity`` buffers) and Adam (``lr``,
    ``beta1``/``beta2``/``eps``, lazy ``_m``/``_v`` moments and step
    counter ``_t``).  The arrays come back in a flat list whose layout
    is recorded in the meta, so the pair round-trips through an .npz.
    """
    arrays: List[np.ndarray] = []
    if hasattr(optimizer, "_m"):  # Adam
        meta = {
            "kind": "adam",
            "lr": optimizer.lr,
            "beta1": optimizer.beta1,
            "beta2": optimizer.beta2,
            "eps": optimizer.eps,
            "t": int(optimizer._t),
            "num_moments": 0,
        }
        if optimizer._m is not None:
            meta["num_moments"] = len(optimizer._m)
            arrays.extend(optimizer._m)
            arrays.extend(optimizer._v)
    elif hasattr(optimizer, "_velocity"):  # SGD
        meta = {
            "kind": "sgd",
            "lr": optimizer.lr,
            "momentum": optimizer.momentum,
            "num_moments": 0,
        }
        if optimizer._velocity is not None:
            meta["num_moments"] = len(optimizer._velocity)
            arrays.extend(optimizer._velocity)
    else:
        raise TypeError(
            f"cannot serialize optimizer of type "
            f"{type(optimizer).__name__}: expected SGD or Adam")
    return meta, [np.asarray(a) for a in arrays]


def restore_optimizer(optimizer, meta: dict,
                      arrays: Sequence[np.ndarray]) -> None:
    """Install saved state into an optimizer of the matching kind."""
    kind = meta.get("kind")
    n = int(meta.get("num_moments", 0))
    if kind == "adam":
        if not hasattr(optimizer, "_m"):
            raise ValueError(
                f"checkpoint holds adam state but the optimizer is "
                f"{type(optimizer).__name__}")
        optimizer._t = int(meta["t"])
        if n:
            optimizer._m = [np.array(a, copy=True) for a in arrays[:n]]
            optimizer._v = [np.array(a, copy=True) for a in arrays[n:2 * n]]
        else:
            optimizer._m = None
            optimizer._v = None
    elif kind == "sgd":
        if not hasattr(optimizer, "_velocity"):
            raise ValueError(
                f"checkpoint holds sgd state but the optimizer is "
                f"{type(optimizer).__name__}")
        if n:
            optimizer._velocity = [np.array(a, copy=True)
                                   for a in arrays[:n]]
        else:
            optimizer._velocity = None
    else:
        raise ValueError(f"unknown optimizer kind {kind!r} in checkpoint")


# ---------------------------------------------------------------------------
# Full training checkpoints
# ---------------------------------------------------------------------------

def _content_digest(arrays: dict, meta: dict) -> str:
    """SHA-1 over array bytes + meta (minus the digest field itself)."""
    h = hashlib.sha1()
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        h.update(key.encode("utf-8"))
        h.update(str(arr.dtype).encode("utf-8"))
        h.update(str(arr.shape).encode("utf-8"))
        h.update(arr.tobytes())
    clean = {k: v for k, v in meta.items() if k != _DIGEST_KEY}
    h.update(json.dumps(clean, sort_keys=True).encode("utf-8"))
    return h.hexdigest()


def save_checkpoint(
    path: Union[str, Path],
    *,
    weights: Sequence[np.ndarray],
    optimizer,
    epoch: int,
    tracker_state: Optional[bytes] = None,
    categories: Sequence[str] = (),
    history: Optional[dict] = None,
    metadata: Optional[dict] = None,
) -> None:
    """Atomically write a full training checkpoint.

    ``epoch`` is the number of *completed* epochs; ``tracker_state`` is
    the opaque ``CommTracker.state_bytes()`` blob with ``categories``
    naming its per-category layout; ``history`` maps array names (e.g.
    ``hist_loss``) to per-epoch arrays so a resume can rebuild the
    epoch stats already emitted.  The archive self-verifies via a SHA-1
    content digest checked on load.
    """
    path = Path(path)
    arrays = {f"weight_{i}": np.asarray(w) for i, w in enumerate(weights)}
    opt_meta, opt_arrays = optimizer_state(optimizer)
    for i, a in enumerate(opt_arrays):
        arrays[f"opt_{i}"] = a
    if tracker_state is not None:
        arrays["tracker_state"] = np.frombuffer(
            tracker_state, dtype=np.uint8)
    for name, arr in (history or {}).items():
        arrays[f"hist_{name}"] = np.asarray(arr)
    meta = {
        "format": "repro-checkpoint/1",
        "num_weights": len(weights),
        "epoch": int(epoch),
        "optimizer": opt_meta,
        "num_opt_arrays": len(opt_arrays),
        "categories": list(categories),
        "history_keys": sorted((history or {}).keys()),
    }
    if metadata:
        meta.update(metadata)
    meta[_DIGEST_KEY] = _content_digest(arrays, meta)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    _atomic_savez(path, arrays)


def load_checkpoint(path: Union[str, Path]) -> dict:
    """Load + digest-verify a checkpoint written by :func:`save_checkpoint`.

    Returns a dict with ``weights``, ``optimizer`` (meta),
    ``opt_arrays``, ``epoch``, ``tracker_state`` (bytes or None),
    ``categories``, ``history`` (dict of arrays), and ``meta`` (the
    full metadata).
    """
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro checkpoint")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        if meta.get("format") != "repro-checkpoint/1":
            raise ValueError(
                f"{path} is not a repro training checkpoint "
                f"(format={meta.get('format')!r})")
        arrays = {k: archive[k].copy() for k in archive.files
                  if k != _META_KEY}
    expected = meta.get(_DIGEST_KEY)
    actual = _content_digest(arrays, meta)
    if expected != actual:
        raise ValueError(
            f"{path} failed its content-digest check "
            f"(expected {expected}, computed {actual}); the file is "
            f"corrupt")
    nw = int(meta["num_weights"])
    weights = [arrays[f"weight_{i}"] for i in range(nw)]
    nopt = int(meta.get("num_opt_arrays", 0))
    opt_arrays = [arrays[f"opt_{i}"] for i in range(nopt)]
    tracker_state = None
    if "tracker_state" in arrays:
        tracker_state = arrays["tracker_state"].tobytes()
    history = {
        name: arrays[f"hist_{name}"]
        for name in meta.get("history_keys", [])
    }
    return {
        "weights": weights,
        "optimizer": meta["optimizer"],
        "opt_arrays": opt_arrays,
        "epoch": int(meta["epoch"]),
        "tracker_state": tracker_state,
        "categories": tuple(meta.get("categories", ())),
        "history": history,
        "meta": meta,
    }


def checkpoint_epochs(path: Union[str, Path]) -> int:
    """Peek the completed-epoch counter of a checkpoint (0 if absent).

    Cheap relative to :func:`load_checkpoint`: reads only the metadata
    member, no digest verification -- used to decide which epochs are
    *live* (vs replayed) before a resume.
    """
    path = Path(path)
    if not path.exists():
        return 0
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro checkpoint")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
    if meta.get("format") != "repro-checkpoint/1":
        raise ValueError(
            f"{path} is not a repro training checkpoint "
            f"(format={meta.get('format')!r})")
    return int(meta["epoch"])
