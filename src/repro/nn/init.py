"""Weight initialisation.

Xavier/Glorot uniform, the PyTorch Geometric default for GCN layers.  All
initialisers are seeded so serial and distributed runs start from
bit-identical weights -- a precondition for the paper's verification that
the parallel implementation "outputs the same embeddings up to floating
point accumulation errors".
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["xavier_uniform", "init_gcn_weights"]


def xavier_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot & Bengio (2010) uniform init: U(-a, a), a = g*sqrt(6/(in+out))."""
    if fan_in < 1 or fan_out < 1:
        raise ValueError(f"invalid fan dimensions ({fan_in}, {fan_out})")
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out)).astype(np.float64)


def init_gcn_weights(widths: Sequence[int], seed: int = 0) -> List[np.ndarray]:
    """One ``f^{l-1} x f^l`` weight matrix per layer, from a single stream.

    Consuming all layers from one seeded generator keeps the whole model's
    initial state a pure function of ``(widths, seed)``.
    """
    if len(widths) < 2:
        raise ValueError("need at least input and output widths")
    rng = np.random.default_rng(seed)
    return [
        xavier_uniform(widths[l], widths[l + 1], rng)
        for l in range(len(widths) - 1)
    ]
