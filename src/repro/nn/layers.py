"""GCN layer: the paper's forward and backward equations, serially.

Forward (Section III-C)::

    Z^l = A^T H^{l-1} W^l
    H^l = sigma(Z^l)

Backward (Section III-D)::

    G^L     = grad_{H^L} L  (.)  sigma'(Z^L)                (Equation 1)
    G^{l-1} = A G^l (W^l)^T  (.)  sigma'(Z^{l-1})           (Equation 2)
    Y^l     = (A^T H^{l-1})^T G^l = (H^{l-1})^T (A G^l)     (Equation 3)

The layer caches ``Z`` and the SpMM result ``A^T H^{l-1}`` during forward,
and reuses the ``A G^l`` intermediate between Equations 2 and 3 exactly as
the paper's algorithms do ("we can reuse the intermediate product AG^l
that we computed in the previous equation at the expense of increasing the
memory footprint slightly").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nn.activations import Activation, ReLU
from repro.obs import profile as _profile
from repro.sparse.csr import CSRMatrix
from repro.sparse.spmm import spmm

__all__ = [
    "GCNLayer",
    "LayerCache",
    "forward_gemm",
    "weight_gradient",
    "hidden_gradient",
]


def forward_gemm(t: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``Z = T W`` where ``T = A^T H^{l-1}`` -- the forward GEMM.

    Shared by the serial layer and the distributed algorithms (which call
    it on local blocks of ``T`` against the replicated ``W``), so both
    paths run the identical kernel -- the precondition for the paper's
    bit-close serial-vs-parallel verification.
    """
    prof = _profile.ACTIVE
    if prof is None:
        return t @ weight
    t0 = prof.clock()
    z = t @ weight
    m, k = t.shape
    prof.add("gemm.forward", prof.clock() - t0,
             2 * m * k * weight.shape[1],
             t.nbytes + weight.nbytes + z.nbytes)
    return z


def weight_gradient(t: np.ndarray, g: np.ndarray) -> np.ndarray:
    """``Y^l = (A^T H^{l-1})^T G^l`` (Equation 3) -- the weight gradient.

    Distributed algorithms apply it to row blocks and sum the partial
    products with an all-reduce.
    """
    prof = _profile.ACTIVE
    if prof is None:
        return t.T @ g
    t0 = prof.clock()
    y = t.T @ g
    m, k = t.shape
    prof.add("gemm.wgrad", prof.clock() - t0, 2 * m * k * g.shape[1],
             t.nbytes + g.nbytes + y.nbytes)
    return y


def hidden_gradient(ag: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``A G^l (W^l)^T`` (Equation 2, before the sigma' Hadamard)."""
    prof = _profile.ACTIVE
    if prof is None:
        return ag @ weight.T
    t0 = prof.clock()
    h = ag @ weight.T
    m, n = ag.shape
    prof.add("gemm.hgrad", prof.clock() - t0, 2 * m * n * weight.shape[0],
             ag.nbytes + weight.nbytes + h.nbytes)
    return h


@dataclass
class LayerCache:
    """Intermediates one layer keeps from forward for use in backward."""

    h_in: np.ndarray       # H^{l-1}
    z: np.ndarray          # Z^l = A^T H^{l-1} W^l
    t: np.ndarray          # T = A^T H^{l-1} (reused in Equation 3)


class GCNLayer:
    """One graph-convolution layer with explicit gradients.

    Holds the trainable ``W`` (``f_in x f_out``) and the activation.  The
    adjacency operands are passed per call so the same layer object works
    for directed (distinct ``A``, ``A^T``) and undirected graphs.
    """

    def __init__(self, weight: np.ndarray, activation: Optional[Activation] = None):
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ValueError(f"weight must be 2D, got shape {weight.shape}")
        self.weight = weight
        self.activation = activation if activation is not None else ReLU()

    @property
    def f_in(self) -> int:
        return self.weight.shape[0]

    @property
    def f_out(self) -> int:
        return self.weight.shape[1]

    def forward(
        self, a_t: CSRMatrix, h_in: np.ndarray
    ) -> Tuple[np.ndarray, LayerCache]:
        """``H^l = sigma(A^T H^{l-1} W^l)``; returns activations + cache."""
        if h_in.shape[1] != self.f_in:
            raise ValueError(
                f"input width {h_in.shape[1]} != layer f_in {self.f_in}"
            )
        t = spmm(a_t, h_in)               # A^T H^{l-1}  (the SpMM)
        z = forward_gemm(t, self.weight)  # (A^T H^{l-1}) W^l  (the GEMM)
        h_out = self.activation.forward(z)
        return h_out, LayerCache(h_in=h_in, z=z, t=t)

    def backward(
        self, a: CSRMatrix, cache: LayerCache, grad_h: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Equations 1-3 for this layer.

        Given ``dL/dH^l``, returns ``(grad_h_in, grad_w, g)`` where
        ``grad_h_in = dL/dH^{l-1}`` (the upstream gradient for the next
        layer down), ``grad_w = Y^l = dL/dW^l``, and ``g = G^l = dL/dZ^l``.
        """
        g = self.activation.backward(cache.z, grad_h)      # G^l (Eq. 1 shape)
        ag = spmm(a, g)                                    # A G^l (reused)
        grad_w = weight_gradient(cache.t, g)               # Y^l (Eq. 3)
        grad_h_in = hidden_gradient(ag, self.weight)       # A G^l (W^l)^T (Eq. 2,
        #                                 before the sigma'(Z^{l-1}) Hadamard,
        #                                 which the *previous* layer applies)
        return grad_h_in, grad_w, g
