"""The serial GCN reference model and trainer.

This is the single-process ground truth that every distributed algorithm
is verified against -- the role the serial PyTorch implementation plays in
the paper ("We verified that our parallel implementation not only achieves
the same training accuracy in the same number of epochs as the serial
implementations in PyTorch, but it also outputs the same embeddings up to
floating point accumulation errors").

Architecture (matching the paper / Kipf & Welling): ``L`` GCN layers, ReLU
between layers, log_softmax on the output, masked NLL loss, full-batch
gradient descent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.datasets import Dataset
from repro.nn.activations import LogSoftmax, ReLU
from repro.nn.init import init_gcn_weights
from repro.nn.layers import GCNLayer, LayerCache
from repro.nn.loss import accuracy, nll_loss
from repro.nn.optim import SGD, Optimizer
from repro.sparse.csr import CSRMatrix

__all__ = ["GCN", "EpochResult", "TrainHistory", "SerialTrainer"]


class GCN:
    """An L-layer graph convolutional network with explicit gradients."""

    def __init__(self, widths: Sequence[int], seed: int = 0):
        if len(widths) < 2:
            raise ValueError("need at least (f_in, f_out) widths")
        self.widths = tuple(int(w) for w in widths)
        weights = init_gcn_weights(self.widths, seed)
        relu, logsm = ReLU(), LogSoftmax()
        self.layers: List[GCNLayer] = [
            GCNLayer(w, logsm if i == len(weights) - 1 else relu)
            for i, w in enumerate(weights)
        ]

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def weights(self) -> List[np.ndarray]:
        return [layer.weight for layer in self.layers]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        """Install externally-supplied weights (e.g. to sync replicas)."""
        if len(weights) != len(self.layers):
            raise ValueError(
                f"got {len(weights)} weight matrices for {len(self.layers)} layers"
            )
        for layer, w in zip(self.layers, weights):
            if w.shape != layer.weight.shape:
                raise ValueError(
                    f"weight shape {w.shape} != expected {layer.weight.shape}"
                )
            layer.weight = np.asarray(w, dtype=np.float64)

    def forward(
        self, a_t: CSRMatrix, h0: np.ndarray
    ) -> Tuple[np.ndarray, List[LayerCache]]:
        """Full forward pass; returns output log-probs and per-layer caches."""
        h = np.asarray(h0, dtype=np.float64)
        caches: List[LayerCache] = []
        for layer in self.layers:
            h, cache = layer.forward(a_t, h)
            caches.append(cache)
        return h, caches

    def backward(
        self,
        a: CSRMatrix,
        caches: List[LayerCache],
        grad_out: np.ndarray,
    ) -> List[np.ndarray]:
        """Full backward pass; returns ``[dL/dW^1, ..., dL/dW^L]``."""
        if len(caches) != len(self.layers):
            raise ValueError("cache count does not match layer count")
        grads: List[Optional[np.ndarray]] = [None] * len(self.layers)
        grad_h = grad_out
        for l in range(len(self.layers) - 1, -1, -1):
            grad_h, grad_w, _ = self.layers[l].backward(a, caches[l], grad_h)
            grads[l] = grad_w
        return grads  # type: ignore[return-value]

    def predict(self, a_t: CSRMatrix, h0: np.ndarray) -> np.ndarray:
        """Output log-probabilities without keeping caches."""
        out, _ = self.forward(a_t, h0)
        return out


@dataclass
class EpochResult:
    """Loss/accuracy of one training epoch."""

    epoch: int
    loss: float
    train_accuracy: float


@dataclass
class TrainHistory:
    """Per-epoch records of one training run."""

    epochs: List[EpochResult] = field(default_factory=list)

    @property
    def losses(self) -> List[float]:
        return [e.loss for e in self.epochs]

    @property
    def final_loss(self) -> float:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1].loss


class SerialTrainer:
    """Full-batch gradient-descent training loop for the serial GCN.

    For undirected (symmetric-normalised) graphs ``A == A^T`` and a single
    adjacency suffices; a distinct ``a`` may be passed for directed inputs,
    mirroring the paper's explicit treatment of ``A`` vs ``A^T``.
    """

    def __init__(
        self,
        model: GCN,
        a_t: CSRMatrix,
        a: Optional[CSRMatrix] = None,
        optimizer: Optional[Optimizer] = None,
    ):
        self.model = model
        self.a_t = a_t
        self.a = a if a is not None else a_t
        self.optimizer = optimizer if optimizer is not None else SGD(lr=1e-2)

    def train_epoch(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        mask: Optional[np.ndarray] = None,
        epoch: int = 0,
    ) -> EpochResult:
        log_probs, caches = self.model.forward(self.a_t, features)
        loss, grad_out = nll_loss(log_probs, labels, mask)
        acc = accuracy(log_probs, labels, mask)
        grads = self.model.backward(self.a, caches, grad_out)
        self.optimizer.step(self.model.weights, grads)
        return EpochResult(epoch=epoch, loss=loss, train_accuracy=acc)

    def train(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        mask: Optional[np.ndarray] = None,
    ) -> TrainHistory:
        history = TrainHistory()
        for epoch in range(epochs):
            history.epochs.append(
                self.train_epoch(features, labels, mask, epoch)
            )
        return history

    @classmethod
    def for_dataset(
        cls,
        dataset: Dataset,
        hidden: int = 16,
        layers: int = 3,
        seed: int = 0,
        optimizer: Optional[Optimizer] = None,
    ) -> "SerialTrainer":
        """Build the paper's 3-layer architecture for a dataset."""
        widths = dataset.layer_widths(hidden=hidden, layers=layers)
        model = GCN(widths, seed=seed)
        return cls(model, dataset.adjacency, optimizer=optimizer)
