"""Symbolic per-epoch communication schedules.

A :class:`CommSchedule` is the *trace* of one training epoch with the data
left out: a sequence of bulk-synchronous phases, each holding the payload
sizes of the concurrent collectives (or local kernels) the phase performs.
The :mod:`repro.dist` algorithm classes emit schedules through their
``emit_comm_schedule`` hooks by replaying their epoch loops symbolically
-- same collectives, same groups, same byte counts -- without building a
single numpy block or virtual rank, which is what makes P = 16384
tractable.

Pricing a schedule (:func:`evaluate_schedule`) applies the exact
alpha-beta formulas of :mod:`repro.comm.cost_model` (including the
``int`` truncations the executed collectives perform) and the
:class:`repro.sparse.perfmodel.SpmmPerfModel` compute rates, vectorised
over each phase.  Because emission mirrors the executed charge pattern
one-for-one, a schedule built from the actual adjacency predicts the
executed ledger's per-category byte counts **exactly**; with a
:class:`GraphModel` built from just ``(n, nnz)`` the nonzeros are assumed
uniform and the prediction becomes the paper's load-balanced analytic
model.

:class:`GraphModel` is the shape oracle emission runs against: it answers
"how many nonzeros land in this block?" either exactly (CSR-backed) or
under the uniform assumption (shape-only), behind one interface -- the
dense/sparse-agnostic backend idiom, applied to graph statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.comm.tracker import Category
from repro.config import FP64_BYTES, INDEX_BYTES, MachineProfile
from repro.sparse.csr import CSRMatrix
from repro.sparse.distribute import block_ranges
from repro.sparse.perfmodel import SpmmPerfModel

__all__ = [
    "WB",
    "LOSS_TERM_BYTES",
    "boundaries",
    "GraphModel",
    "CommSchedule",
    "GatherRowsPhase",
    "ScheduleBuilder",
    "SimResult",
    "evaluate_schedule",
    "emit_blockrow_epoch",
    "emit_grid_epoch",
    "emit_replicated_matmul",
    "sparse_wire_bytes",
]

#: Bytes per dense element; the executed reproduction runs fp64.
WB = FP64_BYTES

#: The replicated ``[sum_picked, correct]`` loss pair every epoch reduces.
LOSS_TERM_BYTES = 2 * FP64_BYTES


def boundaries(n: int, parts: int) -> np.ndarray:
    """Block boundaries ``[0, ..., n]`` of :func:`block_ranges`.

    The shared indexing idiom of every emitter and oracle: ``cell i``
    spans ``[bounds[i], bounds[i+1])``.
    """
    return np.array(
        [0] + [hi for _, hi in block_ranges(n, parts)], dtype=np.int64
    )


def sparse_wire_bytes(nnz, nrows) -> np.ndarray:
    """Serialised CSR block size: data + indices + indptr.

    Mirrors :attr:`repro.sparse.csr.CSRMatrix.nbytes_on_wire` for blocks
    of ``nnz`` nonzeros and ``nrows`` rows (arrays broadcast).
    """
    nnz = np.asarray(nnz, dtype=np.float64)
    nrows = np.asarray(nrows, dtype=np.float64)
    return nnz * (FP64_BYTES + INDEX_BYTES) + (nrows + 1.0) * INDEX_BYTES


# ---------------------------------------------------------------------- #
# the graph shape oracle
# ---------------------------------------------------------------------- #
class GraphModel:
    """Nonzero-placement oracle for schedule emission.

    Two backends behind one interface:

    * **exact** (``from_csr`` / ``from_dataset``) -- block nonzero counts
      are measured on the actual matrix, so emitted schedules reproduce
      the executed ledger byte for byte;
    * **uniform** (``uniform`` / ``from_published``) -- only ``(n, nnz)``
      are known and nonzeros are assumed uniformly spread (the paper's
      analysis assumption, justified by the random vertex permutation),
      which is what allows paper-scale graphs that no process could hold.

    The stored matrix is the forward operand ``A^T`` (equal to ``A`` for
    GCN-normalised undirected graphs); oracles take ``transpose=True`` to
    ask about the backward operand ``A`` of directed inputs.
    """

    def __init__(
        self,
        n: int,
        nnz: int,
        csr: Optional[CSRMatrix] = None,
        name: str = "graph",
        symmetric: bool = True,
        features: Optional[int] = None,
        n_classes: Optional[int] = None,
    ):
        if n < 1 or nnz < 0:
            raise ValueError(f"invalid graph shape n={n}, nnz={nnz}")
        self.n = int(n)
        self.nnz = int(nnz)
        self.csr = csr
        self.name = name
        self.symmetric = bool(symmetric)
        self.features = features
        self.n_classes = n_classes
        self._csr_t: Optional[CSRMatrix] = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_csr(
        cls,
        csr: CSRMatrix,
        name: str = "graph",
        features: Optional[int] = None,
        n_classes: Optional[int] = None,
    ) -> "GraphModel":
        """Exact oracle over an actual (square) sparse matrix."""
        if csr.nrows != csr.ncols:
            raise ValueError(f"adjacency must be square, got {csr.shape}")
        t = csr.transpose()
        symmetric = (
            np.array_equal(csr.indptr, t.indptr)
            and np.array_equal(csr.indices, t.indices)
            and np.array_equal(csr.data, t.data)
        )
        model = cls(
            csr.nrows, csr.nnz, csr=csr, name=name, symmetric=symmetric,
            features=features, n_classes=n_classes,
        )
        model._csr_t = t
        return model

    @classmethod
    def from_dataset(cls, dataset) -> "GraphModel":
        """Exact oracle over a :class:`repro.graph.datasets.Dataset`."""
        return cls.from_csr(
            dataset.adjacency,
            name=dataset.name,
            features=dataset.feature_width,
            n_classes=dataset.num_classes,
        )

    @classmethod
    def uniform(
        cls,
        n: int,
        nnz: int,
        name: str = "uniform",
        symmetric: bool = True,
        features: Optional[int] = None,
        n_classes: Optional[int] = None,
    ) -> "GraphModel":
        """Shape-only oracle under the uniform-nonzeros assumption."""
        return cls(
            n, nnz, csr=None, name=name, symmetric=symmetric,
            features=features, n_classes=n_classes,
        )

    @classmethod
    def from_published(cls, name: str) -> "GraphModel":
        """Uniform oracle at a Table VI dataset's full published size.

        The normalised adjacency adds one self loop per vertex, matching
        :meth:`repro.analysis.model2d.Model2DEpoch.for_published_dataset`.
        """
        from repro.graph.datasets import published_spec

        spec = published_spec(name)
        return cls.uniform(
            spec.vertices,
            spec.edges + spec.vertices,
            name=spec.name,
            symmetric=True,
            features=spec.features,
            n_classes=spec.labels,
        )

    @classmethod
    def coerce(cls, graph) -> "GraphModel":
        """Accept a GraphModel, a Dataset, a CSRMatrix, or a published name."""
        if isinstance(graph, cls):
            return graph
        if isinstance(graph, CSRMatrix):
            return cls.from_csr(graph)
        if isinstance(graph, str):
            return cls.from_published(graph)
        if hasattr(graph, "adjacency"):
            return cls.from_dataset(graph)
        raise TypeError(
            f"cannot build a GraphModel from {type(graph).__name__}; pass a "
            "GraphModel, Dataset, CSRMatrix, or published dataset name"
        )

    # ------------------------------------------------------------------ #
    # oracle internals
    # ------------------------------------------------------------------ #
    @property
    def exact(self) -> bool:
        return self.csr is not None

    @property
    def avg_degree(self) -> float:
        return self.nnz / self.n

    def _matrix(self, transpose: bool) -> CSRMatrix:
        if not transpose:
            return self.csr
        if self._csr_t is None:
            self._csr_t = self.csr.transpose()
        return self._csr_t

    def _row_bounds(self, parts: int, bounds) -> np.ndarray:
        """Boundary array: the equal split of ``parts`` or an explicit
        override (partition-aware layouts pass their distribution's
        uneven rank bounds)."""
        if bounds is None:
            return boundaries(self.n, parts)
        bounds = np.asarray(bounds, dtype=np.int64)
        if bounds[0] != 0 or bounds[-1] != self.n or np.any(
            np.diff(bounds) < 0
        ):
            raise ValueError(
                f"bounds must ascend from 0 to n={self.n}, got {bounds}"
            )
        return bounds

    # ------------------------------------------------------------------ #
    # oracles
    # ------------------------------------------------------------------ #
    def cell_nnz(
        self,
        row_parts: int,
        col_bounds: np.ndarray,
        transpose: bool = False,
    ) -> np.ndarray:
        """Nonzeros per (row block, column range) cell.

        ``col_bounds`` is an ascending boundary array covering ``[0, n]``;
        returns a float ``(row_parts, len(col_bounds) - 1)`` array (exact
        counts are integral floats).
        """
        col_bounds = np.asarray(col_bounds, dtype=np.int64)
        ncells = len(col_bounds) - 1
        if not self.exact:
            row_lens = np.diff(boundaries(self.n, row_parts))
            col_lens = np.diff(col_bounds)
            return (
                self.nnz
                * np.outer(row_lens / self.n, col_lens / self.n)
            )
        csr = self._matrix(transpose)
        row_bounds = boundaries(self.n, row_parts)
        deg = np.diff(csr.indptr)
        row_of = (
            np.searchsorted(row_bounds, np.arange(self.n), side="right") - 1
        )
        nnz_rows = np.repeat(row_of, deg)
        nnz_cols = np.searchsorted(col_bounds, csr.indices, side="right") - 1
        flat = nnz_rows * ncells + nnz_cols
        counts = np.bincount(flat, minlength=row_parts * ncells)
        return counts.reshape(row_parts, ncells).astype(np.float64)

    def row_block_nnz(self, parts: int, transpose: bool = False,
                      bounds=None) -> np.ndarray:
        """Nonzeros per block row (``block_ranges(n, parts)`` or the
        explicit ``bounds`` override)."""
        bounds = self._row_bounds(parts, bounds)
        if not self.exact:
            lens = np.diff(bounds)
            return self.nnz * lens / self.n
        csr = self._matrix(transpose)
        return np.diff(csr.indptr[bounds]).astype(np.float64)

    def col_block_nnz(self, parts: int, transpose: bool = False,
                      bounds=None) -> np.ndarray:
        """Nonzeros per block column."""
        return self.cell_nnz(
            1, self._row_bounds(parts, bounds), transpose
        )[0]

    def col_block_nonzero_rows(
        self, parts: int, transpose: bool = False, bounds=None
    ) -> np.ndarray:
        """Rows with at least one nonzero, per block column.

        This is the structural row count the SparCML-style sparse
        reduce-scatter ships (Section IV-A.3); the uniform backend uses
        the expected-occupancy formula ``n (1 - e^{-d w / n})``.
        """
        bounds = self._row_bounds(parts, bounds)
        parts = len(bounds) - 1
        lens = np.diff(bounds).astype(np.float64)
        if not self.exact:
            return self.n * (1.0 - np.exp(-self.avg_degree * lens / self.n))
        csr = self._matrix(transpose)
        deg = np.diff(csr.indptr)
        nnz_rows = np.repeat(np.arange(self.n, dtype=np.int64), deg)
        nnz_cols = np.searchsorted(bounds, csr.indices, side="right") - 1
        unique = np.unique(nnz_rows * parts + nnz_cols)
        return np.bincount(
            (unique % parts).astype(np.int64), minlength=parts
        ).astype(np.float64)

    def ghost_row_counts(self, bounds) -> Tuple[np.ndarray, np.ndarray]:
        """Per row block: (ghost rows, distinct source blocks).

        The partition-aware term of the schedule oracle: ghost rows are
        the distinct remote-neighbour rows a block must fetch for its
        local multiply (Section IV-A's ``r_i``, whose max is
        ``edgecut_P(A)``).  The exact backend reuses the executed
        runtime's own structure derivation
        (:func:`repro.dist.distribution.ghost_structure`), so predicted
        expansion volume matches the executed ledger byte for byte; the
        uniform backend uses the expected-occupancy estimate
        ``(n - s_i)/n * n (1 - e^{-nnz_i / n})`` with every other block
        as a source.
        """
        bounds = self._row_bounds(len(bounds) - 1, bounds)
        nblocks = len(bounds) - 1
        lens = np.diff(bounds).astype(np.float64)
        if not self.exact:
            nnz_blk = self.nnz * lens / self.n
            occupied = self.n * (1.0 - np.exp(-nnz_blk / self.n))
            ghosts = (self.n - lens) / self.n * occupied
            nsrc = np.where(
                (ghosts > 0) & (nblocks > 1), nblocks - 1, 0
            ).astype(np.float64)
            return ghosts, nsrc
        from repro.dist.distribution import ghost_structure

        ranges = [(int(bounds[i]), int(bounds[i + 1]))
                  for i in range(nblocks)]
        g = ghost_structure(self.csr, ranges)
        return (
            np.array(g.ghost_rows, dtype=np.float64),
            np.array(g.nsources, dtype=np.float64),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "exact" if self.exact else "uniform"
        return (
            f"GraphModel({self.name!r}, n={self.n}, nnz={self.nnz}, {mode})"
        )


# ---------------------------------------------------------------------- #
# phases
# ---------------------------------------------------------------------- #
@dataclass
class CollectivePhase:
    """One bulk-synchronous step of concurrent same-kind collectives."""

    kind: str  # "broadcast" | "allgather" | "reduce_scatter" | "allreduce"
    category: str
    group_size: int
    nbytes: np.ndarray  # payload (broadcast) / total (others) per group
    pipelined: bool = False


@dataclass
class SendRecvPhase:
    """Concurrent point-to-point transfers (the 3D fiber-plane exchange).

    ``pair_nbytes[i]`` is the transfer arriving at transfer ``i``'s source
    rank within the same step -- needed because a rank's step time is the
    sum of its send and its receive.
    """

    category: str
    nbytes: np.ndarray
    pair_nbytes: np.ndarray


@dataclass
class GatherRowsPhase:
    """One ghost-row exchange: per-rank received bytes + source counts.

    Mirrors :meth:`repro.comm.collectives.Collectives.
    gather_rows_charges_sized`'s receive-side accounting: rank ``i``
    spends ``nsources[i] * alpha + beta * nbytes[i]`` seconds and books
    exactly ``nbytes[i]`` received bytes -- the partition-aware term
    whose total is ``sum_i r_i * f * itemsize``.
    """

    category: str
    nbytes: np.ndarray
    nsources: np.ndarray


@dataclass
class TransposePhase:
    """Per-rank transpose-exchange charges (``trpose`` category)."""

    nbytes: np.ndarray


@dataclass
class SpmmPhase:
    """Concurrent local SpMM kernels: per-rank (nnz, nrows, f)."""

    nnz: np.ndarray
    nrows: np.ndarray
    ncols_dense: np.ndarray


@dataclass
class GemmPhase:
    """Concurrent local dense matmuls: per-rank flop counts."""

    flops: np.ndarray


@dataclass
class ElementwisePhase:
    """Concurrent memory-bound elementwise kernels: per-rank bytes."""

    nbytes: np.ndarray


Phase = Union[
    CollectivePhase, SendRecvPhase, GatherRowsPhase, TransposePhase,
    SpmmPhase, GemmPhase, ElementwisePhase,
]


@dataclass
class CommSchedule:
    """An epoch's phases plus the world size that prices them."""

    p: int
    phases: List[Phase]
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def nphases(self) -> int:
        return len(self.phases)

    def counts(self) -> Dict[str, int]:
        """Phase counts by type name (diagnostic)."""
        out: Dict[str, int] = {}
        for ph in self.phases:
            key = type(ph).__name__
            out[key] = out.get(key, 0) + 1
        return out


def _arr(x) -> np.ndarray:
    return np.atleast_1d(np.asarray(x, dtype=np.float64))


class ScheduleBuilder:
    """Accumulates phases in executed-epoch order.

    Each method appends exactly one bulk-synchronous step; array arguments
    hold one entry per concurrent collective/kernel in the step, matching
    how the executed algorithms group charges under one
    :meth:`~repro.comm.tracker.CommTracker.step_scope`.
    """

    def __init__(self, p: int):
        if p < 1:
            raise ValueError(f"world size must be >= 1, got {p}")
        self.p = int(p)
        self.phases: List[Phase] = []

    # -- communication -------------------------------------------------- #
    def broadcast(self, category: str, group_size: int, nbytes,
                  pipelined: bool = False) -> None:
        self.phases.append(
            CollectivePhase("broadcast", category, int(group_size),
                            _arr(nbytes), pipelined)
        )

    def allgather(self, category: str, group_size: int, total_bytes) -> None:
        self.phases.append(
            CollectivePhase("allgather", category, int(group_size),
                            _arr(total_bytes))
        )

    def reduce_scatter(self, category: str, group_size: int,
                       total_bytes) -> None:
        self.phases.append(
            CollectivePhase("reduce_scatter", category, int(group_size),
                            _arr(total_bytes))
        )

    def allreduce(self, category: str, group_size: int, nbytes) -> None:
        self.phases.append(
            CollectivePhase("allreduce", category, int(group_size),
                            _arr(nbytes))
        )

    def sendrecv(self, category: str, nbytes, pair_nbytes) -> None:
        nbytes, pair = _arr(nbytes), _arr(pair_nbytes)
        if nbytes.shape != pair.shape:
            raise ValueError("sendrecv needs matching nbytes/pair arrays")
        if nbytes.size:
            self.phases.append(SendRecvPhase(category, nbytes, pair))

    def gather_rows(self, category: str, nbytes, nsources) -> None:
        nbytes, nsources = np.broadcast_arrays(_arr(nbytes), _arr(nsources))
        self.phases.append(GatherRowsPhase(
            category,
            np.ascontiguousarray(nbytes, dtype=np.float64),
            np.ascontiguousarray(nsources, dtype=np.float64),
        ))

    def transpose(self, nbytes) -> None:
        self.phases.append(TransposePhase(_arr(nbytes)))

    # -- local compute -------------------------------------------------- #
    def spmm(self, nnz, nrows, ncols_dense) -> None:
        nnz, nrows, f = np.broadcast_arrays(
            _arr(nnz), _arr(nrows), _arr(ncols_dense)
        )
        self.phases.append(
            SpmmPhase(np.ascontiguousarray(nnz, dtype=np.float64),
                      np.ascontiguousarray(nrows, dtype=np.float64),
                      np.ascontiguousarray(f, dtype=np.float64))
        )

    def gemm(self, flops) -> None:
        self.phases.append(GemmPhase(_arr(flops)))

    def elementwise(self, nbytes) -> None:
        self.phases.append(ElementwisePhase(_arr(nbytes)))

    def build(self, **meta) -> CommSchedule:
        return CommSchedule(self.p, self.phases, dict(meta))


# ---------------------------------------------------------------------- #
# evaluation
# ---------------------------------------------------------------------- #
@dataclass
class SimResult:
    """Priced schedule: modeled wall seconds + the exact byte ledger.

    ``seconds_by_category`` is the bulk-synchronous wall clock (per-phase
    maximum over concurrent participants, like the tracker's
    ``step_scope``); ``bytes_by_category`` sums the per-rank critical-path
    bytes over every rank -- the quantity the executed
    :class:`~repro.comm.tracker.CommTracker` ledger records.  The
    latency/bandwidth/compute split decomposes the same wall clock by
    mechanism (alpha terms, beta terms, local kernels).
    """

    seconds_by_category: Dict[str, float]
    bytes_by_category: Dict[str, int]
    latency_seconds: float
    bandwidth_seconds: float
    compute_seconds: float
    messages: int
    nphases: int

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_category.values())

    @property
    def comm_seconds(self) -> float:
        return self.latency_seconds + self.bandwidth_seconds

    @property
    def comm_bytes(self) -> int:
        return sum(self.bytes_by_category[c] for c in Category.COMM)

    @property
    def epochs_per_second(self) -> float:
        total = self.total_seconds
        return 1.0 / total if total > 0 else float("inf")

    def breakdown(self) -> Dict[str, float]:
        return dict(self.seconds_by_category)


def _lg(p: int) -> float:
    return 0.0 if p <= 1 else float(math.ceil(math.log2(p)))


class _Accumulator:
    def __init__(self):
        self.sec = {c: 0.0 for c in Category.ALL}
        self.nbytes = {c: 0.0 for c in Category.ALL}
        self.lat = 0.0
        self.bw = 0.0
        self.compute = 0.0
        self.messages = 0

    def comm(self, category: str, wall: float, wall_lat: float,
             total_bytes: float, messages: int) -> None:
        self.sec[category] += wall
        self.nbytes[category] += total_bytes
        self.lat += wall_lat
        self.bw += wall - wall_lat
        self.messages += messages

    def local(self, category: str, wall: float) -> None:
        self.sec[category] += wall
        self.compute += wall


def _eval_collective(acc: _Accumulator, ph: CollectivePhase,
                     profile: MachineProfile, p: int) -> None:
    g = ph.group_size
    m = ph.nbytes
    if g <= 1 or not m.size:
        return
    alpha = profile.alpha_for_span(p)
    beta = profile.beta_effective(p)
    lg = _lg(g)
    active = m > 0
    if ph.kind == "broadcast":
        lat_msgs = 1.0 if ph.pipelined else lg
        sec = np.where(active, lat_msgs * alpha + beta * m, 0.0)
        crit = np.where(active, np.trunc(m), 0.0)
        msgs = max(1, int(lat_msgs))
        lat_one = lat_msgs * alpha
    elif ph.kind in ("allgather", "reduce_scatter"):
        moved = m * (g - 1) / g
        sec = np.where(active, lg * alpha + beta * moved, 0.0)
        crit = np.where(active, np.trunc(moved), 0.0)
        msgs = int(lg)
        lat_one = lg * alpha
    elif ph.kind == "allreduce":
        moved = m * (g - 1) / g
        sec = np.where(active, 2.0 * lg * alpha + 2.0 * beta * moved, 0.0)
        crit = np.where(active, 2.0 * np.trunc(moved), 0.0)
        msgs = 2 * int(lg)
        lat_one = 2.0 * lg * alpha
    else:  # pragma: no cover - builder restricts kinds
        raise ValueError(f"unknown collective kind {ph.kind!r}")
    wall = float(sec.max())
    wall_lat = lat_one if wall > 0 else 0.0
    total = float(crit.sum()) * g
    nactive = int(np.count_nonzero(active))
    acc.comm(ph.category, wall, wall_lat, total, msgs * g * nactive)


def _eval_sendrecv(acc: _Accumulator, ph: SendRecvPhase,
                   profile: MachineProfile, p: int) -> None:
    alpha = profile.alpha_for_span(p)
    beta = profile.beta_effective(p)
    sec = alpha + beta * ph.nbytes
    pair_sec = alpha + beta * ph.pair_nbytes
    rank_total = sec + pair_sec
    i = int(np.argmax(rank_total))
    wall = float(rank_total[i])
    acc.comm(ph.category, wall, 2.0 * alpha, float(np.trunc(ph.nbytes).sum()),
             2 * ph.nbytes.size)


def _eval_gather_rows(acc: _Accumulator, ph: GatherRowsPhase,
                      profile: MachineProfile, p: int) -> None:
    alpha = profile.alpha_for_span(p)
    beta = profile.beta_effective(p)
    sec = ph.nsources * alpha + beta * ph.nbytes
    i = int(np.argmax(sec)) if sec.size else 0
    wall = float(sec[i]) if sec.size else 0.0
    wall_lat = float(ph.nsources[i]) * alpha if wall > 0 else 0.0
    acc.comm(ph.category, wall, wall_lat,
             float(np.trunc(ph.nbytes).sum()), int(ph.nsources.sum()))


def _eval_transpose(acc: _Accumulator, ph: TransposePhase,
                    profile: MachineProfile) -> None:
    sec = profile.alpha + profile.beta * ph.nbytes
    wall = float(sec.max()) if sec.size else 0.0
    acc.comm(Category.TRPOSE, wall, profile.alpha if wall > 0 else 0.0,
             float(np.trunc(ph.nbytes).sum()), ph.nbytes.size)


def _eval_spmm(acc: _Accumulator, ph: SpmmPhase,
               perf: SpmmPerfModel) -> None:
    nnz, nrows, f = ph.nnz, ph.nrows, ph.ncols_dense
    trivial = (nnz <= 0) | (f <= 0)
    d = nnz / np.maximum(nrows, 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        rate = (
            perf.base_flops
            * d / (d + perf.d_half)
            * f / (f + perf.w_half)
        )
        sec = np.where(
            trivial,
            perf.launch_overhead,
            2.0 * nnz * f / rate + perf.launch_overhead,
        )
    acc.local(Category.SPMM, float(sec.max()))


def _eval_gemm(acc: _Accumulator, ph: GemmPhase,
               profile: MachineProfile) -> None:
    sec = (
        np.trunc(ph.flops) / profile.gemm_flops
        + profile.kernel_launch_overhead
    )
    acc.local(Category.MISC, float(sec.max()))


def _eval_elementwise(acc: _Accumulator, ph: ElementwisePhase,
                      profile: MachineProfile) -> None:
    sec = (
        np.trunc(ph.nbytes) / profile.memory_bandwidth
        + profile.kernel_launch_overhead
    )
    acc.local(Category.MISC, float(sec.max()))


def evaluate_schedule(
    schedule: CommSchedule, profile: MachineProfile
) -> SimResult:
    """Price a schedule on a machine profile.

    Applies the exact :mod:`repro.comm.cost_model` arithmetic (span = the
    world size ``schedule.p``, same truncations, same zero shortcuts) so
    exact-mode schedules reproduce the executed ledger byte for byte.
    """
    acc = _Accumulator()
    perf = SpmmPerfModel.from_profile(profile)
    p = schedule.p
    for ph in schedule.phases:
        if isinstance(ph, CollectivePhase):
            _eval_collective(acc, ph, profile, p)
        elif isinstance(ph, SendRecvPhase):
            _eval_sendrecv(acc, ph, profile, p)
        elif isinstance(ph, GatherRowsPhase):
            _eval_gather_rows(acc, ph, profile, p)
        elif isinstance(ph, TransposePhase):
            _eval_transpose(acc, ph, profile)
        elif isinstance(ph, SpmmPhase):
            _eval_spmm(acc, ph, perf)
        elif isinstance(ph, GemmPhase):
            _eval_gemm(acc, ph, profile)
        elif isinstance(ph, ElementwisePhase):
            _eval_elementwise(acc, ph, profile)
        else:  # pragma: no cover - phase set is closed
            raise TypeError(f"unknown phase type {type(ph).__name__}")
    return SimResult(
        seconds_by_category=dict(acc.sec),
        bytes_by_category={c: int(v) for c, v in acc.nbytes.items()},
        latency_seconds=acc.lat,
        bandwidth_seconds=acc.bw,
        compute_seconds=acc.compute,
        messages=acc.messages,
        nphases=schedule.nphases,
    )


# ---------------------------------------------------------------------- #
# shared epoch skeletons (mirroring repro.dist.base)
# ---------------------------------------------------------------------- #
def emit_blockrow_epoch(
    b: ScheduleBuilder,
    widths: Sequence[int],
    rows_per_rank: np.ndarray,
    forward_spmm: Callable[[int], None],
    backward_spmm: Callable[[int], None],
    replicated_allreduce: Callable[[int], None],
    pre_backward: Optional[Callable[[], None]] = None,
) -> None:
    """The :class:`~repro.dist.base.BlockRowAlgorithm` epoch, symbolically.

    Phase-for-phase mirror of ``BlockRowAlgorithm._run_epoch`` (forward
    sweep, loss reduction, backward recursion); the callables plug in the
    1D/1.5D-specific data movement exactly like the executed hooks do.
    """
    rows = np.asarray(rows_per_rank, dtype=np.float64)
    n_layers = len(widths) - 1
    for l in range(n_layers):
        f_in, f_out = widths[l], widths[l + 1]
        forward_spmm(f_in)
        b.gemm(rows * (2.0 * f_in * f_out))
        b.elementwise(rows * (2.0 * f_out * WB))
    replicated_allreduce(LOSS_TERM_BYTES)
    b.elementwise(rows * (3.0 * widths[-1] * WB))
    if pre_backward is not None:
        pre_backward()
    for l in range(n_layers - 1, -1, -1):
        f_in, f_out = widths[l], widths[l + 1]
        backward_spmm(f_out)
        b.gemm(rows * (2.0 * f_in * f_out))
        replicated_allreduce(f_in * f_out * WB)
        if l > 0:
            b.gemm(rows * (2.0 * f_out * f_in))
            b.elementwise(rows * (3.0 * f_in * WB))


def emit_replicated_matmul(
    b: ScheduleBuilder,
    group_rows: np.ndarray,
    group_size: int,
    rows_of_rank: np.ndarray,
    outw_of_rank: np.ndarray,
    fin_widths: np.ndarray,
) -> None:
    """``T W`` / ``T^T G`` stage broadcasts + partial GEMMs.

    Mirrors ``GridAlgorithm._matmul_w`` / ``_weight_grad``'s loop: for
    every nonempty feature-column stage ``t``, each row group's ``t``-th
    member broadcasts its block row-wise (one step) and every rank runs a
    partial GEMM (one step).
    """
    group_rows = np.asarray(group_rows, dtype=np.float64)
    for w_t in fin_widths:
        if w_t == 0:
            continue
        b.broadcast(
            Category.DCOMM, group_size, group_rows * (w_t * WB),
            pipelined=True,
        )
        b.gemm(2.0 * rows_of_rank * w_t * outw_of_rank)


def emit_grid_epoch(
    b: ScheduleBuilder,
    widths: Sequence[int],
    rows_of_rank: np.ndarray,
    outw_of_rank: Callable[[int], np.ndarray],
    grid_spmm: Callable[[int, bool], None],
    matmul_w: Callable[[int, int], None],
    weight_grad: Callable[[int, int], None],
    row_allgather: Callable[[int], None],
    epoch_transpose: Callable[[], None],
) -> None:
    """The :class:`~repro.dist.base.GridAlgorithm` epoch, symbolically.

    Phase-for-phase mirror of ``GridAlgorithm._run_epoch`` shared by the
    2D SUMMA and Split-3D emitters; ``grid_spmm(f, backward)`` selects the
    forward (``A^T``) or backward (``A``) sparse operand.
    """
    rows = np.asarray(rows_of_rank, dtype=np.float64)
    n_layers = len(widths) - 1
    for l in range(n_layers):
        f_in, f_out = widths[l], widths[l + 1]
        grid_spmm(f_in, False)
        matmul_w(f_in, f_out)
        if l < n_layers - 1:
            b.elementwise(rows * outw_of_rank(f_out) * (2.0 * WB))
        else:
            row_allgather(f_out)
            b.elementwise(rows * (2.0 * f_out * WB))
    b.allreduce(Category.DCOMM, b.p, LOSS_TERM_BYTES)
    b.elementwise(rows * (3.0 * widths[-1] * WB))
    epoch_transpose()
    for l in range(n_layers - 1, -1, -1):
        f_in, f_out = widths[l], widths[l + 1]
        grid_spmm(f_out, True)
        weight_grad(f_in, f_out)
        if l > 0:
            matmul_w(f_out, f_in)
            b.elementwise(rows * outw_of_rank(f_in) * (3.0 * WB))
