"""Named machine presets for the scaling simulator.

Each preset is a :class:`repro.config.MachineProfile` -- the same
alpha-beta description the executed virtual runtime charges against -- so
a sweep's predictions and a small-P executed run are priced by identical
arithmetic.  Three families cover the design space the paper discusses:

=============  ========================================================
``summit``     The paper's testbed (OLCF Summit): 6 V100s/node, NVLink
               2.0 + X-bus inside the node, dual-rail EDR InfiniBand
               with full fat-tree bisection (no congestion term).
``cori-gpu``   A Cori-GPU-like machine: 8 V100s/node (4 per socket),
               PCIe-switched intra-node fabric (slower than NVLink), 4
               dual-port EDR NICs per node -- less per-GPU injection
               bandwidth than Summit and mild tapering congestion.
``ethernet``   A commodity 25 GbE cluster: 4 GPUs/node over PCIe, high
               message latency, an oversubscribed top-of-rack switch
               hierarchy modelled by a strong congestion term.
=============  ========================================================

Numbers are representative published link rates, not measurements; the
point is the *relative* regimes (latency-bound vs bandwidth-bound vs
congestion-bound), which is also all the paper's own flat alpha-beta
analysis claims.  ``commodity`` and ``zero-cost`` from
:mod:`repro.config` remain available through the same registry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.config import (
    MachineProfile,
    SUMMIT,
    get_profile,
    register_profile,
)

__all__ = ["CORI_GPU", "ETHERNET", "MACHINES", "get_machine", "list_machines"]


def _gbps(gigabytes_per_second: float) -> float:
    """GB/s -> seconds per byte."""
    return 1.0 / (gigabytes_per_second * 1e9)


#: Cori-GPU-like: 8 V100s per node behind PCIe switches, 4 dual-port EDR
#: NICs per node (~12.5 GB/s injection per GPU when all eight drive the
#: wire), with mild fat-tree tapering.
CORI_GPU = MachineProfile(
    name="cori-gpu",
    alpha=1.8e-6,
    beta=_gbps(12.5),
    beta_intranode=_gbps(32.0),     # NVLink pairs / PCIe 3 x16 switched
    beta_intersocket=_gbps(16.0),   # cross-socket over PCIe + UPI
    alpha_intranode=8.0e-7,
    gpus_per_node=8,
    gpus_per_socket=4,
    gemm_flops=7.0e12,              # same V100 class as Summit
    spmm_base_flops=7.0e10,
    memory_bandwidth=900.0e9,       # V100 HBM2 (roofline denominator)
    congestion_per_doubling=0.05,
)

#: Commodity ethernet: 25 GbE (~3 GB/s) shared per node, 4 GPUs/node,
#: high latency, oversubscribed spine (strong congestion growth).
ETHERNET = MachineProfile(
    name="ethernet",
    alpha=2.5e-5,
    beta=_gbps(3.0),
    beta_intranode=_gbps(24.0),     # PCIe 4 x16 peer-to-peer
    beta_intersocket=_gbps(12.0),
    alpha_intranode=3.0e-6,
    gpus_per_node=4,
    gpus_per_socket=2,
    gemm_flops=7.0e12,              # same GPUs, worse network: the
    spmm_base_flops=7.0e10,         # paper's "slower network" thought
    memory_bandwidth=900.0e9,       # experiment (Section VI) keeps the
    congestion_per_doubling=0.25,   # same V100 HBM2 local roofline
)

#: The simulator's named machine grid (registered with repro.config so
#: every CLI/benchmark entry point can refer to them by name).
MACHINES: Dict[str, MachineProfile] = {
    "summit": SUMMIT,
    "cori-gpu": CORI_GPU,
    "ethernet": ETHERNET,
}

for _profile in MACHINES.values():
    register_profile(_profile)


def get_machine(
    machine: Optional[Union[str, MachineProfile]]
) -> MachineProfile:
    """Resolve a machine name or profile (``None`` -> Summit default).

    Accepts the simulator presets, anything registered with
    :func:`repro.config.register_profile`, or a profile instance.
    """
    if isinstance(machine, MachineProfile):
        return machine
    return get_profile(machine)


def list_machines() -> List[str]:
    """Names of the simulator's machine presets."""
    return sorted(MACHINES)
