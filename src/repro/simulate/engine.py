"""The sweep engine: (algorithm x graph x P x machine) grids in seconds.

:func:`predict_epoch` prices one configuration; :func:`sweep` evaluates a
full grid, reusing each emitted schedule across machines (emission
depends only on the algorithm, graph, and P -- pricing is the cheap
part).  Rank counts that an algorithm's mesh cannot realise (non-square P
for 2D, non-cube for 3D, replication not dividing P for 1.5D) are skipped
rather than silently snapped, so winners are always compared at identical
P.

A full default sweep -- four algorithms, three machines, P up to 16384 --
completes in a few seconds on a laptop and serialises to JSON for the
``repro sweep`` CLI and the CI artifact.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.comm.mesh import is_perfect_cube, is_perfect_square
from repro.config import MachineProfile
from repro.sparse.csr import CSRMatrix
from repro.simulate.machines import get_machine
from repro.simulate.schedule import (
    CommSchedule,
    GraphModel,
    SimResult,
    evaluate_schedule,
)

__all__ = [
    "DEFAULT_MACHINES",
    "DEFAULT_P_GRID",
    "SimPoint",
    "SweepResult",
    "default_algo_kwargs",
    "predict_epoch",
    "supports_p",
    "sweep",
]

#: Machine names of the default sweep grid.
DEFAULT_MACHINES: Tuple[str, ...] = ("summit", "cori-gpu", "ethernet")

#: Rank counts of the default sweep grid (all perfect squares; 64 and
#: 4096 are also perfect cubes, where the 3D algorithm joins the race).
DEFAULT_P_GRID: Tuple[int, ...] = (4, 16, 64, 256, 1024, 4096, 16384)


def supports_p(algorithm: str, p: int) -> bool:
    """Whether ``algorithm``'s process mesh can realise ``p`` ranks."""
    name = algorithm.lower()
    if p < 1:
        return False
    if name == "2d":
        return is_perfect_square(p)
    if name == "3d":
        return is_perfect_cube(p)
    return True


def default_algo_kwargs(algorithm: str, p: int) -> Dict[str, object]:
    """Per-point defaults: the 1.5D replication picks ``c ~ sqrt(P/2)``.

    Section IV-B's optimum, snapped down to the largest divisor of ``P``
    not exceeding it (``c`` must tile the process grid).
    """
    if algorithm.lower() != "1.5d":
        return {}
    target = max(1, math.isqrt(max(1, p // 2)))
    c = max(d for d in range(1, target + 1) if p % d == 0)
    return {"replication": c}


@dataclass(frozen=True)
class SimPoint:
    """One priced configuration of the sweep grid."""

    algorithm: str
    graph: str
    p: int
    machine: str
    seconds: float
    compute_seconds: float
    latency_seconds: float
    bandwidth_seconds: float
    seconds_by_category: Dict[str, float]
    bytes_by_category: Dict[str, int]
    comm_bytes: int
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def epochs_per_second(self) -> float:
        return 1.0 / self.seconds if self.seconds > 0 else float("inf")

    def to_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "graph": self.graph,
            "p": self.p,
            "machine": self.machine,
            "seconds": self.seconds,
            "epochs_per_second": self.epochs_per_second,
            "compute_seconds": self.compute_seconds,
            "latency_seconds": self.latency_seconds,
            "bandwidth_seconds": self.bandwidth_seconds,
            "seconds_by_category": dict(self.seconds_by_category),
            "bytes_by_category": dict(self.bytes_by_category),
            "comm_bytes": self.comm_bytes,
            "params": dict(self.params),
        }


def _point_from_result(
    algorithm: str,
    graph: GraphModel,
    p: int,
    machine: MachineProfile,
    result: SimResult,
    params: Mapping[str, object],
) -> SimPoint:
    return SimPoint(
        algorithm=algorithm,
        graph=graph.name,
        p=p,
        machine=machine.name,
        seconds=result.total_seconds,
        compute_seconds=result.compute_seconds,
        latency_seconds=result.latency_seconds,
        bandwidth_seconds=result.bandwidth_seconds,
        seconds_by_category=result.seconds_by_category,
        bytes_by_category=result.bytes_by_category,
        comm_bytes=result.comm_bytes,
        params=dict(params),
    )


def _widths_for(
    graph: GraphModel,
    widths: Optional[Sequence[int]],
    hidden: int,
    layers: int,
) -> Tuple[int, ...]:
    if widths is not None:
        return tuple(int(w) for w in widths)
    if graph.features is None or graph.n_classes is None:
        raise ValueError(
            f"graph {graph.name!r} carries no feature/class widths; pass "
            "widths=(f0, ..., fL) explicitly"
        )
    from repro.graph.datasets import layer_widths

    return layer_widths(graph.features, graph.n_classes, hidden, layers)


def _emit(
    algorithm: str,
    graph: GraphModel,
    widths: Sequence[int],
    p: int,
    kwargs: Mapping[str, object],
) -> CommSchedule:
    from repro.dist.registry import ALGORITHMS

    name = algorithm.lower()
    if name not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        )
    return ALGORITHMS[name].emit_comm_schedule(graph, widths, p, **kwargs)


def predict_epoch(
    algorithm: str,
    graph,
    p: int,
    machine: Optional[Union[str, MachineProfile]] = None,
    widths: Optional[Sequence[int]] = None,
    hidden: int = 16,
    layers: int = 3,
    **algo_kwargs,
) -> SimPoint:
    """Predict one training epoch's time and communication ledger.

    ``graph`` is a :class:`~repro.simulate.schedule.GraphModel`, a
    Dataset, a CSRMatrix, or a published dataset name; ``machine`` a
    preset name or profile.  Remaining keyword arguments mirror the
    algorithm constructors (``variant``, ``replication``, ``grid``,
    ``summa_block``).
    """
    graph = GraphModel.coerce(graph)
    profile = get_machine(machine)
    widths = _widths_for(graph, widths, hidden, layers)
    # An explicit rectangular grid lifts the square-P constraint (IV-C.6).
    explicit_grid = algo_kwargs.get("grid") is not None
    if not explicit_grid and not supports_p(algorithm, p):
        raise ValueError(
            f"algorithm {algorithm!r} cannot run on P={p} ranks "
            "(mesh constraint)"
        )
    schedule = _emit(algorithm, graph, widths, p, algo_kwargs)
    result = evaluate_schedule(schedule, profile)
    return _point_from_result(
        algorithm.lower(), graph, p, profile, result, schedule.meta
    )


@dataclass
class SweepResult:
    """All priced points of one sweep plus grid metadata."""

    points: List[SimPoint]
    algorithms: Tuple[str, ...]
    machines: Tuple[str, ...]
    ps: Tuple[int, ...]
    graphs: Tuple[str, ...]
    elapsed_seconds: float

    def winners(self) -> Dict[Tuple[str, str, int], SimPoint]:
        """Fastest algorithm per (graph, machine, P) grid point."""
        best: Dict[Tuple[str, str, int], SimPoint] = {}
        for pt in self.points:
            key = (pt.graph, pt.machine, pt.p)
            if key not in best or pt.seconds < best[key].seconds:
                best[key] = pt
        return best

    def series(
        self, graph: str, machine: str, algorithm: str
    ) -> List[Tuple[int, float]]:
        """``(P, seconds)`` pairs of one scaling curve, ascending in P."""
        picked = [
            (pt.p, pt.seconds)
            for pt in self.points
            if pt.graph == graph
            and pt.machine == machine
            and pt.algorithm == algorithm
        ]
        return sorted(picked)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro-sweep/1",
            "grid": {
                "algorithms": list(self.algorithms),
                "machines": list(self.machines),
                "ps": list(self.ps),
                "graphs": list(self.graphs),
            },
            "elapsed_seconds": self.elapsed_seconds,
            "points": [pt.to_dict() for pt in self.points],
            "winners": [
                {
                    "graph": g,
                    "machine": m,
                    "p": p,
                    "algorithm": pt.algorithm,
                    "seconds": pt.seconds,
                }
                for (g, m, p), pt in sorted(self.winners().items())
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str, indent: int = 2) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=indent))
            fh.write("\n")


def sweep(
    graphs,
    algorithms: Optional[Sequence[str]] = None,
    ps: Sequence[int] = DEFAULT_P_GRID,
    machines: Sequence[Union[str, MachineProfile]] = DEFAULT_MACHINES,
    widths: Optional[Sequence[int]] = None,
    hidden: int = 16,
    layers: int = 3,
    algo_kwargs: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> SweepResult:
    """Evaluate an (algorithm x graph x P x machine) grid.

    ``graphs`` is one graph or a sequence of graphs (anything
    :meth:`GraphModel.coerce` accepts).  ``algo_kwargs`` optionally maps
    algorithm name to constructor keywords; otherwise
    :func:`default_algo_kwargs` supplies per-point defaults (the 1.5D
    replication heuristic).  Invalid (algorithm, P) pairs are skipped.
    """
    from repro.dist.registry import ALGORITHMS

    if algorithms is None:
        algorithms = tuple(sorted(ALGORITHMS))
    if isinstance(graphs, (str, GraphModel, CSRMatrix)) or hasattr(
        graphs, "adjacency"
    ):
        graphs = [graphs]
    graph_models = [GraphModel.coerce(g) for g in graphs]
    profiles = [get_machine(m) for m in machines]
    algo_kwargs = dict(algo_kwargs or {})

    t0 = time.perf_counter()
    points: List[SimPoint] = []
    for graph in graph_models:
        w = _widths_for(graph, widths, hidden, layers)
        for algorithm in algorithms:
            name = algorithm.lower()
            for p in ps:
                kwargs = dict(
                    algo_kwargs.get(name, default_algo_kwargs(name, p))
                )
                grid = kwargs.get("grid")
                if grid is not None:
                    # An explicit rectangular grid replaces the mesh
                    # constraint: it is valid exactly where it tiles P.
                    if int(grid[0]) * int(grid[1]) != p:
                        continue
                elif not supports_p(name, p):
                    continue
                replication = kwargs.get("replication")
                if replication is not None and p % int(replication) != 0:
                    continue  # fixed c cannot tile this grid point
                schedule = _emit(name, graph, w, p, kwargs)
                for profile in profiles:
                    result = evaluate_schedule(schedule, profile)
                    points.append(
                        _point_from_result(
                            name, graph, p, profile, result, schedule.meta
                        )
                    )
    elapsed = time.perf_counter() - t0
    return SweepResult(
        points=points,
        algorithms=tuple(a.lower() for a in algorithms),
        machines=tuple(pr.name for pr in profiles),
        ps=tuple(int(p) for p in ps),
        graphs=tuple(g.name for g in graph_models),
        elapsed_seconds=elapsed,
    )
