"""Machine-profile scaling simulator and sweep engine.

The virtual runtime in :mod:`repro.comm` *executes* the paper's four
distributed algorithms, so it is limited to rank counts a single process
can hold.  This package answers the question the paper's scaling plots
answer -- "which algorithm wins on which machine at which P?" -- without
instantiating any ranks:

* :mod:`repro.simulate.machines` -- named machine presets (Summit-like,
  Cori-GPU-like, commodity ethernet) on top of
  :class:`repro.config.MachineProfile`;
* :mod:`repro.simulate.schedule` -- the symbolic execution path: each
  algorithm family emits its per-epoch communication schedule
  (collective, group size, bytes) through the ``emit_comm_schedule``
  hooks on the :mod:`repro.dist` classes, and the schedule is priced with
  the exact :mod:`repro.comm.cost_model` formulas;
* :mod:`repro.simulate.engine` -- the sweep engine evaluating
  (algorithm x graph x P x machine) grids up to P >= 16384 in seconds,
  with per-point winners and JSON output.

The headline invariant: a schedule emitted from the *actual* adjacency
matrix predicts the executed virtual run's per-epoch communication ledger
**byte for byte** (tested at P in {4, 8, 16} for every registered
algorithm), which is what licenses extrapolating it to P = 16384.
"""

from repro.simulate.engine import (
    DEFAULT_MACHINES,
    DEFAULT_P_GRID,
    SimPoint,
    SweepResult,
    predict_epoch,
    sweep,
)
from repro.simulate.machines import get_machine, list_machines
from repro.simulate.schedule import (
    CommSchedule,
    GraphModel,
    ScheduleBuilder,
    SimResult,
    evaluate_schedule,
)

__all__ = [
    "CommSchedule",
    "DEFAULT_MACHINES",
    "DEFAULT_P_GRID",
    "GraphModel",
    "ScheduleBuilder",
    "SimPoint",
    "SimResult",
    "SweepResult",
    "evaluate_schedule",
    "get_machine",
    "list_machines",
    "predict_epoch",
    "sweep",
]
