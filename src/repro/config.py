"""Global configuration: machine profiles, dtype sizes, defaults.

The paper (CAGNET, SC 2020) runs on the Summit supercomputer at OLCF and
analyses its algorithms under the alpha-beta communication model: a message
of ``n`` words costs ``alpha + beta * n`` time, where ``alpha`` is the
per-message latency and ``beta`` the reciprocal bandwidth (time per word).

We reproduce the experiments on a *virtual* distributed runtime, so the
machine is described by a :class:`MachineProfile` instead of real hardware.
The default profile is calibrated to the Summit numbers the paper reports:

* inter-node: dual-rail EDR InfiniBand, 23 GB/s per node pair;
* intra-socket: NVLink 2.0, 100 GB/s total bidirectional per GPU;
* cross-socket: IBM X-bus, 64 GB/s;
* V100-class local compute rates for SpMM and GEMM.

All rates are expressed in **seconds per byte** (beta) and **seconds per
message** (alpha) so they plug directly into the cost formulas of
:mod:`repro.comm.cost_model`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

#: Number of bytes per matrix element.  The paper trains in fp32.
FP32_BYTES = 4
FP64_BYTES = 8
#: Bytes per sparse index entry (int32 indices, as cuSPARSE csrmm2 uses).
INDEX_BYTES = 4

#: Default element size used when charging communication for dense blocks.
DEFAULT_WORD_BYTES = FP32_BYTES


def _gbps_to_sec_per_byte(gigabytes_per_second: float) -> float:
    """Convert a link bandwidth in GB/s to an inverse bandwidth (s/byte)."""
    return 1.0 / (gigabytes_per_second * 1e9)


@dataclasses.dataclass(frozen=True)
class MachineProfile:
    """Alpha-beta description of a (virtual) distributed machine.

    Parameters mirror the quantities the paper uses in its analysis
    (Section III-A, Table I): ``alpha`` is the per-message latency and
    ``beta`` the per-word (here per-byte) transfer time.  Three bandwidth
    tiers model Summit's NVLink / X-bus / InfiniBand hierarchy; the
    collectives layer picks a tier from the number of ranks involved and
    ``gpus_per_node``.

    Compute-side rates parameterise the local-kernel time model:
    ``gemm_flops`` is the dense-matmul rate; ``spmm_base_flops`` is the
    sparse-times-tall-skinny-dense rate *before* the sparsity/skinny-operand
    degradation modeled in :mod:`repro.sparse.perfmodel`.
    """

    name: str = "summit"
    #: Per-message latency for inter-node messages (seconds).
    alpha: float = 2.0e-6
    #: Inverse bandwidth for inter-node messages (seconds per byte).
    beta: float = _gbps_to_sec_per_byte(23.0)
    #: Inverse bandwidth within a socket (NVLink 2.0 tier).
    beta_intranode: float = _gbps_to_sec_per_byte(100.0)
    #: Inverse bandwidth across sockets of one node (X-bus tier).
    beta_intersocket: float = _gbps_to_sec_per_byte(64.0)
    #: Latency for intra-node messages (seconds).
    alpha_intranode: float = 5.0e-7
    #: GPUs per node; ranks are folded onto nodes round-robin in blocks.
    gpus_per_node: int = 6
    #: GPUs per socket (Summit: 3 per POWER9 socket).
    gpus_per_socket: int = 3
    #: Dense matmul rate in FLOP/s (V100 fp32 is ~14 TFLOP/s; sustained less).
    gemm_flops: float = 7.0e12
    #: Base SpMM rate in FLOP/s before degradation factors.  Calibrated so
    #: the modeled Fig. 2 epoch times land near the paper's absolute range:
    #: cuSPARSE csrmm2 on V100 sustains ~60-120 GFLOP/s for GNN-shaped
    #: operands (Yang et al. [33]) before the sparsity/width degradation
    #: modeled in :mod:`repro.sparse.perfmodel`.
    spmm_base_flops: float = 7.0e10
    #: Fixed per-kernel launch overhead (seconds), charged per local kernel.
    kernel_launch_overhead: float = 1.0e-5
    #: Memory-bandwidth bound rate for elementwise ops (bytes/sec, HBM2).
    memory_bandwidth: float = 800.0e9
    #: Bytes per dense element for communication accounting.
    word_bytes: int = DEFAULT_WORD_BYTES
    #: Inter-node congestion: fractional bandwidth loss per doubling of the
    #: node count a collective spans.  Fat-tree machines with full bisection
    #: bandwidth (Summit) use 0.0 (the paper's flat alpha-beta model);
    #: oversubscribed commodity fabrics lose a constant factor per level of
    #: the tree, which this models as ``beta * (1 + g * lg(nodes))``.
    congestion_per_doubling: float = 0.0

    def beta_for_span(self, nranks_spanned: int) -> float:
        """Pick the bandwidth tier for a collective spanning ``nranks_spanned``.

        A collective confined to one socket uses the NVLink tier, one node
        uses the X-bus tier, anything wider the inter-node tier.  This is
        deliberately coarse -- exactly as coarse as the paper's own analysis,
        which treats Summit as a flat alpha-beta machine but reports the
        tiered bandwidths in its system description.
        """
        if nranks_spanned <= self.gpus_per_socket:
            return self.beta_intranode
        if nranks_spanned <= self.gpus_per_node:
            return self.beta_intersocket
        return self.beta

    def alpha_for_span(self, nranks_spanned: int) -> float:
        """Latency tier matching :meth:`beta_for_span`."""
        if nranks_spanned <= self.gpus_per_node:
            return self.alpha_intranode
        return self.alpha

    def beta_effective(self, nranks_spanned: int) -> float:
        """Bandwidth tier with the congestion penalty applied.

        Equal to :meth:`beta_for_span` on uncongested profiles
        (``congestion_per_doubling == 0``); otherwise inter-node transfers
        degrade by ``1 + g * lg(ceil(span / gpus_per_node))``, modelling an
        oversubscribed switch hierarchy.  Both the executed collectives and
        the :mod:`repro.simulate` scaling simulator charge through this
        method, so predicted and measured ledgers stay consistent.
        """
        beta = self.beta_for_span(nranks_spanned)
        if (
            self.congestion_per_doubling
            and nranks_spanned > self.gpus_per_node
        ):
            nodes = self.nodes_for(nranks_spanned)
            beta *= 1.0 + self.congestion_per_doubling * math.log2(nodes)
        return beta

    def nodes_for(self, nranks: int) -> int:
        """Nodes occupied by ``nranks`` ranks packed round-robin in blocks."""
        return max(1, math.ceil(nranks / self.gpus_per_node))


#: Summit-like default machine (the paper's testbed).
SUMMIT = MachineProfile()

#: A slower-network machine; the paper notes that faster local kernels are
#: "equivalent from a relative cost perspective to running on clusters with
#: slower networks", so this profile is useful for sensitivity studies.
COMMODITY = MachineProfile(
    name="commodity",
    alpha=2.0e-5,
    beta=_gbps_to_sec_per_byte(1.5),
    beta_intranode=_gbps_to_sec_per_byte(12.0),
    beta_intersocket=_gbps_to_sec_per_byte(8.0),
    alpha_intranode=2.0e-6,
    gpus_per_node=4,
    gpus_per_socket=2,
    gemm_flops=1.0e12,
    spmm_base_flops=4.0e10,
)

#: A latency-free, infinite-bandwidth machine for pure-volume accounting.
ZERO_COST = MachineProfile(
    name="zero-cost",
    alpha=0.0,
    beta=0.0,
    beta_intranode=0.0,
    beta_intersocket=0.0,
    alpha_intranode=0.0,
    kernel_launch_overhead=0.0,
)

_PROFILES = {p.name: p for p in (SUMMIT, COMMODITY, ZERO_COST)}


def get_profile(name: Optional[str]) -> MachineProfile:
    """Look up a named machine profile (``None`` -> Summit default)."""
    if name is None:
        return SUMMIT
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None


def register_profile(profile: MachineProfile) -> None:
    """Register a custom profile so benchmarks can refer to it by name."""
    _PROFILES[profile.name] = profile
