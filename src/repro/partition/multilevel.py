"""A from-scratch multilevel k-way graph partitioner (Metis stand-in).

The paper runs Metis on Reddit (Section IV-A.8) to test whether graph
partitioning helps the 1D algorithm.  Metis is not available offline, so
this module implements the same classic multilevel recipe Metis uses:

1. **Coarsening** by heavy-edge matching: every vertex points at its
   heaviest neighbour; mutually-pointing pairs contract.  The matching is
   fully vectorised (one lexsort + one pointer check per level), which
   matters because the fine graph of a Reddit-scale stand-in has millions
   of nonzeros.
2. **Initial partitioning** of the coarsest graph by BFS-order chopping
   into weight-balanced chunks.
3. **Uncoarsening with boundary refinement**: at every level the coarse
   assignment is projected down and improved by greedy Kernighan-Lin-style
   moves of boundary vertices (highest gain first, balance-constrained).

The output is a balanced k-way vertex assignment whose *total* edge cut is
far below random partitioning on community-structured graphs, while the
*maximum per-process* cut improves much less on scale-free graphs -- the
gap that motivates the paper's preference for 2D/3D algorithms over
partitioning-based 1D.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.partition.random_part import block_partition
from repro.sparse.csr import CSRMatrix

__all__ = ["MultilevelPartitioner", "PartitionResult", "multilevel_partition"]


@dataclass
class PartitionResult:
    """Outcome of a multilevel partition run."""

    assignment: np.ndarray
    nparts: int
    levels: int
    coarsest_size: int
    refinement_moves: int


@dataclass
class _Level:
    """One graph in the coarsening hierarchy."""

    adj: CSRMatrix            # weighted adjacency (no self loops)
    vwgt: np.ndarray          # vertex weights (fine-vertex counts)
    fine_to_coarse: Optional[np.ndarray] = None  # map of the NEXT level


def _heavy_edge_matching(adj: CSRMatrix, rng: np.random.Generator) -> np.ndarray:
    """Sequential greedy heavy-edge matching (the classic Metis HEM).

    Vertices are visited in random order; an unmatched vertex matches its
    heaviest still-unmatched neighbour.  This matches a large fraction of
    vertices per level even with uniform edge weights (where vectorised
    mutual-pointer matching stalls at a few percent).  O(nnz) per level.

    Returns ``coarse_id`` per vertex: matched pairs share an id, singletons
    get their own.  Ids are compacted to ``0..n_coarse-1``.
    """
    n = adj.nrows
    match = np.full(n, -1, dtype=np.int64)
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    for v in rng.permutation(n):
        v = int(v)
        if match[v] >= 0:
            continue
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        nbrs = indices[lo:hi]
        if nbrs.size == 0:
            match[v] = v
            continue
        free = match[nbrs] < 0
        free &= nbrs != v
        if not free.any():
            match[v] = v
            continue
        cand = nbrs[free]
        u = int(cand[np.argmax(data[lo:hi][free])])
        match[v] = u
        match[u] = v
    # Pair leader is the smaller id; both members take the leader's id.
    ids = np.arange(n, dtype=np.int64)
    coarse = np.minimum(ids, match)
    uniq, compact = np.unique(coarse, return_inverse=True)
    return compact.astype(np.int64)


def _contract(level: _Level, coarse_id: np.ndarray) -> _Level:
    """Build the coarse graph induced by a matching."""
    n_coarse = int(coarse_id.max()) + 1 if coarse_id.size else 0
    rows, cols, w = level.adj.to_coo()
    crows = coarse_id[rows]
    ccols = coarse_id[cols]
    keep = crows != ccols  # contracted pairs' internal edges vanish
    coarse_adj = CSRMatrix.from_coo(
        crows[keep], ccols[keep], w[keep], (n_coarse, n_coarse)
    )
    vwgt = np.zeros(n_coarse, dtype=np.int64)
    np.add.at(vwgt, coarse_id, level.vwgt)
    return _Level(adj=coarse_adj, vwgt=vwgt)


def _bfs_order(adj: CSRMatrix, rng: np.random.Generator) -> np.ndarray:
    """Heaviest-edge-first (Prim-style) visitation order.

    After coarsening, intra-cluster edges carry large contracted weights
    and inter-cluster edges stay light; expanding along the heaviest
    frontier edge keeps natural clusters contiguous in the order, so
    chopping the order into weight-balanced chunks respects them.  Plain
    BFS (which this replaces) walks light cross-cluster edges as readily
    as heavy ones and splits clusters across chunk boundaries.
    """
    import heapq

    n = adj.nrows
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    out = 0
    start_candidates = rng.permutation(n)
    ptr = 0
    heap: List[tuple] = []  # (-weight, tiebreak, vertex)
    tiebreak = 0
    while out < n:
        if not heap:
            while ptr < n and visited[start_candidates[ptr]]:
                ptr += 1
            if ptr >= n:
                break
            root = int(start_candidates[ptr])
            visited[root] = True
            heap = [(0.0, tiebreak, root)]
            tiebreak += 1
        _, _, v = heapq.heappop(heap)
        order[out] = v
        out += 1
        lo, hi = int(adj.indptr[v]), int(adj.indptr[v + 1])
        for u, w in zip(adj.indices[lo:hi], adj.data[lo:hi]):
            u = int(u)
            if not visited[u]:
                visited[u] = True
                heapq.heappush(heap, (-float(w), tiebreak, u))
                tiebreak += 1
    return order[:out]


def _initial_partition(
    level: _Level, nparts: int, rng: np.random.Generator
) -> np.ndarray:
    """Chop the BFS order into ``nparts`` weight-balanced chunks."""
    n = level.adj.nrows
    if n <= nparts:
        # Degenerate coarsest graph: the partitioners' shared
        # trailing-empty convention (vertex v -> part v).
        return block_partition(n, nparts)
    order = _bfs_order(level.adj, rng)
    total = int(level.vwgt.sum())
    target = total / nparts
    assignment = np.zeros(n, dtype=np.int64)
    part = 0
    acc = 0
    for v in order:
        if part < nparts - 1 and acc >= target:
            part += 1
            acc = 0
        assignment[v] = part
        acc += int(level.vwgt[v])
    return assignment


def _refine(
    level: _Level,
    assignment: np.ndarray,
    nparts: int,
    max_passes: int,
    imbalance_tol: float,
) -> int:
    """Greedy boundary refinement (KL-style); returns moves applied.

    Each pass computes, for every vertex, its total edge weight to every
    part (one vectorised scatter-add), then moves positive-gain boundary
    vertices best-first under the balance constraint, updating the
    part-weight table incrementally.  A rebalancing pass (plus one gain
    polish) runs at the end, since gain moves alone never repair an
    overweight part.
    """
    n = level.adj.nrows
    if n == 0 or nparts <= 1:
        return 0
    rows, cols, w = level.adj.to_coo()
    part_weights = np.zeros(nparts, dtype=np.float64)
    np.add.at(part_weights, assignment, level.vwgt.astype(np.float64))
    max_weight = part_weights.sum() / nparts * (1.0 + imbalance_tol)
    def gain_passes(npasses: int) -> int:
        applied = 0
        for _ in range(npasses):
            # conn[v, p] = total edge weight between v and part p.
            conn = np.zeros((n, nparts), dtype=np.float64)
            np.add.at(conn, (rows, assignment[cols]), w)
            cur = conn[np.arange(n), assignment]
            best_part = np.argmax(conn, axis=1)
            best = conn[np.arange(n), best_part]
            gains = best - cur
            candidates = np.flatnonzero(
                (gains > 1e-12) & (best_part != assignment)
            )
            if candidates.size == 0:
                break
            # Best-first, applied sequentially with a stale-gain tolerance:
            # moves that became invalid (balance, part changed) are skipped.
            order = candidates[np.argsort(-gains[candidates])]
            moves = 0
            for v in order:
                src = int(assignment[v])
                dst = int(best_part[v])
                if dst == src:
                    continue
                wv = float(level.vwgt[v])
                if part_weights[dst] + wv > max_weight:
                    continue
                if part_weights[src] - wv < 0:
                    continue
                assignment[v] = dst
                part_weights[src] -= wv
                part_weights[dst] += wv
                moves += 1
            applied += moves
            if moves == 0:
                break
        return applied

    total_moves = gain_passes(max_passes)
    total_moves += _rebalance(
        level, assignment, nparts, rows, cols, w, part_weights, max_weight
    )
    # One polish round: rebalancing may have parked vertices badly.
    total_moves += gain_passes(1)
    return total_moves


def _rebalance(
    level: _Level,
    assignment: np.ndarray,
    nparts: int,
    rows: np.ndarray,
    cols: np.ndarray,
    w: np.ndarray,
    part_weights: np.ndarray,
    max_weight: float,
) -> int:
    """Force overweight parts back under the cap.

    Gain-driven refinement never repairs balance (a move that helps the
    cut but violates the cap is skipped, and an overweight part may have
    no positive-gain departures).  This pass evicts the cheapest-to-move
    vertices of each overweight part into the lightest parts, preferring
    destinations the vertex is already connected to.
    """
    n = level.adj.nrows
    target = part_weights.sum() / nparts
    over = np.flatnonzero(part_weights > max_weight)
    if over.size == 0:
        return 0
    conn = np.zeros((n, nparts), dtype=np.float64)
    np.add.at(conn, (rows, assignment[cols]), w)
    moves = 0
    for part in over:
        members = np.flatnonzero(assignment == part)
        # Cheapest first: least attached to their current part.
        members = members[np.argsort(conn[members, part])]
        for v in members:
            if part_weights[part] <= max_weight:
                break
            # Prefer a connected underweight part; fall back to lightest.
            candidates = np.flatnonzero(part_weights < target)
            if candidates.size == 0:
                break
            best = candidates[np.argmax(conn[v, candidates])]
            if conn[v, candidates].max() == 0:
                best = candidates[np.argmin(part_weights[candidates])]
            wv = float(level.vwgt[v])
            assignment[v] = best
            part_weights[part] -= wv
            part_weights[best] += wv
            moves += 1
    return moves


@dataclass
class MultilevelPartitioner:
    """Configurable multilevel k-way partitioner.

    ``coarsen_until`` stops coarsening once the graph is small enough
    (default: ``max(100, 8 * nparts)`` vertices); ``imbalance_tol`` is the
    allowed part-weight slack (Metis default ~3 %).

    Follows the :mod:`repro.partition` empty-part convention: with
    ``nparts > n`` the result is the canonical trailing-empty assignment
    (vertex ``v`` -> part ``v``), identical to :func:`block_partition`.
    """

    nparts: int
    seed: int = 0
    coarsen_until: Optional[int] = None
    max_levels: int = 20
    refine_passes: int = 4
    imbalance_tol: float = 0.05

    def partition(self, adj: CSRMatrix) -> PartitionResult:
        if adj.nrows != adj.ncols:
            raise ValueError("partitioner needs a square adjacency")
        if self.nparts < 1:
            raise ValueError(f"nparts must be >= 1, got {self.nparts}")
        n = adj.nrows
        if self.nparts == 1:
            return PartitionResult(np.zeros(n, dtype=np.int64), 1, 0, n, 0)
        if n <= self.nparts:
            # One vertex per part, trailing parts empty -- the shared
            # convention of repro.partition (see random_part's module
            # docstring), not a private round-robin.
            return PartitionResult(
                block_partition(n, self.nparts), self.nparts, 0, n, 0
            )
        rng = np.random.default_rng(self.seed)
        stop_at = self.coarsen_until or max(100, 8 * self.nparts)

        # -------------------------- coarsening ------------------------- #
        levels: List[_Level] = [
            _Level(adj=adj, vwgt=np.ones(n, dtype=np.int64))
        ]
        while (
            levels[-1].adj.nrows > stop_at and len(levels) <= self.max_levels
        ):
            cur = levels[-1]
            coarse_id = _heavy_edge_matching(cur.adj, rng)
            n_coarse = int(coarse_id.max()) + 1
            if n_coarse >= cur.adj.nrows * 0.98:
                break  # matching stalled; coarsest graph reached
            cur.fine_to_coarse = coarse_id
            levels.append(_contract(cur, coarse_id))

        # ---------------------- initial partition ---------------------- #
        assignment = _initial_partition(levels[-1], self.nparts, rng)
        moves = _refine(
            levels[-1], assignment, self.nparts,
            self.refine_passes, self.imbalance_tol,
        )

        # ---------------------- uncoarsen + refine --------------------- #
        for level in reversed(levels[:-1]):
            assert level.fine_to_coarse is not None
            assignment = assignment[level.fine_to_coarse]
            moves += _refine(
                level, assignment, self.nparts,
                self.refine_passes, self.imbalance_tol,
            )

        return PartitionResult(
            assignment=assignment,
            nparts=self.nparts,
            levels=len(levels),
            coarsest_size=levels[-1].adj.nrows,
            refinement_moves=moves,
        )


def multilevel_partition(
    adj: CSRMatrix, nparts: int, seed: int = 0
) -> np.ndarray:
    """Convenience wrapper returning just the assignment vector."""
    return MultilevelPartitioner(nparts=nparts, seed=seed).partition(adj).assignment
