"""Baseline vertex partitioners: contiguous blocks and random assignment.

The 1D algorithm's default distribution is "each process receives n/p
consecutive rows" (Section IV-A) -- :func:`block_partition`.  The paper's
edge-cut bound ``edgecut_P(A) <= n(P-1)/P`` "can be achieved by a random
partitioning" -- :func:`random_partition` (uniform part sizes kept exactly
balanced).  These are the baselines the multilevel partitioner is compared
against in the Section IV-A.8 reproduction.

**Empty-part convention** (shared by every partitioner in
:mod:`repro.partition`): ``nparts`` may exceed the vertex count, in which
case the first ``n`` parts receive exactly one vertex and parts
``n..nparts-1`` are empty -- part size multisets always match
:func:`repro.sparse.distribute.block_ranges`, and downstream consumers
(:func:`~repro.partition.edgecut.edge_cut_stats`,
:func:`partition_sizes`, :class:`repro.dist.distribution.Distribution`)
report zero-sized entries for empty parts rather than dropping them.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.distribute import block_ranges

__all__ = ["block_partition", "random_partition", "partition_sizes"]


def block_partition(n: int, nparts: int) -> np.ndarray:
    """Contiguous near-equal blocks: vertex v -> its block index.

    With ``nparts > n`` this is the canonical trailing-empty assignment
    (vertex ``v`` -> part ``v``; parts ``n..nparts-1`` empty).  Raises
    ``ValueError`` for ``nparts < 1``.
    """
    assignment = np.empty(n, dtype=np.int64)
    for part, (lo, hi) in enumerate(block_ranges(n, nparts)):
        assignment[lo:hi] = part
    return assignment


def random_partition(n: int, nparts: int, seed: int = 0) -> np.ndarray:
    """Balanced random partition: a random permutation of the block one.

    Part sizes differ by at most one vertex, matching the load-balance
    guarantee the random vertex permutation gives the 1D algorithm.
    With ``nparts > n`` each vertex draws a distinct part from
    ``0..n-1``, so -- per the module's empty-part convention -- the empty
    parts are exactly the trailing ``nparts - n`` (historically the
    empties landed at shuffled positions, disagreeing with the other
    partitioners).
    """
    if nparts < 1:
        raise ValueError(f"need >= 1 part, got {nparts}")
    rng = np.random.default_rng(seed)
    if nparts >= n:
        return rng.permutation(n).astype(np.int64)
    assignment = block_partition(n, nparts)
    rng.shuffle(assignment)
    return assignment


def partition_sizes(assignment: np.ndarray, nparts: int) -> np.ndarray:
    """Vertices per part (for balance assertions).

    Length ``nparts``, with explicit zeros for empty parts.  Raises
    ``ValueError`` for ``nparts < 1`` or part ids outside
    ``[0, nparts)``.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.size and (
        assignment.min() < 0 or assignment.max() >= nparts
    ):
        raise ValueError(f"part ids outside [0, {nparts})")
    sizes = np.zeros(nparts, dtype=np.int64)
    np.add.at(sizes, assignment, 1)
    return sizes
