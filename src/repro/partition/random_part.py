"""Baseline vertex partitioners: contiguous blocks and random assignment.

The 1D algorithm's default distribution is "each process receives n/p
consecutive rows" (Section IV-A) -- :func:`block_partition`.  The paper's
edge-cut bound ``edgecut_P(A) <= n(P-1)/P`` "can be achieved by a random
partitioning" -- :func:`random_partition` (uniform part sizes kept exactly
balanced).  These are the baselines the multilevel partitioner is compared
against in the Section IV-A.8 reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.distribute import block_ranges

__all__ = ["block_partition", "random_partition", "partition_sizes"]


def block_partition(n: int, nparts: int) -> np.ndarray:
    """Contiguous near-equal blocks: vertex v -> its block index."""
    assignment = np.empty(n, dtype=np.int64)
    for part, (lo, hi) in enumerate(block_ranges(n, nparts)):
        assignment[lo:hi] = part
    return assignment


def random_partition(n: int, nparts: int, seed: int = 0) -> np.ndarray:
    """Balanced random partition: a random permutation of the block one.

    Part sizes differ by at most one vertex, matching the load-balance
    guarantee the random vertex permutation gives the 1D algorithm.
    """
    rng = np.random.default_rng(seed)
    assignment = block_partition(n, nparts)
    rng.shuffle(assignment)
    return assignment


def partition_sizes(assignment: np.ndarray, nparts: int) -> np.ndarray:
    """Vertices per part (for balance assertions)."""
    assignment = np.asarray(assignment, dtype=np.int64)
    sizes = np.zeros(nparts, dtype=np.int64)
    np.add.at(sizes, assignment, 1)
    return sizes
