"""Vertex partitioning: edge-cut metrics, baselines, multilevel k-way."""

from repro.partition.edgecut import (
    CutStats,
    edge_cut_stats,
    edgecut_metric,
    ghost_rows_per_part,
)
from repro.partition.multilevel import (
    MultilevelPartitioner,
    PartitionResult,
    multilevel_partition,
)
from repro.partition.random_part import (
    block_partition,
    partition_sizes,
    random_partition,
)

__all__ = [
    "CutStats",
    "edge_cut_stats",
    "edgecut_metric",
    "ghost_rows_per_part",
    "MultilevelPartitioner",
    "PartitionResult",
    "multilevel_partition",
    "block_partition",
    "random_partition",
    "partition_sizes",
]
