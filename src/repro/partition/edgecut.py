"""Edge-cut metrics for vertex partitions.

Section IV-A defines ``edgecut_P(A)`` as ``max(r_1, ..., r_P)`` where
``r_i`` is the minimum number of dense-matrix rows process ``i`` needs to
receive to perform its local multiply -- i.e. the number of *distinct
remote neighbours* (ghost vertices) of partition ``i``.  Each such row
carries an ``O(f)`` feature-vector payload (Figure 1).

The Metis experiment (Section IV-A.8) additionally quotes *edge* counts:
total edges cut (3,258,385 vs 11,761,151 on Reddit/64 parts) and the cut
edges of the maximally-communicating process (131,286 vs 185,823).  Both
metrics are implemented here; the gap between the 72 % total reduction and
the 29 % max-process reduction is the experiment's whole point, because a
bulk-synchronous epoch runs at the slowest process's pace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["CutStats", "edge_cut_stats", "ghost_rows_per_part", "edgecut_metric"]


@dataclass(frozen=True)
class CutStats:
    """Cut statistics of one vertex partition.

    ``total_cut_edges`` counts directed nnz with endpoints in different
    parts (an undirected edge cut once per direction stored); Metis-style
    undirected counts are exactly half for symmetric adjacencies --
    ``undirected_cut_edges`` reports that.
    """

    nparts: int
    total_cut_edges: int
    max_part_cut_edges: int
    per_part_cut_edges: Tuple[int, ...]
    max_ghost_rows: int
    per_part_ghost_rows: Tuple[int, ...]

    @property
    def undirected_cut_edges(self) -> int:
        return self.total_cut_edges // 2

    @property
    def edgecut_metric(self) -> int:
        """The paper's ``edgecut_P(A) = max_i r_i`` (ghost rows)."""
        return self.max_ghost_rows


def _validate_assignment(a: CSRMatrix, assignment: np.ndarray, nparts: int) -> np.ndarray:
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (a.nrows,):
        raise ValueError(
            f"assignment covers {assignment.shape} vertices, graph has {a.nrows}"
        )
    if assignment.size and (assignment.min() < 0 or assignment.max() >= nparts):
        raise ValueError(f"part ids outside [0, {nparts})")
    return assignment


def edge_cut_stats(a: CSRMatrix, assignment: np.ndarray, nparts: int) -> CutStats:
    """Compute all cut metrics of a partition in one vectorised pass.

    ``nparts`` must be at least 1; empty parts are legal (the
    partitioners' documented ``nparts > n`` convention) and contribute
    explicit zeros to every per-part tuple.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    assignment = _validate_assignment(a, assignment, nparts)
    rows, cols, _ = a.to_coo()
    src_part = assignment[rows]
    dst_part = assignment[cols]
    cut = src_part != dst_part
    total_cut = int(np.count_nonzero(cut))
    per_part_cut = np.zeros(nparts, dtype=np.int64)
    if total_cut:
        np.add.at(per_part_cut, src_part[cut], 1)
    # Ghost rows: distinct (owner part, remote vertex) pairs, where the
    # remote vertex's features must be shipped to the owner part.
    ghost = np.zeros(nparts, dtype=np.int64)
    if total_cut:
        pairs = np.unique(
            src_part[cut].astype(np.int64) * a.ncols + cols[cut]
        )
        owner = pairs // a.ncols
        np.add.at(ghost, owner, 1)
    return CutStats(
        nparts=nparts,
        total_cut_edges=total_cut,
        max_part_cut_edges=int(per_part_cut.max()),
        per_part_cut_edges=tuple(int(x) for x in per_part_cut),
        max_ghost_rows=int(ghost.max()),
        per_part_ghost_rows=tuple(int(x) for x in ghost),
    )


def ghost_rows_per_part(a: CSRMatrix, assignment: np.ndarray, nparts: int) -> np.ndarray:
    """Just the ``r_i`` vector (distinct remote neighbours per part)."""
    stats = edge_cut_stats(a, assignment, nparts)
    return np.array(stats.per_part_ghost_rows, dtype=np.int64)


def edgecut_metric(a: CSRMatrix, assignment: np.ndarray, nparts: int) -> int:
    """``edgecut_P(A)``: the paper's per-process communication bound.

    Never exceeds ``n (P-1)/P`` for a non-adversarial partition
    (Section IV-A.1); graph partitioning tools can push it lower.
    """
    return edge_cut_stats(a, assignment, nparts).max_ghost_rows
