"""Semiring-generalised SpMM: overloadable neighbourhood aggregation.

Section I: "Our current implementations operate on the standard real
field but they can be trivially extended to support arbitrary aggregate
operations to increase the expressive power of GNNs [32].  For example,
many distributed libraries such as Cyclops Tensor Framework and
Combinatorial BLAS allow the user to overload scalar addition operations
through their semiring interface, which is exactly the neighborhood
aggregate function when applied to graphs."

This module is that extension.  A :class:`Semiring` supplies the
``add`` (aggregate) and ``mul`` (combine) operators plus the additive
identity; :func:`spmm_semiring` evaluates ``A (x) B`` under it with the
same vectorised segment machinery as the real-field kernel.  Provided
semirings:

* ``PLUS_TIMES``   -- the standard real field (sum aggregation);
* ``MAX_PLUS``     -- tropical; max-plus path relaxation;
* ``MIN_PLUS``     -- shortest-path relaxation (one Bellman-Ford step per
  multiply);
* ``MAX_TIMES``    -- max-pooling aggregation, the max-aggregator GNNs of
  Xu et al. [32];
* ``OR_AND``       -- boolean reachability (one BFS level per multiply).

Xu et al. (the "How powerful are GNNs?" paper cited as [32]) show that
aggregator choice bounds GNN expressiveness -- max aggregation is what
this enables on top of the distributed algorithms, whose collectives
already accept a custom ``op``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "Semiring",
    "PLUS_TIMES",
    "MAX_PLUS",
    "MIN_PLUS",
    "MAX_TIMES",
    "OR_AND",
    "spmm_semiring",
]


@dataclass(frozen=True)
class Semiring:
    """A (commutative-monoid add, mul) pair with additive identity.

    ``add_reduceat`` must be a numpy ufunc usable with ``reduceat``
    (``np.add``, ``np.maximum``, ...); ``mul`` combines one sparse scalar
    with a dense row (broadcasting).
    """

    name: str
    add: np.ufunc
    mul: Callable[[np.ndarray, np.ndarray], np.ndarray]
    zero: float

    def __post_init__(self):
        if not isinstance(self.add, np.ufunc):
            raise TypeError("semiring add must be a numpy ufunc")


PLUS_TIMES = Semiring("plus_times", np.add, lambda a, b: a * b, 0.0)
MAX_PLUS = Semiring("max_plus", np.maximum, lambda a, b: a + b, -np.inf)
MIN_PLUS = Semiring("min_plus", np.minimum, lambda a, b: a + b, np.inf)
MAX_TIMES = Semiring("max_times", np.maximum, lambda a, b: a * b, -np.inf)
OR_AND = Semiring(
    "or_and", np.logical_or,
    lambda a, b: np.logical_and(a != 0, b != 0), 0.0,
)


def spmm_semiring(a: CSRMatrix, b: np.ndarray, semiring: Semiring) -> np.ndarray:
    """``out[i, :] = ADD_{k in row i} MUL(a[i, k], b[k, :])``.

    Rows with no nonzeros get the additive identity.  The reduction runs
    per-row via ``ufunc.reduceat`` over the expanded products, with the
    empty-row and trailing-row hazards of ``reduceat`` handled explicitly.
    """
    m, n = a.shape
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2 or b.shape[0] != n:
        raise ValueError(f"B shape {b.shape} incompatible with A shape {a.shape}")
    f = b.shape[1]
    out = np.full((m, f), semiring.zero, dtype=np.float64)
    if a.nnz == 0 or f == 0:
        return out
    prod = semiring.mul(a.data[:, None], b[a.indices]).astype(np.float64)
    starts = a.indptr[:-1]
    ends = a.indptr[1:]
    nonempty = np.flatnonzero(ends > starts)
    if nonempty.size == 0:
        return out
    # reduceat over only the nonempty segments: the segment for nonempty
    # row j runs [starts[j], starts[j+1 nonempty]) and reduceat's "next
    # index" is exactly the next nonempty start, because empty rows
    # contribute no elements in between.
    seg_starts = starts[nonempty]
    reduced = semiring.add.reduceat(prod, seg_starts, axis=0)
    out[nonempty] = reduced
    return out
