"""Sparse-matrix substrate: CSR storage, SpMM kernels, distributions.

Stand-in for cuSPARSE + the paper's block data distributions.
"""

from repro.sparse.csr import CSRMatrix, coo_to_csr_arrays
from repro.sparse.distribute import (
    block_ranges,
    distribute_dense_1d_rows,
    distribute_dense_2d,
    distribute_dense_3d,
    distribute_sparse_1d_cols,
    distribute_sparse_1d_rows,
    distribute_sparse_2d,
    distribute_sparse_3d,
    gather_dense_1d_rows,
    gather_dense_2d,
    gather_dense_3d,
    range_of,
)
from repro.sparse.hypersparse import (
    BlockSparsityStats,
    aggregate_block_stats,
    block_sparsity_stats,
    expected_nonempty_rows,
    expected_nonempty_rows_asymptotic,
    sparse_vs_dense_intermediate_words,
)
from repro.sparse.semiring import (
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    spmm_semiring,
)
from repro.sparse.perfmodel import SpmmPerfModel, density_factor, width_factor
from repro.sparse.spmm import spmm, spmm_flops, spmm_numpy, spmm_scipy

__all__ = [
    "CSRMatrix",
    "coo_to_csr_arrays",
    "spmm",
    "spmm_flops",
    "spmm_numpy",
    "spmm_scipy",
    "Semiring",
    "spmm_semiring",
    "PLUS_TIMES",
    "MAX_PLUS",
    "MIN_PLUS",
    "MAX_TIMES",
    "OR_AND",
    "SpmmPerfModel",
    "density_factor",
    "width_factor",
    "block_ranges",
    "range_of",
    "distribute_sparse_1d_rows",
    "distribute_sparse_1d_cols",
    "distribute_dense_1d_rows",
    "distribute_sparse_2d",
    "distribute_dense_2d",
    "distribute_sparse_3d",
    "distribute_dense_3d",
    "gather_dense_1d_rows",
    "gather_dense_2d",
    "gather_dense_3d",
    "BlockSparsityStats",
    "block_sparsity_stats",
    "aggregate_block_stats",
    "expected_nonempty_rows",
    "expected_nonempty_rows_asymptotic",
    "sparse_vs_dense_intermediate_words",
]
