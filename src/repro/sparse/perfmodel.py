"""Empirical SpMM performance model: sparsity and skinny-operand penalties.

Section VI-a of the paper explains why local SpMM fails to scale in the 2D
algorithm, citing Yang et al. [33]:

1. **Hypersparsity** -- "when the average number of nonzeros per row (i.e.,
   degree, d = nnz/n) goes down from 62 to 8, the sustained GFlops rates
   are cut by a factor of 3" for cuSPARSE's ``csrmm2``.  2D partitioning
   reduces each block's average degree by a factor of sqrt(P).
2. **Skinny dense operands** -- the dense activations are also 2D
   partitioned, so local column counts shrink by sqrt(P); "the performance
   degradation at this extremely skinny regime is also well documented"
   (Aktulga et al. [2]).

We model the sustained rate as::

    rate(d, f) = base * d / (d + D_HALF) * f / (f + W_HALF)

two saturating half-rate curves.  ``D_HALF`` is calibrated so the 62 -> 8
degree drop cuts the rate by exactly 3x (the figure the paper quotes), and
``W_HALF = 8.0`` puts heavy penalty below ~16 columns, mild above 64 --
matching the paper's example of the middle layer going from 16 columns at
p=1 to 2 columns at p=64.

These two factors multiply ("These two factors have a multiplicative
detrimental impact on the local SpMM performance"), which is exactly how
the model composes them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineProfile

__all__ = [
    "SpmmPerfModel",
    "D_HALF",
    "W_HALF",
    "density_factor",
    "width_factor",
]

#: Half-rate average degree.  Solves rate(62)/rate(8) = 3:
#: 62(8+c) = 24(62+c)  =>  c = 992/38.
D_HALF = 992.0 / 38.0

#: Half-rate dense-operand width (columns).
W_HALF = 8.0


def density_factor(avg_degree: float, d_half: float = D_HALF) -> float:
    """Throughput multiplier from row density (0 < factor < 1)."""
    if avg_degree <= 0:
        return 0.0
    return avg_degree / (avg_degree + d_half)


def width_factor(ncols_dense: float, w_half: float = W_HALF) -> float:
    """Throughput multiplier from dense-operand width (0 < factor < 1)."""
    if ncols_dense <= 0:
        return 0.0
    return ncols_dense / (ncols_dense + w_half)


@dataclass(frozen=True)
class SpmmPerfModel:
    """Time model for one local SpMM call.

    ``seconds(nnz, nrows, f)`` charges ``2*nnz*f`` flops at the degraded
    sustained rate plus a fixed kernel-launch overhead -- the overhead is
    what makes tiny hypersparse kernels latency-bound, mirroring the
    paper's observation that sub-millisecond broadcasts/kernels stop
    scaling.
    """

    base_flops: float
    launch_overhead: float
    d_half: float = D_HALF
    w_half: float = W_HALF

    @classmethod
    def from_profile(cls, profile: MachineProfile) -> "SpmmPerfModel":
        return cls(
            base_flops=profile.spmm_base_flops,
            launch_overhead=profile.kernel_launch_overhead,
        )

    def sustained_flops(self, avg_degree: float, ncols_dense: float) -> float:
        """Sustained FLOP/s for a block with the given shape statistics."""
        return (
            self.base_flops
            * density_factor(avg_degree, self.d_half)
            * width_factor(ncols_dense, self.w_half)
        )

    def seconds(self, nnz: int, nrows: int, ncols_dense: int) -> float:
        """Modeled time of ``A_block @ B_block`` (CSR x dense)."""
        if nnz < 0 or nrows < 0 or ncols_dense < 0:
            raise ValueError("negative kernel dimensions")
        if nnz == 0 or ncols_dense == 0:
            return self.launch_overhead
        avg_degree = nnz / max(nrows, 1)
        rate = self.sustained_flops(avg_degree, ncols_dense)
        flops = 2.0 * nnz * ncols_dense
        return flops / rate + self.launch_overhead

    def speedup_vs(self, other_degree: float, my_degree: float,
                   ncols: float) -> float:
        """Ratio of sustained rates at two degrees (fixed width).

        ``speedup_vs(8, 62, f)`` returns ~3.0 by calibration.
        """
        return self.sustained_flops(my_degree, ncols) / self.sustained_flops(
            other_degree, ncols
        )
