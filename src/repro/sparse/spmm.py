"""SpMM kernels: CSR times tall-skinny dense matrix.

The paper's single most expensive local kernel is SpMM ("sparse matrix
times multiple dense vectors"); the authors call cuSPARSE's ``csrmm2``.
We provide two interchangeable backends:

* ``"numpy"`` -- a pure, from-scratch segment-sum kernel (cumulative-sum
  trick, fully vectorised) that defines the reference semantics;
* ``"scipy"`` -- wraps the same CSR arrays in ``scipy.sparse`` (zero copy)
  and uses its compiled kernel; this plays the role cuSPARSE plays in the
  paper: an off-the-shelf optimised library kernel.

``spmm_flops`` gives the standard ``2 * nnz * f`` flop count used when
charging compute time.  Tests assert the two backends agree to fp
round-off on random inputs.
"""

from __future__ import annotations

from typing import Literal

import numpy as np
import scipy.sparse as sp

from repro.sparse.csr import CSRMatrix

__all__ = ["spmm", "spmm_flops", "spmm_numpy", "spmm_scipy"]

Backend = Literal["auto", "numpy", "scipy"]


def spmm_flops(a: CSRMatrix, ncols_dense: int) -> int:
    """Flop count of ``A @ B``: one multiply + one add per (nnz, column)."""
    return 2 * a.nnz * int(ncols_dense)


def spmm_numpy(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Reference SpMM: vectorised segment sums via cumulative sums.

    For each row ``i``, ``out[i] = sum_k data[k] * b[indices[k]]`` over the
    row's nnz range.  The cumulative-sum trick computes all row sums in one
    shot without Python-level loops: ``cum[end-1] - cum[start-1]``.
    """
    m, n = a.shape
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2 or b.shape[0] != n:
        raise ValueError(f"B shape {b.shape} incompatible with A shape {a.shape}")
    f = b.shape[1]
    out = np.zeros((m, f), dtype=np.float64)
    if a.nnz == 0:
        return out
    prod = a.data[:, None] * b[a.indices]  # (nnz, f) expanded products
    cum = np.cumsum(prod, axis=0)
    starts = a.indptr[:-1]
    ends = a.indptr[1:]
    nonempty = ends > starts
    hi = cum[ends[nonempty] - 1]
    s = starts[nonempty]
    lo = np.where((s > 0)[:, None], cum[np.maximum(s, 1) - 1], 0.0)
    out[nonempty] = hi - lo
    return out


def spmm_scipy(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Optimised SpMM via scipy's compiled CSR kernel (zero-copy wrap)."""
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2 or b.shape[0] != a.ncols:
        raise ValueError(f"B shape {b.shape} incompatible with A shape {a.shape}")
    wrapped = sp.csr_matrix(
        (a.data, a.indices, a.indptr), shape=a.shape, copy=False
    )
    return np.asarray(wrapped @ b)


def spmm(a: CSRMatrix, b: np.ndarray, backend: Backend = "auto") -> np.ndarray:
    """Compute ``A @ B`` for CSR ``A`` and dense ``B``.

    ``backend="auto"`` uses the compiled scipy kernel for anything big and
    the pure-numpy kernel for tiny operands (where wrapping overhead
    dominates).  Both produce identical results up to fp round-off.
    """
    if backend == "numpy":
        return spmm_numpy(a, b)
    if backend == "scipy":
        return spmm_scipy(a, b)
    if backend == "auto":
        if a.nnz * max(1, b.shape[1] if b.ndim == 2 else 1) < 4096:
            return spmm_numpy(a, b)
        return spmm_scipy(a, b)
    raise ValueError(f"unknown SpMM backend {backend!r}")
