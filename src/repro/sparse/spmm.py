"""SpMM kernels: CSR times tall-skinny dense matrix.

The paper's single most expensive local kernel is SpMM ("sparse matrix
times multiple dense vectors"); the authors call cuSPARSE's ``csrmm2``.
We provide two interchangeable backends:

* ``"numpy"`` -- a pure, from-scratch segment-sum kernel
  (:func:`numpy.add.reduceat` over the expanded products) that defines
  the reference semantics;
* ``"scipy"`` -- wraps the same CSR arrays in ``scipy.sparse`` (zero
  copy, cached on the :class:`~repro.sparse.csr.CSRMatrix` so the hot
  per-stage calls of the distributed algorithms skip re-wrapping) and
  uses its compiled kernel; this plays the role cuSPARSE plays in the
  paper: an off-the-shelf optimised library kernel.

``spmm_numpy_cumsum`` keeps the original cumulative-sum formulation.  It
materialised a second ``(nnz, f)`` array (the cumsum) and two fancy-index
gathers; ``reduceat`` folds the segments in one pass, which profiles
~2-4x faster across GNN-shaped operands (see
``benchmarks/bench_spmm_kernels.py`` and ``BENCH_dist.json`` for the
measured before/after).

``spmm_flops`` gives the standard ``2 * nnz * f`` flop count used when
charging compute time.  Tests assert all backends agree to fp round-off
on random inputs.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.obs import profile as _profile
from repro.sparse.csr import CSRMatrix

__all__ = [
    "spmm",
    "spmm_bytes",
    "spmm_flops",
    "spmm_numpy",
    "spmm_numpy_cumsum",
    "spmm_scipy",
]

Backend = Literal["auto", "numpy", "scipy"]


def spmm_flops(a: CSRMatrix, ncols_dense: int) -> int:
    """Flop count of ``A @ B``: one multiply + one add per (nnz, column)."""
    return 2 * a.nnz * int(ncols_dense)


def spmm_bytes(a: CSRMatrix, ncols_dense: int) -> int:
    """Bytes a minimal ``A @ B`` kernel moves: CSR arrays + B read,
    output written once.  The roofline denominator for the kernel
    profiler's arithmetic-intensity summary (cache reuse of ``B`` makes
    the true traffic lower; this is the standard model bound)."""
    f = int(ncols_dense)
    return (a.nnz * 12                     # data (8) + indices (4)
            + (a.shape[0] + 1) * 4         # indptr
            + a.shape[1] * f * 8           # B read
            + a.shape[0] * f * 8)          # out write


def _check_operand(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2 or b.shape[0] != a.ncols:
        raise ValueError(f"B shape {b.shape} incompatible with A shape {a.shape}")
    return b


def spmm_numpy(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Reference SpMM: one-pass vectorised segment sums.

    For each row ``i``, ``out[i] = sum_k data[k] * b[indices[k]]`` over
    the row's nnz range.  Consecutive nonempty rows form contiguous
    segments of the expanded product array, and because empty rows repeat
    the next row's start offset, ``np.add.reduceat`` at the nonempty
    starts yields exactly the per-row sums -- no cumsum materialisation,
    no gather of segment endpoints.
    """
    m, _ = a.shape
    b = _check_operand(a, b)
    f = b.shape[1]
    out = np.zeros((m, f), dtype=np.float64)
    if a.nnz == 0:
        return out
    prod = a.data[:, None] * b[a.indices]  # (nnz, f) expanded products
    starts = a.indptr[:-1]
    nonempty = a.indptr[1:] > starts
    out[nonempty] = np.add.reduceat(prod, starts[nonempty], axis=0)
    return out


def spmm_numpy_cumsum(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """The original cumulative-sum segment kernel (kept as the baseline
    the bench harness measures :func:`spmm_numpy` against):
    ``cum[end-1] - cum[start-1]`` per row."""
    m, _ = a.shape
    b = _check_operand(a, b)
    f = b.shape[1]
    out = np.zeros((m, f), dtype=np.float64)
    if a.nnz == 0:
        return out
    prod = a.data[:, None] * b[a.indices]
    cum = np.cumsum(prod, axis=0)
    starts = a.indptr[:-1]
    ends = a.indptr[1:]
    nonempty = ends > starts
    hi = cum[ends[nonempty] - 1]
    s = starts[nonempty]
    lo = np.where((s > 0)[:, None], cum[np.maximum(s, 1) - 1], 0.0)
    out[nonempty] = hi - lo
    return out


try:  # the compiled kernel scipy's own __matmul__ dispatches to
    from scipy.sparse import _sparsetools as _st

    _csr_matvecs = _st.csr_matvecs
except (ImportError, AttributeError):  # pragma: no cover - older/newer scipy layouts
    _csr_matvecs = None


def spmm_scipy(a: CSRMatrix, b: np.ndarray,
               out: "np.ndarray | None" = None) -> np.ndarray:
    """Optimised SpMM via scipy's compiled CSR kernel.

    The zero-copy ``scipy.sparse`` wrapper is built once per matrix and
    cached (:meth:`CSRMatrix.to_scipy`): the distributed algorithms call
    into the same immutable blocks every stage of every epoch, so
    re-wrapping was pure per-call overhead on the hottest serial path.

    When available, the compiled ``csr_matvecs`` kernel is invoked
    directly on the cached wrapper's arrays: scipy's ``@`` operator
    re-validates formats and re-derives index dtypes on every call,
    which dominated the many small per-stage block products of the
    distributed algorithms.  The kernel invoked is the same one ``@``
    dispatches to, so results are bit-identical.
    """
    b = _check_operand(a, b)
    sp = a.to_scipy()
    if _csr_matvecs is None or not b.flags.c_contiguous or (
        out is not None and not out.flags.c_contiguous
    ):
        # The compiled kernel writes through .ravel(), which would be a
        # throwaway copy for non-contiguous buffers -- use scipy's @.
        result = np.asarray(sp @ b)
        if out is None:
            return result
        out[:] = result
        return out
    m, f = a.shape[0], b.shape[1]
    if out is None:
        out = np.zeros((m, f), dtype=np.float64)
    else:
        if out.shape != (m, f):
            raise ValueError(
                f"out shape {out.shape} != result shape {(m, f)}"
            )
        out.fill(0.0)  # csr_matvecs accumulates into the output
    _csr_matvecs(m, a.shape[1], f, sp.indptr, sp.indices, sp.data,
                 b.ravel(), out.ravel())
    return out


def spmm(a: CSRMatrix, b: np.ndarray, backend: Backend = "auto",
         out: "np.ndarray | None" = None) -> np.ndarray:
    """Compute ``A @ B`` for CSR ``A`` and dense ``B``.

    ``backend="auto"`` uses the compiled scipy kernel whenever the
    matrix's wrapper is already cached (the warm kernel beats the pure
    kernel at every size) or the operand is big enough to amortise the
    one-time wrap; tiny first-touch operands use the pure-numpy kernel.
    All backends produce identical results up to fp round-off.
    ``out`` supplies a preallocated result buffer (fully overwritten) so
    steady-state callers can reuse workspaces instead of allocating.
    """
    prof = _profile.ACTIVE
    if prof is None:
        return _spmm_dispatch(a, b, backend, out)
    t0 = prof.clock()
    result = _spmm_dispatch(a, b, backend, out)
    dt = prof.clock() - t0
    f = result.shape[1]
    prof.add("spmm", dt, spmm_flops(a, f), spmm_bytes(a, f),
             a.nnz, a.shape[0], f)
    return result


def _spmm_dispatch(a: CSRMatrix, b: np.ndarray, backend: Backend,
                   out: "np.ndarray | None") -> np.ndarray:
    if backend == "numpy":
        result = spmm_numpy(a, b)
        if out is None:
            return result
        out[:] = result
        return out
    if backend == "scipy":
        return spmm_scipy(a, b, out=out)
    if backend == "auto":
        if out is None and a._scipy_cache is None and (
            a.nnz * max(1, b.shape[1] if b.ndim == 2 else 1) < 2048
        ):
            return spmm_numpy(a, b)
        return spmm_scipy(a, b, out=out)
    raise ValueError(f"unknown SpMM backend {backend!r}")
