"""Block distributions of sparse and dense matrices onto process meshes.

The paper's three algorithm families use three data distributions
(Tables III, IV, V):

* **1D** -- ``A`` in block columns (of ``A^T``: block rows), ``H``/``G`` in
  block rows, ``W`` replicated;
* **2D** -- everything block-partitioned on a ``Pr x Pc`` grid, ``W``
  replicated;
* **3D (Block Split 3D)** -- the inner dimension is split across layers;
  each local ``A_ijk`` is ``n/p x n/p^2`` (cubic mesh of side ``p``) and
  each local ``H_ijk`` is ``n/p^2 x f/p``.

All splits use near-equal contiguous ranges (``block_ranges``), exactly the
"each process receives n/p consecutive rows" scheme of Section IV-A; load
balance for skewed graphs comes from the random vertex permutation applied
beforehand (:mod:`repro.graph.permutation`).

The gather helpers reassemble a distributed dense matrix for verification
against the serial reference.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.comm.mesh import Mesh2D, Mesh3D
from repro.sparse.csr import CSRMatrix

__all__ = [
    "block_ranges",
    "range_of",
    "distribute_sparse_1d_rows",
    "distribute_sparse_1d_cols",
    "distribute_dense_1d_rows",
    "distribute_sparse_2d",
    "distribute_dense_2d",
    "distribute_sparse_3d",
    "distribute_dense_3d",
    "gather_dense_1d_rows",
    "gather_dense_2d",
    "gather_dense_3d",
]


def block_ranges(n: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``0..n`` into ``parts`` near-equal contiguous ranges.

    The first ``n % parts`` ranges get the extra element, matching
    ``numpy.array_split`` semantics so dense and sparse splits line up.
    """
    if parts < 1:
        raise ValueError(f"need >= 1 part, got {parts}")
    if n < 0:
        raise ValueError(f"negative length {n}")
    base, extra = divmod(n, parts)
    ranges = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def range_of(n: int, parts: int, index: int) -> Tuple[int, int]:
    """The ``index``-th range of :func:`block_ranges` without building all."""
    if not 0 <= index < parts:
        raise IndexError(f"part {index} out of {parts}")
    base, extra = divmod(n, parts)
    start = index * base + min(index, extra)
    stop = start + base + (1 if index < extra else 0)
    return start, stop


# ---------------------------------------------------------------------- #
# 1D distributions
# ---------------------------------------------------------------------- #
def distribute_sparse_1d_rows(a: CSRMatrix, p: int) -> Dict[int, CSRMatrix]:
    """Block-row distribution: rank i gets rows ``range_of(n, p, i)``."""
    return {
        i: a.row_slice(r0, r1) for i, (r0, r1) in enumerate(block_ranges(a.nrows, p))
    }


def distribute_sparse_1d_cols(a: CSRMatrix, p: int) -> Dict[int, CSRMatrix]:
    """Block-column distribution (used for ``A`` in the 1D backward pass)."""
    return {
        j: a.block(0, a.nrows, c0, c1)
        for j, (c0, c1) in enumerate(block_ranges(a.ncols, p))
    }


def distribute_dense_1d_rows(h: np.ndarray, p: int) -> Dict[int, np.ndarray]:
    """Block-row distribution of a dense matrix (``H``, ``G``)."""
    h = np.asarray(h)
    return {
        i: np.ascontiguousarray(h[r0:r1])
        for i, (r0, r1) in enumerate(block_ranges(h.shape[0], p))
    }


def gather_dense_1d_rows(blocks: Dict[int, np.ndarray], p: int) -> np.ndarray:
    """Reassemble a 1D block-row distributed dense matrix."""
    return np.concatenate([blocks[i] for i in range(p)], axis=0)


# ---------------------------------------------------------------------- #
# 2D distributions
# ---------------------------------------------------------------------- #
def distribute_sparse_2d(a: CSRMatrix, mesh: Mesh2D) -> Dict[int, CSRMatrix]:
    """Block 2D distribution: P(i, j) owns ``A[rows_i, cols_j]``."""
    row_ranges = block_ranges(a.nrows, mesh.rows)
    col_ranges = block_ranges(a.ncols, mesh.cols)
    out: Dict[int, CSRMatrix] = {}
    for i, (r0, r1) in enumerate(row_ranges):
        row_band = a.row_slice(r0, r1)
        for j, (c0, c1) in enumerate(col_ranges):
            out[mesh.rank_of(i, j)] = row_band.block(0, r1 - r0, c0, c1)
    return out


def distribute_dense_2d(h: np.ndarray, mesh: Mesh2D) -> Dict[int, np.ndarray]:
    """Block 2D distribution of a dense ``n x f`` matrix."""
    h = np.asarray(h)
    row_ranges = block_ranges(h.shape[0], mesh.rows)
    col_ranges = block_ranges(h.shape[1], mesh.cols)
    out: Dict[int, np.ndarray] = {}
    for i, (r0, r1) in enumerate(row_ranges):
        for j, (c0, c1) in enumerate(col_ranges):
            out[mesh.rank_of(i, j)] = np.ascontiguousarray(h[r0:r1, c0:c1])
    return out


def gather_dense_2d(blocks: Dict[int, np.ndarray], mesh: Mesh2D) -> np.ndarray:
    """Reassemble a 2D block-distributed dense matrix."""
    rows = []
    for i in range(mesh.rows):
        rows.append(
            np.concatenate(
                [blocks[mesh.rank_of(i, j)] for j in range(mesh.cols)], axis=1
            )
        )
    return np.concatenate(rows, axis=0)


# ---------------------------------------------------------------------- #
# 3D (Block Split 3D) distributions
# ---------------------------------------------------------------------- #
def distribute_sparse_3d(a: CSRMatrix, mesh: Mesh3D) -> Dict[int, CSRMatrix]:
    """Split-3D distribution of a square sparse matrix.

    The inner (column) dimension is first split across the ``p3`` layers;
    within layer ``k`` the slice is 2D-distributed: rank (i, j, k) owns
    rows ``range_of(n, p1, i)`` and the ``j``-th sub-split of column slice
    ``k``.  For a cubic mesh each block is ``n/p x n/p^2`` -- the shape
    quoted in Section IV-D.
    """
    n_rows, n_cols = a.shape
    row_ranges = block_ranges(n_rows, mesh.p1)
    layer_ranges = block_ranges(n_cols, mesh.p3)
    out: Dict[int, CSRMatrix] = {}
    for i, (r0, r1) in enumerate(row_ranges):
        row_band = a.row_slice(r0, r1)
        for k, (k0, k1) in enumerate(layer_ranges):
            sub_ranges = block_ranges(k1 - k0, mesh.p2)
            for j, (s0, s1) in enumerate(sub_ranges):
                out[mesh.rank_of(i, j, k)] = row_band.block(
                    0, r1 - r0, k0 + s0, k0 + s1
                )
    return out


def distribute_dense_3d(h: np.ndarray, mesh: Mesh3D) -> Dict[int, np.ndarray]:
    """Split-3D distribution of a dense ``n x f`` matrix.

    Rows are split across layers then across the ``p1`` grid rows; columns
    across the ``p2`` grid columns.  Rank (i, j, k) owns an
    ``n/(p3*p1) x f/p2`` block -- ``n/p^2 x f/p`` on a cubic mesh, again
    the Section IV-D shape.
    """
    h = np.asarray(h)
    layer_ranges = block_ranges(h.shape[0], mesh.p3)
    col_ranges = block_ranges(h.shape[1], mesh.p2)
    out: Dict[int, np.ndarray] = {}
    for k, (k0, k1) in enumerate(layer_ranges):
        sub_ranges = block_ranges(k1 - k0, mesh.p1)
        for i, (s0, s1) in enumerate(sub_ranges):
            for j, (c0, c1) in enumerate(col_ranges):
                out[mesh.rank_of(i, j, k)] = np.ascontiguousarray(
                    h[k0 + s0 : k0 + s1, c0:c1]
                )
    return out


def gather_dense_3d(blocks: Dict[int, np.ndarray], mesh: Mesh3D) -> np.ndarray:
    """Reassemble a Split-3D distributed dense matrix."""
    layers = []
    for k in range(mesh.p3):
        rows = []
        for i in range(mesh.p1):
            rows.append(
                np.concatenate(
                    [blocks[mesh.rank_of(i, j, k)] for j in range(mesh.p2)],
                    axis=1,
                )
            )
        layers.append(np.concatenate(rows, axis=0))
    return np.concatenate(layers, axis=0)
