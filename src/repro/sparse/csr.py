"""A from-scratch CSR sparse matrix on numpy arrays.

The paper stores the (normalised) graph adjacency as a sparse matrix and
feeds it to cuSPARSE's ``csrmm2``; CSR (compressed sparse row) is therefore
the canonical storage format for this reproduction.  We implement the
format ourselves -- construction from COO triples with duplicate summing,
transpose, block extraction for 1D/2D/3D distributions, and degree
statistics -- keeping all hot paths vectorised numpy per the HPC guides.

Blocks extracted for distribution report ``nbytes_on_wire`` (data +
indices + indptr) so the collectives layer can charge sparse communication
("scomm" in Fig. 3) at its true serialised size.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.config import INDEX_BYTES

__all__ = ["CSRMatrix", "coo_to_csr_arrays"]


def coo_to_csr_arrays(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    shape: Tuple[int, int],
    sum_duplicates: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert COO triples to CSR ``(indptr, indices, data)``.

    Entries are sorted by (row, col); duplicates are summed (the usual
    semiring-add semantics) unless ``sum_duplicates=False``, in which case
    duplicates raise.  Runs in O(nnz log nnz) via a single lexsort.
    """
    m, n = shape
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    if not (rows.shape == cols.shape == vals.shape):
        raise ValueError(
            f"COO triple shape mismatch: {rows.shape}, {cols.shape}, {vals.shape}"
        )
    if rows.size:
        if rows.min() < 0 or rows.max() >= m:
            raise ValueError(f"row index out of range for shape {shape}")
        if cols.min() < 0 or cols.max() >= n:
            raise ValueError(f"col index out of range for shape {shape}")
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    if rows.size:
        dup = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
        if dup.any():
            if not sum_duplicates:
                raise ValueError("duplicate (row, col) entries present")
            # Segment-sum duplicate runs: `first` marks the first entry of
            # each unique (row, col); add each run into its first slot.
            first = np.concatenate(([True], ~dup))
            seg = np.cumsum(first) - 1
            summed = np.zeros(int(seg[-1]) + 1, dtype=np.float64)
            np.add.at(summed, seg, vals)
            keep = np.flatnonzero(first)
            rows, cols, vals = rows[keep], cols[keep], summed
    indptr = np.zeros(m + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, cols.astype(np.int64), vals


class CSRMatrix:
    """Compressed-sparse-row matrix with numpy storage.

    Invariants (checked on construction):

    * ``indptr`` is nondecreasing with ``indptr[0] == 0`` and
      ``indptr[-1] == nnz``;
    * column indices are in range and sorted within each row;
    * ``data`` is float64 and aligned with ``indices``.
    """

    __slots__ = ("shape", "indptr", "indices", "data", "_scipy_cache")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
        check: bool = True,
        validate: Optional[bool] = None,
    ):
        """Build a CSR matrix from its three arrays.

        ``validate=False`` is the trusted fast path for internally
        constructed blocks (``row_slice``/``block`` extraction, the
        1D/2D/3D distribution helpers, SUMMA stage slicing): the arrays
        are adopted verbatim -- no dtype coercion, no invariant checks --
        so block extraction on the distribution hot path costs only the
        slicing itself.  User-facing constructors (`from_coo`,
        ``from_dense``, direct calls) keep full validation by default.
        ``check=False`` (the historical switch) still coerces dtypes but
        skips the invariant checks -- a middle tier for callers whose
        array *contents* are trusted but whose dtypes may vary.
        """
        if validate is False:
            self.shape = shape if type(shape) is tuple else tuple(shape)
            self.indptr = indptr
            self.indices = indices
            self.data = data
            self._scipy_cache = None
            return
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self._scipy_cache = None
        if validate or (validate is None and check):
            self._validate()

    def __getstate__(self):
        """Pickle as the four raw fields, dropping the scipy wrapper
        cache -- cross-process shipment (the multiprocess backend sends
        the adjacency to every worker) must not drag scipy objects
        along, and the cache rebuilds lazily on first use."""
        return (self.shape, self.indptr, self.indices, self.data)

    def __setstate__(self, state) -> None:
        self.shape, self.indptr, self.indices, self.data = state
        self._scipy_cache = None

    def _validate(self) -> None:
        m, n = self.shape
        if m < 0 or n < 0:
            raise ValueError(f"invalid shape {self.shape}")
        if self.indptr.shape != (m + 1,):
            raise ValueError(
                f"indptr length {self.indptr.shape} does not match {m} rows"
            )
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be nondecreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape != (nnz,) or self.data.shape != (nnz,):
            raise ValueError(
                f"indices/data length mismatch: expected {nnz}, got "
                f"{self.indices.shape}/{self.data.shape}"
            )
        if nnz and (self.indices.min() < 0 or self.indices.max() >= n):
            raise ValueError(f"column index out of range for {n} columns")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: Tuple[int, int],
        sum_duplicates: bool = True,
    ) -> "CSRMatrix":
        indptr, indices, data = coo_to_csr_arrays(
            rows, cols, vals, shape, sum_duplicates
        )
        return cls(indptr, indices, data, shape, validate=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CSRMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2D array")
        mask = np.abs(dense) > tol
        rows, cols = np.nonzero(mask)
        return cls.from_coo(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def eye(cls, n: int, value: float = 1.0) -> "CSRMatrix":
        idx = np.arange(n, dtype=np.int64)
        return cls(
            np.arange(n + 1, dtype=np.int64),
            idx,
            np.full(n, value, dtype=np.float64),
            (n, n),
            validate=False,
        )

    @classmethod
    def zeros(cls, shape: Tuple[int, int]) -> "CSRMatrix":
        return cls(
            np.zeros(shape[0] + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            shape,
            validate=False,
        )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def nbytes_on_wire(self) -> int:
        """Serialised size: values + column indices + row pointer.

        This is what travels in a sparse broadcast ("scomm"); matches the
        CSR payload a cuSPARSE-based implementation would ship.
        """
        return int(
            self.data.size * self.data.itemsize
            + self.indices.size * INDEX_BYTES
            + self.indptr.size * INDEX_BYTES
        )

    @property
    def density(self) -> float:
        m, n = self.shape
        cells = m * n
        return self.nnz / cells if cells else 0.0

    def row_degrees(self) -> np.ndarray:
        """nnz per row (out-degree for an adjacency matrix)."""
        return np.diff(self.indptr)

    def col_degrees(self) -> np.ndarray:
        """nnz per column (in-degree)."""
        counts = np.zeros(self.ncols, dtype=np.int64)
        if self.nnz:
            np.add.at(counts, self.indices, 1)
        return counts

    def average_degree(self) -> float:
        return self.nnz / self.nrows if self.nrows else 0.0

    def empty_row_count(self) -> int:
        """Rows with no nonzeros -- central to the hypersparsity analysis."""
        return int(np.count_nonzero(np.diff(self.indptr) == 0))

    # ------------------------------------------------------------------ #
    # conversions and views
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        if self.nnz:
            row_ids = np.repeat(
                np.arange(self.nrows, dtype=np.int64), np.diff(self.indptr)
            )
            out[row_ids, self.indices] = self.data
        return out

    def to_scipy(self) -> Any:
        """``scipy.sparse.csr_matrix`` view of this matrix, built once.

        ``data`` is shared; scipy downcasts the int64 ``indices``/
        ``indptr`` to int32, so those two arrays are copied (~4 bytes per
        nonzero, held for the matrix's lifetime).  CSRMatrix instances
        are structurally immutable (every operation returns a new
        matrix), and the distributed algorithms multiply against the same
        blocks every SUMMA stage of every epoch -- so the wrapper is
        cached after the first call, taking per-call construction off the
        hottest serial SpMM path.
        """
        if self._scipy_cache is None:
            import scipy.sparse as sp

            self._scipy_cache = sp.csr_matrix(
                (self.data, self.indices, self.indptr),
                shape=self.shape,
                copy=False,
            )
        return self._scipy_cache

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        row_ids = np.repeat(
            np.arange(self.nrows, dtype=np.int64), np.diff(self.indptr)
        )
        return row_ids, self.indices.copy(), self.data.copy()

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(),
            self.shape, validate=False,
        )

    # ------------------------------------------------------------------ #
    # structural operations
    # ------------------------------------------------------------------ #
    def transpose(self) -> "CSRMatrix":
        """CSR transpose via counting sort -- O(nnz + n)."""
        m, n = self.shape
        if self.nnz == 0:
            return CSRMatrix.zeros((n, m))
        col_counts = np.zeros(n + 1, dtype=np.int64)
        np.add.at(col_counts, self.indices + 1, 1)
        t_indptr = np.cumsum(col_counts)
        row_ids = np.repeat(np.arange(m, dtype=np.int64), np.diff(self.indptr))
        # Stable sort by column gives the transposed rows with original-row
        # (i.e. transposed-column) order preserved within each.
        order = np.argsort(self.indices, kind="stable")
        return CSRMatrix(
            t_indptr, row_ids[order], self.data[order], (n, m), validate=False
        )

    def row_slice(self, r0: int, r1: int) -> "CSRMatrix":
        """Rows ``[r0, r1)`` as a new CSR of shape ``(r1-r0, ncols)``."""
        if not 0 <= r0 <= r1 <= self.nrows:
            raise IndexError(f"row slice [{r0},{r1}) outside {self.nrows} rows")
        lo, hi = int(self.indptr[r0]), int(self.indptr[r1])
        return CSRMatrix(
            self.indptr[r0 : r1 + 1] - lo,
            self.indices[lo:hi].copy(),
            self.data[lo:hi].copy(),
            (r1 - r0, self.ncols),
            validate=False,
        )

    def block(self, r0: int, r1: int, c0: int, c1: int) -> "CSRMatrix":
        """Submatrix ``[r0:r1, c0:c1]`` with **local** (rebased) indices.

        This is the block-extraction primitive the 1D/2D/3D distributions
        use; column indices are shifted by ``-c0`` so the block is a
        self-contained CSR of shape ``(r1-r0, c1-c0)``.
        """
        if not 0 <= c0 <= c1 <= self.ncols:
            raise IndexError(f"col slice [{c0},{c1}) outside {self.ncols} cols")
        rows = self.row_slice(r0, r1)
        keep = (rows.indices >= c0) & (rows.indices < c1)
        if keep.all():
            indices = rows.indices - c0
            data = rows.data
            indptr = rows.indptr
        else:
            # Recount row lengths after dropping out-of-block columns.
            row_ids = np.repeat(
                np.arange(rows.nrows, dtype=np.int64), np.diff(rows.indptr)
            )
            row_ids = row_ids[keep]
            indices = rows.indices[keep] - c0
            data = rows.data[keep]
            counts = np.zeros(rows.nrows + 1, dtype=np.int64)
            np.add.at(counts, row_ids + 1, 1)
            indptr = np.cumsum(counts)
        return CSRMatrix(indptr, indices, data, (r1 - r0, c1 - c0), validate=False)

    def scale_rows(self, scale: np.ndarray) -> "CSRMatrix":
        """Return ``diag(scale) @ self`` (row scaling)."""
        scale = np.asarray(scale, dtype=np.float64)
        if scale.shape != (self.nrows,):
            raise ValueError(f"need {self.nrows} row scales, got {scale.shape}")
        row_ids = np.repeat(
            np.arange(self.nrows, dtype=np.int64), np.diff(self.indptr)
        )
        return CSRMatrix(
            self.indptr.copy(),
            self.indices.copy(),
            self.data * scale[row_ids],
            self.shape,
            validate=False,
        )

    def scale_cols(self, scale: np.ndarray) -> "CSRMatrix":
        """Return ``self @ diag(scale)`` (column scaling)."""
        scale = np.asarray(scale, dtype=np.float64)
        if scale.shape != (self.ncols,):
            raise ValueError(f"need {self.ncols} col scales, got {scale.shape}")
        return CSRMatrix(
            self.indptr.copy(),
            self.indices.copy(),
            self.data * scale[self.indices],
            self.shape,
            validate=False,
        )

    def permute(self, perm: np.ndarray) -> "CSRMatrix":
        """Symmetric permutation ``P A P^T`` for a square matrix.

        ``perm[i]`` is the new label of vertex ``i`` -- the "random vertex
        permutation" the paper's 2D/3D algorithms use for load balance.
        """
        if self.nrows != self.ncols:
            raise ValueError("symmetric permutation needs a square matrix")
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.nrows,):
            raise ValueError(f"permutation length {perm.shape} != {self.nrows}")
        if np.any(np.sort(perm) != np.arange(self.nrows)):
            raise ValueError("not a permutation of 0..n-1")
        rows, cols, vals = self.to_coo()
        return CSRMatrix.from_coo(
            perm[rows], perm[cols], vals, self.shape, sum_duplicates=False
        )

    # ------------------------------------------------------------------ #
    # comparisons
    # ------------------------------------------------------------------ #
    def allclose(self, other: "CSRMatrix", rtol: float = 1e-10,
                 atol: float = 1e-12) -> bool:
        if self.shape != other.shape:
            return False
        return np.allclose(self.to_dense(), other.to_dense(), rtol=rtol, atol=atol)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.2e})"
        )
