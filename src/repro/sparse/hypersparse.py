"""Hypersparsity analysis: what partitioning does to local block density.

Two analyses from the paper live here:

* **Expected non-empty rows of a 1D column block** (Section IV-A.3, citing
  Ballard et al. [5] Section 4.1.2): for an Erdos-Renyi graph
  ``G(n, d/n)``, each ``n x n/P`` column block ``A_i`` has
  ``n * (1 - (1 - d/n)^(n/P)) ~= n(1 - e^{-d/P}) ~= dn/P`` non-empty rows
  for large ``P > d``.  This is what justifies a *sparse* representation
  of the 1D backward pass's intermediate ``A_i G_i`` products: storing
  them sparsely costs ``O(dnf/P)`` versus ``O(nf)`` dense.

* **Hypersparsity of 2D blocks** (Section VI-a, citing Buluc & Gilbert
  [8]): 2D partitioning over ``sqrt(P) x sqrt(P)`` cuts each block's
  average degree by a factor of ``sqrt(P)``, pushing local SpMM into the
  regime where sustained rates collapse (:mod:`repro.sparse.perfmodel`).

Empirical counters measure the same quantities on real CSR blocks so the
closed forms can be validated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "expected_nonempty_rows",
    "expected_nonempty_rows_asymptotic",
    "BlockSparsityStats",
    "block_sparsity_stats",
    "aggregate_block_stats",
    "sparse_vs_dense_intermediate_words",
]


def expected_nonempty_rows(n: int, d: float, p: int) -> float:
    """Exact expectation of non-empty rows in an ``n x n/p`` ER block.

    Each of the ``n`` rows is empty iff all ``n/p`` Bernoulli(d/n) entries
    are zero, so ``E[nonempty] = n * (1 - (1 - d/n)^(n/p))``.
    """
    if n <= 0 or p <= 0:
        raise ValueError("n and p must be positive")
    if d < 0 or d > n:
        raise ValueError(f"average degree {d} outside [0, {n}]")
    cols = n / p
    if d == n:
        return float(n)
    return n * (1.0 - (1.0 - d / n) ** cols)


def expected_nonempty_rows_asymptotic(n: int, d: float, p: int) -> float:
    """The paper's large-``P`` simplification: ``dn/P`` (valid for P > d)."""
    return d * n / p


@dataclass(frozen=True)
class BlockSparsityStats:
    """Density statistics of one local block."""

    nrows: int
    ncols: int
    nnz: int
    nonempty_rows: int
    avg_degree: float
    max_row_nnz: int

    @property
    def empty_row_fraction(self) -> float:
        return 1.0 - self.nonempty_rows / self.nrows if self.nrows else 0.0

    @property
    def is_hypersparse(self) -> bool:
        """Hypersparse per Buluc & Gilbert: nnz < nrows (avg degree < 1)."""
        return self.nnz < self.nrows


def block_sparsity_stats(block: CSRMatrix) -> BlockSparsityStats:
    """Measure the sparsity statistics of one CSR block."""
    degrees = block.row_degrees()
    return BlockSparsityStats(
        nrows=block.nrows,
        ncols=block.ncols,
        nnz=block.nnz,
        nonempty_rows=int(np.count_nonzero(degrees)),
        avg_degree=block.average_degree(),
        max_row_nnz=int(degrees.max()) if degrees.size else 0,
    )


def aggregate_block_stats(
    blocks: Mapping[int, CSRMatrix]
) -> Dict[str, float]:
    """Summary over a distribution's blocks: degree decay and imbalance.

    ``nnz_imbalance`` is max-block-nnz over mean-block-nnz -- the load
    balance metric that the random vertex permutation is meant to keep
    near 1 for the 2D/3D algorithms.
    """
    if not blocks:
        raise ValueError("no blocks to aggregate")
    nnzs = np.array([b.nnz for b in blocks.values()], dtype=np.float64)
    degrees = np.array([b.average_degree() for b in blocks.values()])
    empties = np.array(
        [block_sparsity_stats(b).empty_row_fraction for b in blocks.values()]
    )
    mean_nnz = float(nnzs.mean())
    return {
        "nblocks": float(len(blocks)),
        "total_nnz": float(nnzs.sum()),
        "mean_block_nnz": mean_nnz,
        "max_block_nnz": float(nnzs.max()),
        "nnz_imbalance": float(nnzs.max() / mean_nnz) if mean_nnz else math.inf,
        "mean_local_degree": float(degrees.mean()),
        "mean_empty_row_fraction": float(empties.mean()),
    }


def sparse_vs_dense_intermediate_words(n: int, d: float, f: int, p: int) -> Dict[str, float]:
    """Storage of the 1D backward intermediate ``A_i G_i`` per process.

    Section IV-A.3: dense storage is ``O(nf)`` words per process; sparse
    (rows only where ``A_i`` has a nonzero) is ``O(dnf/P)`` expected words
    in the paper's large-``P`` bound.  ``sparse_wins`` follows that
    asymptotic comparison (crossover at ``P = d``, the paper's "at large
    scale (i.e. when P > d)"); ``exact_sparse_words`` reports the exact
    finite-``P`` expectation, which is always at most ``nf``.
    """
    dense = float(n) * f
    sparse = expected_nonempty_rows_asymptotic(n, d, p) * f
    exact = expected_nonempty_rows(n, d, p) * f
    return {
        "dense_words": dense,
        "sparse_words": sparse,
        "exact_sparse_words": exact,
        "sparse_wins": sparse < dense,
        "crossover_p": d,  # sparse ~ dn f/P < nf  iff  P > d
    }
