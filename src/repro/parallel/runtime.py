"""Runtimes for the process backend: the worker view and the driver view.

:class:`WorkerRuntime` lives inside each spawned worker: a full
:class:`~repro.comm.runtime.Runtime` whose ``local_ranks`` are the block
of mesh ranks this worker owns, with :class:`ProcessCollectives` moving
payloads through shared memory.  Each worker constructs the *same*
:class:`~repro.dist.base.DistAlgorithm` (same seed, same replicated
weights) and runs the *same* epoch program; only the data loops narrow to
the owned ranks.  Because charging is global and deterministic, every
worker's tracker is a complete, bit-identical copy of the virtual
runtime's ledger -- verified via :func:`ledger_digest` (one batched
digest per fit / per fused command stream; full per-epoch and
per-command digests under ``REPRO_PARALLEL_PARANOID=1``).

:class:`ParallelRuntime` is the driver-side handle: it exposes the
:class:`VirtualRuntime` surface (mesh, tracker, profile, describe,
breakdowns) so CLI/benchmark code is backend-agnostic, spawns a
:class:`~repro.parallel.backend.ProcessBackend` on first use, and mirrors
worker 0's tracker after every digest-checked dispatch.
:class:`ParallelAlgorithm` is the matching driver-side proxy for one
distributed algorithm: ``fit`` ships the whole training program in a
single dispatch (the workers are resident -- the epoch loop runs
worker-side); ``train_epoch`` / ``predict`` / ``evaluate`` forward to
the lock-stepped workers and return worker 0's results.
"""

from __future__ import annotations

import hashlib
import struct
import time
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Sequence, Tuple, Union)

import numpy as np

from repro.comm.mesh import Mesh1D, Mesh2D, Mesh3D, ProcessMesh
from repro.comm.runtime import RuntimeBase
from repro.comm.tracker import CommTracker
from repro.config import MachineProfile
from repro.nn.optim import Optimizer
from repro.parallel.channel import PeerChannel
from repro.parallel.collectives import ProcessCollectives
from repro.sparse.csr import CSRMatrix

if TYPE_CHECKING:  # runtime imports dist lazily; annotate without the cycle
    from repro.dist.base import DistTrainHistory, EpochStats

__all__ = [
    "WorkerRuntime",
    "ParallelRuntime",
    "ParallelAlgorithm",
    "ledger_digest",
    "owner_map",
]


def owner_map(nranks: int, nworkers: int) -> Tuple[int, ...]:
    """Block assignment of mesh ranks to workers (contiguous, near-equal).

    Contiguity is load-bearing: the grid algorithms require each row
    group's local members to sit on consecutive feature columns (see
    ``GridAlgorithm._local_group_info``).
    """
    if not 1 <= nworkers <= nranks:
        raise ValueError(
            f"need 1 <= workers <= ranks, got {nworkers} workers for "
            f"{nranks} ranks"
        )
    base, extra = divmod(nranks, nworkers)
    owners = []
    for w in range(nworkers):
        owners.extend([w] * (base + (1 if w < extra else 0)))
    return tuple(owners)


def ledger_digest(tracker: CommTracker, *extra_floats: float) -> str:
    """Bit-exact fingerprint of a tracker (plus optional scalars).

    Workers compare digests after every command: identical programs must
    produce identical ledgers, so a mismatch means a backend bug (lost
    message, wrong fold order), not a tolerance issue.
    """
    h = hashlib.sha1()
    for x in extra_floats:
        h.update(struct.pack("<d", float(x)))
    h.update(tracker.state_bytes())
    return h.hexdigest()


class WorkerRuntime(RuntimeBase):
    """One worker's rank-local runtime inside the process backend."""

    backend = "process-worker"

    def __init__(self, mesh: ProcessMesh, profile: Optional[MachineProfile],
                 channel: PeerChannel, owners: Sequence[int]):
        self._init_core(mesh, profile)
        self.channel = channel
        self.owners = tuple(owners)
        self.worker_id = channel.wid
        self._local_ranks = tuple(
            r for r in range(mesh.size) if self.owners[r] == channel.wid
        )
        self._local_set = frozenset(self._local_ranks)
        self.nworkers = max(self.owners) + 1
        self.coll = ProcessCollectives(
            self.profile, self.tracker, self.plan, channel, self.owners,
            self._local_ranks,
        )

    def is_local(self, rank: int) -> bool:
        return rank in self._local_set

    def gather_blocks(self, blocks: Dict[int, np.ndarray]
                      ) -> Dict[int, np.ndarray]:
        """Uncharged world assembly of a per-rank dict (read-out path).

        Replicated layouts hand several ranks one shared buffer (row
        groups after an all-gather), so blocks ship once per *distinct*
        object with their rank list, not once per rank -- and receivers
        re-share the decoded copy the same way.
        """
        if self.nworkers == 1:
            return blocks
        distinct: Dict[int, Tuple[np.ndarray, list]] = {}
        for r, block in blocks.items():
            entry = distinct.setdefault(id(block), (block, []))
            entry[1].append(r)
        items = [(tuple(ranks), block) for block, ranks in distinct.values()]
        others = [w for w in range(self.nworkers) if w != self.worker_id]
        got = self.channel.exchange(("gb",), items, others, others)
        full = dict(blocks)
        for pairs in got.values():
            for ranks, block in pairs:
                for r in ranks:
                    full[r] = block
        return full

    def describe(self) -> str:
        return (f"WorkerRuntime({self._topology()}, "
                f"worker {self.worker_id}/{self.nworkers}, "
                f"ranks {self._local_ranks}, profile={self.profile.name})")


class ParallelAlgorithm:
    """Driver-side proxy: the :class:`DistAlgorithm` public surface,
    executed by the backend's lock-stepped workers.

    Every method broadcasts one command, waits for all workers, asserts
    their ledgers/losses agree bit for bit, adopts worker 0's tracker
    into :attr:`rt`, and returns worker 0's result.
    """

    def __init__(self, rt: "ParallelRuntime", name: str, a_t: CSRMatrix,
                 widths: Sequence[int], seed: int = 0,
                 optimizer: Optional[Optimizer] = None, **kwargs: Any):
        self.rt = rt
        self.name = name
        self.n = a_t.nrows
        self.widths = tuple(int(w) for w in widths)
        #: the :class:`~repro.obs.tracing.MergedTrace` of the last traced
        #: ``fit`` (``None`` until ``fit(trace=...)`` runs)
        self.last_trace = None
        #: the exact make_algo payload, kept so the recovery loop can
        #: rebuild the same algorithm on a respawned pool.
        self._ctor_payload = (name, a_t, self.widths, seed, optimizer,
                              kwargs)
        rt._ensure_started()
        rt._command("make_algo", self._ctor_payload)

    # ------------------------------------------------------------------ #
    def setup(self, features: np.ndarray, labels: np.ndarray,
              mask: Optional[np.ndarray] = None) -> None:
        self.rt._command("setup", (np.asarray(features), np.asarray(labels),
                                   None if mask is None else np.asarray(mask)))

    def train_epoch(self, epoch: int = 0) -> "EpochStats":
        results = self.rt._command("train_epoch", epoch)
        stats = self.rt._adopt_and_check(results)
        return stats

    def fit(self, features: np.ndarray, labels: np.ndarray, epochs: int,
            mask: Optional[np.ndarray] = None,
            on_epoch: Optional[Callable[["EpochStats"], None]] = None,
            trace: Union[bool, int, dict, None] = None,
            checkpoint_path: Optional[str] = None,
            checkpoint_every: int = 0) -> "DistTrainHistory":
        """Train for ``epochs`` epochs in **one dispatch**.

        The whole program (setup + epoch loop) ships to the resident
        workers and runs with zero driver round-trips; the driver
        collects the final per-epoch history and ledger, checks the
        batched digest, and -- for API parity with
        :meth:`DistAlgorithm.fit` -- replays ``on_epoch`` over the
        returned stats.

        ``trace`` turns on worker-side span recording for this fit:
        ``True`` / a capacity int / an options dict (``{"capacity": n}``).
        The drained spans ride back on the same single dispatch and the
        merged result lands in :attr:`last_trace`; losses and ledger
        stay bit-identical to an untraced fit.

        ``checkpoint_path`` + ``checkpoint_every=k`` make worker 0 write
        the full training state atomically every ``k`` epochs.  When the
        backend has a restart budget (``max_restarts`` /
        ``REPRO_PARALLEL_MAX_RESTARTS``), a recoverable failure -- dead
        worker, stalled pool, transport error -- triggers the elastic
        recovery loop: back off, respawn the pool, rebuild the
        algorithm, and re-dispatch the fit with ``resume=True`` so the
        workers reload the last checkpoint and continue.  The resumed
        trajectory is deterministic, so final losses and the ledger
        digest are bit-identical to a fault-free run.  Recovery
        dispatches are counted separately (``recovery_dispatches`` in
        :meth:`ParallelRuntime.backend_stats`), preserving the
        O(1)-dispatches-per-fit invariant.
        """
        from repro.dist.base import DistTrainHistory
        from repro.obs import events as _events
        from repro.obs import spans as _spans
        from repro.parallel.backend import RECOVERABLE_ERRORS

        trace_opts = None
        if trace is not None and trace is not False:
            if trace is True:
                trace_opts = {}
            elif isinstance(trace, int):
                trace_opts = {"capacity": trace}
            else:
                trace_opts = dict(trace)
        ckpt = {
            "path": None if checkpoint_path is None else str(checkpoint_path),
            "every": int(checkpoint_every),
            "resume": False,
            "attempt": 1,
        }
        base = (
            np.asarray(features), np.asarray(labels),
            None if mask is None else np.asarray(mask), int(epochs),
            trace_opts,
        )
        t_dispatch = time.monotonic()
        backend = self.rt._ensure_started()
        attempt = 1
        while True:
            try:
                if attempt == 1:
                    results = self.rt._command("fit", base + (ckpt,))
                else:
                    results = backend.command(
                        "fit", base + (dict(ckpt, resume=True,
                                            attempt=attempt),),
                        recovery=True)
                break
            except RECOVERABLE_ERRORS as exc:
                # attempt - 1 restarts are already behind us; reraise
                # once the budget is spent (terminate() already ran in
                # the failure path, so nothing leaks).
                backend.recovering = True
                _events.emit("failure", kind=type(exc).__name__,
                             attempt=attempt, error=str(exc)[:300])
                if attempt > backend.max_restarts:
                    backend.recovering = False
                    _events.emit("error", kind=type(exc).__name__,
                                 attempt=attempt,
                                 reason="restart budget exhausted")
                    raise
                rec = _spans.ACTIVE
                t0 = rec.clock() if rec is not None else 0.0
                delay = backend.backoff * (2 ** (attempt - 1))
                _events.emit("backoff", seconds=delay, attempt=attempt)
                time.sleep(delay)
                backend.counters["restarts"] += 1
                backend.start()
                backend.command("make_algo", self._ctor_payload,
                                recovery=True)
                _events.emit("respawn", attempt=attempt,
                             restarts=backend.counters["restarts"])
                if rec is not None:
                    rec.record("recover", "misc", t0, rec.clock(),
                               (attempt,))
                attempt += 1
                _events.emit("resume", attempt=attempt,
                             checkpoint=ckpt.get("path"))
                backend.recovering = False
        epoch_stats = self.rt._adopt_and_check(results)
        if _events.ACTIVE is not None:
            # The driver owns the event log (workers never have one);
            # replay the adopted history into it so the process backend
            # emits the same epoch/checkpoint stream the virtual
            # backend writes live.
            every = int(checkpoint_every)
            for stats in epoch_stats:
                _events.emit("epoch", epoch=int(stats.epoch),
                             loss=float(stats.loss),
                             train_accuracy=float(stats.train_accuracy))
                if (checkpoint_path is not None and every > 0
                        and (stats.epoch + 1) % every == 0):
                    _events.emit("checkpoint", path=str(checkpoint_path),
                                 epochs=int(stats.epoch) + 1)
        if trace_opts is not None:
            from repro.obs.tracing import merge_worker_obs

            self.last_trace = merge_worker_obs(
                self.rt.last_obs or [], t_dispatch
            )
        history = DistTrainHistory()
        history.epochs.extend(epoch_stats)
        if on_epoch is not None:
            for stats in epoch_stats:
                on_epoch(stats)
        return history

    def predict(self, features: Optional[np.ndarray] = None) -> np.ndarray:
        results = self.rt._command(
            "predict", None if features is None else np.asarray(features)
        )
        return self.rt._adopt_and_check(results)

    def evaluate(self, labels: np.ndarray,
                 mask: Optional[np.ndarray] = None) -> Tuple[float, float]:
        results = self.rt._command(
            "evaluate",
            (np.asarray(labels), None if mask is None else np.asarray(mask)),
        )
        return self.rt._adopt_and_check(results)

    def gather_log_probs(self) -> np.ndarray:
        return self.rt._command("log_probs", None)[0]

    def model_weights(self) -> List[np.ndarray]:
        """Worker 0's replicated model weights (all workers are
        bit-identical -- the digest checks would have tripped otherwise)."""
        return self.rt._command("weights", None)[0]

    def verify_against_serial(self, features: np.ndarray, labels: np.ndarray,
                              epochs: int, seed: Optional[int] = None,
                              mask: Optional[np.ndarray] = None) -> float:
        """Serial-vs-process divergence, mirroring
        :meth:`DistAlgorithm.verify_against_serial` (serial runs on the
        driver, distributed on the workers, both from fresh weights)."""
        from repro.dist.base import clone_optimizer
        from repro.nn.model import GCN, SerialTrainer

        info = self.rt._command("reset_model", seed)[0]
        seed, optimizer = info["seed"], info["optimizer"]
        serial = SerialTrainer(
            GCN(self.widths, seed=seed),
            info["a_t"],
            a=info["a"],
            optimizer=clone_optimizer(optimizer),
        )
        # The workers' operand lives in the distribution's internal
        # (part-major) vertex order; feed the serial reference the same
        # relabelled inputs and map its predictions back.
        dist = info.get("distribution")
        s_features = np.asarray(features, dtype=np.float64)
        s_labels = np.asarray(labels, dtype=np.int64)
        s_mask = None if mask is None else np.asarray(mask, dtype=bool)
        if dist is not None:
            s_features = dist.permute_rows(s_features)
            s_labels = dist.permute_rows(s_labels)
            s_mask = None if s_mask is None else dist.permute_rows(s_mask)
        s_hist = serial.train(s_features, s_labels, epochs, mask=s_mask)
        s_lp = serial.model.predict(info["a_t"], s_features)
        if dist is not None:
            s_lp = dist.unpermute_rows(s_lp)
        d_hist = self.fit(features, labels, epochs, mask=mask)
        # Verification read-out rides one fused command stream: the
        # forward pass and the weight snapshot arrive in a single
        # pickle/wakeup with one batched digest.
        d_lp, d_weights = self.rt._command_batch(
            [("predict", None), ("weights", None)]
        )
        diff = max(
            abs(a - b)
            for a, b in zip(d_hist.losses, [e.loss for e in s_hist.epochs])
        )
        for w_d, w_s in zip(d_weights, serial.model.weights):
            diff = max(diff, float(np.max(np.abs(w_d - w_s))) if w_d.size
                       else 0.0)
        diff = max(diff, float(np.max(np.abs(d_lp - s_lp))))
        return diff


class ParallelRuntime(RuntimeBase):
    """Driver-side runtime for the multiprocess execution backend.

    Mirrors the :class:`VirtualRuntime` constructor surface plus a
    ``workers`` count; the worker processes spawn lazily when the first
    algorithm is built.  After every command the driver adopts worker 0's
    tracker, so ``tracker`` / ``epoch_breakdown`` / ``modeled_seconds``
    read exactly like the virtual runtime's.
    """

    backend = "process"

    def __init__(self, mesh: ProcessMesh,
                 profile: Optional[MachineProfile] = None,
                 workers: Optional[int] = None,
                 arena_bytes: Optional[int] = None,
                 timeout: Optional[float] = None,
                 transport: str = "shm",
                 faults: Optional[str] = None,
                 max_restarts: Optional[int] = None,
                 backoff: Optional[float] = None):
        self._init_core(mesh, profile)
        self.coll = None  # collectives execute inside the workers
        if workers is None:
            workers = mesh.size
        if not 1 <= workers <= mesh.size:
            raise ValueError(
                f"need 1 <= workers <= ranks, got {workers} workers for "
                f"{mesh.size} ranks"
            )
        self.workers = workers
        self.owners = owner_map(mesh.size, self.workers)
        self.transport = transport
        #: per-worker span blobs from the last traced dispatch
        self.last_obs = None
        self._backend = None
        self._algorithm_built = False
        self._arena_bytes = arena_bytes
        self._timeout = timeout
        self._faults = faults
        self._max_restarts = max_restarts
        self._backoff = backoff

    # ------------------------------------------------------------------ #
    # constructors (mirroring VirtualRuntime)
    # ------------------------------------------------------------------ #
    @classmethod
    def make_1d(cls, p: int, profile: Optional[MachineProfile] = None,
                workers: Optional[int] = None, **kw: Any
                ) -> "ParallelRuntime":
        return cls(Mesh1D(size=p), profile, workers=workers, **kw)

    @classmethod
    def make_2d(cls, p: int, profile: Optional[MachineProfile] = None,
                workers: Optional[int] = None, **kw: Any
                ) -> "ParallelRuntime":
        return cls(Mesh2D.square(p), profile, workers=workers, **kw)

    @classmethod
    def make_2d_rect(cls, rows: int, cols: int,
                     profile: Optional[MachineProfile] = None,
                     workers: Optional[int] = None,
                     **kw: Any) -> "ParallelRuntime":
        return cls(Mesh2D.rectangular(rows, cols), profile, workers=workers,
                   **kw)

    @classmethod
    def make_3d(cls, p: int, profile: Optional[MachineProfile] = None,
                workers: Optional[int] = None, **kw: Any
                ) -> "ParallelRuntime":
        return cls(Mesh3D.cubic(p), profile, workers=workers, **kw)

    # ------------------------------------------------------------------ #
    # backend plumbing
    # ------------------------------------------------------------------ #
    def _ensure_started(self):
        if self._backend is None:
            from repro.parallel.backend import ProcessBackend

            self._backend = ProcessBackend(
                self.mesh, self.profile, self.workers,
                arena_bytes=self._arena_bytes, timeout=self._timeout,
                transport=self.transport, faults=self._faults,
                max_restarts=self._max_restarts, backoff=self._backoff,
            )
            self._backend.start()
        return self._backend

    def _command(self, op: str, payload) -> list:
        return self._ensure_started().command(op, payload)

    def _command_batch(self, commands) -> list:
        """Fuse a command stream into one dispatch; returns the ordered
        sub-command values (worker 0's), digest-checked as one batch."""
        results = self._ensure_started().command_batch(commands)
        return self._adopt_and_check(results)

    def _adopt_and_check(self, results):
        """Adopt worker 0's tracker; insist every worker agrees bit for
        bit.  Each result is ``(value, digest, tracker_or_None, obs)``
        where ``digest`` is either the batched stream digest or, under
        paranoid mode, ``(final, per_item_digests)`` -- in which case a
        mismatch names the first diverging epoch / sub-command.  ``obs``
        (the per-worker span blobs of a traced fit) is stashed on
        :attr:`last_obs` and never enters the digest comparison."""
        self._backend.counters["digest_checks"] += 1
        obs = [r[3] for r in results]
        if any(b is not None for b in obs):
            self.last_obs = obs
        digests = {r[1] for r in results}
        if len(digests) != 1:
            detail = ""
            per_item = [r[1][1] for r in results
                        if isinstance(r[1], tuple)]
            if len(per_item) == len(results) and per_item:
                for i in range(min(len(p) for p in per_item)):
                    if len({p[i] for p in per_item}) > 1:
                        detail = f" (first divergence at stream item {i})"
                        break
            raise RuntimeError(
                "process backend diverged: workers returned "
                f"{len(digests)} distinct ledger digests{detail}"
            )
        value, _, tracker = results[0][:3]
        if tracker is not None:
            mine = self.tracker
            mine.per_rank = tracker.per_rank
            mine.wall = tracker.wall
            mine._nsteps = tracker._nsteps
            mine._step = None
        return value

    def make_algorithm(self, name: str, a_t: CSRMatrix,
                       widths: Sequence[int], seed: int = 0,
                       optimizer: Optional[Optimizer] = None,
                       **kwargs: Any) -> ParallelAlgorithm:
        """Build (on every worker) the named algorithm for this runtime.

        One live algorithm per pool: the workers hold a single algorithm
        slot, so a second build would silently hijack the first proxy's
        model.  ``close()`` the runtime (fresh pool) to build another.
        """
        if self._algorithm_built:
            raise RuntimeError(
                "this ParallelRuntime already drives an algorithm; a "
                "second one would share (and corrupt) the workers' "
                "state -- close() this runtime and build a fresh one"
            )
        algo = ParallelAlgorithm(self, name, a_t, widths, seed=seed,
                                 optimizer=optimizer, **kwargs)
        self._algorithm_built = True
        return algo

    def reset_stats(self) -> None:
        self.tracker.reset()
        if self._backend is not None:
            self._command("reset_stats", None)

    def backend_stats(self, workers: bool = True) -> Optional[dict]:
        """Dispatch/traffic counters (:meth:`ProcessBackend.stats`), or
        ``None`` before the pool has started."""
        if self._backend is None:
            return None
        return self._backend.stats(workers=workers)

    def live_sample(self) -> dict:
        """Zero-dispatch snapshot for the live metrics endpoint
        (:meth:`ProcessBackend.live_sample`); a minimal sample before
        the pool starts or after it closes."""
        backend = self._backend
        if backend is None:
            return {"workers": self.workers, "recovering": False}
        return backend.live_sample()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._backend is not None:
            self._backend.close()
            self._backend = None
        self._algorithm_built = False

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def describe(self) -> str:
        return (f"ParallelRuntime({self._topology()}, "
                f"{self.workers} workers, {self.transport} transport, "
                f"profile={self.profile.name})")
