"""Shared-memory payload transport: arenas and the array/CSR codec.

Workers exchange collective payloads through POSIX shared memory: each
worker owns one fixed-size **arena** segment (created by the driver,
write-only to its owner) plus, for oversized payloads, per-payload
**ephemeral** segments.  A payload travels as a small picklable
*descriptor* over the metadata queues while the bulk bytes go through
``/dev/shm``:

``('none',)``
    an empty contribution;
``('inl', obj)``
    small payloads ride inline in the queue message (pickle) -- scalars,
    loss terms, small weight partials;
``('arr', shape, dtype, seg, offset)``
    a dense block at ``offset`` of the sender's arena (``seg is None``)
    or of the named ephemeral segment;
``('csr', shape, indptr_desc, indices_desc, data_desc)``
    a :class:`~repro.sparse.csr.CSRMatrix` as its three arrays.

Receivers copy payloads out of the sender's segment immediately (the
sender reclaims arena space once every receiver acknowledges), so decoded
arrays are private to the receiving worker.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["Arena", "encode_payload", "decode_payload", "INLINE_MAX"]

#: Payloads at or below this many bytes travel inline in the queue
#: message instead of through shared memory (and need no ack).
INLINE_MAX = 16384

_ALIGN = 64


class Arena:
    """Bump allocator over one shared-memory segment.

    Only the owning worker writes; peers attach read-only and copy out.
    The owner resets the bump pointer after each exchange completes (the
    ack protocol in :mod:`repro.parallel.channel` guarantees every
    receiver has copied by then).
    """

    def __init__(self, shm: shared_memory.SharedMemory):
        self.shm = shm
        self.size = shm.size
        self.ptr = 0
        # Occupancy gauges the kernel profiler reads: the deepest bump
        # the arena ever reached and how many payloads spilled to
        # ephemeral segments because the arena was full.  Plain int
        # bookkeeping -- cheap enough to maintain unconditionally.
        self.high_water = 0
        self.spills = 0

    def alloc(self, nbytes: int) -> Optional[int]:
        """Offset of a fresh ``nbytes`` block, or ``None`` when full."""
        start = (self.ptr + _ALIGN - 1) // _ALIGN * _ALIGN
        if start + nbytes > self.size:
            self.spills += 1
            return None
        self.ptr = start + nbytes
        if self.ptr > self.high_water:
            self.high_water = self.ptr
        return start

    def reset(self) -> None:
        self.ptr = 0

    def close(self) -> None:
        self.shm.close()


def _encode_array(arena: Arena, arr: np.ndarray, ephemerals: List,
                  inline_max: int) -> Tuple:
    arr = np.asarray(arr)
    if arr.nbytes <= inline_max:
        # Always a private copy: multiprocessing.Queue pickles in a feeder
        # thread *after* put() returns, and the caller may overwrite the
        # source buffer (epoch workspaces) as soon as the exchange ends.
        return ("inl", arr.copy())
    offset = arena.alloc(arr.nbytes)
    if offset is not None:
        dst = np.ndarray(arr.shape, arr.dtype, buffer=arena.shm.buf,
                         offset=offset)
        np.copyto(dst, arr)
        return ("arr", arr.shape, arr.dtype.str, None, offset)
    # Arena full: spill to a per-payload ephemeral segment, unlinked by
    # the sender once every receiver has acknowledged its copy.
    seg = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    ephemerals.append(seg)
    dst = np.ndarray(arr.shape, arr.dtype, buffer=seg.buf)
    np.copyto(dst, arr)
    return ("arr", arr.shape, arr.dtype.str, seg.name, 0)


def encode_payload(arena: Arena, obj: Any, ephemerals: List,
                   inline_max: int = INLINE_MAX) -> Tuple:
    """Encode a payload into a picklable descriptor (bulk bytes in shm).

    ``ephemerals`` collects overflow segments the caller must unlink
    after the exchange's acknowledgements arrive.
    """
    if obj is None:
        return ("none",)
    if isinstance(obj, CSRMatrix):
        return (
            "csr",
            obj.shape,
            _encode_array(arena, obj.indptr, ephemerals, inline_max),
            _encode_array(arena, obj.indices, ephemerals, inline_max),
            _encode_array(arena, obj.data, ephemerals, inline_max),
        )
    if isinstance(obj, np.ndarray):
        return _encode_array(arena, obj, ephemerals, inline_max)
    raise TypeError(
        f"cannot ship payload of type {type(obj).__name__} through "
        "shared memory (expected ndarray, CSRMatrix, or None)"
    )


def desc_needs_ack(desc: Tuple) -> bool:
    """Does this descriptor reference sender-owned shared memory?"""
    kind = desc[0]
    if kind == "arr":
        return True
    if kind == "csr":
        return any(sub[0] == "arr" for sub in desc[2:5])
    return False


def _decode_array(desc: Tuple, peer_buf) -> np.ndarray:
    kind = desc[0]
    if kind == "inl":
        return desc[1]
    _, shape, dtype, seg, offset = desc
    if seg is None:
        src = np.ndarray(shape, np.dtype(dtype), buffer=peer_buf,
                         offset=offset)
        return src.copy()
    eph = shared_memory.SharedMemory(name=seg)
    try:
        src = np.ndarray(shape, np.dtype(dtype), buffer=eph.buf)
        return src.copy()
    finally:
        eph.close()


def decode_payload(desc: Tuple, peer_buf) -> Any:
    """Decode a descriptor into a private object (copies out of shm).

    ``peer_buf`` is the sending worker's arena buffer (for ``seg is
    None`` references); ephemeral segments are attached by name.
    """
    kind = desc[0]
    if kind == "none":
        return None
    if kind == "csr":
        _, shape, d_indptr, d_indices, d_data = desc
        return CSRMatrix(
            _decode_array(d_indptr, peer_buf),
            _decode_array(d_indices, peer_buf),
            _decode_array(d_data, peer_buf),
            tuple(shape),
            validate=False,
        )
    return _decode_array(desc, peer_buf)
