"""SPMD collectives over shared memory, charging the same ledger.

:class:`ProcessCollectives` implements the :class:`repro.comm.collectives.
Collectives` API for a rank-local worker process: contributions cover
only the ranks this worker owns, payloads really cross process boundaries
(through :mod:`repro.parallel.channel`), and results come back for the
owned ranks only.  The **charging** side is untouched -- the same
alpha-beta cost functions hit the same full-world tracker, so every
worker keeps a complete, bit-identical copy of the virtual runtime's
ledger (the cross-backend oracle).

Determinism: reductions fold contributions in *group-rank order* (a fixed
degenerate reduction tree), exactly matching the virtual runtime's
left-fold in ``Collectives._reduce_arrays`` -- which is what makes
per-epoch losses reproduce the virtual backend bit for bit under frozen
seeds.

Only the operations the SPMD epochs use are implemented; the fancy
god-view-only collectives (``gather``/``scatter``/``alltoall``/
``broadcast_many``/``sendrecv_many``) raise with a pointer to the
virtual backend.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.comm import cost_model as cm
from repro.comm.collectives import (
    Collectives,
    _axis_shards,
    _copy,
    _readonly,
    payload_nbytes,
)
from repro.comm.plan import CommPlan
from repro.comm.tracker import Category, CommTracker
from repro.config import INDEX_BYTES, MachineProfile
from repro.parallel.channel import PeerChannel

__all__ = ["ProcessCollectives"]


class ProcessCollectives(Collectives):
    """Rank-local collectives for one worker of the process backend."""

    def __init__(
        self,
        profile: MachineProfile,
        tracker: CommTracker,
        plan: CommPlan,
        channel: PeerChannel,
        owner_of: Sequence[int],
        local_ranks: Sequence[int],
    ):
        super().__init__(profile, tracker, plan=plan)
        self.channel = channel
        self.owner_of = tuple(owner_of)
        self.wid = channel.wid
        self.local_set = frozenset(local_ranks)
        self._wset_cache: Dict[Tuple[int, ...], Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ #
    # membership helpers
    # ------------------------------------------------------------------ #
    def _workers_of(self, group: Tuple[int, ...]) -> Tuple[int, ...]:
        wset = self._wset_cache.get(group)
        if wset is None:
            wset = tuple(sorted({self.owner_of[r] for r in group}))
            self._wset_cache[group] = wset
        return wset

    def _require_member(self, group: Tuple[int, ...]) -> None:
        if self.wid not in self._workers_of(group):
            raise RuntimeError(
                f"worker {self.wid} called a collective on group {group} "
                "it has no ranks in"
            )

    def _check_contributions(self, group, values) -> None:  # type: ignore[override]
        """Contributions must cover the *locally owned* group members."""
        missing = [r for r in group
                   if r in self.local_set and r not in values]
        if missing:
            raise KeyError(f"missing local contributions from ranks {missing}")

    def _exchange_contributions(
        self, group: Tuple[int, ...], values: Mapping[int, Any]
    ) -> Dict[int, Any]:
        """All group contributions, gathered across the member workers."""
        self._check_contributions(group, values)
        wset = self._workers_of(group)
        full = {r: values[r] for r in group if r in values}
        if len(wset) == 1:
            return full
        self._require_member(group)
        mine = [(r, values[r]) for r in group
                if self.owner_of[r] == self.wid]
        others = [w for w in wset if w != self.wid]
        got = self.channel.exchange(("cg", group), mine, others, others)
        for pairs in got.values():
            full.update(pairs)
        return full

    def _local_members(self, group: Tuple[int, ...]):
        return [r for r in group if r in self.local_set]

    # ------------------------------------------------------------------ #
    # charged collectives (world-group call sites of the epochs)
    # ------------------------------------------------------------------ #
    def allgather(
        self,
        group: Sequence[int],
        values: Mapping[int, Any],
        category: str = Category.DCOMM,
        materialize: bool = False,
    ) -> Dict[int, list]:
        group = self._group(group)
        full = self._exchange_contributions(group, values)
        total = sum(payload_nbytes(full[r]) for r in group)
        cost = self._cost("ag", cm.allgather_cost, total, len(group))
        self._charge_group(group, category, cost)
        if materialize:
            return {
                r: [full[s] if s == r else _copy(full[s]) for s in group]
                for r in self._local_members(group)
            }
        shared = [_readonly(full[s]) for s in group]
        return {r: list(shared) for r in self._local_members(group)}

    def allreduce(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        category: str = Category.DCOMM,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
        materialize: bool = False,
        donate_first: bool = False,
    ) -> Dict[int, np.ndarray]:
        group = self._group(group)
        full = self._exchange_contributions(group, values)
        acc = self._reduce_arrays(group, full, op, donate_first=donate_first)
        cost = self._cost("ar", cm.allreduce_cost, int(acc.nbytes),
                          len(group))
        self._charge_group(group, category, cost)
        if materialize:
            return {r: acc.copy() for r in self._local_members(group)}
        shared = _readonly(acc)
        return {r: shared for r in self._local_members(group)}

    def reduce_scatter(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        category: str = Category.DCOMM,
        axis: int = 0,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
        materialize: bool = False,
        bounds: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> Dict[int, np.ndarray]:
        group = self._group(group)
        full = self._exchange_contributions(group, values)
        acc = self._reduce_arrays(group, full, op)
        return self._shard_local(group, acc, int(acc.nbytes), category,
                                 axis, materialize, bounds=bounds)

    def sparse_reduce_scatter(
        self,
        group: Sequence[int],
        values: Mapping[int, np.ndarray],
        category: str = Category.DCOMM,
        axis: int = 0,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
        materialize: bool = False,
        bounds: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> Dict[int, np.ndarray]:
        group = self._group(group)
        full = self._exchange_contributions(group, values)
        acc = self._reduce_arrays(group, full, op)
        # Same data-dependent wire size as the virtual backend -- the
        # contributions are bit-identical on every backend, so the
        # charged bytes are too.
        wire = 0
        for r in group:
            arr = self._require_dense(full[r], "sparse reduce-scatter")
            nz_rows = int(np.count_nonzero(arr.any(axis=1 - axis)))
            row_bytes = arr.nbytes // max(arr.shape[axis], 1)
            wire = max(wire, nz_rows * (row_bytes + INDEX_BYTES))
        return self._shard_local(group, acc, int(wire), category, axis,
                                 materialize, bounds=bounds)

    def _shard_local(self, group, acc, wire_nbytes, category, axis,
                     materialize, bounds=None):
        """Charge a reduce-scatter and shard ``acc`` for local ranks."""
        cost = self._cost("rs", cm.reduce_scatter_cost, wire_nbytes,
                          len(group))
        self._charge_group(group, category, cost)
        if bounds is None:
            bounds = self.plan.split(acc.shape[axis], len(group))
        shards = _axis_shards(acc, bounds, axis)
        return {
            r: (np.ascontiguousarray(shards[i]) if materialize
                else _readonly(shards[i]))
            for i, r in enumerate(group) if r in self.local_set
        }

    def broadcast(
        self,
        group: Sequence[int],
        root: int,
        value: Any,
        category: str = Category.DCOMM,
        pipelined: bool = False,
        materialize: bool = False,
    ) -> Dict[int, Any]:
        group = self._group(group)
        if root not in group:
            raise ValueError(f"root {root} not in group {group}")
        self._require_member(group)
        recv = self._move_root_payload(("bc", group), group, root, value)
        nbytes = payload_nbytes(recv)
        cost = self._cost("bc", cm.broadcast_cost, nbytes, len(group),
                          pipelined)
        self._charge_group(group, category, cost)
        if materialize:
            return {r: (recv if self.owner_of[root] == self.wid and r == root
                        else (recv.copy() if hasattr(recv, "copy") else recv))
                    for r in self._local_members(group)}
        shared = _readonly(recv)
        return {r: shared for r in self._local_members(group)}

    def barrier(self, group: Sequence[int]) -> None:
        group = self._group(group)
        if len(group) <= 1:
            return
        wset = self._workers_of(group)
        if self.wid in wset and len(wset) > 1:
            others = [w for w in wset if w != self.wid]
            self.channel.exchange(("bar", group), [], others, others)
        super().barrier(group)

    # ------------------------------------------------------------------ #
    # data plane (cached-charge call sites of the epochs)
    # ------------------------------------------------------------------ #
    def _move_root_payload(self, gkey, group, root, value) -> Any:
        """Ship ``value`` from ``root``'s worker to the group's other
        member workers; every member worker returns the payload."""
        wset = self._workers_of(group)
        if self.owner_of[root] == self.wid:
            others = [w for w in wset if w != self.wid]
            if others:
                self.channel.exchange(gkey, [(root, value)], others, [])
            return value
        got = self.channel.exchange(gkey, [], [],
                                    [self.owner_of[root]])
        return got[self.owner_of[root]][0][1]

    def routed_broadcast_data(self, routes, blocks) -> list:
        out = [None] * len(routes)
        for i, (group, root) in enumerate(routes):
            group = self._group(group)
            if self.wid not in self._workers_of(group):
                continue
            recv = self._move_root_payload(
                ("rb", group), group, root,
                blocks[root] if self.owner_of[root] == self.wid else None,
            )
            out[i] = _readonly(recv)
        return out

    def routed_sendrecv_data(self, pairs, payloads) -> list:
        out = [None] * len(pairs)
        for i, (src, dst) in enumerate(pairs):
            ow_s, ow_d = self.owner_of[src], self.owner_of[dst]
            if src == dst:
                if ow_s == self.wid:
                    out[i] = payloads[src]
                continue
            if ow_s == self.wid and ow_d == self.wid:
                out[i] = _readonly(payloads[src])
            elif ow_s == self.wid:
                self.channel.exchange(("sr", src, dst),
                                      [(src, payloads[src])], [ow_d], [])
            elif ow_d == self.wid:
                got = self.channel.exchange(("sr", src, dst), [], [], [ow_s])
                out[i] = _readonly(got[ow_s][0][1])
        return out

    def allgather_data(self, group, values) -> Dict[int, list]:
        group = self._group(group)
        full = self._exchange_contributions(group, values)
        shared = [_readonly(full[s]) for s in group]
        return {r: list(shared) for r in self._local_members(group)}

    def allreduce_data(
        self,
        group,
        values,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
        donate_first: bool = False,
    ) -> Dict[int, np.ndarray]:
        group = self._group(group)
        full = self._exchange_contributions(group, values)
        acc = self._reduce_arrays(group, full, op, donate_first=donate_first)
        shared = _readonly(acc)
        return {r: shared for r in self._local_members(group)}

    def reduce_scatter_data(
        self,
        group,
        values,
        axis: int = 0,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
        bounds: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> Dict[int, np.ndarray]:
        group = self._group(group)
        full = self._exchange_contributions(group, values)
        acc = self._reduce_arrays(group, full, op)
        acc.flags.writeable = False
        if bounds is None:
            bounds = self.plan.split(acc.shape[axis], len(group))
        shards = _axis_shards(acc, bounds, axis)
        return {r: shards[i] for i, r in enumerate(group)
                if r in self.local_set}

    def gather_rows_data(self, pairs, blocks) -> list:
        """Ghost-row transfers really crossing worker boundaries.

        Every worker walks the same globally-ordered pair list (sends
        are posted asynchronously, receives block), exactly like
        :meth:`routed_sendrecv_data` -- the fixed order is what makes
        the rendezvous deadlock-free.  Row selection happens on the
        *source* worker, so only the requested rows travel.
        """
        out = [None] * len(pairs)
        for i, (src, dst, idx) in enumerate(pairs):
            ow_s, ow_d = self.owner_of[src], self.owner_of[dst]
            if ow_s == self.wid and ow_d == self.wid:
                rows = blocks[src][idx]
                rows.flags.writeable = False
                out[i] = rows
            elif ow_s == self.wid:
                self.channel.exchange(
                    ("gr", src, dst),
                    [(src, np.ascontiguousarray(blocks[src][idx]))],
                    [ow_d], [],
                )
            elif ow_d == self.wid:
                got = self.channel.exchange(("gr", src, dst), [], [],
                                            [ow_s])
                out[i] = _readonly(got[ow_s][0][1])
        return out

    # ------------------------------------------------------------------ #
    # god-view-only operations
    # ------------------------------------------------------------------ #
    def _god_view_only(self, name: str):
        raise NotImplementedError(
            f"Collectives.{name} is not used by the SPMD epochs and is "
            "not implemented on the process backend; run it on a "
            "VirtualRuntime"
        )

    def broadcast_many(self, *a, **kw):
        self._god_view_only("broadcast_many")

    def sendrecv(self, *a, **kw):
        # Charging only the two participating workers would break the
        # all-workers-identical-ledger digest invariant; the epochs use
        # :meth:`routed_sendrecv_data` + globally-replayed charges
        # instead.
        self._god_view_only("sendrecv")

    def sendrecv_many(self, *a, **kw):
        self._god_view_only("sendrecv_many")

    def reduce(self, *a, **kw):
        self._god_view_only("reduce")

    def gather(self, *a, **kw):
        self._god_view_only("gather")

    def scatter(self, *a, **kw):
        self._god_view_only("scatter")

    def alltoall(self, *a, **kw):
        self._god_view_only("alltoall")
