"""Multi-host TCP transport for the process backend.

:class:`TcpChannel` is a drop-in replacement for
:class:`~repro.parallel.channel.PeerChannel`: the same tagged
``(group_key, sequence)`` exchange semantics (inherited from
:class:`~repro.parallel.channel.ChannelBase`), the same out-of-order
stash, and therefore the same fixed fold order -- reductions are
bit-reproducible across transports.  Only the wire changes: payloads
travel as length-prefixed pickle frames over a full mesh of TCP sockets
instead of queue descriptors plus shared memory, so the P ranks can span
machines.

Wire format: one frame per posted message, ``>Q`` byte length followed by
``pickle(("d", tag, wid, items))``.  A frame is pickled **once** per
exchange and the same bytes go to every destination.

Deadlock freedom: raw sockets, unlike ``multiprocessing.Queue`` (whose
feeder thread makes ``put`` non-blocking), can deadlock when all peers
sit in ``sendall`` with full kernel buffers.  Each connection therefore
gets a daemon **sender thread** fed by an unbounded queue -- posting is
always non-blocking and the SPMD all-post-then-receive pattern stays
cycle-free.

Rendezvous: on one host (the default) each worker binds an ephemeral
loopback port and advertises it to the peers over the driver's inbox
queues.  Across hosts, set ``REPRO_PARALLEL_HOSTS`` to a comma-separated
``host:port`` list (one entry per worker, in worker order); worker ``w``
binds entry ``w`` and dials the others.  Connection direction is
deterministic -- worker ``w`` connects to every lower id and accepts from
every higher id -- and each dialled connection opens with an 8-byte hello
carrying the caller's worker id.

Receives honour the same no-progress timeout as the shm transport: waits
poll in short slices and only raise :class:`ChannelTimeout` when the
awaited peer's heartbeat counter stalls for ``REPRO_PARALLEL_TIMEOUT``
seconds.
"""

from __future__ import annotations

import pickle
import queue
import socket
import struct
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import spans as _spans
from repro.parallel.channel import (
    WAIT_SLICE,
    ChannelBase,
    ChannelTimeout,
    default_backoff,
)

__all__ = ["TcpChannel", "parse_hosts"]

_HDR = struct.Struct(">Q")


def parse_hosts(spec: str,
                nworkers: Optional[int] = None) -> List[Tuple[str, int]]:
    """Parse ``REPRO_PARALLEL_HOSTS``: ``"host:port,host:port,..."``.

    One entry per worker, in worker-id order.  IPv6 literals may be
    bracketed (``[::1]:9000``).  Validation is strict -- a malformed
    endpoint, an out-of-range port, a duplicate endpoint, or (when
    ``nworkers`` is given) a count mismatch each fail with their own
    clear message, because a bad host map otherwise surfaces as an
    opaque rendezvous hang on some remote machine.
    """
    out: List[Tuple[str, int]] = []
    seen: Dict[Tuple[str, int], str] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        host, sep, port = token.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"bad REPRO_PARALLEL_HOSTS entry {token!r}: expected "
                "host:port"
            )
        portno = int(port)
        if not 1 <= portno <= 65535:
            raise ValueError(
                f"bad REPRO_PARALLEL_HOSTS entry {token!r}: port "
                f"{portno} is out of range 1-65535"
            )
        endpoint = (host.strip("[]"), portno)
        if endpoint in seen:
            raise ValueError(
                f"duplicate REPRO_PARALLEL_HOSTS entry {token!r} "
                f"(already used by {seen[endpoint]!r}): every worker "
                "needs its own endpoint"
            )
        seen[endpoint] = token
        out.append(endpoint)
    if not out:
        raise ValueError("REPRO_PARALLEL_HOSTS is set but empty")
    if nworkers is not None and len(out) != nworkers:
        raise ValueError(
            f"REPRO_PARALLEL_HOSTS lists {len(out)} endpoints for "
            f"{nworkers} workers: need exactly one per worker, in "
            "worker-id order"
        )
    return out


def _sender_loop(sock: socket.socket, frames: "queue.Queue") -> None:
    """Drain one connection's outgoing frames (daemon thread)."""
    while True:
        frame = frames.get()
        if frame is None:
            break
        try:
            sock.sendall(frame)
        except OSError:
            break


class TcpChannel(ChannelBase):
    """One worker's endpoint of the socket exchange fabric."""

    def __init__(
        self,
        worker_id: int,
        nworkers: int,
        inboxes: Optional[Sequence] = None,
        hosts: Optional[Sequence[Tuple[str, int]]] = None,
        timeout: Optional[float] = None,
        heartbeat=None,
    ):
        super().__init__(worker_id, timeout=timeout, heartbeat=heartbeat)
        self.nworkers = nworkers
        # Per-exchange tracing accumulators: frame reads happen inside
        # _recv/_read_msg, so they bank their wait/deserialize seconds
        # here and exchange() folds them into its span meta.
        self._wait_s = 0.0
        self._copy_s = 0.0
        self._socks: Dict[int, socket.socket] = {}
        self._sendqs: Dict[int, "queue.Queue"] = {}
        self._senders: List[threading.Thread] = []
        self._listener: Optional[socket.socket] = None
        if nworkers == 1:
            return
        if hosts is not None:
            if len(hosts) < nworkers:
                raise ValueError(
                    f"REPRO_PARALLEL_HOSTS lists {len(hosts)} endpoints "
                    f"for {nworkers} workers"
                )
            addrs = {w: tuple(hosts[w]) for w in range(nworkers)}
            self._listener = socket.create_server(
                hosts[worker_id], backlog=nworkers)
        else:
            if inboxes is None:
                raise ValueError(
                    "TcpChannel needs inbox queues for the loopback "
                    "rendezvous when no host list is given"
                )
            self._listener = socket.create_server(
                ("127.0.0.1", 0), backlog=nworkers)
            mine = ("127.0.0.1", self._listener.getsockname()[1])
            for w in range(nworkers):
                if w != worker_id:
                    inboxes[w].put(("tcp-addr", worker_id, mine))
            addrs = {worker_id: mine}
            while len(addrs) < nworkers:
                try:
                    kind, w, addr = inboxes[worker_id].get(
                        timeout=self.timeout)
                except queue.Empty:
                    raise ChannelTimeout(
                        f"worker {worker_id} timed out during the TCP "
                        "address rendezvous"
                    ) from None
                assert kind == "tcp-addr", kind
                addrs[w] = tuple(addr)
        # Deterministic handshake: connect to every lower id, accept
        # from every higher id.
        for w in range(worker_id):
            self._socks[w] = self._dial(addrs[w])
        self._listener.settimeout(self.timeout or None)
        for _ in range(nworkers - 1 - worker_id):
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                raise ChannelTimeout(
                    f"worker {worker_id} timed out accepting TCP peers"
                ) from None
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            (peer,) = _HDR.unpack(self._read_exact_from(conn, _HDR.size))
            self._socks[peer] = conn
        for w, sock in self._socks.items():
            frames: "queue.Queue" = queue.Queue()
            t = threading.Thread(target=_sender_loop, args=(sock, frames),
                                 daemon=True,
                                 name=f"tcp-send-{worker_id}-to-{w}")
            t.start()
            self._sendqs[w] = frames
            self._senders.append(t)

    # ------------------------------------------------------------------ #
    # connection plumbing
    # ------------------------------------------------------------------ #
    def _dial(self, addr: Tuple[str, int]) -> socket.socket:
        """Connect with retries -- across hosts the peer's listener may
        come up later than ours."""
        deadline = time.monotonic() + max(self.timeout or 0.0, 5.0)
        # Deterministic exponential backoff from REPRO_PARALLEL_BACKOFF:
        # reconnects after a worker respawn retry on the same schedule
        # every run.
        delay = default_backoff()
        while True:
            try:
                sock = socket.create_connection(addr, timeout=self.timeout
                                                or None)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise ChannelTimeout(
                        f"worker {self.wid} could not reach TCP peer at "
                        f"{addr[0]}:{addr[1]}"
                    ) from None
                time.sleep(delay)
                delay = min(delay * 2, 0.5)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.sendall(_HDR.pack(self.wid))
        return sock

    @staticmethod
    def _read_exact_from(sock: socket.socket, n: int) -> bytes:
        """Blocking exact read used only during the handshake."""
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        while got < n:
            k = sock.recv_into(view[got:], n - got)
            if k == 0:
                raise ChannelTimeout("TCP peer closed during handshake")
            got += k
        return bytes(buf)

    def _recv_exact(self, src: int, n: int) -> bytes:
        """Exact read from peer ``src`` under the no-progress timeout.

        A slow peer that keeps its heartbeat moving extends the wait;
        partial bytes received also count as progress.
        """
        sock = self._socks[src]
        slice_t = min(self.timeout, WAIT_SLICE) if self.timeout else WAIT_SLICE
        sock.settimeout(slice_t)
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        waited = 0.0
        last = self._peer_progress(src)
        while got < n:
            try:
                k = sock.recv_into(view[got:], n - got)
            except socket.timeout:
                now = self._peer_progress(src)
                if now is not None and now != last:
                    last, waited = now, 0.0
                    continue
                waited += slice_t
                if waited >= self.timeout:
                    raise self._timeout_error(src, "a tcp frame") from None
                continue
            except OSError as exc:
                # A peer dying mid-read surfaces as ECONNRESET/EPIPE
                # rather than a clean close; either way it is the same
                # transport failure as the k == 0 branch below.
                raise ChannelTimeout(
                    f"worker {self.wid}: TCP peer {src} dropped the "
                    f"connection ({type(exc).__name__}; crashed worker?)"
                ) from None
            if k == 0:
                raise ChannelTimeout(
                    f"worker {self.wid}: TCP peer {src} closed the "
                    "connection (crashed worker?)"
                )
            got += k
            waited = 0.0
        return bytes(buf)

    def _read_msg(self, src: int):
        rec = _spans.ACTIVE
        if rec is None:
            (length,) = _HDR.unpack(self._recv_exact(src, _HDR.size))
            return pickle.loads(self._recv_exact(src, length))
        # Wait covers the socket reads; copy the unpickle.  A frame read
        # here on behalf of a later tag (stash fill) is charged to the
        # exchange that performed the read -- that is where the wall
        # clock actually went.
        t0 = rec.clock()
        (length,) = _HDR.unpack(self._recv_exact(src, _HDR.size))
        blob = self._recv_exact(src, length)
        t1 = rec.clock()
        msg = pickle.loads(blob)
        self._wait_s += t1 - t0
        self._copy_s += rec.clock() - t1
        return msg

    def _recv(self, kind: str, tag, src: int):
        key = (kind, tag, src)
        hit = self._stash.pop(key, None)
        if hit is not None:
            return hit
        while True:
            msg = self._read_msg(src)
            self._observe_arrival(msg)
            mkey = (msg[0], msg[1], msg[2])
            if mkey == key:
                return msg
            self._stash[mkey] = msg

    # ------------------------------------------------------------------ #
    # the one primitive
    # ------------------------------------------------------------------ #
    def exchange(
        self,
        gkey,
        items: Sequence[Tuple[Any, Any]],
        send_to: Sequence[int],
        recv_from: Sequence[int],
    ) -> Dict[int, List[Tuple[Any, Any]]]:
        """Same contract as :meth:`PeerChannel.exchange`; payloads are
        pickled whole (numpy arrays round-trip bit-exactly) so receivers
        always hold private copies."""
        xi = self._inject_exchange_fault()
        self.touch()
        self.nexchanges += 1
        # Frame faults only make sense when a frame goes on the wire:
        # an exchange with no outbound peers leaves the fault armed.
        frame_fault = (self.faults.frame_fault(xi)
                       if self.faults is not None and send_to else None)
        rec = _spans.ACTIVE
        t_start = rec.clock() if rec is not None else 0.0
        if rec is not None:
            self._wait_s = self._copy_s = 0.0
        ser_s = 0.0
        sent = 0
        tag = self._tag(gkey)
        if send_to:
            t0 = rec.clock() if rec is not None else 0.0
            blob = pickle.dumps(("d", tag, self.wid, list(items)),
                                protocol=pickle.HIGHEST_PROTOCOL)
            if frame_fault is not None and frame_fault.action == "corrupt":
                # Same length, mangled first opcode: the receiver's
                # unpickle raises, modeling on-the-wire corruption.
                mangled = bytearray(blob)
                mangled[0] ^= 0xFF
                blob = bytes(mangled)
            frame = _HDR.pack(len(blob)) + blob
            if rec is not None:
                ser_s = rec.clock() - t0
            if frame_fault is not None and frame_fault.action == "drop":
                # The frame is never posted: the receiving peers' waits
                # expire into ChannelTimeout (a transport error).
                pass
            else:
                for w in send_to:
                    self._sendqs[w].put(frame)
                sent = len(frame) * len(send_to)
                self.bytes_sent += sent
        out: Dict[int, List[Tuple[Any, Any]]] = {}
        for w in recv_from:
            msg = self._recv("d", tag, w)
            out[w] = msg[3]
        if rec is not None:
            rec.record(
                "exchange", "xchg", t_start, rec.clock(),
                (self._span_label(gkey), ser_s, self._wait_s,
                 self._copy_s, sent),
            )
        return out

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        for frames in self._sendqs.values():
            frames.put(None)
        for t in self._senders:
            t.join(timeout=1.0)
        for sock in self._socks.values():
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        if self._listener is not None:
            self._listener.close()
        self._socks.clear()
        self._sendqs.clear()
