"""Worker-to-worker rendezvous: tagged exchanges over queues + shm.

Every worker owns one inbox queue (driver-created) and one shared-memory
arena (:mod:`repro.parallel.shm`).  All collective traffic reduces to one
primitive, :meth:`PeerChannel.exchange`: post a list of payloads to a set
of peers, collect one list from each of another set of peers, acknowledge
shared-memory receipts, and reclaim the arena.

Ordering and deadlock freedom rest on the SPMD structure of the epochs:
every worker executes the same global sequence of collectives, so any two
workers see their *common* operations in the same relative order.  Tags
are ``(group_key, sequence)`` pairs where the per-``group_key`` sequence
counter advances identically on every participant; messages arriving
early (a peer racing ahead on an unrelated group) are stashed until their
tag is wanted.  Within one exchange a worker posts **all** outgoing
messages before blocking on receives, so cyclic waits cannot form.

Every blocking receive carries a timeout (``REPRO_PARALLEL_TIMEOUT``
seconds, default 120): a deadlocked or dead peer surfaces as a
``ChannelTimeout`` instead of a hung run.
"""

from __future__ import annotations

import os
import queue
from multiprocessing import shared_memory
from typing import Any, Dict, List, Sequence, Tuple

from repro.parallel.shm import (
    Arena,
    INLINE_MAX,
    decode_payload,
    desc_needs_ack,
    encode_payload,
)

__all__ = ["PeerChannel", "ChannelTimeout", "default_timeout"]


class ChannelTimeout(RuntimeError):
    """A peer did not respond in time (deadlock or dead worker)."""


def default_timeout() -> float:
    return float(os.environ.get("REPRO_PARALLEL_TIMEOUT", "120"))


class PeerChannel:
    """One worker's endpoint of the all-pairs exchange fabric."""

    def __init__(
        self,
        worker_id: int,
        inboxes: Sequence,
        arena_names: Sequence[str],
        timeout: float = None,
        inline_max: int = INLINE_MAX,
    ):
        self.wid = worker_id
        self.inboxes = list(inboxes)
        self.timeout = default_timeout() if timeout is None else timeout
        self.inline_max = inline_max
        self.arena = Arena(shared_memory.SharedMemory(
            name=arena_names[worker_id]))
        self._arena_names = list(arena_names)
        self._peer_shms: Dict[int, shared_memory.SharedMemory] = {}
        self._stash: Dict[Tuple, Any] = {}
        self._seq: Dict[Any, int] = {}

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _tag(self, gkey) -> Tuple:
        n = self._seq.get(gkey, 0)
        self._seq[gkey] = n + 1
        return (gkey, n)

    def _peer_buf(self, w: int):
        shm = self._peer_shms.get(w)
        if shm is None:
            shm = shared_memory.SharedMemory(name=self._arena_names[w])
            self._peer_shms[w] = shm
        return shm.buf

    def _recv(self, kind: str, tag, src: int):
        key = (kind, tag, src)
        hit = self._stash.pop(key, None)
        if hit is not None:
            return hit
        inbox = self.inboxes[self.wid]
        while True:
            try:
                msg = inbox.get(timeout=self.timeout)
            except queue.Empty:
                raise ChannelTimeout(
                    f"worker {self.wid} timed out after {self.timeout}s "
                    f"waiting for {kind!r} {tag} from worker {src} "
                    "(deadlocked or dead peer?)"
                ) from None
            mkey = (msg[0], msg[1], msg[2])
            if mkey == key:
                return msg
            self._stash[mkey] = msg

    # ------------------------------------------------------------------ #
    # the one primitive
    # ------------------------------------------------------------------ #
    def exchange(
        self,
        gkey,
        items: Sequence[Tuple[Any, Any]],
        send_to: Sequence[int],
        recv_from: Sequence[int],
    ) -> Dict[int, List[Tuple[Any, Any]]]:
        """Post ``items`` (``(key, payload)`` pairs) to every worker in
        ``send_to``; collect one posted list from each worker in
        ``recv_from``.  Returns ``{src_worker: [(key, payload), ...]}``
        with decoded private payloads.

        Participants must call with the same ``gkey`` in the same
        relative order; the tag sequence does the rest.  Arena space and
        ephemeral segments used by ``items`` are reclaimed before
        returning (receivers acknowledge shared-memory receipts).
        """
        tag = self._tag(gkey)
        ephemerals: List[shared_memory.SharedMemory] = []
        mark = self.arena.ptr
        need_ack = False
        if send_to:
            descs = []
            for key, obj in items:
                desc = encode_payload(self.arena, obj, ephemerals,
                                      self.inline_max)
                need_ack = need_ack or desc_needs_ack(desc)
                descs.append((key, desc))
            for w in send_to:
                self.inboxes[w].put(("d", tag, self.wid, descs))
        out: Dict[int, List[Tuple[Any, Any]]] = {}
        for w in recv_from:
            msg = self._recv("d", tag, w)
            descs_w = msg[3]
            decoded = [
                (key, decode_payload(desc, self._peer_buf(w)))
                for key, desc in descs_w
            ]
            out[w] = decoded
            if any(desc_needs_ack(desc) for _, desc in descs_w):
                self.inboxes[w].put(("a", tag, self.wid))
        if need_ack:
            for w in send_to:
                self._recv("a", tag, w)
        self.arena.ptr = mark
        for seg in ephemerals:
            seg.close()
            seg.unlink()
        return out

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self.arena.close()
        for shm in self._peer_shms.values():
            shm.close()
        self._peer_shms.clear()
