"""Worker-to-worker rendezvous: tagged exchanges over queues + shm.

Every worker owns one inbox queue (driver-created) and one shared-memory
arena (:mod:`repro.parallel.shm`).  All collective traffic reduces to one
primitive, :meth:`PeerChannel.exchange`: post a list of payloads to a set
of peers, collect one list from each of another set of peers, acknowledge
shared-memory receipts, and reclaim the arena.

Ordering and deadlock freedom rest on the SPMD structure of the epochs:
every worker executes the same global sequence of collectives, so any two
workers see their *common* operations in the same relative order.  Tags
are ``(group_key, sequence)`` pairs where the per-``group_key`` sequence
counter advances identically on every participant; messages arriving
early (a peer racing ahead on an unrelated group) are stashed until their
tag is wanted.  Within one exchange a worker posts **all** outgoing
messages before blocking on receives, so cyclic waits cannot form.  The
tag/stash machinery lives in :class:`ChannelBase` so the TCP transport
(:mod:`repro.parallel.tcp`) shares the exact same exchange semantics.

Blocking receives are governed by a **no-progress** timeout
(``REPRO_PARALLEL_TIMEOUT`` seconds, default 120): each worker bumps a
shared heartbeat counter on every exchange (and once per resident-fit
epoch), and a receive only raises :class:`ChannelTimeout` when the
awaited peer's counter has not advanced for the whole window.  A slow but
healthy epoch keeps its peers patient; a dead or deadlocked peer
surfaces within one window instead of hanging the run.
"""

from __future__ import annotations

import os
import queue
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis import sanitize as _sanitize
from repro.obs import spans as _spans
from repro.parallel.shm import (
    Arena,
    INLINE_MAX,
    decode_payload,
    desc_needs_ack,
    encode_payload,
)

__all__ = ["ChannelBase", "PeerChannel", "ChannelTimeout",
           "default_timeout", "default_backoff"]


class ChannelTimeout(RuntimeError):
    """A peer made no progress in time (deadlock or dead worker)."""


def default_timeout() -> float:
    return float(os.environ.get("REPRO_PARALLEL_TIMEOUT", "120"))


def default_backoff() -> float:
    """Base seconds for exponential backoff (TCP dial retries and the
    driver's restart delays), via ``REPRO_PARALLEL_BACKOFF``."""
    return float(os.environ.get("REPRO_PARALLEL_BACKOFF", "0.05"))


#: Granularity of blocking waits: receives poll in slices this long so
#: they can consult the peer heartbeat between slices.
WAIT_SLICE = 0.25


class ChannelBase:
    """Tag sequencing, out-of-order stash, and heartbeat accounting.

    Both transports (queues+shm and TCP sockets) subclass this: the
    ``(group_key, sequence)`` tag discipline -- and therefore the fixed
    fold order of every reduction built on top -- is identical, which is
    what makes the transports bit-interchangeable.
    """

    def __init__(self, worker_id: int, timeout: Optional[float] = None,
                 heartbeat=None):
        self.wid = worker_id
        self.timeout = default_timeout() if timeout is None else timeout
        self.heartbeat = heartbeat
        self._stash: Dict[Tuple, Any] = {}
        self._seq: Dict[Any, int] = {}
        #: transport-level traffic counters (reported by
        #: :meth:`ProcessBackend.stats`)
        self.bytes_sent = 0
        self.nexchanges = 0
        #: the worker's :class:`repro.parallel.faults.FaultPlan`, when a
        #: fault plan is active (set by ``_worker_main``); consulted at
        #: the exchange injection point by both transports.
        self.faults = None

    def _inject_exchange_fault(self) -> int:
        """Named injection point: start of every exchange.

        Returns the 0-based index of the exchange about to run (the
        pre-increment ``nexchanges``) and executes any inline fault --
        kill/hang/delay -- pinned to it.  Frame-level faults
        (drop/corrupt) are *not* executed here; the TCP transport asks
        ``faults.frame_fault(index)`` for those when it builds the
        outbound frame.
        """
        xi = self.nexchanges
        if self.faults is not None:
            self.faults.on_exchange(xi)
        return xi

    def _tag(self, gkey) -> Tuple:
        n = self._seq.get(gkey, 0)
        self._seq[gkey] = n + 1
        return (gkey, n)

    def touch(self) -> None:
        """Advance this worker's shared progress counter (single writer)."""
        hb = self.heartbeat
        if hb is not None:
            hb[self.wid] += 1

    def _peer_progress(self, src: int) -> Optional[int]:
        hb = self.heartbeat
        return None if hb is None else hb[src]

    def _observe_arrival(self, msg) -> None:
        """Sanitizer tap: every frame pulled off the transport, in
        arrival order (stash hits were observed when first read)."""
        san = _sanitize.ACTIVE
        if san is not None:
            san.observe_tag(self.wid, msg[2], msg[1], kind=msg[0])

    def _timeout_error(self, src: int, what: str) -> ChannelTimeout:
        return ChannelTimeout(
            f"worker {self.wid} saw no progress from worker {src} for "
            f"{self.timeout}s while waiting for {what} "
            "(deadlocked or dead peer?)"
        )

    @staticmethod
    def _span_label(gkey) -> str:
        """A short human label for an exchange span (the group kind)."""
        if isinstance(gkey, tuple) and gkey:
            return str(gkey[0])
        return str(gkey)


class PeerChannel(ChannelBase):
    """One worker's endpoint of the queue + shared-memory exchange fabric."""

    def __init__(
        self,
        worker_id: int,
        inboxes: Sequence,
        arena_names: Sequence[str],
        timeout: Optional[float] = None,
        inline_max: int = INLINE_MAX,
        heartbeat=None,
    ):
        super().__init__(worker_id, timeout=timeout, heartbeat=heartbeat)
        self.inboxes = list(inboxes)
        self.inline_max = inline_max
        self.arena = Arena(shared_memory.SharedMemory(
            name=arena_names[worker_id]))
        self._arena_names = list(arena_names)
        self._peer_shms: Dict[int, shared_memory.SharedMemory] = {}

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _peer_buf(self, w: int):
        shm = self._peer_shms.get(w)
        if shm is None:
            shm = shared_memory.SharedMemory(name=self._arena_names[w])
            self._peer_shms[w] = shm
        return shm.buf

    def _recv(self, kind: str, tag, src: int):
        key = (kind, tag, src)
        hit = self._stash.pop(key, None)
        if hit is not None:
            return hit
        inbox = self.inboxes[self.wid]
        slice_t = min(self.timeout, WAIT_SLICE) if self.timeout else WAIT_SLICE
        waited = 0.0
        last = self._peer_progress(src)
        while True:
            try:
                msg = inbox.get(timeout=slice_t)
            except queue.Empty:
                now = self._peer_progress(src)
                if now is not None and now != last:
                    last, waited = now, 0.0
                    continue
                waited += slice_t
                if waited >= self.timeout:
                    raise self._timeout_error(
                        src, f"{kind!r} {tag}") from None
                continue
            self._observe_arrival(msg)
            mkey = (msg[0], msg[1], msg[2])
            if mkey == key:
                return msg
            self._stash[mkey] = msg

    # ------------------------------------------------------------------ #
    # the one primitive
    # ------------------------------------------------------------------ #
    def exchange(
        self,
        gkey,
        items: Sequence[Tuple[Any, Any]],
        send_to: Sequence[int],
        recv_from: Sequence[int],
    ) -> Dict[int, List[Tuple[Any, Any]]]:
        """Post ``items`` (``(key, payload)`` pairs) to every worker in
        ``send_to``; collect one posted list from each worker in
        ``recv_from``.  Returns ``{src_worker: [(key, payload), ...]}``
        with decoded private payloads.

        Participants must call with the same ``gkey`` in the same
        relative order; the tag sequence does the rest.  Arena space and
        ephemeral segments used by ``items`` are reclaimed before
        returning (receivers acknowledge shared-memory receipts).
        """
        self._inject_exchange_fault()
        self.touch()
        self.nexchanges += 1
        # When tracing, the one span per exchange carries the phase split
        # (serialize / wait / copy seconds) in its meta; the clock reads
        # wrap whole blocks, not per-item work, to keep overhead flat.
        rec = _spans.ACTIVE
        t_start = rec.clock() if rec is not None else 0.0
        ser_s = wait_s = copy_s = 0.0
        sent = 0
        tag = self._tag(gkey)
        ephemerals: List[shared_memory.SharedMemory] = []
        mark = self.arena.ptr
        need_ack = False
        if send_to:
            descs = []
            t0 = rec.clock() if rec is not None else 0.0
            for key, obj in items:
                desc = encode_payload(self.arena, obj, ephemerals,
                                      self.inline_max)
                need_ack = need_ack or desc_needs_ack(desc)
                descs.append((key, desc))
                sent += _desc_nbytes(desc)
            if rec is not None:
                ser_s = rec.clock() - t0
            for w in send_to:
                self.inboxes[w].put(("d", tag, self.wid, descs))
            self.bytes_sent += sent * len(send_to)
        out: Dict[int, List[Tuple[Any, Any]]] = {}
        for w in recv_from:
            if rec is None:
                msg = self._recv("d", tag, w)
            else:
                t0 = rec.clock()
                msg = self._recv("d", tag, w)
                wait_s += rec.clock() - t0
            descs_w = msg[3]
            t0 = rec.clock() if rec is not None else 0.0
            decoded = [
                (key, decode_payload(desc, self._peer_buf(w)))
                for key, desc in descs_w
            ]
            if rec is not None:
                copy_s += rec.clock() - t0
            out[w] = decoded
            if any(desc_needs_ack(desc) for _, desc in descs_w):
                self.inboxes[w].put(("a", tag, self.wid))
        if need_ack:
            t0 = rec.clock() if rec is not None else 0.0
            for w in send_to:
                self._recv("a", tag, w)
            if rec is not None:
                wait_s += rec.clock() - t0
        self.arena.ptr = mark
        for seg in ephemerals:
            seg.close()
            seg.unlink()
        if rec is not None:
            rec.record(
                "exchange", "xchg", t_start, rec.clock(),
                (self._span_label(gkey), ser_s, wait_s, copy_s,
                 sent * len(send_to)),
            )
        return out

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self.arena.close()
        for shm in self._peer_shms.values():
            shm.close()
        self._peer_shms.clear()


def _desc_nbytes(desc: Tuple) -> int:
    """Payload bytes a descriptor stands for (inline or in shm)."""
    kind = desc[0]
    if kind == "none":
        return 0
    if kind == "inl":
        return int(desc[1].nbytes)
    if kind == "arr":
        import numpy as np

        _, shape, dtype, _, _ = desc
        n = 1
        for s in shape:
            n *= int(s)
        return n * np.dtype(dtype).itemsize
    if kind == "csr":
        return sum(_desc_nbytes(sub) for sub in desc[2:5])
    return 0
