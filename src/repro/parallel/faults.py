"""Deterministic fault injection for the process backend.

Chaos testing a distributed trainer only proves something when the
chaos is *reproducible*: the same plan must kill the same worker at the
same epoch on every run, so a recovery bug bisects like any other
regression.  This module parses a declarative fault plan and exposes
the few narrow hooks the transport layers consult at their named
injection points.

Grammar
-------
A plan is a semicolon-separated list of fault specs::

    action:key=value,key=value,...

Actions:

``kill``
    The worker process exits hard (``os._exit``) -- the driver sees a
    dead process via the heartbeat's exitcode sweep.
``hang``
    The worker spins forever without touching its heartbeat slot -- the
    driver sees a no-progress window expire.
``delay``
    The worker sleeps ``seconds`` once, then continues -- exercises the
    heartbeat's progress-extension logic without failing anything.
``drop``
    TCP only: the outbound frame for the matching exchange is never
    posted, so the receiving peer times out (a transport error).
``corrupt``
    TCP only: the outbound frame's payload has its first byte flipped,
    so the receiver's unpickle raises (a transport error).

Keys:

``worker=N``    which worker the spec applies to (required).
``epoch=N``     fire at the end of live epoch ``N`` (kill/hang/delay).
``exchange=N``  fire at the worker's ``N``-th channel exchange.
``seconds=F``   sleep length for ``delay`` (default 1.0).
``attempt=N``   only fire during the driver's ``N``-th pool attempt
                (1-based; omitted means every attempt).

Each spec fires at most once per worker-process lifetime; because a
respawned worker is a fresh process, plans re-arm across restarts --
deliberate, so a kill with no checkpoint path exhausts the restart
budget and exercises that error path too.

Faults activate via ``REPRO_PARALLEL_FAULTS`` or ``repro train
--faults``; parsing is strict so a typo fails fast at the driver, not
silently in a worker.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["FaultSpec", "FaultPlan", "FAULT_ACTIONS"]

FAULT_ACTIONS = ("kill", "hang", "delay", "drop", "corrupt")

#: Actions applied to outbound TCP frames rather than executed inline.
FRAME_ACTIONS = ("drop", "corrupt")

_INT_KEYS = ("worker", "epoch", "exchange", "attempt")


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: an action plus its trigger coordinates."""

    action: str
    worker: int
    epoch: Optional[int] = None
    exchange: Optional[int] = None
    seconds: float = 1.0
    attempt: Optional[int] = None

    def describe(self) -> str:
        parts = [f"worker={self.worker}"]
        if self.epoch is not None:
            parts.append(f"epoch={self.epoch}")
        if self.exchange is not None:
            parts.append(f"exchange={self.exchange}")
        if self.action == "delay":
            parts.append(f"seconds={self.seconds}")
        if self.attempt is not None:
            parts.append(f"attempt={self.attempt}")
        return f"{self.action}:" + ",".join(parts)


def _parse_spec(text: str) -> FaultSpec:
    action, sep, rest = text.partition(":")
    action = action.strip()
    if not sep or action not in FAULT_ACTIONS:
        raise ValueError(
            f"bad fault spec {text!r}: expected one of "
            f"{'/'.join(FAULT_ACTIONS)} followed by ':key=value,...'"
        )
    kwargs = {}
    for item in rest.split(","):
        item = item.strip()
        if not item:
            continue
        key, eq, value = item.partition("=")
        key = key.strip()
        value = value.strip()
        if not eq or not value:
            raise ValueError(
                f"bad fault spec {text!r}: {item!r} is not key=value")
        if key in _INT_KEYS:
            try:
                kwargs[key] = int(value)
            except ValueError:
                raise ValueError(
                    f"bad fault spec {text!r}: {key} wants an integer, "
                    f"got {value!r}") from None
        elif key == "seconds":
            try:
                kwargs[key] = float(value)
            except ValueError:
                raise ValueError(
                    f"bad fault spec {text!r}: seconds wants a number, "
                    f"got {value!r}") from None
        else:
            raise ValueError(
                f"bad fault spec {text!r}: unknown key {key!r}")
    if "worker" not in kwargs:
        raise ValueError(f"bad fault spec {text!r}: worker= is required")
    if action in FRAME_ACTIONS and kwargs.get("exchange") is None:
        raise ValueError(
            f"bad fault spec {text!r}: {action} needs exchange=")
    if kwargs.get("epoch") is None and kwargs.get("exchange") is None:
        raise ValueError(
            f"bad fault spec {text!r}: need epoch= or exchange=")
    return FaultSpec(action=action, **kwargs)


def parse_plan(text: str) -> List[FaultSpec]:
    """Parse a full fault-plan string into specs (strict)."""
    specs = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if chunk:
            specs.append(_parse_spec(chunk))
    if not specs:
        raise ValueError("fault plan is set but contains no specs")
    return specs


@dataclass
class FaultPlan:
    """The specs that apply to one worker, with fire-once bookkeeping.

    ``attempt`` is stamped by the worker per fit dispatch (the driver
    threads the pool-attempt counter through the checkpoint options) so
    ``attempt=``-scoped specs can target e.g. only the first, pre-
    recovery run.
    """

    worker_id: int
    specs: List[FaultSpec]
    attempt: int = 1
    _fired: set = field(default_factory=set)

    @classmethod
    def for_worker(cls, worker_id: int,
                   text: Optional[str] = None) -> Optional["FaultPlan"]:
        """Build the plan for one worker; None when nothing applies."""
        if text is None:
            text = os.environ.get("REPRO_PARALLEL_FAULTS") or None
        if not text:
            return None
        mine = [s for s in parse_plan(text) if s.worker == worker_id]
        if not mine:
            return None
        return cls(worker_id=worker_id, specs=mine)

    def _armed(self, spec: FaultSpec) -> bool:
        if id(spec) in self._fired:
            return False
        if spec.attempt is not None and spec.attempt != self.attempt:
            return False
        return True

    def _execute(self, spec: FaultSpec) -> None:
        self._fired.add(id(spec))
        if spec.action == "kill":
            # Hard exit: no atexit/finally cleanup, exactly like a
            # SIGKILLed or OOM-killed process.
            os._exit(13)
        elif spec.action == "hang":
            # Spin without touching the heartbeat slot so the driver's
            # no-progress window expires.
            while True:  # pragma: no cover - killed by the driver
                time.sleep(0.5)
        elif spec.action == "delay":
            time.sleep(spec.seconds)

    def on_epoch(self, epoch: int) -> None:
        """Inline hook at a live epoch boundary (after checkpointing)."""
        for spec in self.specs:
            if (spec.epoch == epoch and spec.exchange is None
                    and spec.action not in FRAME_ACTIONS
                    and self._armed(spec)):
                self._execute(spec)

    def on_exchange(self, index: int) -> None:
        """Inline hook at the start of the worker's ``index``-th exchange."""
        for spec in self.specs:
            if (spec.exchange == index
                    and spec.action not in FRAME_ACTIONS
                    and self._armed(spec)):
                self._execute(spec)

    def frame_fault(self, index: int) -> Optional[FaultSpec]:
        """Drop/corrupt spec for this exchange's outbound frame, if any.

        Consulted by the TCP transport only; shared-memory exchanges
        have no frame to mangle, so these specs no-op there (documented
        in the README's fault-plan grammar).
        """
        for spec in self.specs:
            if (spec.exchange == index
                    and spec.action in FRAME_ACTIONS
                    and self._armed(spec)):
                self._fired.add(id(spec))
                return spec
        return None
