"""repro.parallel: the true multiprocess SPMD execution backend.

Where :class:`repro.comm.runtime.VirtualRuntime` executes P ranks
sequentially inside one process, this package runs them as **real OS
processes** whose collectives cross process boundaries through POSIX
shared memory or TCP sockets -- wall clock drops with cores, while the
virtual runtime's ledger and losses remain the built-in correctness
oracle (byte-identical ledger, bit-identical losses under frozen seeds).

The workers are **resident**: ``fit`` ships the whole training program
in one dispatch and the epoch loop runs worker-side with zero driver
round-trips; remaining driver paths can fuse N commands into one
pickle/wakeup with one batched ledger-digest check.

Architecture map (driver process on the left, P-rank workers right)::

    ParallelRuntime ── ParallelAlgorithm        driver-side proxies
          │ programs / results (mp.Queue)       fit = ONE dispatch
    ProcessBackend ──spawns──> _worker_main x W  backend.py -- resident
          │ heartbeat (shared counters)          command loop, fused
          │                                      batches, stats()
          │                    WorkerRuntime     runtime.py -- Runtime
          │                        │             protocol, local_ranks
          │                 ProcessCollectives   collectives.py -- SPMD
          │                        │             data plane + full-world
          │                        │             alpha-beta charging
          │              PeerChannel | TcpChannel
          │               channel.py | tcp.py -- same tagged (group,
          │                        │             seq) exchange; shm
          │                        │             descs vs pickle frames
          └─────────────── Arena / codec         shm.py -- shared-memory
                                                 payload transport

Layer responsibilities:

* ``shm.py``        -- encode/decode dense and CSR payloads into
  per-worker shared-memory arenas (+ ephemeral overflow segments);
* ``channel.py``    -- the one rendezvous primitive (post, collect,
  ack, reclaim) with deterministic ``(group, seq)`` tags and the
  shared no-progress timeout machinery (:class:`ChannelBase`);
* ``tcp.py``        -- the same exchange over length-prefixed socket
  frames, one sender thread per connection, loopback or
  ``REPRO_PARALLEL_HOSTS`` rendezvous -- ranks can span machines;
* ``collectives.py``-- the :class:`~repro.comm.collectives.Collectives`
  API for a rank-local worker: reductions fold in group-rank order (a
  fixed tree) so results match the virtual runtime bit for bit on
  either transport;
* ``runtime.py``    -- :class:`WorkerRuntime` (the rank-local
  :class:`~repro.comm.runtime.Runtime`), :class:`ParallelRuntime` and
  :class:`ParallelAlgorithm` (driver-side, VirtualRuntime-shaped);
* ``backend.py``    -- process lifecycle: spawn-context workers, the
  resident command loop (``fit`` / ``batch`` / ``stats``), heartbeat
  liveness, error propagation, shutdown.

Entry points::

    from repro.dist import make_algorithm
    algo = make_algorithm("1d", p=4, dataset=ds,
                          backend="process", workers=4)
    history = algo.fit(ds.features, ds.labels, epochs=10)
    algo.rt.backend_stats()   # dispatches, fused batches, channel bytes
    algo.rt.close()

or the CLI: ``repro train --backend process --workers 4
[--transport tcp]``.
"""

from repro.parallel.backend import (
    RECOVERABLE_ERRORS,
    ProcessBackend,
    TransportError,
    WorkerDead,
    WorkerError,
    WorkerStalled,
)
from repro.parallel.channel import ChannelTimeout, PeerChannel
from repro.parallel.collectives import ProcessCollectives
from repro.parallel.faults import FaultPlan, FaultSpec
from repro.parallel.runtime import (
    ParallelAlgorithm,
    ParallelRuntime,
    WorkerRuntime,
    ledger_digest,
    owner_map,
)
from repro.parallel.tcp import TcpChannel

__all__ = [
    "ProcessBackend",
    "ProcessCollectives",
    "ParallelAlgorithm",
    "ParallelRuntime",
    "PeerChannel",
    "TcpChannel",
    "ChannelTimeout",
    "WorkerRuntime",
    "WorkerError",
    "WorkerDead",
    "WorkerStalled",
    "TransportError",
    "RECOVERABLE_ERRORS",
    "FaultPlan",
    "FaultSpec",
    "ledger_digest",
    "owner_map",
]
