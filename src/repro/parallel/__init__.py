"""repro.parallel: the true multiprocess SPMD execution backend.

Where :class:`repro.comm.runtime.VirtualRuntime` executes P ranks
sequentially inside one process, this package runs them as **real OS
processes** whose collectives cross process boundaries through POSIX
shared memory -- wall clock drops with cores, while the virtual runtime's
ledger and losses remain the built-in correctness oracle (byte-identical
ledger, bit-identical losses under frozen seeds).

Architecture map (driver process on the left, P-rank workers right)::

    ParallelRuntime ── ParallelAlgorithm        driver-side proxies
          │ commands / results (mp.Queue)
    ProcessBackend ──spawns──> _worker_main x W  backend.py
                                   │
                               WorkerRuntime     runtime.py -- Runtime
                                   │             protocol, local_ranks
                            ProcessCollectives   collectives.py -- SPMD
                                   │             data plane + full-world
                                   │             alpha-beta charging
                               PeerChannel       channel.py -- tagged
                                   │             exchange, acks, stash
                               Arena / codec     shm.py -- shared-memory
                                                 payload transport

Layer responsibilities:

* ``shm.py``        -- encode/decode dense and CSR payloads into
  per-worker shared-memory arenas (+ ephemeral overflow segments);
* ``channel.py``    -- the one rendezvous primitive (post, collect,
  ack, reclaim) with deterministic ``(group, seq)`` tags;
* ``collectives.py``-- the :class:`~repro.comm.collectives.Collectives`
  API for a rank-local worker: reductions fold in group-rank order (a
  fixed tree) so results match the virtual runtime bit for bit;
* ``runtime.py``    -- :class:`WorkerRuntime` (the rank-local
  :class:`~repro.comm.runtime.Runtime`), :class:`ParallelRuntime` and
  :class:`ParallelAlgorithm` (driver-side, VirtualRuntime-shaped);
* ``backend.py``    -- process lifecycle: spawn-context workers, command
  fan-out, error propagation, timeouts, shutdown.

Entry points::

    from repro.dist import make_algorithm
    algo = make_algorithm("1d", p=4, dataset=ds,
                          backend="process", workers=4)
    history = algo.fit(ds.features, ds.labels, epochs=10)
    algo.rt.close()

or the CLI: ``repro train --backend process --workers 4``.
"""

from repro.parallel.backend import ProcessBackend, WorkerError
from repro.parallel.collectives import ProcessCollectives
from repro.parallel.runtime import (
    ParallelAlgorithm,
    ParallelRuntime,
    WorkerRuntime,
    ledger_digest,
    owner_map,
)

__all__ = [
    "ProcessBackend",
    "ProcessCollectives",
    "ParallelAlgorithm",
    "ParallelRuntime",
    "WorkerRuntime",
    "WorkerError",
    "ledger_digest",
    "owner_map",
]
