"""The process backend: spawn P-rank SPMD worker pools and drive them.

:class:`ProcessBackend` owns the operating-system resources: worker
processes (a ``multiprocessing`` **spawn** context -- no inherited
interpreter state, the same start method ``torch.distributed`` defaults
to on CUDA), one command queue per worker, one shared result queue, one
inbox queue per worker for peer traffic, and -- for the default ``shm``
transport -- one shared-memory arena per worker.  The ``tcp`` transport
replaces the arenas with a full mesh of sockets
(:mod:`repro.parallel.tcp`) so the ranks can span machines.

The workers are **resident**: the driver ships whole programs, not
individual steps.  ``fit`` is one dispatch -- the epoch loop runs
worker-side with zero driver round-trips on the hot path, and the driver
collects the final history/ledger.  Remaining driver-initiated paths can
batch N commands into one pickle/wakeup (``batch``).  Ledger-digest
checks are likewise batched: one digest per fit / per fused batch by
default, with full per-epoch and per-command digests behind
``REPRO_PARALLEL_PARANOID=1``.

Liveness is watched through a shared **heartbeat** array: every worker
bumps its slot on each channel exchange and each resident-fit epoch.
Blocking waits (driver command collection and worker channel receives)
time out only when no progress has been observed for
``REPRO_PARALLEL_TIMEOUT`` seconds -- a slow epoch is never mistaken for
a hang -- and a crashed worker fails the command within a fraction of a
second with an error naming the dead worker and the mesh ranks it owned.

Worker processes pin their BLAS pools to one thread
(``OMP_NUM_THREADS=1`` etc. at spawn): the backend's parallelism comes
from running ranks on separate cores, and oversubscribing P workers x N
BLAS threads on an N-core host destroys exactly the scaling this backend
exists to demonstrate.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import time
import traceback
import weakref
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.analysis import sanitize as _sanitize
from repro.comm.mesh import ProcessMesh
from repro.config import MachineProfile
from repro.obs import profile as _profile
from repro.obs import spans as _spans
from repro.obs.spans import SPAN_CATEGORIES
from repro.parallel.channel import (
    PeerChannel,
    default_backoff,
    default_timeout,
)
from repro.parallel.faults import FaultPlan, parse_plan
from repro.parallel.runtime import WorkerRuntime, ledger_digest, owner_map
from repro.parallel.tcp import TcpChannel, parse_hosts

__all__ = [
    "ProcessBackend",
    "WorkerError",
    "WorkerDead",
    "WorkerStalled",
    "TransportError",
    "RECOVERABLE_ERRORS",
    "TRANSPORTS",
]

#: Default per-worker arena size; payloads beyond this spill to
#: per-payload ephemeral segments (correct, just slower).
DEFAULT_ARENA_BYTES = 32 * 1024 * 1024

#: Selectable peer-payload transports.
TRANSPORTS = ("shm", "tcp")

_THREAD_PIN_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                    "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS")

#: Commands whose results carry a ledger digest when issued standalone.
_LEDGERED_OPS = frozenset({"train_epoch", "predict", "evaluate"})

#: Per-worker ``livestats`` slot layout (shared doubles the live metrics
#: endpoint samples while the driver blocks inside the one fit
#: dispatch).  Each worker writes only its own block, once per epoch
#: from its ``on_epoch`` hook; aligned 8-byte stores are atomic on the
#: platforms we target, so no lock is needed and a racing scrape sees a
#: slightly stale value at worst.
LIVE_EPOCH, LIVE_LOSS, LIVE_BYTES, LIVE_XCHG, LIVE_CKPTS = range(5)
LIVE_NSLOTS = 5 + len(SPAN_CATEGORIES)


def paranoid_mode() -> bool:
    """Full per-command/per-epoch digest checking (default: batched)."""
    return os.environ.get("REPRO_PARALLEL_PARANOID", "") not in ("", "0")


def default_max_restarts() -> int:
    """Pool-restart budget (``REPRO_PARALLEL_MAX_RESTARTS``, default 0).

    Zero keeps the historical behaviour: any failure tears the pool
    down and propagates.  A positive budget makes recoverable failures
    (see :data:`RECOVERABLE_ERRORS`) trigger respawn + checkpoint
    resume in :meth:`~repro.parallel.runtime.ParallelAlgorithm.fit`.
    """
    return int(os.environ.get("REPRO_PARALLEL_MAX_RESTARTS", "0"))


class WorkerError(RuntimeError):
    """A worker process raised; carries its formatted traceback."""


class WorkerDead(WorkerError):
    """A worker process exited (crash, kill, OOM) mid-command."""


class WorkerStalled(WorkerError):
    """The pool made no heartbeat progress for the whole timeout window."""


class TransportError(WorkerError):
    """A worker's channel failed (peer timeout, closed socket, or a
    corrupt frame) rather than the worker's own computation."""


#: Failure classes the elastic recovery loop may respond to with a pool
#: restart + checkpoint resume; plain :class:`WorkerError` (a genuine
#: worker exception) always propagates.
RECOVERABLE_ERRORS = (WorkerDead, WorkerStalled, TransportError)

#: Traceback markers that identify a worker-reported error as a
#: transport failure rather than an algorithmic one.
_TRANSPORT_MARKERS = ("ChannelTimeout", "UnpicklingError",
                      "ConnectionResetError", "BrokenPipeError")


def _cleanup(procs, arenas, queues):
    """Finalizer: make sure no OS resources outlive the backend."""
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        p.join(timeout=5)
    for shm in arenas:
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    for q in queues:
        q.cancel_join_thread()


class ProcessBackend:
    """Spawn and command a pool of SPMD workers for one mesh."""

    def __init__(self, mesh: ProcessMesh, profile: MachineProfile,
                 nworkers: int, arena_bytes: Optional[int] = None,
                 timeout: Optional[float] = None, transport: str = "shm",
                 faults: Optional[str] = None,
                 max_restarts: Optional[int] = None,
                 backoff: Optional[float] = None):
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; available: {TRANSPORTS}"
            )
        self.mesh = mesh
        self.profile = profile
        self.nworkers = nworkers
        self.owners = owner_map(mesh.size, nworkers)
        self.arena_bytes = arena_bytes or DEFAULT_ARENA_BYTES
        self.timeout = default_timeout() if timeout is None else timeout
        self.transport = transport
        #: declarative fault plan (see :mod:`repro.parallel.faults`);
        #: parsed driver-side so a typo fails before any spawn, then
        #: shipped verbatim for each worker to arm its own share.
        self.faults = (os.environ.get("REPRO_PARALLEL_FAULTS") or None
                       if faults is None else faults)
        if self.faults:
            parse_plan(self.faults)
        self.max_restarts = (default_max_restarts() if max_restarts is None
                             else int(max_restarts))
        self.backoff = default_backoff() if backoff is None else float(backoff)
        self._started = False
        self._finalizer = None
        self.procs = []
        self.arenas = []
        #: driver-side dispatch accounting (see :meth:`stats`)
        self.counters = {
            "dispatches": 0,       # command-queue wakeups
            "commands": 0,         # logical commands (batch members count)
            "fused_batches": 0,    # batch dispatches
            "fit_dispatches": 0,   # resident whole-fit dispatches
            "digest_checks": 0,    # cross-worker digest comparisons
            "restarts": 0,         # pool respawns by the recovery loop
            "recovery_dispatches": 0,  # dispatches issued for recovery
            "detect_seconds": 0.0,     # failure-detection latency, summed
        }
        #: True while the elastic recovery loop is between failure and
        #: resumed fit; the live endpoint surfaces it as a gauge.
        self.recovering = False
        #: heartbeat-age bookkeeping for :meth:`live_sample`
        self._hb_watch = {}

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the pool (idempotent while live; restartable after
        :meth:`terminate`, which the elastic recovery loop relies on)."""
        if self._started:
            return
        # A restart leaves the dead pool's handles behind; drop them so
        # the fresh pool gets fresh queues and heartbeat slots (stale
        # result-queue entries from a killed run must never be read).
        self.procs = []
        self.arenas = []
        ctx = mp.get_context("spawn")
        w = self.nworkers
        self.inboxes = [ctx.Queue() for _ in range(w)]
        self.cmd_queues = [ctx.Queue() for _ in range(w)]
        self.result_queue = ctx.Queue()
        #: per-worker progress counters; each worker writes only its own
        #: slot (no lock needed), the driver and peer channels read all.
        self.heartbeat = ctx.RawArray("Q", w)
        #: per-worker live-metrics slots (see :data:`LIVE_NSLOTS`)
        self.livestats = ctx.RawArray("d", w * LIVE_NSLOTS)
        self._hb_watch = {}
        hosts = None
        if self.transport == "tcp":
            env_hosts = os.environ.get("REPRO_PARALLEL_HOSTS")
            if env_hosts:
                hosts = parse_hosts(env_hosts, self.nworkers)
            arena_names = None
        else:
            self.arenas = [
                shared_memory.SharedMemory(create=True,
                                           size=self.arena_bytes)
                for _ in range(w)
            ]
            arena_names = [shm.name for shm in self.arenas]
        spec = {
            "mesh": self.mesh,
            "profile": self.profile,
            "owners": self.owners,
            "arena_names": arena_names,
            "timeout": self.timeout,
            "transport": self.transport,
            "hosts": hosts,
            "heartbeat": self.heartbeat,
            "livestats": self.livestats,
            "faults": self.faults,
        }
        saved = {v: os.environ.get(v) for v in _THREAD_PIN_VARS}
        try:
            for v in _THREAD_PIN_VARS:
                os.environ[v] = "1"
            for wid in range(w):
                p = ctx.Process(
                    target=_worker_main,
                    args=(wid, spec, self.inboxes, self.cmd_queues[wid],
                          self.result_queue),
                    daemon=True,
                    name=f"repro-rank-worker-{wid}",
                )
                p.start()
                self.procs.append(p)
        finally:
            for v, old in saved.items():
                if old is None:
                    os.environ.pop(v, None)
                else:
                    os.environ[v] = old
        self._finalizer = weakref.finalize(
            self, _cleanup, list(self.procs), list(self.arenas),
            self.inboxes + self.cmd_queues + [self.result_queue],
        )
        self._started = True

    # ------------------------------------------------------------------ #
    def _owned_ranks(self, wid: int) -> list:
        return [r for r, w in enumerate(self.owners) if w == wid]

    def command(self, op: str, payload, recovery: bool = False) -> list:
        """Broadcast one command; return per-worker results (by id).

        ``recovery=True`` marks a dispatch issued by the elastic
        recovery loop (re-construction / resumed fit after a respawn):
        it is counted under ``recovery_dispatches`` only, so the
        O(1)-dispatches-per-fit invariant stays checkable on the normal
        counters.
        """
        if not self._started:
            raise RuntimeError("backend not started")
        if recovery:
            self.counters["recovery_dispatches"] += 1
        else:
            self.counters["dispatches"] += 1
            self.counters["commands"] += 1
            if op == "fit":
                self.counters["fit_dispatches"] += 1
        for q in self.cmd_queues:
            q.put((op, payload))
        return self._collect(op)

    def command_batch(self, commands) -> list:
        """Fuse N commands into one pickle/wakeup per worker.

        ``commands`` is a list of ``(op, payload)`` pairs; each worker
        executes them in order and replies once with
        ``(values, digest, tracker, obs)`` -- one batched ledger digest
        for the whole stream (per-command digests under paranoid mode).
        Returns the per-worker tuples.
        """
        if not self._started:
            raise RuntimeError("backend not started")
        commands = list(commands)
        self.counters["dispatches"] += 1
        self.counters["commands"] += len(commands)
        self.counters["fused_batches"] += 1
        for q in self.cmd_queues:
            q.put(("batch", commands))
        return self._collect("batch")

    def _collect(self, op: str) -> list:
        """Gather one result per worker under the no-progress timeout."""
        results = {}
        hb_last = list(self.heartbeat)
        last_progress = time.monotonic()
        while len(results) < self.nworkers:
            try:
                wid, status, value = self.result_queue.get(timeout=0.25)
            except queue.Empty:
                # Workers only exit on 'close', so an earlier exit is a
                # crash (e.g. spawn re-importing a broken __main__)
                # whose peers would otherwise block until their channel
                # timeouts -- fail the command immediately, naming the
                # dead workers and the mesh ranks they owned.
                dead = [w for w, p in enumerate(self.procs)
                        if p.exitcode is not None]
                if dead:
                    names = ", ".join(
                        f"worker {w} (ranks {self._owned_ranks(w)})"
                        for w in dead
                    )
                    self.counters["detect_seconds"] += (
                        time.monotonic() - last_progress)
                    self.terminate()
                    raise WorkerDead(
                        f"worker process(es) died during {op!r}: {names}. "
                        "Note the spawn start method re-imports the "
                        "driver's __main__: interactive/stdin sessions "
                        "must guard driver code with "
                        "`if __name__ == '__main__':` (scripts, pytest, "
                        "and the CLI are unaffected)"
                    ) from None
                # Progress-based deadline: a long-running *healthy*
                # command (a whole resident fit) keeps the heartbeat
                # moving and is never killed by a clock; only a pool
                # making no progress at all for the whole window fails.
                hb_now = list(self.heartbeat)
                now = time.monotonic()
                if hb_now != hb_last:
                    hb_last, last_progress = hb_now, now
                elif (self.nworkers > 1 and self.timeout
                        and now - last_progress > self.timeout):
                    stuck = sorted(set(range(self.nworkers)) - set(results))
                    names = ", ".join(
                        f"worker {w} (ranks {self._owned_ranks(w)})"
                        for w in stuck
                    )
                    self.counters["detect_seconds"] += now - last_progress
                    self.terminate()
                    raise WorkerStalled(
                        f"no progress for {self.timeout}s during {op!r}; "
                        f"unresponsive: {names}"
                    ) from None
                continue
            if status == "err":
                self.counters["detect_seconds"] += (
                    time.monotonic() - last_progress)
                self.terminate()
                # A channel timeout / torn frame is the *transport*
                # failing (usually because a peer died or dropped a
                # message), not the worker's own computation -- classify
                # it so the recovery loop can respond.
                cls = (TransportError
                       if any(m in value for m in _TRANSPORT_MARKERS)
                       else WorkerError)
                raise cls(
                    f"worker {wid} failed during {op!r}:\n{value}"
                )
            results[wid] = value
        return [results[wid] for wid in range(self.nworkers)]

    # ------------------------------------------------------------------ #
    def stats(self, workers: bool = True) -> dict:
        """Dispatch/traffic counters for this pool.

        Driver-side counts (dispatches, logical commands, fused batches,
        fit dispatches, digest checks) plus -- when ``workers`` is true
        and the pool is live -- worker-side channel totals (payload
        bytes posted, exchanges, digests computed), gathered with one
        extra dispatch that is *not* included in the snapshot.
        """
        out = dict(self.counters)
        out["transport"] = self.transport
        out["workers"] = self.nworkers
        if workers and self._started:
            per = self.command("stats", None)
            out["channel_bytes"] = sum(d["channel_bytes"] for d in per)
            out["exchanges"] = sum(d["exchanges"] for d in per)
            out["digests_computed"] = sum(d["digests_computed"]
                                          for d in per)
            out["checkpoints_written"] = sum(
                d.get("checkpoints_written", 0) for d in per)
            out["checkpoint_seconds"] = sum(
                d.get("checkpoint_seconds", 0.0) for d in per)
            out["per_worker"] = per
        return out

    def live_sample(self) -> dict:
        """Driver-visible snapshot for the in-flight metrics endpoint.

        Called from the :class:`~repro.obs.live.LiveServer` scrape
        thread while the driver blocks inside the single fit dispatch:
        it reads only shared state (counters, heartbeat, ``livestats``)
        and issues **zero** worker round-trips, so ``fit`` stays one
        dispatch no matter how often the run is scraped.  Safe to call
        mid-recovery (the pool may be torn down); the sample then
        carries the counters plus ``recovering=True``.
        """
        sample = {
            "workers": self.nworkers,
            "restarts": self.counters["restarts"],
            "fit_dispatches": self.counters["fit_dispatches"],
            "recovery_dispatches": self.counters["recovery_dispatches"],
            "recovering": bool(self.recovering),
        }
        if not self._started:
            return sample
        # Bind the arrays once: start() after a respawn replaces them,
        # and a scrape racing the swap must read one coherent pair.
        live, hb = self.livestats, self.heartbeat
        now = time.monotonic()
        ages = {}
        for wid, count in enumerate(hb):
            seen = self._hb_watch.get(wid)
            if seen is None or seen[0] != count:
                self._hb_watch[wid] = (count, now)
                ages[wid] = 0.0
            else:
                ages[wid] = now - seen[1]
        sample["heartbeat_age_s"] = ages
        vals = list(live)
        worker_epoch = {}
        span_seconds = {c: 0.0 for c in SPAN_CATEGORIES}
        bytes_sent = exchanges = checkpoints = 0.0
        for wid in range(self.nworkers):
            base = wid * LIVE_NSLOTS
            worker_epoch[wid] = vals[base + LIVE_EPOCH]
            bytes_sent += vals[base + LIVE_BYTES]
            exchanges += vals[base + LIVE_XCHG]
            checkpoints += vals[base + LIVE_CKPTS]
            for i, cat in enumerate(SPAN_CATEGORIES):
                span_seconds[cat] += vals[base + 5 + i]
        sample["worker_epoch"] = worker_epoch
        sample["epoch"] = max(worker_epoch.values(), default=0.0)
        loss = vals[LIVE_LOSS]  # worker 0's block starts at offset 0
        if worker_epoch.get(0, 0.0) > 0:
            sample["loss"] = loss
        sample["bytes_sent"] = bytes_sent
        sample["exchanges"] = exchanges
        sample["checkpoints"] = checkpoints
        sample["span_seconds"] = span_seconds
        return sample

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Orderly shutdown: ask workers to exit, then reap resources."""
        if not self._started:
            return
        for q in self.cmd_queues:
            try:
                q.put(("close", None))
            except (ValueError, OSError):  # pragma: no cover
                pass
        for p in self.procs:
            p.join(timeout=self.timeout)
        self.terminate()

    def terminate(self) -> None:
        if self._finalizer is not None:
            self._finalizer()
        self._started = False


# ---------------------------------------------------------------------- #
# the worker process
# ---------------------------------------------------------------------- #
class _WorkerState:
    """Mutable per-worker slots the command loop threads through."""

    __slots__ = ("algo", "ndigests")

    def __init__(self):
        self.algo = None
        self.ndigests = 0


def _worker_main(worker_id: int, spec: dict, inboxes, cmd_queue,
                 result_queue) -> None:
    """One SPMD worker: build a rank-local runtime, execute commands.

    Spawn target (top-level so it pickles).  Every command ends with an
    ``('ok', value)`` or ``('err', traceback)`` report; collectives
    failures on one worker surface as timeouts on its peers, which the
    driver converts into pool termination.
    """
    # Workers inherit REPRO_SANITIZE through spawn: one driver-side
    # setting arms the sanitizers in every process of the pool.
    _sanitize.maybe_enable_from_env()
    heartbeat = spec["heartbeat"]
    if spec["transport"] == "tcp":
        channel = TcpChannel(worker_id, len(inboxes), inboxes=inboxes,
                             hosts=spec["hosts"], timeout=spec["timeout"],
                             heartbeat=heartbeat)
    else:
        channel = PeerChannel(worker_id, inboxes, spec["arena_names"],
                              timeout=spec["timeout"], heartbeat=heartbeat)
    # Arm this worker's share of the fault plan (None when no spec
    # targets it); a fresh process starts with every spec re-armed.
    channel.faults = FaultPlan.for_worker(worker_id, spec.get("faults"))
    rt = WorkerRuntime(spec["mesh"], spec["profile"], channel,
                       spec["owners"])
    state = _WorkerState()
    paranoid = paranoid_mode()
    try:
        while True:
            op, payload = cmd_queue.get()
            if op == "close":
                break
            try:
                value = _handle(rt, worker_id, op, payload, state, channel,
                                paranoid, spec.get("livestats"))
                result_queue.put((worker_id, "ok", value))
            # The worker's one fault barrier: any command failure --
            # taxonomy or not -- must reach the driver as an 'err'
            # reply, never kill the command loop.
            # repro-lint: disable=R8 -- top-level barrier: every failure must become an 'err' reply
            except Exception:
                result_queue.put((worker_id, "err",
                                  traceback.format_exc()))
    finally:
        channel.close()


def _digest_result(rt, worker_id: int, value, extras, item_digests,
                   state: _WorkerState, obs=None):
    """Digest-carrying reply:
    ``(value-or-None, digest, w0's tracker, obs-or-None)``.

    ``digest`` is the batched ledger digest (covering ``extras`` --
    the stream's check scalars), or, under paranoid mode, a
    ``(final, per_item_digests)`` pair so a divergence names the exact
    epoch / sub-command.  ``obs`` is the worker's span blob when the fit
    ran traced -- it rides on the same reply and never enters the
    digest (wall clocks differ per worker; the ledger must not).
    """
    state.ndigests += 1
    final = ledger_digest(rt.tracker, *extras)
    digest = final if item_digests is None else (final, tuple(item_digests))
    tracker = rt.tracker if worker_id == 0 else None
    return (value if worker_id == 0 else None, digest, tracker, obs)


def _handle(rt, worker_id: int, op: str, payload, state: _WorkerState,
            channel, paranoid: bool, livestats=None):
    """Execute one top-level command, wrapping digests as appropriate."""
    if op == "fit":
        # The resident hot path: the whole training program runs here,
        # with zero driver round-trips between epochs.
        features, labels, mask, epochs, trace_opts, ckpt = payload
        algo = _require_algo(state, op)
        extras = []
        epoch_digests = [] if paranoid else None
        ckpt = ckpt or {}
        ckpt_path = ckpt.get("path")
        resume = bool(ckpt.get("resume"))
        plan = channel.faults
        if plan is not None:
            plan.attempt = int(ckpt.get("attempt", 1))
        # Epoch-pinned faults must fire only on *live* epochs: a resume
        # replays the checkpointed epochs through on_epoch, and
        # re-firing a kill there would loop the recovery forever.
        live_start = 0
        if resume and ckpt_path:
            from repro.nn.serialize import checkpoint_epochs

            live_start = checkpoint_epochs(ckpt_path)

        live_base = worker_id * LIVE_NSLOTS

        def on_epoch(stats):
            channel.touch()
            extras.extend((stats.loss, stats.train_accuracy))
            if epoch_digests is not None:
                state.ndigests += 1
                epoch_digests.append(
                    ledger_digest(rt.tracker, stats.loss,
                                  stats.train_accuracy))
            if livestats is not None:
                # Live-metrics slots: one aligned double store per
                # field, this worker's block only -- the driver's
                # scrape thread reads them lock-free.
                livestats[live_base + LIVE_EPOCH] = stats.epoch + 1
                livestats[live_base + LIVE_LOSS] = stats.loss
                livestats[live_base + LIVE_BYTES] = channel.bytes_sent
                livestats[live_base + LIVE_XCHG] = channel.nexchanges
                livestats[live_base + LIVE_CKPTS] = (
                    algo.checkpoints_written)
                rec = _spans.ACTIVE
                if rec is not None:
                    for i, cat in enumerate(SPAN_CATEGORIES):
                        livestats[live_base + 5 + i] = rec.cat_seconds[cat]
            if plan is not None and stats.epoch >= live_start:
                plan.on_epoch(stats.epoch)

        fit_kwargs = dict(
            mask=mask,
            on_epoch=on_epoch,
            checkpoint_path=ckpt_path,
            checkpoint_every=int(ckpt.get("every", 0)),
            resume=resume,
            # One writer per pool: the checkpoint is a single shared
            # file and every worker holds identical replicated state.
            checkpoint_writer=(worker_id == 0),
        )
        obs = None
        if trace_opts is None:
            history = algo.fit(features, labels, epochs, **fit_kwargs)
        else:
            # Traced fit: record locally, ship the drained spans on this
            # same reply (the O(1)-dispatches invariant holds).  "align"
            # is this worker's clock at fit start, letting the driver
            # offset-align streams from other hosts.
            rec = _spans.enable(
                int(trace_opts.get("capacity", _spans.DEFAULT_CAPACITY)))
            prof = (_profile.enable() if trace_opts.get("profile")
                    else None)
            align = rec.clock()
            try:
                history = algo.fit(features, labels, epochs, **fit_kwargs)
            finally:
                _spans.disable()
                if prof is not None:
                    _profile.disable()
            obs = {
                "worker": worker_id,
                "ranks": list(rt._local_ranks),
                "align": align,
                "spans": rec.drain(),
                "dropped": rec.dropped,
            }
            if prof is not None:
                # Kernel counters ride the same single reply; they never
                # enter the digest (wall clocks differ per worker).
                obs["profile"] = prof.snapshot(
                    arena=getattr(channel, "arena", None))
        return _digest_result(rt, worker_id, history.epochs, extras,
                              epoch_digests, state, obs=obs)
    if op == "batch":
        values, extras = [], []
        item_digests = [] if paranoid else None
        for sub_op, sub_payload in payload:
            value, sub_extras = _dispatch(rt, worker_id, sub_op,
                                          sub_payload, state)
            values.append(value)
            extras.extend(sub_extras)
            if item_digests is not None:
                state.ndigests += 1
                item_digests.append(
                    ledger_digest(rt.tracker, *sub_extras))
        return _digest_result(rt, worker_id, values, extras, item_digests,
                              state)
    if op == "stats":
        algo = state.algo
        return {
            "channel_bytes": channel.bytes_sent,
            "exchanges": channel.nexchanges,
            "digests_computed": state.ndigests,
            "checkpoints_written": (0 if algo is None
                                    else algo.checkpoints_written),
            "checkpoint_seconds": (0.0 if algo is None
                                   else algo.checkpoint_seconds),
        }
    value, extras = _dispatch(rt, worker_id, op, payload, state)
    if op in _LEDGERED_OPS:
        return _digest_result(rt, worker_id, value, extras, None, state)
    return value


def _require_algo(state: _WorkerState, op: str):
    if state.algo is None:
        raise RuntimeError(f"no algorithm constructed before {op!r}")
    return state.algo


def _dispatch(rt, worker_id: int, op: str, payload, state: _WorkerState):
    """Execute one logical command; returns ``(value, check_scalars)``.

    ``check_scalars`` feed the stream's ledger digest so numeric
    divergence (not just structural) trips the cross-worker check.
    """
    if op == "make_algo":
        from repro.dist.registry import ALGORITHMS

        name, a_t, widths, seed, optimizer, kwargs = payload
        state.algo = ALGORITHMS[name](rt, a_t, widths, seed=seed,
                                      optimizer=optimizer, **kwargs)
        return None, ()
    algo = _require_algo(state, op)
    if op == "setup":
        features, labels, mask = payload
        algo.setup(features, labels, mask)
        return None, ()
    if op == "train_epoch":
        stats = algo.train_epoch(payload)
        return (stats if worker_id == 0 else None,
                (stats.loss, stats.train_accuracy))
    if op == "predict":
        log_probs = algo.predict(payload)
        return (log_probs if worker_id == 0 else None,
                (float(np.sum(log_probs)),))
    if op == "evaluate":
        labels, mask = payload
        loss, acc = algo.evaluate(labels, mask)
        return ((loss, acc) if worker_id == 0 else None, (loss, acc))
    if op == "log_probs":
        # Every worker participates: the lazy assembly inside
        # gather_log_probs is a collective (rt.gather_blocks).
        log_probs = algo.gather_log_probs()
        return (log_probs if worker_id == 0 else None, ())
    if op == "weights":
        if worker_id != 0:
            return None, ()
        return [w.copy() for w in algo.model.weights], ()
    if op == "reset_model":
        from repro.dist.base import clone_optimizer
        from repro.nn.model import GCN

        seed = algo.seed if payload is None else payload
        algo.model = GCN(algo.widths, seed=seed)
        algo.optimizer = clone_optimizer(algo.optimizer)
        if worker_id != 0:
            return None, ()
        return {
            "seed": seed,
            "optimizer": clone_optimizer(algo.optimizer),
            "a_t": algo.a_t,
            "a": algo.a,
            # a_t/a live in the distribution's internal vertex order;
            # the driver must relabel the serial reference's inputs the
            # same way (None when no distribution is set).
            "distribution": algo.distribution,
        }, ()
    if op == "reset_stats":
        rt.reset_stats()
        return None, ()
    if op == "debug_skew":
        # Test-only fault injection: charge one worker's ledger so the
        # cross-worker digest check must trip on the next command.
        from repro.comm.tracker import Category

        if worker_id == payload:
            rt.tracker.charge(0, Category.MISC, 0.0, nbytes=1)
        return None, ()
    if op == "debug_hang":
        # Test-only: one worker stops making progress (never touches
        # the heartbeat) so timeout paths can be exercised quickly.
        if worker_id == payload:
            while True:
                time.sleep(0.05)
        return None, ()
    raise ValueError(f"unknown worker command {op!r}")
