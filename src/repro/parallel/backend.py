"""The process backend: spawn P-rank SPMD worker pools and drive them.

:class:`ProcessBackend` owns the operating-system resources: worker
processes (a ``multiprocessing`` **spawn** context -- no inherited
interpreter state, the same start method ``torch.distributed`` defaults
to on CUDA), one command queue per worker, one shared result queue, one
inbox queue per worker for peer traffic, and one shared-memory arena per
worker.  The driver broadcasts a command to every worker; workers execute
it in lock-step (collectives rendezvous through
:mod:`repro.parallel.channel`) and each reports success or a traceback.
Any worker error terminates the pool rather than leaving peers blocked on
a dead rendezvous.  Deadlock detection is layered: peer-to-peer waits
inside the workers carry the ``REPRO_PARALLEL_TIMEOUT`` (a rank blocked
on a silent peer errors out instead of hanging a CI runner), while the
driver watches worker *liveness* -- a crashed worker fails the command
within a fraction of a second, but a long-running healthy command is
never killed by a clock.

Worker processes pin their BLAS pools to one thread
(``OMP_NUM_THREADS=1`` etc. at spawn): the backend's parallelism comes
from running ranks on separate cores, and oversubscribing P workers x N
BLAS threads on an N-core host destroys exactly the scaling this backend
exists to demonstrate.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import traceback
import weakref
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.comm.mesh import ProcessMesh
from repro.config import MachineProfile
from repro.parallel.channel import PeerChannel, default_timeout
from repro.parallel.runtime import WorkerRuntime, ledger_digest, owner_map

__all__ = ["ProcessBackend", "WorkerError"]

#: Default per-worker arena size; payloads beyond this spill to
#: per-payload ephemeral segments (correct, just slower).
DEFAULT_ARENA_BYTES = 32 * 1024 * 1024

_THREAD_PIN_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                    "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS")


class WorkerError(RuntimeError):
    """A worker process raised; carries its formatted traceback."""


def _cleanup(procs, arenas, queues):
    """Finalizer: make sure no OS resources outlive the backend."""
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        p.join(timeout=5)
    for shm in arenas:
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    for q in queues:
        q.cancel_join_thread()


class ProcessBackend:
    """Spawn and command a pool of SPMD workers for one mesh."""

    def __init__(self, mesh: ProcessMesh, profile: MachineProfile,
                 nworkers: int, arena_bytes: Optional[int] = None,
                 timeout: Optional[float] = None):
        self.mesh = mesh
        self.profile = profile
        self.nworkers = nworkers
        self.owners = owner_map(mesh.size, nworkers)
        self.arena_bytes = arena_bytes or DEFAULT_ARENA_BYTES
        self.timeout = default_timeout() if timeout is None else timeout
        self._started = False
        self._finalizer = None
        self.procs = []

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._started:
            return
        ctx = mp.get_context("spawn")
        w = self.nworkers
        self.inboxes = [ctx.Queue() for _ in range(w)]
        self.cmd_queues = [ctx.Queue() for _ in range(w)]
        self.result_queue = ctx.Queue()
        self.arenas = [
            shared_memory.SharedMemory(create=True, size=self.arena_bytes)
            for _ in range(w)
        ]
        arena_names = [shm.name for shm in self.arenas]
        spec = {
            "mesh": self.mesh,
            "profile": self.profile,
            "owners": self.owners,
            "arena_names": arena_names,
            "timeout": self.timeout,
        }
        saved = {v: os.environ.get(v) for v in _THREAD_PIN_VARS}
        try:
            for v in _THREAD_PIN_VARS:
                os.environ[v] = "1"
            for wid in range(w):
                p = ctx.Process(
                    target=_worker_main,
                    args=(wid, spec, self.inboxes, self.cmd_queues[wid],
                          self.result_queue),
                    daemon=True,
                    name=f"repro-rank-worker-{wid}",
                )
                p.start()
                self.procs.append(p)
        finally:
            for v, old in saved.items():
                if old is None:
                    os.environ.pop(v, None)
                else:
                    os.environ[v] = old
        self._finalizer = weakref.finalize(
            self, _cleanup, list(self.procs), list(self.arenas),
            self.inboxes + self.cmd_queues + [self.result_queue],
        )
        self._started = True

    # ------------------------------------------------------------------ #
    def command(self, op: str, payload) -> list:
        """Broadcast one command; return per-worker results (by id)."""
        if not self._started:
            raise RuntimeError("backend not started")
        for q in self.cmd_queues:
            q.put((op, payload))
        results = {}
        while len(results) < self.nworkers:
            try:
                wid, status, value = self.result_queue.get(timeout=0.25)
            except queue.Empty:
                # No fixed command deadline: a long-running *healthy*
                # command (one epoch on a big graph) must not be killed
                # as a false deadlock.  Genuine deadlocks surface
                # through the workers themselves -- a rank blocked on a
                # dead/absent peer raises ChannelTimeout after
                # REPRO_PARALLEL_TIMEOUT and reports 'err' here.  What
                # the driver does watch for is worker death: workers
                # only exit on 'close', so an earlier exit is a crash
                # (e.g. spawn re-importing a broken __main__) whose
                # peers would otherwise block until their channel
                # timeouts -- fail the command immediately instead.
                dead = [p.name for p in self.procs
                        if p.exitcode is not None]
                if dead:
                    self.terminate()
                    raise WorkerError(
                        f"worker process(es) died during {op!r}: {dead}. "
                        "Note the spawn start method re-imports the "
                        "driver's __main__: interactive/stdin sessions "
                        "must guard driver code with "
                        "`if __name__ == '__main__':` (scripts, pytest, "
                        "and the CLI are unaffected)"
                    ) from None
                continue
            if status == "err":
                self.terminate()
                raise WorkerError(
                    f"worker {wid} failed during {op!r}:\n{value}"
                )
            results[wid] = value
        return [results[wid] for wid in range(self.nworkers)]

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Orderly shutdown: ask workers to exit, then reap resources."""
        if not self._started:
            return
        for q in self.cmd_queues:
            try:
                q.put(("close", None))
            except (ValueError, OSError):  # pragma: no cover
                pass
        for p in self.procs:
            p.join(timeout=self.timeout)
        self.terminate()

    def terminate(self) -> None:
        if self._finalizer is not None:
            self._finalizer()
        self._started = False


# ---------------------------------------------------------------------- #
# the worker process
# ---------------------------------------------------------------------- #
def _worker_main(worker_id: int, spec: dict, inboxes, cmd_queue,
                 result_queue) -> None:
    """One SPMD worker: build a rank-local runtime, execute commands.

    Spawn target (top-level so it pickles).  Every command ends with an
    ``('ok', value)`` or ``('err', traceback)`` report; collectives
    failures on one worker surface as timeouts on its peers, which the
    driver converts into pool termination.
    """
    channel = PeerChannel(worker_id, inboxes, spec["arena_names"],
                          timeout=spec["timeout"])
    rt = WorkerRuntime(spec["mesh"], spec["profile"], channel,
                       spec["owners"])
    algo = None
    try:
        while True:
            op, payload = cmd_queue.get()
            if op == "close":
                break
            try:
                value = _dispatch(rt, worker_id, op, payload,
                                  lambda: algo)
                if op == "make_algo":
                    algo, value = value, None
                result_queue.put((worker_id, "ok", value))
            except Exception:
                result_queue.put((worker_id, "err",
                                  traceback.format_exc()))
    finally:
        channel.close()


def _with_ledger(rt, worker_id: int, value, *extra_floats):
    """Standard command result: (value-or-None, digest, w0's tracker)."""
    digest = ledger_digest(rt.tracker, *extra_floats)
    tracker = rt.tracker if worker_id == 0 else None
    return (value if worker_id == 0 else None, digest, tracker)


def _dispatch(rt, worker_id: int, op: str, payload, get_algo):
    algo = get_algo()
    if op == "make_algo":
        from repro.dist.registry import ALGORITHMS

        name, a_t, widths, seed, optimizer, kwargs = payload
        return ALGORITHMS[name](rt, a_t, widths, seed=seed,
                                optimizer=optimizer, **kwargs)
    if algo is None:
        raise RuntimeError(f"no algorithm constructed before {op!r}")
    if op == "setup":
        features, labels, mask = payload
        algo.setup(features, labels, mask)
        return None
    if op == "train_epoch":
        stats = algo.train_epoch(payload)
        return _with_ledger(rt, worker_id, stats, stats.loss,
                            stats.train_accuracy)
    if op == "predict":
        log_probs = algo.predict(payload)
        return _with_ledger(rt, worker_id, log_probs,
                            float(np.sum(log_probs)))
    if op == "evaluate":
        labels, mask = payload
        loss, acc = algo.evaluate(labels, mask)
        return _with_ledger(rt, worker_id, (loss, acc), loss, acc)
    if op == "log_probs":
        # Every worker participates: the lazy assembly inside
        # gather_log_probs is a collective (rt.gather_blocks).
        log_probs = algo.gather_log_probs()
        return log_probs if worker_id == 0 else None
    if op == "weights":
        if worker_id != 0:
            return None
        return [w.copy() for w in algo.model.weights]
    if op == "reset_model":
        from repro.dist.base import clone_optimizer
        from repro.nn.model import GCN

        seed = algo.seed if payload is None else payload
        algo.model = GCN(algo.widths, seed=seed)
        algo.optimizer = clone_optimizer(algo.optimizer)
        if worker_id != 0:
            return None
        return {
            "seed": seed,
            "optimizer": clone_optimizer(algo.optimizer),
            "a_t": algo.a_t,
            "a": algo.a,
            # a_t/a live in the distribution's internal vertex order;
            # the driver must relabel the serial reference's inputs the
            # same way (None when no distribution is set).
            "distribution": algo.distribution,
        }
    if op == "reset_stats":
        rt.reset_stats()
        return None
    raise ValueError(f"unknown worker command {op!r}")
