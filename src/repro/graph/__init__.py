"""Graph substrate: generators, normalisation, permutation, datasets."""

from repro.graph.datasets import (
    GNN_LAYERS,
    split_masks,
    HIDDEN_WIDTH,
    PUBLISHED,
    Dataset,
    DatasetSpec,
    layer_widths,
    make_standin,
    make_synthetic,
    published_spec,
)
from repro.graph.generators import (
    edges_to_adjacency,
    erdos_renyi,
    grid_graph,
    ring_graph,
    rmat,
    star_graph,
    stochastic_block_model,
)
from repro.graph.io import (
    from_networkx,
    read_edge_list,
    to_networkx,
    write_edge_list,
)
from repro.graph.normalize import add_self_loops, gcn_normalize, row_normalize
from repro.graph.permutation import (
    apply_random_permutation,
    block_nnz_imbalance,
    identity_permutation,
    invert_permutation,
    random_permutation,
)

__all__ = [
    "Dataset",
    "DatasetSpec",
    "PUBLISHED",
    "GNN_LAYERS",
    "HIDDEN_WIDTH",
    "published_spec",
    "make_standin",
    "make_synthetic",
    "layer_widths",
    "split_masks",
    "erdos_renyi",
    "rmat",
    "stochastic_block_model",
    "ring_graph",
    "star_graph",
    "grid_graph",
    "edges_to_adjacency",
    "from_networkx",
    "to_networkx",
    "read_edge_list",
    "write_edge_list",
    "add_self_loops",
    "gcn_normalize",
    "row_normalize",
    "random_permutation",
    "identity_permutation",
    "invert_permutation",
    "apply_random_permutation",
    "block_nnz_imbalance",
]
