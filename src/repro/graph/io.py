"""Graph input/output: NetworkX interop and edge-list files.

Downstream users arrive with graphs in standard containers; this module
bridges them into the library's CSR world:

* :func:`from_networkx` / :func:`to_networkx` -- lossless adjacency
  round-trips with optional edge weights;
* :func:`read_edge_list` / :func:`write_edge_list` -- the whitespace
  ``src dst [weight]`` text format that SNAP-style datasets (including
  the original Reddit/Amazon dumps) ship in.

Everything funnels through :func:`repro.graph.generators.edges_to_adjacency`
semantics, so loaded graphs are ready for
:func:`repro.graph.normalize.gcn_normalize`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "from_networkx",
    "to_networkx",
    "read_edge_list",
    "write_edge_list",
]


def from_networkx(graph, weight: Optional[str] = None) -> CSRMatrix:
    """Convert a NetworkX (Di)Graph with integer-like nodes to CSR.

    Nodes are relabelled to ``0..n-1`` in sorted order; ``weight`` names
    an edge attribute to carry (default: 1.0).  Undirected graphs come
    back symmetric.
    """
    import networkx as nx

    nodes = sorted(graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)
    rows, cols, vals = [], [], []
    for u, v, data in graph.edges(data=True):
        w = float(data.get(weight, 1.0)) if weight else 1.0
        rows.append(index[u])
        cols.append(index[v])
        vals.append(w)
        if not graph.is_directed():
            rows.append(index[v])
            cols.append(index[u])
            vals.append(w)
    if not rows:
        return CSRMatrix.zeros((n, n))
    return CSRMatrix.from_coo(
        np.array(rows), np.array(cols), np.array(vals), (n, n)
    )


def to_networkx(a: CSRMatrix, directed: bool = False):
    """Convert a CSR adjacency to a NetworkX graph (weights preserved)."""
    import networkx as nx

    g = nx.DiGraph() if directed else nx.Graph()
    g.add_nodes_from(range(a.nrows))
    rows, cols, vals = a.to_coo()
    for u, v, w in zip(rows, cols, vals):
        if not directed and u > v:
            continue  # undirected: add each pair once
        g.add_edge(int(u), int(v), weight=float(w))
    return g


def read_edge_list(
    path: Union[str, Path],
    n: Optional[int] = None,
    symmetrize: bool = True,
    comments: str = "#",
) -> CSRMatrix:
    """Read a ``src dst [weight]`` text edge list into a CSR adjacency.

    Lines starting with ``comments`` are skipped.  ``n`` overrides the
    vertex count (default: ``max id + 1``).  Parallel edges sum their
    weights; self loops are kept (GCN normalisation re-adds its own, so
    strip them beforehand if needed).
    """
    srcs, dsts, ws = [], [], []
    with open(Path(path)) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"{path}:{lineno}: expected 'src dst [weight]', "
                    f"got {line!r}"
                )
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            ws.append(float(parts[2]) if len(parts) == 3 else 1.0)
    if not srcs:
        return CSRMatrix.zeros((n or 0, n or 0))
    src = np.array(srcs, dtype=np.int64)
    dst = np.array(dsts, dtype=np.int64)
    w = np.array(ws, dtype=np.float64)
    n_detected = int(max(src.max(), dst.max())) + 1
    if n is None:
        n = n_detected
    elif n < n_detected:
        raise ValueError(
            f"n={n} smaller than largest vertex id {n_detected - 1}"
        )
    if symmetrize:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        w = np.concatenate([w, w])
    return CSRMatrix.from_coo(src, dst, w, (n, n))


def write_edge_list(
    path: Union[str, Path],
    a: CSRMatrix,
    directed: bool = True,
    header: Optional[str] = None,
) -> None:
    """Write a CSR adjacency as a ``src dst weight`` text edge list.

    ``directed=False`` writes each symmetric pair once (upper triangle).
    """
    rows, cols, vals = a.to_coo()
    with open(Path(path), "w") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for u, v, w in zip(rows, cols, vals):
            if not directed and u > v:
                continue
            fh.write(f"{int(u)} {int(v)} {w:.17g}\n")
