"""Graph generators: Erdos-Renyi, R-MAT/Kronecker, SBM, and toy graphs.

The paper evaluates on Reddit, Amazon, and a protein-similarity network --
all heavy-tailed real graphs we cannot ship.  Per the substitution rule,
the stand-ins are generated:

* :func:`rmat` (R-MAT / stochastic Kronecker) reproduces the skewed,
  scale-free degree distributions of social/co-purchase/protein networks.
  Skew is what makes load balance matter and what defeats graph
  partitioning ("given the scale free nature of most graph datasets,
  graph partitioning is unlikely to produce an asymptotic improvement",
  Section IV-A.8).
* :func:`erdos_renyi` matches the paper's own analytical model
  ``G(n, d/n)`` used for the hypersparsity expectations (Section IV-A.3).
* :func:`stochastic_block_model` produces community structure, the
  favourable case for the Metis-style partitioner experiment.
* ring / star / grid give deterministic shapes for unit tests.

Every generator takes a ``seed`` and is deterministic given it; all return
unweighted COO edge lists (possibly directed) that
:func:`repro.graph.normalize.gcn_normalize` turns into the modified
adjacency matrix ``A`` of the paper.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "erdos_renyi",
    "rmat",
    "stochastic_block_model",
    "ring_graph",
    "star_graph",
    "grid_graph",
    "edges_to_adjacency",
]


def edges_to_adjacency(
    src: np.ndarray,
    dst: np.ndarray,
    n: int,
    symmetrize: bool = True,
    drop_self_loops: bool = True,
) -> CSRMatrix:
    """Build a 0/1 adjacency CSR from an edge list.

    ``symmetrize=True`` adds the reverse edges (undirected graph); parallel
    edges collapse to one (value clamped to 1); self loops are dropped here
    because GCN normalisation re-adds exactly one per vertex.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if symmetrize:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    if drop_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    a = CSRMatrix.from_coo(src, dst, np.ones(src.size), (n, n))
    # Collapse duplicate-summed entries back to 0/1.
    a.data[:] = 1.0
    return a


def erdos_renyi(
    n: int,
    avg_degree: float,
    seed: int = 0,
    directed: bool = False,
) -> CSRMatrix:
    """``G(n, d/n)`` with expected average degree ``avg_degree``.

    Samples ``m ~= n*d/2`` undirected (or ``n*d`` directed) edges by
    rejection-free uniform pair draws; duplicates collapse, so the realised
    degree is marginally below the target for dense regimes -- irrelevant
    at GNN-dataset sparsities.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if avg_degree < 0 or avg_degree >= n:
        raise ValueError(f"avg_degree {avg_degree} outside [0, n)")
    rng = np.random.default_rng(seed)
    m = int(round(n * avg_degree / (1 if directed else 2)))
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    return edges_to_adjacency(src, dst, n, symmetrize=not directed)


def rmat(
    scale: int,
    edge_factor: float = 16.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    n: Optional[int] = None,
) -> CSRMatrix:
    """R-MAT / stochastic-Kronecker graph with ``2**scale`` vertices.

    Classic Graph500 parameters by default (a=0.57, b=c=0.19, d=0.05),
    which give the power-law-ish degree distributions of web/social
    graphs.  Each of the ``m = edge_factor * 2**scale`` edges picks its
    endpoints one bit at a time by recursive quadrant choice -- vectorised
    over all edges at once (one pass per bit, no Python-level recursion).

    ``n`` truncates the vertex set below ``2**scale`` (vertices >= n are
    re-drawn modulo n) so stand-in datasets can hit exact published vertex
    counts.
    """
    if scale < 1 or scale > 30:
        raise ValueError(f"scale {scale} out of sane range [1, 30]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError(f"R-MAT probabilities must be nonnegative, d={d:.3f}")
    nfull = 1 << scale
    m = int(round(edge_factor * nfull))
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for _bit in range(scale):
        r = rng.random(m)
        # Quadrant choice: (0,0) w.p. a; (0,1) w.p. b; (1,0) w.p. c; else (1,1).
        go_right = (r >= a) & (r < a + b) | (r >= a + b + c)
        go_down = r >= a + b
        src = (src << 1) | go_down
        dst = (dst << 1) | go_right
    if n is not None:
        if n < 1 or n > nfull:
            raise ValueError(f"n={n} outside (0, 2**scale={nfull}]")
        src %= n
        dst %= n
    else:
        n = nfull
    return edges_to_adjacency(src, dst, n, symmetrize=True)


def stochastic_block_model(
    block_sizes: Tuple[int, ...],
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> CSRMatrix:
    """SBM: dense within blocks, sparse across -- the partitioner-friendly
    case for the Metis-vs-random experiment."""
    if not 0 <= p_out <= p_in <= 1:
        raise ValueError("need 0 <= p_out <= p_in <= 1")
    n = int(sum(block_sizes))
    labels = np.repeat(np.arange(len(block_sizes)), block_sizes)
    rng = np.random.default_rng(seed)
    # Sample edges by expected count per block pair (binomial thinning of
    # uniform pair draws keeps this O(m) instead of O(n^2)).
    srcs, dsts = [], []
    starts = np.concatenate(([0], np.cumsum(block_sizes)))
    for bi in range(len(block_sizes)):
        for bj in range(bi, len(block_sizes)):
            prob = p_in if bi == bj else p_out
            if prob == 0:
                continue
            ni, nj = block_sizes[bi], block_sizes[bj]
            pairs = ni * nj if bi != bj else ni * (ni - 1) // 2
            m = rng.binomial(pairs, prob)
            if m == 0:
                continue
            s = rng.integers(starts[bi], starts[bi + 1], size=m, dtype=np.int64)
            t = rng.integers(starts[bj], starts[bj + 1], size=m, dtype=np.int64)
            srcs.append(s)
            dsts.append(t)
    if not srcs:
        return CSRMatrix.zeros((n, n))
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    adj = edges_to_adjacency(src, dst, n)
    return adj


def ring_graph(n: int) -> CSRMatrix:
    """Cycle of ``n`` vertices (degree 2, perfectly balanced)."""
    if n < 3:
        raise ValueError(f"ring needs >= 3 vertices, got {n}")
    idx = np.arange(n, dtype=np.int64)
    return edges_to_adjacency(idx, (idx + 1) % n, n)


def star_graph(n: int) -> CSRMatrix:
    """Star: vertex 0 connected to all others (maximal degree skew)."""
    if n < 2:
        raise ValueError(f"star needs >= 2 vertices, got {n}")
    leaves = np.arange(1, n, dtype=np.int64)
    return edges_to_adjacency(np.zeros(n - 1, dtype=np.int64), leaves, n)


def grid_graph(rows: int, cols: int) -> CSRMatrix:
    """2D lattice -- the best case for contiguous block partitioning."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")
    n = rows * cols
    ids = np.arange(n, dtype=np.int64).reshape(rows, cols)
    srcs = [ids[:, :-1].ravel(), ids[:-1, :].ravel()]
    dsts = [ids[:, 1:].ravel(), ids[1:, :].ravel()]
    return edges_to_adjacency(np.concatenate(srcs), np.concatenate(dsts), n)
