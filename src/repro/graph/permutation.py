"""Random vertex permutation for load balance.

Section I: "the 2D and 3D algorithms [...] automatically address load
balance through a combination of random vertex permutations and the
implicit partitioning of the adjacencies of high-degree vertices."

A random relabelling of vertices destroys any locality correlation between
vertex id and degree, so contiguous block splits receive statistically
equal nnz -- this module provides the permutation and the imbalance
metrics used to quantify its effect (ablation E-perm in DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "random_permutation",
    "apply_random_permutation",
    "identity_permutation",
    "invert_permutation",
    "block_nnz_imbalance",
]


def random_permutation(n: int, seed: int = 0) -> np.ndarray:
    """A uniform random permutation of ``0..n-1`` (``perm[i]`` = new id)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


def identity_permutation(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``inv[perm[i]] == i``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv


def apply_random_permutation(
    a: CSRMatrix,
    features: np.ndarray,
    labels: np.ndarray,
    seed: int = 0,
    perm: Optional[np.ndarray] = None,
) -> Tuple[CSRMatrix, np.ndarray, np.ndarray, np.ndarray]:
    """Relabel a dataset's vertices with one shared permutation.

    Returns ``(A', H0', y', perm)``: the permuted adjacency
    ``P A P^T``, features and labels rows reordered consistently, and the
    permutation itself (so embeddings can be mapped back via
    :func:`invert_permutation`).  By default the permutation is drawn
    uniformly from ``seed``; pass ``perm`` to apply an explicit
    relabelling instead -- e.g. a partition-induced one from
    :class:`repro.dist.distribution.Distribution`, which is how the
    permutation-invariance oracle cross-checks the partition-aware
    training path against externally relabelled data.
    """
    n = a.nrows
    if features.shape[0] != n or labels.shape[0] != n:
        raise ValueError(
            f"features/labels rows ({features.shape[0]}/{labels.shape[0]}) "
            f"must match vertex count {n}"
        )
    if perm is None:
        perm = random_permutation(n, seed)
    else:
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (n,):
            raise ValueError(f"permutation length {perm.shape} != {n}")
    inv = invert_permutation(perm)
    # Row i of the permuted feature matrix is the old row inv[i].
    return a.permute(perm), features[inv], labels[inv], perm


def block_nnz_imbalance(blocks: Mapping[int, CSRMatrix]) -> float:
    """Max-over-mean block nnz: 1.0 is perfect balance.

    Bulk-synchronous epochs run at the pace of the heaviest block, so this
    ratio is a direct multiplier on SpMM wall-clock.
    """
    nnzs = np.array([b.nnz for b in blocks.values()], dtype=np.float64)
    mean = nnzs.mean()
    if mean == 0:
        return 1.0
    return float(nnzs.max() / mean)
