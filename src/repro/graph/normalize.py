"""GCN adjacency normalisation: ``D^{-1/2} (A + I) D^{-1/2}``.

Section III-B: "The addition of self-connections ensures that each node
does not forget its embedding [...].  The rows and columns of A are also
often normalized, so for an undirected graph one actually uses
D^{-1/2}(A + I)D^{-1/2} due to its favorable spectral properties."  The
paper then calls the result ``A`` throughout; so do we.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["add_self_loops", "gcn_normalize", "row_normalize"]


def add_self_loops(a: CSRMatrix, value: float = 1.0) -> CSRMatrix:
    """Return ``A + value * I``; existing diagonal entries are summed into."""
    if a.nrows != a.ncols:
        raise ValueError(f"adjacency must be square, got {a.shape}")
    rows, cols, vals = a.to_coo()
    n = a.nrows
    diag = np.arange(n, dtype=np.int64)
    return CSRMatrix.from_coo(
        np.concatenate([rows, diag]),
        np.concatenate([cols, diag]),
        np.concatenate([vals, np.full(n, value)]),
        a.shape,
    )


def gcn_normalize(a: CSRMatrix, add_loops: bool = True) -> CSRMatrix:
    """The paper's modified adjacency: ``D^{-1/2} (A + I) D^{-1/2}``.

    ``D`` is the diagonal of modified vertex degrees (row sums of
    ``A + I``).  Isolated vertices (degree zero even with the self loop
    disabled) get a zero scale rather than a division error.
    """
    if add_loops:
        a = add_self_loops(a)
    row_sums = np.zeros(a.nrows, dtype=np.float64)
    row_ids = np.repeat(np.arange(a.nrows, dtype=np.int64), np.diff(a.indptr))
    np.add.at(row_sums, row_ids, a.data)
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(row_sums > 0, 1.0 / np.sqrt(row_sums), 0.0)
    return a.scale_rows(inv_sqrt).scale_cols(inv_sqrt)


def row_normalize(a: CSRMatrix) -> CSRMatrix:
    """Random-walk normalisation ``D^{-1} A`` (alternative to symmetric)."""
    row_sums = np.zeros(a.nrows, dtype=np.float64)
    row_ids = np.repeat(np.arange(a.nrows, dtype=np.int64), np.diff(a.indptr))
    np.add.at(row_sums, row_ids, a.data)
    with np.errstate(divide="ignore"):
        inv = np.where(row_sums > 0, 1.0 / row_sums, 0.0)
    return a.scale_rows(inv)
