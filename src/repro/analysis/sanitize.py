"""Runtime sanitizers: pay-to-check versions of the repo's invariants.

Three checks, all behind the obs-style zero-cost-off idiom (a module
global read once per hook, one ``is None`` test when disabled):

* **COW sanitizer** -- copy-on-write collective receipts
  (:func:`repro.comm.collectives._readonly` views) are registered with a
  content hash; :meth:`Sanitizer.verify_cow` (called at every epoch end)
  re-hashes the shared buffers and raises a :class:`SanitizerError`
  *naming the collective* when a sender mutated a buffer its peers still
  alias.  The ``writeable=False`` flag already stops receivers; this
  closes the sender-side hole the flag cannot.

* **Ledger sanitizer** -- the exact-accounting exchanges (point-to-point
  sendrecv routes and the ghost ``gather_rows`` path) charge precisely
  the bytes that cross the wire.  :meth:`check_exchange` recomputes the
  received payload bytes on the data plane and fails, naming the
  exchange, when they drift from the charged bytes.  (Alpha-beta
  collectives charge modeled critical-path volume by design and are out
  of scope.)

* **Exchange-order sanitizer** -- the tagged ``(group_key, sequence)``
  discipline requires that, per peer and per group, sequence numbers
  arrive strictly increasing.  :meth:`observe_tag` records each tag as
  the transports pull frames and fails on a replayed or reordered tag,
  naming the worker pair.

Enable with ``REPRO_SANITIZE=1`` (worker processes inherit the variable
through spawn) or ``repro train --sanitize``.  Sanitized runs are
bit-equal to unsanitized runs: every check only *reads* training state.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ACTIVE",
    "SanitizerError",
    "Sanitizer",
    "enable",
    "disable",
    "is_enabled",
    "maybe_enable_from_env",
]

#: Environment switch; inherited by spawned workers so one setting
#: covers the whole pool.
ENV_FLAG = "REPRO_SANITIZE"

#: Bound on remembered COW registrations: old receipts are superseded
#: every epoch, so a small window catches every same-epoch mutation
#: without holding the whole run's views alive.
COW_WINDOW = 256

#: Collectives whose receipts are *epoch-lived* (the reduction family:
#: their outputs become weights, gradients, and activation rows that
#: survive to the epoch-end digest) and are therefore sound to re-hash
#: at epoch boundaries.  Stage-scoped receipts (SUMMA broadcasts,
#: fiber-plane sendrecvs) alias workspace buffers their senders legally
#: overwrite once the stage's consumers are done; those stay protected
#: receiver-side by ``writeable=False`` only.
DURABLE_COW = frozenset({
    "allgather", "allgather_data", "allreduce", "allreduce_data",
    "gather", "reduce_scatter",
})


class SanitizerError(RuntimeError):
    """An invariant the sanitizers police was violated at runtime."""


def _digest(view: np.ndarray) -> bytes:
    buf = view if view.flags.c_contiguous else np.ascontiguousarray(view)
    return hashlib.sha1(buf.tobytes()).digest()


class Sanitizer:
    """Mutable state for one sanitized process (driver or worker)."""

    def __init__(self) -> None:
        #: name -> (view, digest-at-registration); insertion-ordered so
        #: the window evicts oldest-first.
        self._cow: "OrderedDict[Tuple[str, int], Tuple[np.ndarray, bytes]]" \
            = OrderedDict()
        self._cow_n = 0
        #: (peer, group_key) -> last sequence number seen arriving.
        self._last_seq: Dict[Tuple[int, Any], int] = {}
        #: check counters, exposed for tests and the CLI summary.
        self.stats = {"cow_registered": 0, "cow_verified": 0,
                      "exchanges_checked": 0, "tags_observed": 0}

    # ------------------------------------------------------------------ #
    # copy-on-write receipts
    # ------------------------------------------------------------------ #
    def register_cow(self, name: str, view: Any) -> None:
        """Remember a shared read-only receipt and its content hash.

        Only :data:`DURABLE_COW` collectives register: epoch-end
        re-hashing is meaningless for stage-scoped workspace receipts.
        """
        if name not in DURABLE_COW or not isinstance(view, np.ndarray):
            return
        self._cow_n += 1
        self._cow[(name, self._cow_n)] = (view, _digest(view))
        self.stats["cow_registered"] += 1
        while len(self._cow) > COW_WINDOW:
            self._cow.popitem(last=False)

    def verify_cow(self, where: str = "epoch end") -> None:
        """Re-hash every live receipt; a drifted hash means some rank
        wrote through a buffer its peers still share.

        The registry drains afterwards: receipts are epoch-scoped (the
        next epoch legally refills the workspace buffers they alias),
        so each is verified once, at the end of the epoch that handed
        it out.
        """
        try:
            for (name, _), (view, digest) in self._cow.items():
                self.stats["cow_verified"] += 1
                if _digest(view) != digest:
                    raise SanitizerError(
                        f"copy-on-write violation at {where}: the shared "
                        f"receipt of collective '{name}' "
                        f"(shape {view.shape}, dtype {view.dtype}) was "
                        "mutated after it was handed out -- a sender wrote "
                        "through a buffer other ranks still alias"
                    )
        finally:
            self._cow.clear()

    # ------------------------------------------------------------------ #
    # ledger vs data plane
    # ------------------------------------------------------------------ #
    def check_exchange(self, exchange: str, charged_nbytes: int,
                       actual_nbytes: int) -> None:
        """Exact-accounting exchanges: charged bytes == received bytes."""
        self.stats["exchanges_checked"] += 1
        if int(charged_nbytes) != int(actual_nbytes):
            raise SanitizerError(
                f"ledger mismatch in exchange '{exchange}': charged "
                f"{int(charged_nbytes)} bytes but the data plane moved "
                f"{int(actual_nbytes)} bytes to local ranks"
            )

    # ------------------------------------------------------------------ #
    # tagged exchange ordering
    # ------------------------------------------------------------------ #
    def observe_tag(self, wid: int, src: int, tag: Any,
                    kind: str = "d") -> None:
        """Record one arriving ``(group_key, seq)`` tag from ``src``.

        Per ``(src, kind, group_key)`` the sequence must be strictly
        increasing in arrival order: the SPMD program posts tags in
        order over FIFO transports (data posts and acks each follow the
        shared counter), so a regression means a replayed, duplicated,
        or reordered frame.
        """
        if not (isinstance(tag, tuple) and len(tag) == 2):
            return
        gkey, seq = tag
        if not isinstance(seq, int):
            return
        self.stats["tags_observed"] += 1
        key = (src, kind, gkey)
        last = self._last_seq.get(key)
        if last is not None and seq <= last:
            raise SanitizerError(
                f"exchange-order violation on worker {wid}: peer {src} "
                f"delivered {kind!r} seq {seq} for group {gkey!r} after "
                f"seq {last} -- replayed or reordered frame"
            )
        self._last_seq[key] = seq


#: The one process-wide sanitizer; ``None`` means every hook is a single
#: global read + ``is None`` test (the obs zero-cost-off idiom).
ACTIVE: Optional[Sanitizer] = None


def enable() -> Sanitizer:
    """Install (or return) the process-wide sanitizer."""
    global ACTIVE
    if ACTIVE is None:
        ACTIVE = Sanitizer()
    return ACTIVE


def disable() -> None:
    global ACTIVE
    ACTIVE = None


def is_enabled() -> bool:
    return ACTIVE is not None


def maybe_enable_from_env() -> Optional[Sanitizer]:
    """Honour ``REPRO_SANITIZE=1``; spawned workers call this on boot so
    the driver's setting covers the whole pool."""
    if os.environ.get(ENV_FLAG, "") not in ("", "0"):
        return enable()
    return ACTIVE
