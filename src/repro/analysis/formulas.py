"""The paper's closed-form per-epoch communication costs (Section IV).

Each function returns the modeled per-process communication time (seconds)
and words for one epoch of L-layer GNN training, exactly as derived in the
paper:

* 1D (Section IV-A.5)::

      T = L * (3 lg P * alpha + (edgecut_P(A) f + n f + f^2) * beta)

  symmetric case (IV-A.6)::

      T = L * (3 lg P * alpha + (2 edgecut_P(A) f + f^2) * beta)

  transposing variant (IV-A.7) adds ``2 alpha P^2 + 2 beta nnz/P``.

* 2D (Section IV-C.5)::

      T = L * ((5 sqrt(P) + 3 lg P) alpha
               + (8 n f / sqrt(P) + 2 nnz / sqrt(P) + f^2) beta)

* 3D (Section IV-D.5)::

      T = L * (4 P^(1/3) alpha + (2 nnz / P^(2/3) + 12 n f / P^(2/3)) beta)

* 1.5D (our derivation, following Section IV-B / [20], replication c)::

      T = L * (2 q lg q alpha
               + (2 n f / c + 4 n f c / P + f^2) beta),   q = P / c

All word counts use the convention of the paper: a "word" is one matrix
element; ``f`` is the average feature-vector width over layers.  The
``beta`` passed in is **seconds per word** -- convert from a byte-based
profile with ``profile.beta * word_bytes``.

These formulas drive the analytic full-scale reproduction (the real
Reddit/Amazon/Protein sizes from Table VI), the 1D-vs-2D-vs-3D scaling
bench, and the crossover bench behind the paper's "competitive when
sqrt(p) >= 5" claim (Section VI-d).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.config import MachineProfile

__all__ = [
    "CommEstimate",
    "words_1d",
    "words_1d_symmetric",
    "words_1d_transpose",
    "words_15d",
    "words_2d",
    "words_3d",
    "comm_time",
    "ratio_1d_over_2d",
    "crossover_p_2d_vs_1d",
]


@dataclass(frozen=True)
class CommEstimate:
    """Per-process, per-epoch communication estimate."""

    algorithm: str
    words: float      # bandwidth-term words moved per process per epoch
    messages: float   # latency-term message count per process per epoch

    def seconds(self, profile: MachineProfile,
                word_bytes: Optional[int] = None) -> float:
        wb = profile.word_bytes if word_bytes is None else word_bytes
        return self.messages * profile.alpha + self.words * wb * profile.beta


def _lg(p: float) -> float:
    return math.log2(p) if p > 1 else 0.0


def _default_edgecut(n: int, p: int) -> float:
    """Random-partition expectation: ``n (P-1)/P`` (Section IV-A.1)."""
    return n * (p - 1) / p


def words_1d(
    n: int, nnz: int, f: float, layers: int, p: int,
    edgecut: Optional[float] = None,
) -> CommEstimate:
    """1D block-row algorithm, general (directed) case (Section IV-A.5)."""
    if p < 1:
        raise ValueError(f"P must be >= 1, got {p}")
    ec = _default_edgecut(n, p) if edgecut is None else edgecut
    words = layers * (ec * f + n * f + f * f)
    messages = layers * 3 * _lg(p)
    return CommEstimate("1d", words, messages)


def words_1d_symmetric(
    n: int, nnz: int, f: float, layers: int, p: int,
    edgecut: Optional[float] = None,
) -> CommEstimate:
    """Symmetric case: outer product traded for block-row (Section IV-A.6)."""
    ec = _default_edgecut(n, p) if edgecut is None else edgecut
    words = layers * (2 * ec * f + f * f)
    messages = layers * 3 * _lg(p)
    return CommEstimate("1d-sym", words, messages)


def words_1d_transpose(
    n: int, nnz: int, f: float, layers: int, p: int,
    edgecut: Optional[float] = None,
) -> CommEstimate:
    """Transposing variant (Section IV-A.7): symmetric-case cost plus the
    per-epoch transposition ``2 alpha p^2 + 2 beta nnz/P``."""
    base = words_1d_symmetric(n, nnz, f, layers, p, edgecut)
    return CommEstimate(
        "1d-trans",
        base.words + 2 * nnz / p,
        base.messages + 2 * p * p,
    )


def words_15d(
    n: int, nnz: int, f: float, layers: int, p: int, c: int
) -> CommEstimate:
    """1.5D block row with replication ``c`` (our Section IV-B derivation).

    Per layer and per process: broadcasts deliver ``n f / c`` words (only
    the layer's share of stages), fiber all-reduces cost ``2 n f c / P``,
    and the pattern runs twice (forward + symmetric backward) plus the
    ``f^2`` gradient all-reduce.  ``c = 1`` recovers the symmetric 1D cost
    with ``edgecut = n`` (broadcast implementation).
    """
    if c < 1 or p % c != 0:
        raise ValueError(f"replication {c} must divide P={p}")
    q = p // c
    words = layers * (2 * n * f / c + 4 * n * f * c / p + f * f)
    messages = layers * 2 * q * max(1.0, _lg(q))
    return CommEstimate(f"1.5d(c={c})", words, messages)


def words_2d(n: int, nnz: int, f: float, layers: int, p: int) -> CommEstimate:
    """Block 2D / SUMMA algorithm (Section IV-C.5)."""
    sp = math.sqrt(p)
    words = layers * (8 * n * f / sp + 2 * nnz / sp + f * f)
    messages = layers * (5 * sp + 3 * _lg(p))
    return CommEstimate("2d", words, messages)


def words_3d(n: int, nnz: int, f: float, layers: int, p: int) -> CommEstimate:
    """Block 3D / Split-SpMM algorithm (Section IV-D.5)."""
    p23 = p ** (2.0 / 3.0)
    p13 = p ** (1.0 / 3.0)
    words = layers * (2 * nnz / p23 + 12 * n * f / p23)
    messages = layers * 4 * p13
    return CommEstimate("3d", words, messages)


def comm_time(
    estimate: CommEstimate, profile: MachineProfile,
    word_bytes: Optional[int] = None,
) -> float:
    """Alpha-beta seconds of an estimate under a machine profile."""
    return estimate.seconds(profile, word_bytes)


def ratio_1d_over_2d(n: int, nnz: int, f: float, layers: int, p: int) -> float:
    """Words(1D) / Words(2D) under the paper's simplifying assumptions.

    Section IV-C.5: with random partitioning (edgecut ~ n), ``nnz ~ n f``
    (``d ~ f``) and negligible ``f``, "the 2D algorithm would only move
    (10 / 2 sqrt(p)) = (5 / sqrt(p))-th of the data moved by the 1D
    algorithm" -- i.e. this ratio approaches ``sqrt(p) / 5``.
    """
    w1 = words_1d(n, nnz, f, layers, p).words
    w2 = words_2d(n, nnz, f, layers, p).words
    return w1 / w2


def crossover_p_2d_vs_1d(
    n: int, nnz: int, f: float, layers: int, p_max: int = 4096
) -> Optional[int]:
    """Smallest square P where 2D moves fewer words than 1D.

    The paper: "our 2D implementation will only be competitive with 1D
    approaches when sqrt(p) >= 5" (Section VI-d), i.e. P ~ 25.
    """
    p = 1
    while p * p <= p_max:
        pp = p * p
        if words_2d(n, nnz, f, layers, pp).words < words_1d(
            n, nnz, f, layers, pp
        ).words:
            return pp
        p += 1
    return None
