"""Per-rank memory models for the four algorithm families.

Memory is a first-class axis of the paper's design space:

* Section V-C: "We do not report numbers for Amazon on 4 devices or
  numbers for Protein on 4 or 16 devices as the data does not fit in
  memory for those configurations.  Jia et al. observed the same behavior
  with PyG" -- an implicit feasibility table this module reproduces;
* Section IV-B: 1.5D is rejected because of its ``c``-fold dense
  replication ("for GNN training, memory is at a premium");
* Section IV-D: 3D is not implemented partly because of its ``P^{1/3}``
  intermediate replication;
* Section VII: full-batch training stores ``O(n f L)`` activations, "which
  is prohibitive for deep networks".

Each estimator counts the resident words of one rank during a training
epoch: sparse storage (values + indices + row pointers, with the backward
needing a second orientation of ``A``), the forward activation/cache stack
(``H^l``, ``Z^l``, and the reused SpMM product ``T^l`` per layer), backward
temporaries (``G^l`` and ``A G^l``), replicated weights, and the largest
communication receive buffer.  ``allocator_overhead`` folds in the
framework's slack (CUDA context, allocator fragmentation, cuSPARSE
workspaces); the default is calibrated so the Table VI feasibility pattern
on 16 GB V100s matches the paper's report exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.config import FP32_BYTES, INDEX_BYTES

__all__ = [
    "MemoryEstimate",
    "V100_BYTES",
    "memory_2d",
    "memory_1d",
    "memory_15d",
    "memory_3d",
    "feasibility_table",
]

#: One Summit V100's HBM2 capacity.
V100_BYTES = 16 * 2**30

#: Framework slack multiplier (CUDA context, PyTorch caching-allocator
#: fragmentation, cuSPARSE csrmm2 workspaces, NCCL buffers, PyG's extra
#: per-layer tensors).  Calibrated to reproduce the paper's
#: fits/doesn't-fit pattern exactly: amazon needs > 4 GPUs, protein needs
#: > 16, reddit fits everywhere reported.  The feasible window given those
#: constraints is [3.22, 5.5]; 3.5 sits at its conservative end.
DEFAULT_OVERHEAD = 3.5


@dataclass(frozen=True)
class MemoryEstimate:
    """Per-rank resident bytes, by class."""

    sparse_bytes: float
    dense_bytes: float
    buffer_bytes: float
    overhead_factor: float

    @property
    def total_bytes(self) -> float:
        return (
            self.sparse_bytes + self.dense_bytes + self.buffer_bytes
        ) * self.overhead_factor

    def fits(self, capacity_bytes: float = V100_BYTES) -> bool:
        return self.total_bytes <= capacity_bytes

    @property
    def total_gib(self) -> float:
        return self.total_bytes / 2**30


def _sparse_bytes(nnz_local: float, nrows_local: float, copies: int = 2) -> float:
    """CSR bytes for ``copies`` orientations of the local adjacency."""
    per_copy = (
        nnz_local * (FP32_BYTES + INDEX_BYTES)
        + (nrows_local + 1) * INDEX_BYTES
    )
    return copies * per_copy


def _dense_stack_words(n_local_rows: float, widths: Sequence[int]) -> float:
    """Forward caches + backward temporaries, in words per rank.

    Per layer ``l``: ``H^{l-1}`` (input, counted once via the l=0 term),
    ``T^l = A^T H^{l-1}`` (reused by Equation 3), ``Z^l``, ``H^l``; the
    backward keeps ``G^l`` and the reused ``A G^l``.  This is the
    ``O(n f L)`` activation footprint of Section VII.
    """
    words = n_local_rows * widths[0]                   # H^0
    for l in range(1, len(widths)):
        f_in, f_out = widths[l - 1], widths[l]
        words += n_local_rows * f_in                   # T^l cache
        words += 2 * n_local_rows * f_out              # Z^l + H^l
        words += 2 * n_local_rows * f_out              # G^l + A G^l
    return words


def _weights_words(widths: Sequence[int]) -> float:
    """Replicated weights + gradients (+ optimiser state ~ 1x)."""
    return 3.0 * sum(
        widths[l] * widths[l + 1] for l in range(len(widths) - 1)
    )


def memory_2d(
    n: int, nnz: int, widths: Sequence[int], p: int,
    overhead: float = DEFAULT_OVERHEAD,
) -> MemoryEstimate:
    """The 2D algorithm: 'consumes optimal memory' -- everything / P."""
    import math

    s = math.isqrt(p)
    if s * s != p:
        raise ValueError(f"P={p} is not a perfect square")
    sparse = _sparse_bytes(nnz / p, n / s)
    dense = FP32_BYTES * (
        _dense_stack_words(n / s, [w / s for w in widths])
        + _weights_words(widths)
    )
    # Receive buffers: one sparse stage block + one dense stage piece.
    fmax = max(widths)
    buffers = _sparse_bytes(nnz / p, n / s, copies=1) + FP32_BYTES * (
        (n / s) * (fmax / s)
    )
    return MemoryEstimate(sparse, dense, buffers, overhead)


def memory_1d(
    n: int, nnz: int, widths: Sequence[int], p: int,
    overhead: float = DEFAULT_OVERHEAD,
) -> MemoryEstimate:
    """1D block row: local state / P, but the all-gathered dense matrix
    (the broadcast loop's union) peaks at the FULL ``n x f`` per rank."""
    sparse = _sparse_bytes(nnz / p, n / p, copies=1)  # one orientation
    dense = FP32_BYTES * (
        _dense_stack_words(n / p, widths) + _weights_words(widths)
    )
    fmax = max(widths)
    buffers = FP32_BYTES * n * fmax   # gathered H (the memory wall)
    return MemoryEstimate(sparse, dense, buffers, overhead)


def memory_15d(
    n: int, nnz: int, widths: Sequence[int], p: int, c: int,
    overhead: float = DEFAULT_OVERHEAD,
) -> MemoryEstimate:
    """1.5D: sparse / P, dense stack replicated over the c layers."""
    if c < 1 or p % c != 0:
        raise ValueError(f"replication {c} must divide P={p}")
    q = p // c
    sparse = _sparse_bytes(nnz / p, n / q, copies=1)
    dense = FP32_BYTES * (
        _dense_stack_words(n / q, widths) + _weights_words(widths)
    )
    fmax = max(widths)
    buffers = FP32_BYTES * (n / c) * fmax   # the layer's gathered share
    return MemoryEstimate(sparse, dense, buffers, overhead)


def memory_3d(
    n: int, nnz: int, widths: Sequence[int], p: int,
    overhead: float = DEFAULT_OVERHEAD,
) -> MemoryEstimate:
    """3D: inputs / P, but SUMMA partials replicate ``P^{1/3}``-fold."""
    s = round(p ** (1.0 / 3.0))
    if s**3 != p:
        raise ValueError(f"P={p} is not a perfect cube")
    sparse = _sparse_bytes(nnz / p, n / s)
    dense = FP32_BYTES * (
        _dense_stack_words(n / (s * s), [w / s for w in widths])
        + _weights_words(widths)
    )
    # The pre-reduce-scatter partial is n/s x f/s per rank: s times the
    # owned share -- Section IV-D's P^{1/3} replication factor.
    fmax = max(widths)
    buffers = FP32_BYTES * (n / s) * (fmax / s)
    return MemoryEstimate(sparse, dense, buffers, overhead)


def feasibility_table(
    capacity_bytes: float = V100_BYTES,
    overhead: float = DEFAULT_OVERHEAD,
) -> Dict[str, Dict[int, bool]]:
    """The paper's implicit Section V-C table: which (dataset, P) fit.

    Evaluates the 2D memory model at every GPU count of Figures 2/3 plus
    the omitted ones (amazon@4, protein@4 and @16).
    """
    from repro.graph.datasets import layer_widths, published_spec

    counts = {
        "reddit": (4, 16, 36, 64),
        "amazon": (4, 16, 36, 64),
        "protein": (4, 16, 36, 64, 100),
    }
    out: Dict[str, Dict[int, bool]] = {}
    for name, ps in counts.items():
        spec = published_spec(name)
        widths = layer_widths(spec.features, spec.labels)
        nnz = spec.edges + spec.vertices
        out[name] = {
            p: memory_2d(
                spec.vertices, nnz, widths, p, overhead
            ).fits(capacity_bytes)
            for p in ps
        }
    return out
