"""Analysis layer: the paper's cost formulas, figure reproductions, and
the invariant tooling (static lint rules + runtime sanitizers).

Names resolve lazily (PEP 562, same mechanism as :mod:`repro`): the
correctness-critical reason is that :mod:`repro.comm.collectives` hooks
into :mod:`repro.analysis.sanitize`, and an eager ``__init__`` here
would close an import cycle through ``scaling -> simulate -> dist ->
comm``.
"""

from importlib import import_module

#: Export -> providing module, checked against module contents by lint
#: rule R6.
_EXPORTS = {
    "FIG2_GPU_COUNTS": "repro.analysis.figures",
    "FigurePoint": "repro.analysis.figures",
    "figure2_throughput": "repro.analysis.figures",
    "figure3_breakdown": "repro.analysis.figures",
    "CommEstimate": "repro.analysis.formulas",
    "comm_time": "repro.analysis.formulas",
    "crossover_p_2d_vs_1d": "repro.analysis.formulas",
    "ratio_1d_over_2d": "repro.analysis.formulas",
    "words_15d": "repro.analysis.formulas",
    "words_1d": "repro.analysis.formulas",
    "words_1d_symmetric": "repro.analysis.formulas",
    "words_1d_transpose": "repro.analysis.formulas",
    "words_2d": "repro.analysis.formulas",
    "words_3d": "repro.analysis.formulas",
    "V100_BYTES": "repro.analysis.memory",
    "MemoryEstimate": "repro.analysis.memory",
    "feasibility_table": "repro.analysis.memory",
    "memory_15d": "repro.analysis.memory",
    "memory_1d": "repro.analysis.memory",
    "memory_2d": "repro.analysis.memory",
    "memory_3d": "repro.analysis.memory",
    "Model1DEpoch": "repro.analysis.model1d",
    "EpochModelResult": "repro.analysis.model2d",
    "Model2DEpoch": "repro.analysis.model2d",
    "CrossoverPoint": "repro.analysis.scaling",
    "crossover_points": "repro.analysis.scaling",
    "format_crossovers": "repro.analysis.scaling",
    "format_scaling_table": "repro.analysis.scaling",
    "scaling_table": "repro.analysis.scaling",
    "Sanitizer": "repro.analysis.sanitize",
    "SanitizerError": "repro.analysis.sanitize",
    "Violation": "repro.analysis.lint",
    "default_rules": "repro.analysis.lint",
    "format_violations": "repro.analysis.lint",
    "lint_file": "repro.analysis.lint",
    "run_lint": "repro.analysis.lint",
}

#: Modules reachable as attributes (``repro.analysis.sanitize``).
_SUBPACKAGES = (
    "figures", "formulas", "lint", "memory", "model1d", "model2d",
    "sanitize", "scaling",
)

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    """Lazy exports (PEP 562 module ``__getattr__``)."""
    if name in _EXPORTS:
        value = getattr(import_module(_EXPORTS[name]), name)
        globals()[name] = value
        return value
    if name in _SUBPACKAGES:
        value = import_module(f"repro.analysis.{name}")
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__) | set(_SUBPACKAGES))
