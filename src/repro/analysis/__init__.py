"""Analysis layer: the paper's cost formulas and figure reproductions."""

from repro.analysis.figures import (
    FIG2_GPU_COUNTS,
    FigurePoint,
    figure2_throughput,
    figure3_breakdown,
)
from repro.analysis.formulas import (
    CommEstimate,
    comm_time,
    crossover_p_2d_vs_1d,
    ratio_1d_over_2d,
    words_15d,
    words_1d,
    words_1d_symmetric,
    words_1d_transpose,
    words_2d,
    words_3d,
)
from repro.analysis.memory import (
    V100_BYTES,
    MemoryEstimate,
    feasibility_table,
    memory_15d,
    memory_1d,
    memory_2d,
    memory_3d,
)
from repro.analysis.model1d import Model1DEpoch
from repro.analysis.model2d import EpochModelResult, Model2DEpoch
from repro.analysis.scaling import (
    CrossoverPoint,
    crossover_points,
    format_crossovers,
    format_scaling_table,
    scaling_table,
)

__all__ = [
    "CommEstimate",
    "words_1d",
    "words_1d_symmetric",
    "words_1d_transpose",
    "words_15d",
    "words_2d",
    "words_3d",
    "comm_time",
    "ratio_1d_over_2d",
    "crossover_p_2d_vs_1d",
    "Model2DEpoch",
    "Model1DEpoch",
    "EpochModelResult",
    "FigurePoint",
    "FIG2_GPU_COUNTS",
    "figure2_throughput",
    "figure3_breakdown",
    "MemoryEstimate",
    "V100_BYTES",
    "memory_1d",
    "memory_15d",
    "memory_2d",
    "memory_3d",
    "feasibility_table",
    "CrossoverPoint",
    "crossover_points",
    "format_crossovers",
    "format_scaling_table",
    "scaling_table",
]
