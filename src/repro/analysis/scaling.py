"""Scaling figures from simulator sweeps (the paper-style plots, as data).

The paper's headline figures are strong-scaling curves (epoch time vs P,
one line per algorithm) and the 1D-vs-2D crossover discussion.  This
module turns a :class:`repro.simulate.engine.SweepResult` into those
artefacts: per-(graph, machine) scaling tables, winner crossover points,
and text renderings for the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.simulate.engine import SweepResult

__all__ = [
    "CrossoverPoint",
    "scaling_table",
    "crossover_points",
    "format_scaling_table",
    "format_crossovers",
]


@dataclass(frozen=True)
class CrossoverPoint:
    """The first P where the winning algorithm changes hands."""

    graph: str
    machine: str
    p: int
    previous: str
    winner: str


def scaling_table(
    result: SweepResult, graph: str, machine: str
) -> Tuple[List[str], List[List[object]]]:
    """One strong-scaling figure as (header, rows).

    Rows are ascending in P; one seconds column per algorithm (blank when
    the mesh cannot realise that P) plus the per-P winner.
    """
    algos = list(result.algorithms)
    by_key: Dict[Tuple[str, int], float] = {}
    ps = set()
    for pt in result.points:
        if pt.graph == graph and pt.machine == machine:
            by_key[(pt.algorithm, pt.p)] = pt.seconds
            ps.add(pt.p)
    header = ["P"] + [f"{a} s/epoch" for a in algos] + ["winner"]
    rows: List[List[object]] = []
    for p in sorted(ps):
        cells: List[object] = [p]
        best: Optional[Tuple[float, str]] = None
        for a in algos:
            sec = by_key.get((a, p))
            cells.append("-" if sec is None else f"{sec:.4g}")
            if sec is not None and (best is None or sec < best[0]):
                best = (sec, a)
        cells.append(best[1] if best else "-")
        rows.append(cells)
    return header, rows


def crossover_points(result: SweepResult) -> List[CrossoverPoint]:
    """Winner hand-offs along P, per (graph, machine) series."""
    winners = result.winners()
    series: Dict[Tuple[str, str], List[Tuple[int, str]]] = {}
    for (graph, machine, p), pt in winners.items():
        series.setdefault((graph, machine), []).append((p, pt.algorithm))
    out: List[CrossoverPoint] = []
    for (graph, machine), pairs in sorted(series.items()):
        pairs.sort()
        for (_, prev), (p, cur) in zip(pairs, pairs[1:]):
            if cur != prev:
                out.append(CrossoverPoint(graph, machine, p, prev, cur))
    return out


def format_scaling_table(
    result: SweepResult, graph: str, machine: str
) -> str:
    """Fixed-width text rendering of one scaling figure."""
    header, rows = scaling_table(result, graph, machine)
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(header)
    ]
    lines = [f"strong scaling -- graph={graph}, machine={machine}"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_crossovers(result: SweepResult) -> str:
    """Text summary of every winner hand-off in the sweep."""
    points = crossover_points(result)
    if not points:
        return "no winner crossovers in the swept range"
    lines = ["winner crossovers:"]
    for c in points:
        lines.append(
            f"  {c.graph} on {c.machine}: {c.previous} -> {c.winner} "
            f"at P={c.p}"
        )
    return "\n".join(lines)
