"""Figure 2 and Figure 3 reproductions as data tables.

Fig. 2 plots **epoch throughput** (epochs/second) of the 2D implementation
for each dataset across GPU counts; Fig. 3 plots the matching **time
breakdown** per epoch (misc / trpose / dcomm / scomm / spmm stacked bars).
The GPU counts per panel follow the paper:

* amazon : 16, 36, 64
* reddit : 4, 16, 36, 64
* protein: 36, 64, 100

(Amazon at 4 and Protein at 4/16 are omitted because "the data does not
fit in memory for those configurations" -- we honour the same omissions.)

Data comes from :class:`repro.analysis.model2d.Model2DEpoch` evaluated at
the full published Table VI sizes under the Summit-like machine profile.
Each row also records which mechanism dominates, so the benchmark output
can be checked against the paper's narrative (dense communication dominant
on Amazon, SpMM dominant on Reddit, both significant on Protein).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.model2d import Model2DEpoch
from repro.comm.tracker import Category
from repro.config import MachineProfile

__all__ = [
    "FIG2_GPU_COUNTS",
    "FigurePoint",
    "figure2_throughput",
    "figure3_breakdown",
]

#: GPU counts per dataset panel, as plotted in Figures 2 and 3.
FIG2_GPU_COUNTS: Dict[str, Tuple[int, ...]] = {
    "amazon": (16, 36, 64),
    "reddit": (4, 16, 36, 64),
    "protein": (36, 64, 100),
}


@dataclass(frozen=True)
class FigurePoint:
    """One bar of Fig. 2 / Fig. 3: a (dataset, GPU count) configuration."""

    dataset: str
    gpus: int
    epoch_seconds: float
    epochs_per_second: float
    breakdown: Dict[str, float]

    @property
    def dominant_category(self) -> str:
        return max(self.breakdown, key=lambda c: self.breakdown[c])

    @property
    def comm_seconds(self) -> float:
        return sum(self.breakdown.get(c, 0.0) for c in Category.COMM)


def _point(
    dataset: str, gpus: int, profile: Optional[MachineProfile]
) -> FigurePoint:
    result = Model2DEpoch.for_published_dataset(
        dataset, gpus, profile=profile
    ).run()
    return FigurePoint(
        dataset=dataset,
        gpus=gpus,
        epoch_seconds=result.total_seconds,
        epochs_per_second=result.epochs_per_second,
        breakdown=result.breakdown(),
    )


def figure2_throughput(
    datasets: Optional[List[str]] = None,
    profile: Optional[MachineProfile] = None,
) -> List[FigurePoint]:
    """Epoch-throughput series of Fig. 2 at the published dataset sizes."""
    datasets = list(FIG2_GPU_COUNTS) if datasets is None else datasets
    points: List[FigurePoint] = []
    for name in datasets:
        for gpus in FIG2_GPU_COUNTS[name]:
            points.append(_point(name, gpus, profile))
    return points


def figure3_breakdown(
    datasets: Optional[List[str]] = None,
    profile: Optional[MachineProfile] = None,
) -> List[FigurePoint]:
    """Per-epoch time-breakdown bars of Fig. 3 (same configurations)."""
    # Figures 2 and 3 share configurations; the distinction is which of
    # the point's fields gets plotted.
    return figure2_throughput(datasets, profile)
