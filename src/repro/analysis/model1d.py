"""Analytic per-epoch time model of the 1D (symmetric) implementation.

The 1D counterpart of :mod:`repro.analysis.model2d`: replays the exact
charge pattern of :class:`repro.dist.algo_1d.DistGCN1D` (symmetric
variant -- the one every GCN-normalised dataset uses) from the problem
shape alone.  Together the two models put the paper's 1D-vs-2D trade in
*seconds* rather than words: the 2D algorithm trades an ``O(sqrt(P))``
bandwidth saving for an ``O(sqrt(P) / lg P)`` latency increase, so 1D
stays ahead on small or latency-dominated problems (Section IV-C.5:
2D "is not an appropriate method of large-scale parallel training on
small graphs where latency is the dominant cost").
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.comm import cost_model as cm
from repro.comm.tracker import Category
from repro.config import INDEX_BYTES, MachineProfile, SUMMIT
from repro.sparse.perfmodel import SpmmPerfModel
from repro.analysis.model2d import EpochModelResult

__all__ = ["Model1DEpoch"]


class Model1DEpoch:
    """Shape-only replay of one 1D (symmetric-variant) training epoch."""

    def __init__(
        self,
        n: int,
        nnz: int,
        widths: Sequence[int],
        p: int,
        profile: Optional[MachineProfile] = None,
        dtype_bytes: int = 4,
        perf: Optional[SpmmPerfModel] = None,
    ):
        if p < 1:
            raise ValueError(f"P must be >= 1, got {p}")
        self.n = int(n)
        self.nnz = int(nnz)
        self.widths = tuple(int(w) for w in widths)
        self.p = p
        self.profile = profile if profile is not None else SUMMIT
        self.wb = int(dtype_bytes)
        self.perf = (
            perf if perf is not None else SpmmPerfModel.from_profile(self.profile)
        )
        self._sec: Dict[str, float] = {c: 0.0 for c in Category.ALL}
        self._bytes: Dict[str, float] = {c: 0.0 for c in Category.ALL}
        self.rows_per_rank = self.n / p
        self.nnz_per_rank = self.nnz / p

    # ------------------------------------------------------------------ #
    def _charge(self, cat: str, seconds: float, nbytes: float = 0.0) -> None:
        self._sec[cat] += seconds
        self._bytes[cat] += nbytes

    def _block_row_spmm(self, f: int) -> None:
        """One all-gather of the dense matrix + one block-row SpMM.

        Matches the executed implementation: Algorithm 1's broadcast loop
        charged as a single all-gather (``alpha lg P + beta n f (P-1)/P``),
        then a single local SpMM on the whole block row -- which retains
        the full average degree ``d``, so 1D pays no hypersparsity penalty.
        """
        total = self.n * f * self.wb
        cost = cm.allgather_cost(self.profile, int(total), self.p, span=self.p)
        self._charge(Category.DCOMM, cost.seconds, cost.bytes_critical)
        self._charge(
            Category.SPMM,
            self.perf.seconds(
                int(self.nnz_per_rank), int(max(self.rows_per_rank, 1)), f
            ),
        )

    def _gemm(self, flops: float) -> None:
        self._charge(
            Category.MISC,
            flops / self.profile.gemm_flops + self.profile.kernel_launch_overhead,
        )

    def _elementwise(self, nbytes: float) -> None:
        self._charge(
            Category.MISC,
            nbytes / self.profile.memory_bandwidth
            + self.profile.kernel_launch_overhead,
        )

    def _allreduce(self, nbytes: float) -> None:
        cost = cm.allreduce_cost(self.profile, int(nbytes), self.p, span=self.p)
        self._charge(Category.DCOMM, cost.seconds, cost.bytes_critical)

    # ------------------------------------------------------------------ #
    def run(self) -> EpochModelResult:
        """Model one full 1D training epoch (symmetric variant)."""
        L = len(self.widths) - 1
        # ---- forward ----
        for l in range(L):
            f_in, f_out = self.widths[l], self.widths[l + 1]
            self._block_row_spmm(f_in)
            self._gemm(2.0 * self.rows_per_rank * f_in * f_out)
            # Activation: rows are complete locally, even log_softmax.
            self._elementwise(2.0 * self.rows_per_rank * f_out * self.wb)
        # ---- loss ----
        self._allreduce(8)
        # ---- backward ----
        self._elementwise(3.0 * self.rows_per_rank * self.widths[-1] * self.wb)
        for l in range(L - 1, -1, -1):
            f_in, f_out = self.widths[l], self.widths[l + 1]
            self._block_row_spmm(f_out)          # A G^l (symmetric trade)
            self._gemm(2.0 * self.rows_per_rank * f_in * f_out)  # H^T (AG)
            self._allreduce(f_in * f_out * self.wb)              # Y
            if l > 0:
                self._gemm(2.0 * self.rows_per_rank * f_out * f_in)
                self._elementwise(3.0 * self.rows_per_rank * f_in * self.wb)
        return EpochModelResult(
            seconds_by_category=dict(self._sec),
            bytes_by_category=dict(self._bytes),
        )

    @classmethod
    def for_published_dataset(
        cls,
        name: str,
        p: int,
        hidden: int = 16,
        layers: int = 3,
        profile: Optional[MachineProfile] = None,
    ) -> "Model1DEpoch":
        from repro.graph.datasets import layer_widths, published_spec

        spec = published_spec(name)
        nnz = spec.edges + spec.vertices
        widths = layer_widths(spec.features, spec.labels, hidden, layers)
        return cls(spec.vertices, nnz, widths, p, profile=profile)
