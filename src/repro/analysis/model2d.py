"""Analytic per-epoch time model of the 2D (SUMMA) implementation.

The executed 2D algorithm (:mod:`repro.dist.algo_2d`) charges every
broadcast, all-gather, all-reduce, local SpMM, GEMM and elementwise kernel
to the tracker.  This module replays **exactly the same charge pattern**
-- same loop structure, same cost primitives, same category attribution --
from just the problem shape ``(n, nnz, widths, P)``, assuming uniformly
distributed nonzeros (which the random vertex permutation provides).

That lets the Fig. 2 / Fig. 3 reproductions run at the *published* dataset
sizes (Table VI: up to 9.4M vertices and 1.06B edges), which no laptop
could execute numerically, while tests validate the model against the real
execution's measured accounting on small graphs.

The five categories follow Fig. 3's legend: scomm (sparse broadcasts),
dcomm (dense broadcasts / all-gathers / all-reduces), trpose (the
per-epoch grid transpose), spmm (local sparse kernels at the degraded
:mod:`repro.sparse.perfmodel` rate -- hypersparsity + skinny operands),
and misc (local GEMM and elementwise kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm import cost_model as cm
from repro.comm.tracker import Category
from repro.config import FP64_BYTES, INDEX_BYTES, MachineProfile, SUMMIT
from repro.sparse.distribute import block_ranges
from repro.sparse.perfmodel import SpmmPerfModel

__all__ = ["Model2DEpoch", "EpochModelResult"]


@dataclass
class EpochModelResult:
    """Modeled per-epoch seconds and per-rank critical-path bytes."""

    seconds_by_category: Dict[str, float]
    bytes_by_category: Dict[str, float]

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_category.values())

    @property
    def epochs_per_second(self) -> float:
        return 1.0 / self.total_seconds if self.total_seconds > 0 else float("inf")

    def breakdown(self) -> Dict[str, float]:
        return dict(self.seconds_by_category)


class Model2DEpoch:
    """Shape-only replay of one 2D training epoch.

    Parameters mirror the executed algorithm: ``n`` vertices, ``nnz``
    nonzeros in the normalised adjacency, layer ``widths``
    ``(f^0, ..., f^L)``, a square ``sqrt(P) x sqrt(P)`` grid, and a
    machine profile.  ``dtype_bytes`` defaults to fp32 (the paper's
    training precision); the executed reproduction uses fp64, so tests
    pass ``dtype_bytes=8`` when comparing against measured accounting.
    """

    def __init__(
        self,
        n: int,
        nnz: int,
        widths: Sequence[int],
        p: int,
        profile: Optional[MachineProfile] = None,
        dtype_bytes: int = 4,
        perf: Optional[SpmmPerfModel] = None,
    ):
        import math

        s = math.isqrt(p)
        if s * s != p:
            raise ValueError(f"P={p} is not a perfect square")
        self.n = int(n)
        self.nnz = int(nnz)
        self.widths = tuple(int(w) for w in widths)
        self.p = p
        self.s = s
        self.profile = profile if profile is not None else SUMMIT
        self.wb = int(dtype_bytes)
        self.perf = (
            perf if perf is not None else SpmmPerfModel.from_profile(self.profile)
        )
        self._sec: Dict[str, float] = {c: 0.0 for c in Category.ALL}
        self._bytes: Dict[str, float] = {c: 0.0 for c in Category.ALL}
        # Per-block shape statistics under the uniform-nnz assumption.
        self.rows_per_rank = self.n / s
        self.nnz_per_block = self.nnz / p
        self.sparse_block_bytes = (
            self.nnz_per_block * (FP64_BYTES if dtype_bytes == 8 else dtype_bytes)
            + self.nnz_per_block * INDEX_BYTES
            + (self.rows_per_rank + 1) * INDEX_BYTES
        )

    # ------------------------------------------------------------------ #
    # charging helpers (mirror VirtualRuntime / collectives)
    # ------------------------------------------------------------------ #
    def _charge(self, category: str, seconds: float, nbytes: float = 0.0) -> None:
        self._sec[category] += seconds
        self._bytes[category] += nbytes

    def _bcast(self, category: str, nbytes: float, nranks: int,
               pipelined: bool = True) -> None:
        cost = cm.broadcast_cost(self.profile, int(nbytes), nranks, pipelined,
                                 span=self.p)
        self._charge(category, cost.seconds, cost.bytes_critical)

    def _allgather(self, category: str, total_bytes: float, nranks: int) -> None:
        cost = cm.allgather_cost(self.profile, int(total_bytes), nranks,
                                 span=self.p)
        self._charge(category, cost.seconds, cost.bytes_critical)

    def _allreduce(self, category: str, nbytes: float, nranks: int) -> None:
        cost = cm.allreduce_cost(self.profile, int(nbytes), nranks, span=self.p)
        self._charge(category, cost.seconds, cost.bytes_critical)

    def _spmm(self, nnz: float, nrows: float, fcols: float) -> None:
        self._charge(
            Category.SPMM,
            self.perf.seconds(int(nnz), int(max(nrows, 1)), int(max(fcols, 0))),
        )

    def _gemm(self, flops: float) -> None:
        self._charge(
            Category.MISC,
            flops / self.profile.gemm_flops + self.profile.kernel_launch_overhead,
        )

    def _elementwise(self, nbytes: float) -> None:
        self._charge(
            Category.MISC,
            nbytes / self.profile.memory_bandwidth
            + self.profile.kernel_launch_overhead,
        )

    # ------------------------------------------------------------------ #
    # algorithm phases (mirroring algo_2d step for step)
    # ------------------------------------------------------------------ #
    def _summa_spmm(self, f_in: int) -> None:
        """The SUMMA SpMM: s stages of sparse + dense broadcast + SpMM."""
        s = self.s
        # Widest dense block sets the pace of the concurrent broadcasts
        # and the compute step (narrow f splits unevenly when f < s).
        f_cols = max(hi - lo for lo, hi in block_ranges(f_in, s))
        for _stage in range(s):
            self._bcast(Category.SCOMM, self.sparse_block_bytes, s)
            dense_piece = (self.n / s) * f_cols * self.wb
            self._bcast(Category.DCOMM, dense_piece, s)
            self._spmm(self.nnz_per_block, self.rows_per_rank, f_cols)

    def _partial_summa(self, f_in: int, f_out: int) -> None:
        """T (n x f_in, 2D) times replicated W (f_in x f_out)."""
        s = self.s
        out_lens = [hi - lo for lo, hi in block_ranges(f_out, s)]
        for lo, hi in block_ranges(f_in, s):
            if hi == lo:
                continue
            piece = self.rows_per_rank * (hi - lo) * self.wb
            self._bcast(Category.DCOMM, piece, s)
            # Compute step: the slowest rank has the widest output block;
            # every rank also pays the kernel-launch overhead once.
            worst = max(out_lens)
            self._gemm(2.0 * self.rows_per_rank * (hi - lo) * worst)

    def _row_allgather(self, f: int) -> None:
        total = self.rows_per_rank * f * self.wb
        self._allgather(Category.DCOMM, total, self.s)

    def _activation_fw(self, f_out: int, elementwise: bool) -> None:
        if elementwise:
            self._elementwise(2.0 * self.rows_per_rank * (f_out / self.s) * self.wb)
        else:
            self._row_allgather(f_out)
            self._elementwise(2.0 * self.rows_per_rank * f_out * self.wb)

    def _activation_bw(self, f: int, elementwise: bool) -> None:
        width = (f / self.s) if elementwise else f
        self._elementwise(3.0 * self.rows_per_rank * width * self.wb)

    def _weight_grad(self, f_in: int, f_out: int) -> None:
        s = self.s
        out_lens = [hi - lo for lo, hi in block_ranges(f_out, s)]
        for lo, hi in block_ranges(f_in, s):
            if hi == lo:
                continue
            piece = self.rows_per_rank * (hi - lo) * self.wb
            self._bcast(Category.DCOMM, piece, s)
            self._gemm(2.0 * (hi - lo) * self.rows_per_rank * max(out_lens))
        self._allreduce(Category.DCOMM, f_in * f_out * self.wb, self.p)

    def _epoch_transpose(self) -> None:
        """Pairwise grid transpose: each off-diagonal rank one exchange."""
        nbytes = self.sparse_block_bytes
        seconds = self.profile.alpha + self.profile.beta * nbytes
        self._charge(Category.TRPOSE, seconds, nbytes)

    def _loss_allreduce(self) -> None:
        self._allreduce(Category.DCOMM, 8, self.p)

    # ------------------------------------------------------------------ #
    # the epoch
    # ------------------------------------------------------------------ #
    def run(self) -> EpochModelResult:
        """Model one full training epoch; returns category seconds/bytes."""
        L = len(self.widths) - 1
        # ---- forward ----
        for l in range(L):
            f_in, f_out = self.widths[l], self.widths[l + 1]
            self._summa_spmm(f_in)
            self._partial_summa(f_in, f_out)
            self._activation_fw(f_out, elementwise=(l < L - 1))
        # ---- loss ----
        self._loss_allreduce()
        # ---- backward ----
        self._activation_bw(self.widths[-1], elementwise=False)  # G^L
        self._epoch_transpose()
        for l in range(L - 1, -1, -1):
            f_in, f_out = self.widths[l], self.widths[l + 1]
            self._summa_spmm(f_out)          # A G^l
            self._weight_grad(f_in, f_out)   # Equation 3
            if l > 0:
                self._partial_summa(f_out, f_in)  # (A G^l) W^T
                self._activation_bw(f_in, elementwise=True)
        return EpochModelResult(
            seconds_by_category=dict(self._sec),
            bytes_by_category=dict(self._bytes),
        )

    @classmethod
    def for_published_dataset(
        cls,
        name: str,
        p: int,
        hidden: int = 16,
        layers: int = 3,
        profile: Optional[MachineProfile] = None,
    ) -> "Model2DEpoch":
        """Build the model at a Table VI dataset's full published size."""
        from repro.graph.datasets import layer_widths, published_spec

        spec = published_spec(name)
        # The normalised adjacency adds one self loop per vertex.
        nnz = spec.edges + spec.vertices
        widths = layer_widths(spec.features, spec.labels, hidden, layers)
        return cls(spec.vertices, nnz, widths, p, profile=profile)
