"""repro-lint: AST rules that make the repo's invariants unmergeable.

See :mod:`repro.analysis.lint.engine` for the engine and suppression
syntax, :mod:`repro.analysis.lint.rules` for the rule set (R1-R8).
"""

from repro.analysis.lint.engine import (
    LintContext,
    Rule,
    Violation,
    format_violations,
    lint_file,
    run_lint,
)
from repro.analysis.lint.rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "LintContext",
    "Rule",
    "Violation",
    "default_rules",
    "format_violations",
    "lint_file",
    "run_lint",
]
