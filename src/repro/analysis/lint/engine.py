"""repro-lint: the AST-based invariant-checker engine.

The repo's correctness story rests on invariants that are easy to break
silently: deterministic iteration orders feeding reduction folds, ledger
charges paired with their data-plane moves, the ``is None`` zero-cost-off
guard on every instrumentation site, monotonic clocks in anything that
feeds a ledger digest.  ``repro lint`` turns those conventions into
machine-checked rules (:mod:`repro.analysis.lint.rules`) so the pattern
*cannot merge*, instead of hoping a test happens to cover it.

The engine is deliberately small and dependency-free (stdlib ``ast``
only): it walks ``.py`` files, parses each once, hands a
:class:`LintContext` to every rule, and filters the resulting
:class:`Violation` stream through inline suppressions.

Suppression syntax::

    risky_call()  # repro-lint: disable=R2 -- inbox order is observational

A suppression must carry a reason after ``--``; a reasonless
``disable=`` is itself reported (rule ``R0``).  A suppression comment on
its own line applies to the next line; a trailing comment applies to its
own line.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "LintContext",
    "Rule",
    "Violation",
    "format_violations",
    "lint_file",
    "run_lint",
]

#: Matches ``disable=R1`` / ``disable=R1,R4 -- reason`` after the
#: repro-lint marker (worded to not match its own source line).
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<ids>[A-Z][0-9]+(?:\s*,\s*[A-Z][0-9]+)*)"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Violation:
    """One rule hit: where, which rule, what to do about it."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    fixit: str = ""

    def render(self) -> str:
        out = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.fixit:
            out += f"  [fix: {self.fixit}]"
        return out


@dataclass(frozen=True)
class _Suppression:
    line: int
    rule_ids: Tuple[str, ...]
    reason: Optional[str]


class LintContext:
    """Everything a rule needs about one source file.

    ``pkgpath`` is the path relative to the directory *containing* the
    ``repro`` package when the file lives inside it (so scope checks like
    "is this under ``repro/comm/``" are stable no matter where the tree
    is checked out); otherwise it falls back to the path as given.
    """

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        norm = path.replace(os.sep, "/")
        self.pkgpath = norm
        self.pkgroot: Optional[str] = None
        marker = "/repro/"
        idx = norm.rfind(marker)
        if idx >= 0:
            self.pkgpath = norm[idx + 1:]
            self.pkgroot = norm[:idx] or "."
        elif norm.startswith("repro/"):
            self.pkgroot = "."
        base = os.path.basename(norm)
        self.is_test = base.startswith("test_") or base == "conftest.py"
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    def in_dirs(self, *dirs: str) -> bool:
        """True when the file lives under ``repro/<d>/`` for any ``d``."""
        return any(self.pkgpath.startswith(f"repro/{d}/") for d in dirs)

    def parent_map(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent links for the whole tree (built lazily once)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def enclosing_function(self, node: ast.AST) -> Optional[str]:
        """Name of the nearest enclosing def, or ``None`` at module level."""
        parents = self.parent_map()
        cur: Optional[ast.AST] = node
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur.name
            cur = parents.get(cur)
        return None


class Rule:
    """Base class: one invariant, one ID, one fix-it message."""

    id: str = "R?"
    title: str = ""
    fixit: str = ""

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        raise NotImplementedError

    def hit(self, ctx: LintContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule_id=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            fixit=self.fixit,
        )


def _parse_suppressions(lines: Sequence[str]) -> List[_Suppression]:
    out: List[_Suppression] = []
    for i, line in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        ids = tuple(p.strip() for p in m.group("ids").split(","))
        reason = m.group("reason")
        # A comment-only line shields the *next* line (flake8's noqa
        # idiom is trailing-only; block suppressions read better for
        # multi-clause statements).
        target = i + 1 if line.lstrip().startswith("#") else i
        out.append(_Suppression(line=target, rule_ids=ids, reason=reason))
    return out


def lint_file(
    path: str,
    rules: Sequence[Rule],
    source: Optional[str] = None,
) -> List[Violation]:
    """Run ``rules`` over one file; returns unsuppressed violations.

    Reasonless suppressions are reported as rule ``R0`` (the suppression
    still takes effect for its target rule -- one finding per problem).
    Syntax errors are reported as rule ``E1`` rather than raised, so one
    unparsable file cannot hide the rest of the tree.
    """
    if source is None:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation("E1", path, exc.lineno or 1, (exc.offset or 0) + 1,
                          f"syntax error: {exc.msg}")]
    ctx = LintContext(path, source, tree)
    raw: List[Violation] = []
    for rule in rules:
        raw.extend(rule.check(ctx))
    sups = _parse_suppressions(ctx.lines)
    by_line: Dict[int, Set[str]] = {}
    out: List[Violation] = []
    for s in sups:
        by_line.setdefault(s.line, set()).update(s.rule_ids)
        if s.reason is None:
            out.append(Violation(
                "R0", path, s.line, 1,
                "suppression without a reason",
                "append ' -- <why this is safe>' to the disable comment",
            ))
    for v in raw:
        if v.rule_id in by_line.get(v.line, ()):
            continue
        out.append(v)
    out.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return out


def _iter_py_files(paths: Iterable[str]) -> Iterator[str]:
    for p in paths:
        if os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        elif p.endswith(".py"):
            yield p


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Violation], int]:
    """Lint files/trees; returns ``(violations, files_checked)``."""
    if rules is None:
        from repro.analysis.lint.rules import default_rules

        rules = default_rules()
    violations: List[Violation] = []
    nfiles = 0
    for path in _iter_py_files(paths):
        nfiles += 1
        violations.extend(lint_file(path, rules))
    return violations, nfiles


def format_violations(violations: Sequence[Violation], nfiles: int) -> str:
    lines = [v.render() for v in violations]
    tail = (f"{len(violations)} violation(s) in {nfiles} file(s)"
            if violations else f"clean: {nfiles} file(s), 0 violations")
    lines.append(tail)
    return "\n".join(lines)
