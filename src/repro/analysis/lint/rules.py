"""The repro-lint rule set: the repo's invariants as AST checks.

Every rule encodes one determinism or accounting invariant of the
reproduction (see the module docstrings it polices):

==== =====================================================================
R1   no unseeded randomness outside tests
R2   no iteration over ``set()``/``dict.keys()`` in comm/dist/parallel
R3   every ``*_charges`` call in ``dist/`` pairs with its data-plane move
R4   instrumentation sites must use the ``is None`` zero-cost-off guard
R5   no wall-clock (``time.time``) in ledger/digest-feeding code
R6   lazy-export tables must match actual module contents
R7   no ``pickle.loads`` outside the framed TCP receive path
R8   no broad ``except Exception``/bare ``except`` in ``parallel/``
==== =====================================================================

Rules are pure functions of one file's AST (plus, for R6, the export
targets it names on disk); the engine handles suppressions.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.engine import LintContext, Rule, Violation

__all__ = ["default_rules", "ALL_RULES"]


def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name for ``a.b.c`` expressions (``None`` when not a chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# --------------------------------------------------------------------- #
# R1: determinism starts at the seed
# --------------------------------------------------------------------- #
class UnseededRandomness(Rule):
    """Legacy ``np.random.*`` draws share hidden global state; a bare
    ``default_rng()``/``RandomState()`` seeds from the OS.  Either way
    two runs diverge, and every loss/ledger bit-equality oracle in the
    repo dies.  Test modules are exempt (they may fuzz)."""

    id = "R1"
    title = "no unseeded randomness outside tests"
    fixit = "use np.random.default_rng(seed) and pass the Generator down"

    #: module-level legacy draws (global hidden state, unseedable per-call)
    LEGACY = {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "normal", "uniform",
        "standard_normal", "binomial", "poisson", "exponential", "bytes",
    }

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if ctx.is_test:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            head, _, fn = chain.rpartition(".")
            if head in ("np.random", "numpy.random") and fn in self.LEGACY:
                yield self.hit(
                    ctx, node,
                    f"legacy global-state draw '{chain}()'",
                )
            elif (fn in ("default_rng", "RandomState")
                  and head in ("", "np.random", "numpy.random")
                  and not node.args and not node.keywords):
                yield self.hit(
                    ctx, node,
                    f"'{chain}()' without a seed draws OS entropy",
                )


# --------------------------------------------------------------------- #
# R2: iteration order feeds fold order
# --------------------------------------------------------------------- #
class UnorderedIteration(Rule):
    """In ``comm/``, ``dist/``, and ``parallel/`` the iteration order of
    a loop can become a reduction fold order or an exchange schedule;
    ``set`` iteration order is salted per-process, so such a loop is a
    cross-run (and cross-worker) nondeterminism bomb."""

    id = "R2"
    title = "no set/dict.keys() iteration in ordered hot paths"
    fixit = "iterate sorted(...) or a list with a fixed construction order"

    def _set_valued(self, node: ast.AST) -> Optional[str]:
        """Describe why ``node`` has salted iteration order, or None."""
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and \
                    node.func.id in ("set", "frozenset"):
                return f"{node.func.id}(...)"
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "keys" and \
                    not isinstance(node.func.value, ast.Dict):
                return ".keys() of a non-literal receiver"
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self._set_valued(node.left) or self._set_valued(node.right)
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Set):
            return "a set literal"
        return None

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.in_dirs("comm", "dist", "parallel"):
            return
        for node in ast.walk(ctx.tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                iters.extend(g.iter for g in node.generators)
            for it in iters:
                why = self._set_valued(it)
                if why is not None:
                    yield self.hit(
                        ctx, it, f"iteration over {why} has salted order",
                    )


# --------------------------------------------------------------------- #
# R3: the ledger and the data plane move together
# --------------------------------------------------------------------- #
class ChargeDataPairing(Rule):
    """The charge plane (``*_charges``/``*_charges_sized`` replayed via
    ``charge_many``) and the data plane (``*_data``) of one exchange are
    two halves of a single collective; splitting them across functions is
    how charged-but-never-moved (or moved-but-never-charged) bytes creep
    into the ledger the paper's volume claims are checked against."""

    id = "R3"
    title = "charge calls pair with their data-plane move"
    fixit = "call the matching *_data method in the same function"

    PAIRS = {
        "broadcast_charges_sized": ("routed_broadcast_data",),
        "broadcast_charges": ("routed_broadcast_data",),
        "sendrecv_charges_sized": ("routed_sendrecv_data",),
        "sendrecv_charges": ("routed_sendrecv_data",),
        "allgather_charges": ("allgather_data",),
        "allreduce_charges": ("allreduce_data",),
        "reduce_scatter_charges": ("reduce_scatter_data",),
        "gather_rows_charges_sized": ("gather_rows_data",),
    }

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.pkgpath.startswith("repro/dist/"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            called: Dict[str, ast.AST] = {}
            referenced: Set[str] = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Attribute):
                    referenced.add(sub.attr)
                if isinstance(sub, ast.Call) and \
                        isinstance(sub.func, ast.Attribute):
                    called.setdefault(sub.func.attr, sub)
            for name, site in called.items():
                if not (name.endswith("_charges")
                        or name.endswith("_charges_sized")):
                    continue
                want = self.PAIRS.get(name)
                if want is None:
                    stem = name[:-len("_charges_sized")] \
                        if name.endswith("_charges_sized") \
                        else name[:-len("_charges")]
                    want = (f"{stem}_data", f"routed_{stem}_data")
                if not any(w in referenced for w in want):
                    yield self.hit(
                        ctx, site,
                        f"'{name}' has no data-plane counterpart "
                        f"({' or '.join(want)}) in function '{node.name}'",
                    )


# --------------------------------------------------------------------- #
# R4: instrumentation must be zero-cost when off
# --------------------------------------------------------------------- #
class UnguardedInstrumentation(Rule):
    """Every obs/sanitizer hook follows one idiom: read the module
    global once (``rec = _spans.ACTIVE``), test ``is None``, and only
    touch the recorder behind that guard.  An unconditional recorder
    call crashes every untraced run (``None`` has no ``record``) -- or
    worse, quietly adds overhead to the hot path the ≤10% gate protects."""

    id = "R4"
    title = "instrumentation sites use the 'is None' guard idiom"
    fixit = ("bind x = <mod>.ACTIVE once, guard uses with "
             "'if x is not None' (or an early 'if x is None: return')")

    @staticmethod
    def _is_active_read(node: ast.AST) -> bool:
        return (isinstance(node, ast.Attribute) and node.attr == "ACTIVE") \
            or (isinstance(node, ast.Name) and node.id == "ACTIVE")

    @classmethod
    def _walk_local(cls, node: ast.AST) -> Iterator[ast.AST]:
        """Walk a function body without crossing into nested defs (a
        nested closure has its own recorder binding and guard scope)."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            yield child
            yield from cls._walk_local(child)

    @staticmethod
    def _none_test(test: ast.AST) -> Optional[Tuple[str, bool]]:
        """Match ``<name> is None`` / ``<name> is not None``; returns
        ``(name, is_none)``."""
        if isinstance(test, ast.Compare) and len(test.ops) == 1 and \
                isinstance(test.left, ast.Name) and \
                isinstance(test.comparators[0], ast.Constant) and \
                test.comparators[0].value is None:
            if isinstance(test.ops[0], ast.Is):
                return test.left.id, True
            if isinstance(test.ops[0], ast.IsNot):
                return test.left.id, False
        return None

    @classmethod
    def _terminates(cls, body: Sequence[ast.stmt]) -> bool:
        return bool(body) and isinstance(
            body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))

    def _guarded(self, use: ast.Name, var: str, func: ast.AST,
                 parents: Dict[ast.AST, ast.AST]) -> bool:
        """Is this use of ``var`` dominated by a non-None narrowing?"""
        node: ast.AST = use
        while node is not func:
            parent = parents.get(node)
            if parent is None:
                return False
            if isinstance(parent, ast.If):
                t = self._none_test(parent.test)
                if t is not None and t[0] == var:
                    _, is_none = t
                    if node in parent.body and not is_none:
                        return True
                    if node in parent.orelse and is_none:
                        return True
            elif isinstance(parent, ast.IfExp):
                t = self._none_test(parent.test)
                if t is not None and t[0] == var:
                    _, is_none = t
                    if node is parent.body and not is_none:
                        return True
                    if node is parent.orelse and is_none:
                        return True
            elif isinstance(parent, ast.BoolOp) and \
                    isinstance(parent.op, ast.And):
                # `var is not None and <use of var>`
                idx = parent.values.index(node) if node in parent.values else -1
                for earlier in parent.values[:max(idx, 0)]:
                    t = self._none_test(earlier)
                    if t == (var, False):
                        return True
            # Early-exit guard: an earlier sibling `if var is None:
            # return/raise/...` in any enclosing statement list.
            for blk in ("body", "orelse", "finalbody"):
                stmts = getattr(parent, blk, None)
                if not isinstance(stmts, list) or node not in stmts:
                    continue
                for earlier in stmts[:stmts.index(node)]:
                    if isinstance(earlier, ast.If) and \
                            self._none_test(earlier.test) == (var, True) and \
                            self._terminates(earlier.body):
                        return True
            node = parent
        return False

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        parents = ctx.parent_map()
        for node in ast.walk(ctx.tree):
            # Direct chained use: `_spans.ACTIVE.record(...)` -- never
            # legal, there is no guard that can make the chain cheap.
            if isinstance(node, ast.Attribute) and \
                    self._is_active_read(node.value) and \
                    isinstance(parents.get(node), ast.Call) and \
                    parents[node].func is node:
                yield self.hit(
                    ctx, node,
                    f"unconditional call through "
                    f"'{_attr_chain(node) or 'ACTIVE'}'",
                )
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # Recorder vars: `x = <mod>.ACTIVE` (or bare `x = ACTIVE`).
            tracked: Dict[str, ast.AST] = {}
            for sub in self._walk_local(node):
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1 and \
                        isinstance(sub.targets[0], ast.Name) and \
                        self._is_active_read(sub.value):
                    tracked[sub.targets[0].id] = sub.value
            if not tracked:
                continue
            for sub in self._walk_local(node):
                if not (isinstance(sub, ast.Name) and
                        isinstance(sub.ctx, ast.Load) and
                        sub.id in tracked):
                    continue
                if tracked[sub.id] is sub:
                    continue  # the RHS of the binding itself
                parent = parents.get(sub)
                # `x is None` / `x is not None` tests are the guard.
                if isinstance(parent, ast.Compare) and \
                        self._none_test(parent) is not None:
                    continue
                if not self._guarded(sub, sub.id, node, parents):
                    yield self.hit(
                        ctx, sub,
                        f"use of recorder '{sub.id}' outside its "
                        "'is None' guard",
                    )


# --------------------------------------------------------------------- #
# R5: ledgers are monotonic
# --------------------------------------------------------------------- #
class WallClockInLedgerCode(Rule):
    """``time.time`` jumps under NTP slew; anything feeding the ledger,
    span recorder, or a digest must use the monotonic clock or two runs
    of the same program disagree.  ``obs/`` event timestamps (real-world
    log correlation) are the one sanctioned wall-clock consumer and are
    out of scope."""

    id = "R5"
    title = "no wall-clock in ledger/digest-feeding code"
    fixit = "use time.monotonic() or time.perf_counter()"

    SCOPE = ("comm", "dist", "parallel", "sparse", "nn")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.in_dirs(*self.SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "time" and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id == "time":
                yield self.hit(ctx, node, "wall-clock 'time.time' reference")
            elif isinstance(node, ast.ImportFrom) and \
                    node.module == "time" and \
                    any(a.name == "time" for a in node.names):
                yield self.hit(ctx, node, "wall-clock 'from time import time'")


# --------------------------------------------------------------------- #
# R6: the lazy-export tables tell the truth
# --------------------------------------------------------------------- #
class ExportTableDrift(Rule):
    """``repro/__init__.py`` routes PEP 562 lazy exports through an
    ``_EXPORTS`` name->module table and eager subpackage ``__init__``
    files re-export via ``__all__``.  A stale entry means an
    ``AttributeError`` at first touch in production instead of at lint
    time; this rule resolves every table entry against the module files
    on disk."""

    id = "R6"
    title = "lazy-export tables match module contents"
    fixit = "update _EXPORTS/__all__ to name only things that exist"

    @staticmethod
    def _toplevel_names(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        names.add(tgt.id)
                        # A lazy re-exporter (PEP 562) provides every
                        # key of its own _EXPORTS table at runtime.
                        if tgt.id == "_EXPORTS" and \
                                isinstance(stmt.value, ast.Dict):
                            names.update(
                                k.value for k in stmt.value.keys
                                if isinstance(k, ast.Constant)
                                and isinstance(k.value, str))
                    elif isinstance(tgt, (ast.Tuple, ast.List)):
                        names.update(e.id for e in tgt.elts
                                     if isinstance(e, ast.Name))
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.If):
                # TYPE_CHECKING / feature-gate blocks still bind names.
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        for alias in sub.names:
                            if alias.name != "*":
                                names.add(alias.asname
                                          or alias.name.split(".")[0])
                    elif isinstance(sub, (ast.FunctionDef, ast.ClassDef)):
                        names.add(sub.name)
                    elif isinstance(sub, ast.Assign):
                        for tgt in sub.targets:
                            if isinstance(tgt, ast.Name):
                                names.add(tgt.id)
        return names

    def _module_file(self, ctx: LintContext, module: str) -> Optional[str]:
        if ctx.pkgroot is None:
            return None
        base = os.path.join(ctx.pkgroot, *module.split("."))
        for cand in (base + ".py", os.path.join(base, "__init__.py")):
            if os.path.isfile(cand):
                return cand
        return None

    def _names_of(self, path: str) -> Optional[Set[str]]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                tree = ast.parse(fh.read(), filename=path)
        except (OSError, SyntaxError):
            return None
        return self._toplevel_names(tree)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if os.path.basename(ctx.path) != "__init__.py":
            return
        local = self._toplevel_names(ctx.tree)
        cache: Dict[str, Optional[Set[str]]] = {}
        for stmt in ctx.tree.body:
            if not (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                continue
            target = stmt.targets[0].id
            if target == "_EXPORTS" and isinstance(stmt.value, ast.Dict):
                for k, v in zip(stmt.value.keys, stmt.value.values):
                    if not (isinstance(k, ast.Constant)
                            and isinstance(k.value, str)
                            and isinstance(v, ast.Constant)
                            and isinstance(v.value, str)):
                        continue
                    name, module = k.value, v.value
                    if module not in cache:
                        f = self._module_file(ctx, module)
                        cache[module] = None if f is None \
                            else self._names_of(f)
                        if f is None and ctx.pkgroot is not None:
                            yield self.hit(
                                ctx, k,
                                f"export '{name}' points at missing "
                                f"module '{module}'",
                            )
                    defined = cache[module]
                    if defined is not None and name not in defined:
                        yield self.hit(
                            ctx, k,
                            f"export '{name}' is not defined in "
                            f"'{module}'",
                        )
            elif target == "_SUBPACKAGES" and \
                    isinstance(stmt.value, (ast.Set, ast.Tuple, ast.List)):
                for elt in stmt.value.elts:
                    if not (isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)):
                        continue
                    here = os.path.dirname(ctx.path)
                    sub = os.path.join(here, elt.value)
                    if not (os.path.isfile(os.path.join(sub, "__init__.py"))
                            or os.path.isfile(sub + ".py")):
                        yield self.hit(
                            ctx, elt,
                            f"subpackage '{elt.value}' does not exist",
                        )
            elif target == "__all__" and \
                    isinstance(stmt.value, (ast.List, ast.Tuple)):
                for elt in stmt.value.elts:
                    if isinstance(elt, ast.Constant) and \
                            isinstance(elt.value, str) and \
                            elt.value not in local:
                        yield self.hit(
                            ctx, elt,
                            f"__all__ names '{elt.value}' which is not "
                            "bound at module top level",
                        )


# --------------------------------------------------------------------- #
# R7: unpickling is an RCE primitive
# --------------------------------------------------------------------- #
class UnscopedPickleLoads(Rule):
    """``pickle.loads`` executes arbitrary bytecode from the buffer; the
    only sanctioned consumer is the framed TCP receive path
    (``TcpChannel._read_msg``), where frames come from cluster-internal
    peers the operator launched.  Anywhere else -- especially anywhere a
    frame could arrive unauthenticated -- is a new attack surface."""

    id = "R7"
    title = "no pickle.loads outside the framed TCP path"
    fixit = ("route frames through TcpChannel._read_msg, or use an "
             "explicit schema (json/struct) for new wire formats")

    ALLOWED = {("repro/parallel/tcp.py", "_read_msg")}

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and _attr_chain(node.func) == "pickle.loads"):
                continue
            where = (ctx.pkgpath, ctx.enclosing_function(node))
            if where in self.ALLOWED:
                continue
            yield self.hit(
                ctx, node,
                "'pickle.loads' outside the framed TCP receive path",
            )


# --------------------------------------------------------------------- #
# R8: catch what you can name
# --------------------------------------------------------------------- #
class BroadExcept(Rule):
    """PR 8 built a failure taxonomy (``WorkerDead``/``WorkerStalled``/
    ``TransportError``/``ChannelTimeout``) precisely so the recovery
    loop can tell a dead peer from a bug.  A broad ``except Exception``
    in ``parallel/`` swallows the distinction -- real defects get
    retried as if they were infrastructure flakes."""

    id = "R8"
    title = "no broad excepts in parallel/"
    fixit = "catch the narrowest taxonomy types that can actually occur"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.pkgpath.startswith("repro/parallel/"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.hit(ctx, node, "bare 'except:'")
            elif isinstance(node.type, ast.Name) and \
                    node.type.id in ("Exception", "BaseException"):
                yield self.hit(ctx, node, f"broad 'except {node.type.id}'")


ALL_RULES = (
    UnseededRandomness,
    UnorderedIteration,
    ChargeDataPairing,
    UnguardedInstrumentation,
    WallClockInLedgerCode,
    ExportTableDrift,
    UnscopedPickleLoads,
    BroadExcept,
)


def default_rules() -> List[Rule]:
    """One instance of every rule, in ID order."""
    return [cls() for cls in ALL_RULES]
