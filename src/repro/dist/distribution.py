"""Vertex distributions: partition -> induced permutation -> rank ranges.

The 1D algorithm's default distribution is "each process receives n/p
consecutive rows" (Section IV-A); its communication volume is then fixed
by the graph's structure under that vertex order.  Section IV-A.8 runs
Metis on Reddit precisely to change that order: a good partition shrinks
``edgecut_P(A)`` -- the distinct remote-neighbour rows each process must
fetch.  A :class:`Distribution` packages one such choice:

* a **vertex assignment** (vertex -> part, from any
  :mod:`repro.partition` partitioner);
* the **induced permutation** that relabels vertices part-major (stable
  within a part), so each part's vertices become one contiguous block of
  new ids -- the same mechanism as the load-balancing random vertex
  permutation of :mod:`repro.graph.permutation`, but partition-driven;
* the resulting **per-rank row ranges** (part sizes need not be equal:
  the multilevel partitioner balances only within its tolerance).

Algorithms consume a distribution in two tiers: every
:class:`~repro.dist.base.DistAlgorithm` applies the permutation (inputs
are relabelled on the way in, predictions un-relabelled on the way out),
while the 1D family additionally adopts the per-rank row ranges -- which
is what makes partition quality visible in the executed ledger through
the ``ghost`` variant's row exchange.

:func:`ghost_structure` derives that exchange's exact structure (which
remote rows each rank must fetch, from whom) from the permuted operand
and the rank ranges; its per-rank ghost counts equal
:func:`repro.partition.edgecut.ghost_rows_per_part` on the original
graph by construction (the relabelling is a bijection on neighbour
sets), which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.distribute import block_ranges

__all__ = [
    "PARTITION_KINDS",
    "Distribution",
    "GhostStructure",
    "ghost_structure",
]

#: Partitioner names :meth:`Distribution.build` accepts.
PARTITION_KINDS = ("block", "random", "multilevel")


def _ranges_from_sizes(sizes: np.ndarray) -> Tuple[Tuple[int, int], ...]:
    bounds = np.concatenate(([0], np.cumsum(sizes)))
    return tuple(
        (int(bounds[i]), int(bounds[i + 1])) for i in range(len(sizes))
    )


@dataclass(frozen=True)
class Distribution:
    """One vertex partition realised as a relabelling + rank row ranges.

    ``assignment[v]`` is the part (rank) of original vertex ``v``;
    ``perm[v]`` its new id (part-major, stable within a part, so part
    ``i`` owns the contiguous new-id range ``row_ranges[i]``); ``inv``
    is the inverse relabelling (``inv[new] == old``).  Empty parts are
    legal and yield empty ranges (the partitioners' documented
    ``nparts > n`` convention).
    """

    kind: str
    nparts: int
    assignment: np.ndarray
    perm: np.ndarray
    inv: np.ndarray
    row_ranges: Tuple[Tuple[int, int], ...]

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_assignment(
        cls, assignment: np.ndarray, nparts: int, kind: str = "custom"
    ) -> "Distribution":
        """Build the induced part-major relabelling of an assignment."""
        from repro.partition.random_part import partition_sizes

        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.ndim != 1:
            raise ValueError(
                f"assignment must be 1-D, got shape {assignment.shape}"
            )
        # partition_sizes owns the nparts/part-id validation (one error
        # surface for the whole partition subsystem).
        sizes = partition_sizes(assignment, nparts)
        # Stable part-major order: inv[new] = old vertex at new slot.
        inv = np.argsort(assignment, kind="stable").astype(np.int64)
        perm = np.empty_like(inv)
        perm[inv] = np.arange(assignment.size, dtype=np.int64)
        return cls(
            kind=kind,
            nparts=int(nparts),
            assignment=assignment,
            perm=perm,
            inv=inv,
            row_ranges=_ranges_from_sizes(sizes),
        )

    @classmethod
    def block(cls, n: int, nparts: int) -> "Distribution":
        """The paper's default contiguous split (identity permutation)."""
        from repro.partition.random_part import block_partition

        return cls.from_assignment(
            block_partition(n, nparts), nparts, kind="block"
        )

    @classmethod
    def build(cls, kind: str, adjacency: CSRMatrix, nparts: int,
              seed: int = 0) -> "Distribution":
        """Partition ``adjacency`` with the named partitioner.

        ``"block"`` is the contiguous baseline (identity permutation),
        ``"random"`` the balanced random baseline, ``"multilevel"`` the
        Metis-like partitioner of :mod:`repro.partition.multilevel`.
        """
        from repro.partition.multilevel import multilevel_partition
        from repro.partition.random_part import (
            block_partition,
            random_partition,
        )

        n = adjacency.nrows
        if kind == "block":
            assignment = block_partition(n, nparts)
        elif kind == "random":
            assignment = random_partition(n, nparts, seed=seed)
        elif kind == "multilevel":
            assignment = multilevel_partition(adjacency, nparts, seed=seed)
        else:
            raise ValueError(
                f"unknown partition kind {kind!r}; "
                f"choose from {PARTITION_KINDS}"
            )
        return cls.from_assignment(assignment, nparts, kind=kind)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return int(self.assignment.size)

    @property
    def part_sizes(self) -> np.ndarray:
        return np.array([hi - lo for lo, hi in self.row_ranges],
                        dtype=np.int64)

    @property
    def is_identity(self) -> bool:
        """True when the relabelling is a no-op (e.g. block partitions)."""
        return bool(
            np.array_equal(self.perm, np.arange(self.n, dtype=np.int64))
        )

    # ------------------------------------------------------------------ #
    # applying the relabelling
    # ------------------------------------------------------------------ #
    def permute_matrix(self, a: CSRMatrix) -> CSRMatrix:
        """``P A P^T`` under the induced relabelling (identity: as-is)."""
        if a.nrows != self.n or a.ncols != self.n:
            raise ValueError(
                f"matrix shape {a.shape} does not match n={self.n}"
            )
        return a if self.is_identity else a.permute(self.perm)

    def permute_rows(self, x: np.ndarray) -> np.ndarray:
        """Rows reordered into the internal (part-major) layout.

        Row ``perm[v]`` of the result is row ``v`` of the input, exactly
        like :func:`repro.graph.permutation.apply_random_permutation`
        treats features and labels.
        """
        if x.shape[0] != self.n:
            raise ValueError(f"need {self.n} rows, got {x.shape[0]}")
        return x if self.is_identity else x[self.inv]

    def unpermute_rows(self, x: np.ndarray) -> np.ndarray:
        """Rows mapped back to the original vertex order."""
        if x.shape[0] != self.n:
            raise ValueError(f"need {self.n} rows, got {x.shape[0]}")
        return x if self.is_identity else x[self.perm]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Distribution(kind={self.kind!r}, n={self.n}, "
                f"nparts={self.nparts})")


@dataclass(frozen=True)
class GhostStructure:
    """Exact structure of one ghost-row exchange.

    All arrays live in the *internal* (permuted) vertex order.  For rank
    ``r``, the compact operand has ``width[r]`` rows: the distinct
    columns rank ``r``'s sparse block references, ascending.  Because
    rank ranges are contiguous and ascending, that order is exactly
    "ghosts from lower ranks, own referenced rows, ghosts from higher
    ranks", so every per-source slot is one contiguous slice.

    ``pairs[i] = (src, dst, src_local_rows)`` enumerates the transfers
    in one fixed global order (receivers ascending, sources ascending
    within a receiver) -- every backend walks the same list, which is
    what keeps the multiprocess rendezvous deadlock-free;
    ``pair_slots[i] = (lo, hi)`` is the destination slice in ``dst``'s
    compact operand.  ``own_pos[r]`` / ``own_idx[r]`` place rank ``r``'s
    own referenced rows (compact positions / block-local row indices).
    ``ghost_rows[r]`` is the paper's ``r_i`` (distinct remote
    neighbours) and ``nsources[r]`` the distinct owners it fetches from.
    """

    nranks: int
    width: Tuple[int, ...]
    ghost_rows: Tuple[int, ...]
    nsources: Tuple[int, ...]
    ref_cols: Tuple[np.ndarray, ...]
    own_pos: Tuple[np.ndarray, ...]
    own_idx: Tuple[np.ndarray, ...]
    pairs: Tuple[Tuple[int, int, np.ndarray], ...]
    pair_slots: Tuple[Tuple[int, int], ...]


def ghost_structure(
    a_t: CSRMatrix,
    row_ranges: Sequence[Tuple[int, int]],
) -> GhostStructure:
    """Derive the exact ghost-row exchange of a block-row distribution.

    ``a_t`` is the (already relabelled) forward operand whose block rows
    rank ``i`` owns per ``row_ranges``; the returned structure is pure
    graph structure, identical on every backend, and its per-rank ghost
    counts reproduce :func:`repro.partition.edgecut.ghost_rows_per_part`
    for the originating assignment.
    """
    nranks = len(row_ranges)
    bounds = np.array([lo for lo, _ in row_ranges] + [a_t.nrows],
                      dtype=np.int64)
    width: List[int] = []
    ghost_rows: List[int] = []
    nsources: List[int] = []
    ref_cols: List[np.ndarray] = []
    own_pos: List[np.ndarray] = []
    own_idx: List[np.ndarray] = []
    pairs: List[Tuple[int, int, np.ndarray]] = []
    pair_slots: List[Tuple[int, int]] = []
    for r, (lo, hi) in enumerate(row_ranges):
        cols = np.unique(a_t.indices[a_t.indptr[lo]:a_t.indptr[hi]])
        ref_cols.append(cols)
        width.append(int(cols.size))
        own = (cols >= lo) & (cols < hi)
        own_positions = np.flatnonzero(own)
        own_pos.append(own_positions)
        own_idx.append(cols[own_positions] - lo)
        ghosts = cols[~own]
        ghost_rows.append(int(ghosts.size))
        # Owner of each ghost id; ranges are contiguous ascending, so
        # ghosts sorted ascending are already grouped by source rank.
        owners = np.searchsorted(bounds, ghosts, side="right") - 1
        srcs, starts = np.unique(owners, return_index=True)
        nsources.append(int(srcs.size))
        ghost_positions = np.flatnonzero(~own)
        stops = np.append(starts[1:], ghosts.size)
        for s, g_lo, g_hi in zip(srcs, starts, stops):
            s_lo = row_ranges[int(s)][0]
            pairs.append((int(s), r, ghosts[g_lo:g_hi] - s_lo))
            pair_slots.append((int(ghost_positions[g_lo]),
                               int(ghost_positions[g_hi - 1]) + 1))
    return GhostStructure(
        nranks=nranks,
        width=tuple(width),
        ghost_rows=tuple(ghost_rows),
        nsources=tuple(nsources),
        ref_cols=tuple(ref_cols),
        own_pos=tuple(own_pos),
        own_idx=tuple(own_idx),
        pairs=tuple(pairs),
        pair_slots=tuple(pair_slots),
    )
