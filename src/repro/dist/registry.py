"""Algorithm registry and facade constructors.

``ALGORITHMS`` maps the paper's four algorithm names to their classes;
:func:`make_runtime_for` builds the matching virtual machine topology and
:func:`make_algorithm` wires a dataset, a runtime, and an algorithm
together -- the one-call entry point the CLI, examples, and benchmarks
use::

    algo = make_algorithm("2d", p=16, dataset=ds)
    history = algo.fit(ds.features, ds.labels, epochs=10)
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

from repro.comm.runtime import VirtualRuntime
from repro.config import MachineProfile
from repro.dist.algo_1d import DistGCN1D
from repro.dist.algo_15d import DistGCN15D
from repro.dist.algo_2d import DistGCN2D
from repro.dist.algo_3d import DistGCN3D
from repro.dist.base import DistAlgorithm
from repro.dist.distribution import PARTITION_KINDS, Distribution

__all__ = ["ALGORITHMS", "make_distribution", "make_runtime_for",
           "make_algorithm"]

#: The paper's algorithm families, keyed by their Section IV names.
ALGORITHMS: Dict[str, Type[DistAlgorithm]] = {
    "1d": DistGCN1D,
    "1.5d": DistGCN15D,
    "2d": DistGCN2D,
    "3d": DistGCN3D,
}


def _unknown(name: str) -> ValueError:
    return ValueError(
        f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
    )


BACKENDS = ("virtual", "process")


def make_runtime_for(
    name: str,
    p: int,
    grid: Optional[Tuple[int, int]] = None,
    profile: Optional[MachineProfile] = None,
    backend: str = "virtual",
    workers: Optional[int] = None,
    transport: Optional[str] = None,
    faults: Optional[str] = None,
    max_restarts: Optional[int] = None,
):
    """The machine topology algorithm ``name`` runs on.

    ``grid=(Pr, Pc)`` selects a rectangular 2D grid (Section IV-C.6);
    without it, ``"2d"`` requires ``P`` to be a perfect square and
    ``"3d"`` a perfect cube.  ``backend="process"`` returns a
    :class:`repro.parallel.ParallelRuntime` whose ``p`` ranks execute as
    real OS processes (``workers`` of them, default one per rank);
    ``"virtual"`` (the default) is the single-process simulator.
    ``transport`` picks the workers' peer fabric: ``"shm"`` (default,
    queues + shared memory) or ``"tcp"`` (sockets; multi-host via
    ``REPRO_PARALLEL_HOSTS``).  ``faults`` is a deterministic
    fault-injection plan (:mod:`repro.parallel.faults`) and
    ``max_restarts`` the elastic-recovery budget; both apply only to
    the process backend.
    """
    name = name.lower()
    if name not in ALGORITHMS:
        raise _unknown(name)
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; available: {BACKENDS}"
        )
    if backend == "process":
        from repro.parallel import ParallelRuntime as cls
        kw = {"workers": workers}
        if transport is not None:
            kw["transport"] = transport
        if faults is not None:
            kw["faults"] = faults
        if max_restarts is not None:
            kw["max_restarts"] = max_restarts
    else:
        if workers is not None:
            raise ValueError("workers= only applies to backend='process'")
        if transport is not None:
            raise ValueError("transport= only applies to backend='process'")
        if faults is not None:
            raise ValueError("faults= only applies to backend='process'")
        if max_restarts is not None:
            raise ValueError(
                "max_restarts= only applies to backend='process'")
        cls, kw = VirtualRuntime, {}
    if name in ("1d", "1.5d"):
        if grid is not None:
            raise ValueError(f"algorithm {name!r} does not take a 2D grid")
        return cls.make_1d(p, profile, **kw)
    if name == "2d":
        if grid is None:
            return cls.make_2d(p, profile, **kw)
        rows, cols = (int(g) for g in grid)
        if rows * cols != p:
            raise ValueError(
                f"grid {rows}x{cols} does not tile P={p} ranks"
            )
        return cls.make_2d_rect(rows, cols, profile, **kw)
    if grid is not None:
        raise ValueError("algorithm '3d' does not take a 2D grid")
    return cls.make_3d(p, profile, **kw)


def make_distribution(partition, adjacency, p: int,
                      seed: int = 0) -> Optional[Distribution]:
    """Coerce a partition choice into a :class:`Distribution`.

    ``partition`` may be ``None`` (no relabelling -- the historical
    behaviour), a partitioner name from
    :data:`~repro.dist.distribution.PARTITION_KINDS`, or a prebuilt
    :class:`Distribution` (returned as-is).
    """
    if partition is None or isinstance(partition, Distribution):
        return partition
    if partition not in PARTITION_KINDS:
        raise ValueError(
            f"unknown partition {partition!r}; choose from "
            f"{PARTITION_KINDS}"
        )
    return Distribution.build(partition, adjacency, p, seed=seed)


def make_algorithm(
    name: str,
    p: int,
    dataset,
    hidden: int = 16,
    layers: int = 3,
    seed: int = 0,
    optimizer=None,
    profile: Optional[MachineProfile] = None,
    grid: Optional[Tuple[int, int]] = None,
    backend: str = "virtual",
    workers: Optional[int] = None,
    transport: Optional[str] = None,
    faults: Optional[str] = None,
    max_restarts: Optional[int] = None,
    partition=None,
    **kwargs,
) -> DistAlgorithm:
    """Build algorithm ``name`` for ``dataset`` on ``p`` (virtual) GPUs.

    ``dataset`` is a :class:`repro.graph.datasets.Dataset` (or anything
    with ``adjacency`` and ``layer_widths``).  ``backend="process"``
    executes the ranks as real OS processes (``workers`` of them, over
    the ``transport`` peer fabric -- ``"shm"`` or ``"tcp"``) and
    returns a :class:`repro.parallel.ParallelAlgorithm` proxy with the
    same ``fit``/``train_epoch``/``predict`` surface; close it with
    ``algo.rt.close()`` when done.  ``partition`` selects a
    partition-aware :class:`Distribution` (a name from
    ``PARTITION_KINDS``, or a prebuilt instance; default: none) --
    pair it with the 1D ``variant="ghost"`` to make partition quality
    visible in the ledger.  Remaining keyword arguments pass through to
    the algorithm class (``variant`` for 1D, ``replication`` for 1.5D,
    ``summa_block`` for 2D).
    """
    name = name.lower()
    if name not in ALGORITHMS:
        raise _unknown(name)
    rt = make_runtime_for(name, p, grid=grid, profile=profile,
                          backend=backend, workers=workers,
                          transport=transport, faults=faults,
                          max_restarts=max_restarts)
    widths = dataset.layer_widths(hidden=hidden, layers=layers)
    distribution = make_distribution(partition, dataset.adjacency, p,
                                     seed=seed)
    if distribution is not None:
        kwargs = dict(kwargs, distribution=distribution)
    if backend == "process":
        return rt.make_algorithm(
            name, dataset.adjacency, widths, seed=seed,
            optimizer=optimizer, **kwargs,
        )
    return ALGORITHMS[name](
        rt, dataset.adjacency, widths, seed=seed, optimizer=optimizer,
        **kwargs,
    )
