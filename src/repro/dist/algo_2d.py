"""The 2D SUMMA algorithm (Algorithm 2) -- the paper's implementation.

Everything is block-partitioned on the ``Pr x Pc`` process grid (Table
IV): ``A^T`` and ``A`` in ``n/Pr x n/Pc`` sparse blocks, the dense
``H``/``G`` in matching blocks (feature columns split ``Pc`` ways), ``W``
replicated.  Each SpMM is a SUMMA sweep: per stage, the owning process
column broadcasts its sparse pieces along process rows (``scomm``), the
owning process row broadcasts its dense pieces along process columns
(``dcomm``), and every rank accumulates a local block product.  Per-rank
dense words scale as ``~ 1/sqrt(P)`` -- the headline claim.

:func:`summa_stage_ranges` computes the stage decomposition of the inner
dimension: for rectangular grids (Section IV-C.6) the ``Pr`` and ``Pc``
splits are refined to their common boundaries so each stage lives in
exactly one sparse column block and one dense row block; Algorithm 2's
blocking parameter ``b`` further subdivides stages without changing any
numerics.

The backward pass needs the block rows of ``A`` (Equation 2); the
distributed blocks of ``A`` are materialised at setup and the pairwise
grid transpose that a real implementation performs every epoch is charged
to ``trpose`` per epoch, exactly as Fig. 3 accounts it.  The epoch
structure itself lives in :class:`repro.dist.base.GridAlgorithm`, shared
with the Split-3D algorithm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.mesh import Mesh2D
from repro.comm.runtime import VirtualRuntime
from repro.comm.tracker import Category
from repro.dist.base import GridAlgorithm
from repro.nn.optim import Optimizer
from repro.sparse.csr import CSRMatrix
from repro.sparse.distribute import (
    block_ranges,
    distribute_dense_2d,
    distribute_sparse_2d,
)
from repro.sparse.spmm import spmm

__all__ = ["DistGCN2D", "summa_stage_ranges"]


def summa_stage_ranges(
    n: int, pr: int, pc: int, block: Optional[int] = None
) -> List[Tuple[int, int, int, int]]:
    """SUMMA stages over an inner dimension of length ``n``.

    Returns ``(lo, hi, row_owner, col_owner)`` tuples: the half-open inner
    range of the stage, the index of the ``pr``-way block (the dense
    operand's row block, hence the broadcasting process **row**) and of
    the ``pc``-way block (the sparse operand's column block, hence the
    broadcasting process **column**) containing it.  For square grids the
    two splits coincide and there are exactly ``pr`` stages; rectangular
    grids refine to the union of both splits' boundaries.  ``block``
    subdivides every stage into chunks of at most ``block`` -- Algorithm
    2's blocking parameter, which trades message count for overlap
    without changing results.
    """
    if pr < 1 or pc < 1:
        raise ValueError(f"invalid grid {pr}x{pc}")
    if block is not None and block < 1:
        raise ValueError(f"blocking parameter must be >= 1, got {block}")
    row_ranges = block_ranges(n, pr)
    col_ranges = block_ranges(n, pc)
    bounds = sorted(
        {b for lo, hi in row_ranges for b in (lo, hi)}
        | {b for lo, hi in col_ranges for b in (lo, hi)}
    )
    stages: List[Tuple[int, int, int, int]] = []
    ro = co = 0
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi == lo:
            continue
        while row_ranges[ro][1] <= lo:
            ro += 1
        while col_ranges[co][1] <= lo:
            co += 1
        if block is None:
            stages.append((lo, hi, ro, co))
        else:
            for b0 in range(lo, hi, block):
                stages.append((b0, min(b0 + block, hi), ro, co))
    return stages


class DistGCN2D(GridAlgorithm):
    """2D SUMMA distributed GCN training (Algorithm 2)."""

    def __init__(
        self,
        rt: VirtualRuntime,
        a_t: CSRMatrix,
        widths: Sequence[int],
        seed: int = 0,
        optimizer: Optional[Optimizer] = None,
        summa_block: Optional[int] = None,
        distribution=None,
    ):
        self.mesh: Mesh2D = rt.mesh2d  # raises TypeError on non-2D meshes
        # A distribution contributes its part-major relabelling only;
        # the grid keeps its own block splits (2D partition awareness is
        # a ROADMAP follow-on).
        super().__init__(rt, a_t, widths, seed=seed, optimizer=optimizer,
                         distribution=distribution)
        self.summa_block = summa_block
        self.pr, self.pc = self.mesh.rows, self.mesh.cols
        self.row_ranges = block_ranges(self.n, self.pr)
        self.col_ranges = block_ranges(self.n, self.pc)
        self.stages = summa_stage_ranges(self.n, self.pr, self.pc,
                                         block=summa_block)
        self.a_t_blocks = distribute_sparse_2d(self.a_t, self.mesh)
        # Backward operand: the grid transpose, materialised once and
        # charged per epoch.  For symmetric operands self.a IS self.a_t,
        # so the distributed blocks are identical and simply shared.
        self.a_blocks = (
            self.a_t_blocks
            if self.symmetric
            else distribute_sparse_2d(self.a, self.mesh)
        )
        # Stage slices of the (immutable) sparse operands, extracted once:
        # every epoch re-broadcast the same pieces, so re-slicing per SUMMA
        # stage was pure overhead on the serial hot path.
        self._stage_piece_cache: Dict[str, List[Dict[int, CSRMatrix]]] = {}
        # Rank -> grid coordinate maps, precomputed: the epoch loops ask
        # for these thousands of times per epoch.
        self._out_cols = [self.mesh.coords(r)[1] for r in range(rt.size)]
        self._rank_row_ranges = [
            self.row_ranges[self.mesh.coords(r)[0]] for r in range(rt.size)
        ]
        plan = self._plan()
        self._col_group_list = [
            plan.group(self.mesh.col_group(j)) for j in range(self.pc)
        ]

    # ------------------------------------------------------------------ #
    # GridAlgorithm hooks
    # ------------------------------------------------------------------ #
    def _setup_data(self, features: np.ndarray) -> None:
        blocks = distribute_dense_2d(features, self.mesh)
        self._h0 = {r: blocks[r]
                    for r in self._local(range(self.rt.size))}

    def _fsplit(self, f: int) -> List[Tuple[int, int]]:
        """Feature-column split (``Pc`` ways, like every dense matrix)."""
        return self._plan().split(f, self.pc)

    def _row_groups(self):
        return [self.mesh.row_group(i) for i in range(self.pr)]

    def _out_col(self, rank: int) -> int:
        return self._out_cols[rank]

    def _rank_rows(self, rank: int) -> Tuple[int, int]:
        return self._rank_row_ranges[rank]

    def _assemble(self, out_full: Dict[int, np.ndarray]) -> np.ndarray:
        """Full output from the row-gathered copies on process column 0."""
        out_full = self.rt.gather_blocks(out_full)
        return np.concatenate(
            [out_full[self.mesh.rank_of(i, 0)] for i in range(self.pr)],
            axis=0,
        )

    def _charge_epoch_transpose(self) -> None:
        """The per-epoch pairwise grid transpose of the sparse blocks.

        Charged even for symmetric operands: block ``(i, j)`` of ``A``
        lives at ``(j, i)`` in the ``A^T`` grid, so the real
        implementation exchanges every epoch regardless -- exactly how
        Fig. 3 accounts it.
        """
        self._charge_transpose_step(
            ((rank, self.a_blocks[rank].nbytes_on_wire)
             for rank in self.a_blocks),
            key=("trp",),
        )

    def _stage_pieces(self, sparse_blocks: Dict[int, CSRMatrix]):
        """Per-stage column slices of a static sparse operand, cached.

        Keyed by operand role: ``_grid_spmm`` only ever receives
        ``a_t_blocks`` or ``a_blocks`` (one and the same dict for
        symmetric inputs), both built once in ``__init__``.
        """
        key = "a_t" if sparse_blocks is self.a_t_blocks else "a"
        cached = self._stage_piece_cache.get(key)
        if cached is None:
            mesh = self.mesh
            cached = []
            for lo, hi, _ro, co in self.stages:
                c0 = self.col_ranges[co][0]
                pieces: Dict[int, CSRMatrix] = {}
                for i in range(self.pr):
                    root = mesh.rank_of(i, co)
                    blk = sparse_blocks[root]
                    pieces[root] = blk.block(0, blk.nrows, lo - c0, hi - c0)
                cached.append(pieces)
            self._stage_piece_cache[key] = cached
        return cached

    def _grid_spmm(
        self,
        sparse_blocks: Dict[int, CSRMatrix],
        dense_blocks: Dict[int, np.ndarray],
        f: int,
        ws_key=None,
    ) -> Dict[int, np.ndarray]:
        """One SUMMA SpMM sweep: ``C(i,j) += S(i,t) D(t,j)`` per stage.

        Executed fast path: per stage the received dense feature-column
        pieces are joined once per local column *span* and each local
        process row runs a single SpMM against it, accumulating into one
        span-wide buffer per row group; rank results are column views.
        With every rank local the span is the full width (one join, one
        SpMM per process row -- bitwise the historical fast path); a
        multiprocess worker joins and multiplies only its own columns.
        SpMM columns are independent, so per-rank numerics are identical
        to the per-rank products, and the broadcasts (hence the ledger)
        are exactly the historical ones.  ``ws_key`` keys the group
        accumulators into the workspace (per layer for cached results).
        """
        mesh = self.mesh
        fcols = self._fsplit(f)
        groups = self._row_group_list
        groups_info = self._local_group_info
        accs = []
        for gi, group, members, (c_lo, c_hi) in groups_info:
            lo, hi = self.row_ranges[gi]
            o_lo, o_hi = self._span(fcols, c_lo, c_hi)
            if ws_key is not None:
                acc = self._ws(("gs", ws_key, gi), (hi - lo, o_hi - o_lo))
                acc.fill(0.0)
            else:
                acc = np.zeros((hi - lo, o_hi - o_lo))
            accs.append((acc, o_lo, o_hi))
        op_key = "a_t" if sparse_blocks is self.a_t_blocks else "a"
        stage_pieces = self._stage_pieces(sparse_blocks)
        col_groups = self._col_group_list
        for st, ((lo, hi, ro, co), pieces) in enumerate(
            zip(self.stages, stage_pieces)
        ):
            sparse_recv = self._broadcast_routed(
                ("bsch", op_key, st),
                [(groups[i], mesh.rank_of(i, co)) for i in range(self.pr)],
                pieces, Category.SCOMM,
            )
            r0 = self.row_ranges[ro][0]
            dense_pieces = {
                root: dense_blocks[root][lo - r0 : hi - r0, :]
                for j in range(self.pc)
                for root in (mesh.rank_of(ro, j),)
                if root in dense_blocks
            }

            def dense_nbytes(root: int, lo=lo, hi=hi) -> int:
                b0, b1 = fcols[self._out_col(root)]
                return (hi - lo) * (b1 - b0) * self.WB

            stage_parts = self._broadcast_routed(
                ("bdch", f, st),
                [(col_groups[j], mesh.rank_of(ro, j))
                 for j in range(self.pc)],
                dense_pieces, Category.DCOMM, nbytes=dense_nbytes,
            )
            # One dense join + SpMM per local column span (usually one).
            span_joins = {}
            for idx, (gi, group, members, (c_lo, c_hi)) in enumerate(
                groups_info
            ):
                acc, o_lo, o_hi = accs[idx]
                d_span = span_joins.get((c_lo, c_hi))
                if d_span is None:
                    d_span = self._join_span(
                        stage_parts[c_lo:c_hi], hi - lo, o_hi - o_lo,
                        self._pick_span_key(o_hi - o_lo == f,
                                            ("gsd", hi - lo), c_lo, c_hi),
                    )
                    span_joins[(c_lo, c_hi)] = d_span
                acc += spmm(sparse_recv[gi], d_span)

            def stage_charges(pieces=pieces, co=co):
                for i in range(self.pr):
                    sp = pieces[mesh.rank_of(i, co)]
                    for r in groups[i]:
                        c0, c1 = fcols[self._out_col(r)]
                        yield r, sp.nnz, sp.nrows, c1 - c0

            self._charge_spmm_cached(("gsch", op_key, f, st), stage_charges)
        out: Dict[int, np.ndarray] = {}
        for idx, (gi, group, members, span) in enumerate(groups_info):
            acc, o_lo, o_hi = accs[idx]
            for r in members:
                c0, c1 = fcols[self._out_col(r)]
                out[r] = acc[:, c0 - o_lo : c1 - o_lo]
        return out

    def _stored_dense_rows(self) -> int:
        return max(hi - lo for lo, hi in self.row_ranges)

    def _stored_dense_width(self, f: int) -> int:
        return max(hi - lo for lo, hi in self._fsplit(f))

    # ------------------------------------------------------------------ #
    # symbolic schedule emission (repro.simulate)
    # ------------------------------------------------------------------ #
    @classmethod
    def emit_comm_schedule(
        cls,
        graph,
        widths: Sequence[int],
        p: int,
        grid: Optional[Tuple[int, int]] = None,
        summa_block: Optional[int] = None,
        **_ignored,
    ):
        """Emit the SUMMA epoch's schedule without building ranks.

        Mirrors ``_grid_spmm`` (per-stage sparse/dense pipelined
        broadcasts + local SpMM), ``_matmul_w`` / ``_weight_grad`` stage
        broadcasts, the last-layer row all-gather, and the per-epoch grid
        transpose, phase for phase.
        """
        from repro.comm.mesh import square_side
        from repro.comm.tracker import Category
        from repro.simulate.schedule import (
            WB,
            GraphModel,
            ScheduleBuilder,
            boundaries,
            emit_grid_epoch,
            emit_replicated_matmul,
            sparse_wire_bytes,
        )

        graph = GraphModel.coerce(graph)
        if grid is None:
            pr = pc = square_side(p)
        else:
            pr, pc = (int(g) for g in grid)
            if pr * pc != p:
                raise ValueError(f"grid {pr}x{pc} does not tile P={p} ranks")
        n = graph.n
        rows = np.array(
            [hi - lo for lo, hi in block_ranges(n, pr)], dtype=np.float64
        )
        stages = summa_stage_ranges(n, pr, pc, block=summa_block)
        stage_bounds = np.array(
            [lo for lo, _, _, _ in stages] + [n], dtype=np.int64
        )
        # Nonzeros per (process row, stage) slice of each sparse operand.
        cells_at = graph.cell_nnz(pr, stage_bounds)
        cells_a = (
            cells_at
            if graph.symmetric
            else graph.cell_nnz(pr, stage_bounds, transpose=True)
        )
        rows_of_rank = np.repeat(rows, pc)

        def fsplit_widths(f: int) -> np.ndarray:
            return np.array(
                [hi - lo for lo, hi in block_ranges(f, pc)],
                dtype=np.float64,
            )

        def outw_of_rank(f: int) -> np.ndarray:
            return np.tile(fsplit_widths(f), pr)

        b = ScheduleBuilder(p)

        def grid_spmm(f: int, backward: bool) -> None:
            cells = cells_a if backward else cells_at
            fw = fsplit_widths(f)
            fw_rank = np.tile(fw, pr)
            for st, (lo, hi, _ro, _co) in enumerate(stages):
                b.broadcast(
                    Category.SCOMM, pc,
                    sparse_wire_bytes(cells[:, st], rows),
                    pipelined=True,
                )
                b.broadcast(
                    Category.DCOMM, pr, (hi - lo) * fw * WB, pipelined=True
                )
                b.spmm(np.repeat(cells[:, st], pc), rows_of_rank, fw_rank)

        def matmul_w(f_in: int, f_out: int) -> None:
            emit_replicated_matmul(
                b, rows, pc, rows_of_rank, outw_of_rank(f_out),
                fsplit_widths(f_in),
            )

        def weight_grad(f_in: int, f_out: int) -> None:
            matmul_w(f_in, f_out)
            b.allreduce(Category.DCOMM, p, f_in * f_out * WB)

        def row_allgather(f: int) -> None:
            b.allgather(Category.DCOMM, pc, rows * (f * WB))

        col_bounds_pc = boundaries(n, pc)
        blocks_a = graph.cell_nnz(
            pr, col_bounds_pc, transpose=not graph.symmetric
        )

        def epoch_transpose() -> None:
            # Charged for every rank regardless of symmetry, exactly as
            # the executed `_charge_epoch_transpose` does.
            b.transpose(
                sparse_wire_bytes(blocks_a, rows[:, None]).reshape(-1)
            )

        emit_grid_epoch(
            b, widths, rows_of_rank, outw_of_rank, grid_spmm, matmul_w,
            weight_grad, row_allgather, epoch_transpose,
        )
        return b.build(
            algorithm="2d", p=p, grid=(pr, pc), summa_block=summa_block,
            graph=graph.name, widths=tuple(int(w) for w in widths),
        )
