"""The 2D SUMMA algorithm (Algorithm 2) -- the paper's implementation.

Everything is block-partitioned on the ``Pr x Pc`` process grid (Table
IV): ``A^T`` and ``A`` in ``n/Pr x n/Pc`` sparse blocks, the dense
``H``/``G`` in matching blocks (feature columns split ``Pc`` ways), ``W``
replicated.  Each SpMM is a SUMMA sweep: per stage, the owning process
column broadcasts its sparse pieces along process rows (``scomm``), the
owning process row broadcasts its dense pieces along process columns
(``dcomm``), and every rank accumulates a local block product.  Per-rank
dense words scale as ``~ 1/sqrt(P)`` -- the headline claim.

:func:`summa_stage_ranges` computes the stage decomposition of the inner
dimension: for rectangular grids (Section IV-C.6) the ``Pr`` and ``Pc``
splits are refined to their common boundaries so each stage lives in
exactly one sparse column block and one dense row block; Algorithm 2's
blocking parameter ``b`` further subdivides stages without changing any
numerics.

The backward pass needs the block rows of ``A`` (Equation 2); the
distributed blocks of ``A`` are materialised at setup and the pairwise
grid transpose that a real implementation performs every epoch is charged
to ``trpose`` per epoch, exactly as Fig. 3 accounts it.  The epoch
structure itself lives in :class:`repro.dist.base.GridAlgorithm`, shared
with the Split-3D algorithm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.mesh import Mesh2D
from repro.comm.runtime import VirtualRuntime
from repro.comm.tracker import Category
from repro.dist.base import GridAlgorithm
from repro.nn.optim import Optimizer
from repro.sparse.csr import CSRMatrix
from repro.sparse.distribute import (
    block_ranges,
    distribute_dense_2d,
    distribute_sparse_2d,
)
from repro.sparse.spmm import spmm

__all__ = ["DistGCN2D", "summa_stage_ranges"]


def summa_stage_ranges(
    n: int, pr: int, pc: int, block: Optional[int] = None
) -> List[Tuple[int, int, int, int]]:
    """SUMMA stages over an inner dimension of length ``n``.

    Returns ``(lo, hi, row_owner, col_owner)`` tuples: the half-open inner
    range of the stage, the index of the ``pr``-way block (the dense
    operand's row block, hence the broadcasting process **row**) and of
    the ``pc``-way block (the sparse operand's column block, hence the
    broadcasting process **column**) containing it.  For square grids the
    two splits coincide and there are exactly ``pr`` stages; rectangular
    grids refine to the union of both splits' boundaries.  ``block``
    subdivides every stage into chunks of at most ``block`` -- Algorithm
    2's blocking parameter, which trades message count for overlap
    without changing results.
    """
    if pr < 1 or pc < 1:
        raise ValueError(f"invalid grid {pr}x{pc}")
    if block is not None and block < 1:
        raise ValueError(f"blocking parameter must be >= 1, got {block}")
    row_ranges = block_ranges(n, pr)
    col_ranges = block_ranges(n, pc)
    bounds = sorted(
        {b for lo, hi in row_ranges for b in (lo, hi)}
        | {b for lo, hi in col_ranges for b in (lo, hi)}
    )
    stages: List[Tuple[int, int, int, int]] = []
    ro = co = 0
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi == lo:
            continue
        while row_ranges[ro][1] <= lo:
            ro += 1
        while col_ranges[co][1] <= lo:
            co += 1
        if block is None:
            stages.append((lo, hi, ro, co))
        else:
            for b0 in range(lo, hi, block):
                stages.append((b0, min(b0 + block, hi), ro, co))
    return stages


class DistGCN2D(GridAlgorithm):
    """2D SUMMA distributed GCN training (Algorithm 2)."""

    def __init__(
        self,
        rt: VirtualRuntime,
        a_t: CSRMatrix,
        widths: Sequence[int],
        seed: int = 0,
        optimizer: Optional[Optimizer] = None,
        summa_block: Optional[int] = None,
    ):
        self.mesh: Mesh2D = rt.mesh2d  # raises TypeError on non-2D meshes
        super().__init__(rt, a_t, widths, seed=seed, optimizer=optimizer)
        self.summa_block = summa_block
        self.pr, self.pc = self.mesh.rows, self.mesh.cols
        self.row_ranges = block_ranges(self.n, self.pr)
        self.col_ranges = block_ranges(self.n, self.pc)
        self.stages = summa_stage_ranges(self.n, self.pr, self.pc,
                                         block=summa_block)
        self.a_t_blocks = distribute_sparse_2d(self.a_t, self.mesh)
        # Backward operand: the grid transpose, materialised once and
        # charged per epoch.  For symmetric operands self.a IS self.a_t,
        # so the distributed blocks are identical and simply shared.
        self.a_blocks = (
            self.a_t_blocks
            if self.symmetric
            else distribute_sparse_2d(self.a, self.mesh)
        )

    # ------------------------------------------------------------------ #
    # GridAlgorithm hooks
    # ------------------------------------------------------------------ #
    def _setup_data(self, features: np.ndarray) -> None:
        self._h0 = distribute_dense_2d(features, self.mesh)

    def _fsplit(self, f: int) -> List[Tuple[int, int]]:
        """Feature-column split (``Pc`` ways, like every dense matrix)."""
        return block_ranges(f, self.pc)

    def _row_groups(self):
        return [self.mesh.row_group(i) for i in range(self.pr)]

    def _out_col(self, rank: int) -> int:
        return self.mesh.coords(rank)[1]

    def _rank_rows(self, rank: int) -> Tuple[int, int]:
        return self.row_ranges[self.mesh.coords(rank)[0]]

    def _assemble(self, out_full: Dict[int, np.ndarray]) -> np.ndarray:
        """Full output from the row-gathered copies on process column 0."""
        return np.concatenate(
            [out_full[self.mesh.rank_of(i, 0)] for i in range(self.pr)],
            axis=0,
        )

    def _charge_epoch_transpose(self) -> None:
        """The per-epoch pairwise grid transpose of the sparse blocks.

        Charged even for symmetric operands: block ``(i, j)`` of ``A``
        lives at ``(j, i)`` in the ``A^T`` grid, so the real
        implementation exchanges every epoch regardless -- exactly how
        Fig. 3 accounts it.
        """
        self._charge_transpose_step(
            (rank, self.a_blocks[rank].nbytes_on_wire)
            for rank in self.a_blocks
        )

    def _grid_spmm(
        self,
        sparse_blocks: Dict[int, CSRMatrix],
        dense_blocks: Dict[int, np.ndarray],
        f: int,
    ) -> Dict[int, np.ndarray]:
        """One SUMMA SpMM sweep: ``C(i,j) += S(i,t) D(t,j)`` per stage."""
        mesh = self.mesh
        fcols = self._fsplit(f)
        acc = {
            mesh.rank_of(i, j): np.zeros(
                (hi - lo, fcols[j][1] - fcols[j][0])
            )
            for i, (lo, hi) in enumerate(self.row_ranges)
            for j in range(self.pc)
        }
        for lo, hi, ro, co in self.stages:
            c0 = self.col_ranges[co][0]
            sparse_recv: Dict[int, CSRMatrix] = {}
            with self.rt.tracker.step_scope():
                for i in range(self.pr):
                    root = mesh.rank_of(i, co)
                    blk = sparse_blocks[root]
                    piece = blk.block(0, blk.nrows, lo - c0, hi - c0)
                    got = self.rt.coll.broadcast(
                        mesh.row_group(i), root, piece,
                        category=Category.SCOMM, pipelined=True,
                    )
                    sparse_recv.update(got)
            r0 = self.row_ranges[ro][0]
            dense_recv: Dict[int, np.ndarray] = {}
            with self.rt.tracker.step_scope():
                for j in range(self.pc):
                    root = mesh.rank_of(ro, j)
                    piece = dense_blocks[root][lo - r0 : hi - r0, :]
                    got = self.rt.coll.broadcast(
                        mesh.col_group(j), root, piece,
                        category=Category.DCOMM, pipelined=True,
                    )
                    dense_recv.update(got)
            charges = []
            for rank in acc:
                sp = sparse_recv[rank]
                dp = dense_recv[rank]
                acc[rank] += spmm(sp, dp)
                charges.append((rank, sp.nnz, sp.nrows, dp.shape[1]))
            self._charge_spmm_step(charges)
        return acc

    def _stored_dense_rows(self) -> int:
        return max(hi - lo for lo, hi in self.row_ranges)

    def _stored_dense_width(self, f: int) -> int:
        return max(hi - lo for lo, hi in self._fsplit(f))
