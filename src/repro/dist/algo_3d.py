"""The Split-3D-SpMM algorithm (Section IV-D).

Processes form a cubic ``s x s x s`` mesh (``s = cbrt(P)``).  Following
Split-3D-SpGEMM (Azad et al., the paper's [3]), the SpMM's **inner
dimension** is split across the ``s`` layers: layer ``k`` owns the
``k``-th column slice of ``A^T`` and the matching row slice of the dense
operand, both 2D-partitioned within the layer (Table V's
``n/s x n/s^2`` sparse and ``n/s^2 x f/s`` dense local blocks).  One SpMM
is then

1. an independent SUMMA sweep inside every layer (sparse pieces broadcast
   along process rows, dense pieces along process columns) producing
   layer-local partial products;
2. a reduce-scatter along each fiber ``P(i, j, :)`` summing the ``s``
   layer partials and leaving each fiber rank one row shard;
3. a pairwise fiber-plane exchange ``(i, j, k) <-> (k, j, i)`` that
   returns the result to the input distribution for the next layer.

Per-rank dense words scale as ``~ 1/P^(2/3)`` -- better than 2D's
``1/sqrt(P)`` at equal ``P``.  For symmetric operands the ``A`` grid
equals the ``A^T`` grid block for block, so -- unlike 2D, whose transpose
pairs live on different ranks -- no transpose exchange is needed and none
is charged; directed graphs pay the per-epoch ``trpose`` exchange.  The
epoch structure itself lives in :class:`repro.dist.base.GridAlgorithm`,
shared with the 2D algorithm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.mesh import Mesh3D
from repro.comm.runtime import VirtualRuntime
from repro.comm.tracker import Category
from repro.dist.base import GridAlgorithm
from repro.nn.optim import Optimizer
from repro.obs import spans as _spans
from repro.sparse.csr import CSRMatrix
from repro.sparse.distribute import (
    block_ranges,
    distribute_dense_3d,
    distribute_sparse_3d,
)
from repro.sparse.spmm import spmm

__all__ = ["DistGCN3D"]


class DistGCN3D(GridAlgorithm):
    """Split-3D-SpMM distributed GCN training."""

    def __init__(
        self,
        rt: VirtualRuntime,
        a_t: CSRMatrix,
        widths: Sequence[int],
        seed: int = 0,
        optimizer: Optional[Optimizer] = None,
        distribution=None,
    ):
        self.mesh: Mesh3D = rt.mesh3d  # raises TypeError on non-3D meshes
        # A distribution contributes its part-major relabelling only;
        # the cubic mesh keeps its own block splits (3D partition
        # awareness is a ROADMAP follow-on).
        super().__init__(rt, a_t, widths, seed=seed, optimizer=optimizer,
                         distribution=distribution)
        self.s = self.mesh.p1  # cubic: p1 == p2 == p3
        # Row blocks (p1 split == the layer split, since p1 == p3) and
        # their s-way sub-splits -- shared by the sparse and dense layouts.
        self.row_ranges = block_ranges(self.n, self.s)
        self.sub_ranges = [
            [(lo + a, lo + b) for a, b in block_ranges(hi - lo, self.s)]
            for lo, hi in self.row_ranges
        ]
        self.a_t_blocks = distribute_sparse_3d(self.a_t, self.mesh)
        self.a_blocks = (
            self.a_t_blocks
            if self.symmetric
            else distribute_sparse_3d(self.a, self.mesh)
        )
        # Precomputed coordinate maps and interned communication groups:
        # the epoch loops consult these thousands of times per epoch.
        s, mesh, plan = self.s, self.mesh, self._plan()
        self._out_cols = [mesh.coords(r)[1] for r in range(rt.size)]
        self._rank_row_cache = [
            self.sub_ranges[k][i]
            for r in range(rt.size)
            for i, _, k in [mesh.coords(r)]
        ]
        self._row_groups_3d = {
            (i, k): plan.group(mesh.row_group(i, k))
            for i in range(s) for k in range(s)
        }
        self._col_groups_3d = {
            (j, k): plan.group(mesh.col_group(j, k))
            for j in range(s) for k in range(s)
        }
        self._fiber_groups_3d = {
            (i, j): plan.group(mesh.fiber_group(i, j))
            for i in range(s) for j in range(s)
        }
        # Fiber-plane exchange routing (i, j, k) -> (k, j, i), fixed.
        self._exchange_pairs = [
            (mesh.rank_of(i, j, k), mesh.rank_of(k, j, i))
            for i in range(s) for j in range(s) for k in range(s)
        ]
        # Per-stage broadcast routes (group, root), fixed at setup: stage
        # t's sparse roots are (i, t, k), its dense roots (t, j, k).
        self._stage_sparse_routes = [
            [(self._row_groups_3d[i, k], mesh.rank_of(i, t, k))
             for k in range(s) for i in range(s)]
            for t in range(s)
        ]
        self._stage_dense_routes = [
            [(self._col_groups_3d[j, k], mesh.rank_of(t, j, k))
             for k in range(s) for j in range(s)]
            for t in range(s)
        ]

    # ------------------------------------------------------------------ #
    # GridAlgorithm hooks
    # ------------------------------------------------------------------ #
    def _setup_data(self, features: np.ndarray) -> None:
        blocks = distribute_dense_3d(features, self.mesh)
        self._h0 = {r: blocks[r]
                    for r in self._local(range(self.rt.size))}

    def _fsplit(self, f: int) -> List[Tuple[int, int]]:
        return self._plan().split(f, self.s)

    def _row_groups(self):
        return [
            self.mesh.row_group(i, k)
            for k in range(self.s) for i in range(self.s)
        ]

    def _out_col(self, rank: int) -> int:
        return self._out_cols[rank]

    def _rank_rows(self, rank: int) -> Tuple[int, int]:
        """Global rows of a rank's dense block: the ``i``-th sub-range of
        layer ``k``'s row slice."""
        return self._rank_row_cache[rank]

    def _assemble(self, out_full: Dict[int, np.ndarray]) -> np.ndarray:
        """Global row order is (layer k, sub-range i): column-0 copies."""
        out_full = self.rt.gather_blocks(out_full)
        pieces = []
        for k in range(self.s):
            for i in range(self.s):
                pieces.append(out_full[self.mesh.rank_of(i, 0, k)])
        return np.concatenate(pieces, axis=0)

    def _charge_epoch_transpose(self) -> None:
        """Directed operands pay the A-grid exchange each epoch; for
        ``A == A^T`` the Split-3D A grid equals the A^T grid block for
        block, so nothing moves and nothing is charged."""
        if not self.symmetric:
            self._charge_transpose_step(
                ((rank, self.a_blocks[rank].nbytes_on_wire)
                 for rank in self.a_blocks),
                key=("trp",),
            )

    def _grid_spmm(
        self,
        sparse_blocks: Dict[int, CSRMatrix],
        dense_blocks: Dict[int, np.ndarray],
        f: int,
        ws_key=None,
    ) -> Dict[int, np.ndarray]:
        """One Split-3D SpMM: per-layer SUMMA, fiber reduce-scatter,
        fiber-plane exchange back to the input distribution.

        Executed fast path (mirroring :class:`DistGCN2D`): per stage and
        layer, the ``s`` dense feature-column blocks are joined once and
        each in-layer process row runs a single full-width SpMM into a
        per-(row, layer) accumulator; rank partials are column views of
        it.  Broadcast payloads, the fiber reduce-scatter, and the
        fiber-plane exchange -- everything the ledger sees -- are
        exactly the historical per-rank ones, and SpMM columns are
        independent so numerics are unchanged.  The accumulators live in
        the workspace (they are consumed by the reduce-scatter within
        this call, so one set per (i, k) serves every layer and epoch).
        """
        mesh, s = self.mesh, self.s
        fcols = self._fsplit(f)
        rows_of = [hi - lo for lo, hi in self.row_ranges]
        groups_info = self._local_group_info  # gi = k * s + i
        accs: Dict[Tuple[int, int], Tuple[np.ndarray, int, int]] = {}
        spans: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for gi, group, members, (c_lo, c_hi) in groups_info:
            i, k = gi % s, gi // s
            o_lo, o_hi = self._span(fcols, c_lo, c_hi)
            wkey = (("gs3", i, k) if o_hi - o_lo == f
                    else ("gs3", i, k, c_lo, c_hi))
            acc = self._ws(wkey, (rows_of[i], o_hi - o_lo))
            acc.fill(0.0)
            accs[i, k] = (acc, o_lo, o_hi)
            spans[i, k] = (c_lo, c_hi)
        op_key = "a_t" if sparse_blocks is self.a_t_blocks else "a"
        sub_rows = [
            [hi - lo for lo, hi in subs] for subs in self.sub_ranges
        ]

        def dense_nbytes(root: int) -> int:
            ri, rj, rk = mesh.coords(root)
            b0, b1 = fcols[rj]
            return sub_rows[rk][ri] * (b1 - b0) * self.WB

        # 1. SUMMA stages, concurrently in every layer.
        for t in range(s):
            sparse_got = self._broadcast_routed(
                ("bsch", op_key, t), self._stage_sparse_routes[t],
                sparse_blocks, Category.SCOMM,
            )
            dense_got = self._broadcast_routed(
                ("bdch", f, t), self._stage_dense_routes[t],
                dense_blocks, Category.DCOMM, nbytes=dense_nbytes,
            )
            # One dense join + SpMM per local (layer, column span).
            span_joins: Dict[Tuple[int, int, int], np.ndarray] = {}
            for gi, group, members, (c_lo, c_hi) in groups_info:
                i, k = gi % s, gi // s
                acc, o_lo, o_hi = accs[i, k]
                d_span = span_joins.get((k, c_lo, c_hi))
                if d_span is None:
                    parts = dense_got[k * s + c_lo : k * s + c_hi]
                    inner = parts[0].shape[0]
                    d_span = self._join_span(
                        parts, inner, o_hi - o_lo,
                        self._pick_span_key(o_hi - o_lo == f,
                                            ("gsd3", inner), c_lo, c_hi),
                    )
                    span_joins[(k, c_lo, c_hi)] = d_span
                acc += spmm(sparse_got[gi], d_span)

            def stage_charges(t=t):
                for k in range(s):
                    for i in range(s):
                        sp = sparse_blocks[mesh.rank_of(i, t, k)]
                        for j in range(s):
                            c0, c1 = fcols[j]
                            yield (mesh.rank_of(i, j, k), sp.nnz,
                                   sp.nrows, c1 - c0)

            self._charge_spmm_cached(("gsch", op_key, f, t), stage_charges)
        # 2. Fiber reduce-scatter: sum the s layer partials, shard rows.
        # Per fiber (i, j): fold the band ``[:, c0:c1]`` of the layer
        # partials in fiber (layer) order and take the row shards -- a
        # column band of the full-width sum equals the per-band sum
        # elementwise, so the per-fiber folds reproduce the historical
        # full-width accumulation bitwise.  The charges (one
        # reduce-scatter per fiber, at the band's byte size) replay from
        # a cached list, byte-identical to per-fiber
        # :meth:`Collectives.reduce_scatter` calls; the data plane moves
        # only the fibers this process has ranks in.
        charges = self._cache.get(("rsc3", f))
        if charges is None:
            charges = self.rt.coll.reduce_scatter_charges([
                (self._fiber_groups_3d[i, j],
                 rows_of[i] * (fcols[j][1] - fcols[j][0]) * 8)
                for i in range(s) for j in range(s)
            ])
            self._cache[("rsc3", f)] = charges
        self.rt.tracker.charge_many(Category.DCOMM, charges)
        rec = _spans.ACTIVE
        t0 = rec.clock() if rec is not None else 0.0
        shards: Dict[int, np.ndarray] = {}
        for i in range(s):
            for j in range(s):
                fiber = self._fiber_groups_3d[i, j]
                contribs = {}
                for k in range(s):
                    got = accs.get((i, k))
                    if got is None:
                        continue
                    acc, o_lo, o_hi = got
                    c_lo, c_hi = spans[i, k]
                    if not c_lo <= j < c_hi:
                        continue
                    c0, c1 = fcols[j]
                    contribs[mesh.rank_of(i, j, k)] = \
                        acc[:, c0 - o_lo : c1 - o_lo]
                if contribs:
                    shards.update(self.rt.coll.reduce_scatter_data(
                        fiber, contribs, axis=0,
                    ))
        if rec is not None:
            rec.record("reduce_scatter", Category.DCOMM, t0, rec.clock())
        # 3. Fiber-plane exchange: shard (i, j, k) is the input-layout
        # block of rank (k, j, i).
        row_splits = [self._plan().split(rows_of[i], s) for i in range(s)]

        def shard_nbytes(src: int, dst: int) -> int:
            si, sj, sk = mesh.coords(src)
            r0, r1 = row_splits[si][sk]
            c0, c1 = fcols[sj]
            return (r1 - r0) * (c1 - c0) * self.WB

        received = self._sendrecv_routed(
            ("srch", f), self._exchange_pairs, shards, Category.DCOMM,
            nbytes=shard_nbytes,
        )
        return {
            dst: got
            for (_, dst), got in zip(self._exchange_pairs, received)
            if got is not None
        }

    def _stored_dense_rows(self) -> int:
        return max(
            hi - lo for subs in self.sub_ranges for lo, hi in subs
        )

    def _stored_dense_width(self, f: int) -> int:
        return max(hi - lo for lo, hi in self._fsplit(f))

    # ------------------------------------------------------------------ #
    # symbolic schedule emission (repro.simulate)
    # ------------------------------------------------------------------ #
    @classmethod
    def emit_comm_schedule(
        cls, graph, widths: Sequence[int], p: int, **_ignored,
    ):
        """Emit the Split-3D epoch's schedule without building ranks.

        Mirrors ``_grid_spmm`` (per-layer SUMMA broadcasts, fiber
        reduce-scatter, fiber-plane point-to-point exchange) and the
        shared grid epoch, phase for phase.
        """
        from repro.comm.mesh import cube_side
        from repro.comm.tracker import Category
        from repro.simulate.schedule import (
            WB,
            GraphModel,
            ScheduleBuilder,
            emit_grid_epoch,
            emit_replicated_matmul,
            sparse_wire_bytes,
        )

        graph = GraphModel.coerce(graph)
        s = cube_side(p)
        n = graph.n
        row_ranges = block_ranges(n, s)
        rows = np.array(
            [hi - lo for lo, hi in row_ranges], dtype=np.float64
        )
        # subrows[k, i]: dense rows of rank (i, j, k) -- the i-th s-way
        # sub-split of layer k's row slice.  shard[i, k]: the k-th s-way
        # shard of row block i (the fiber reduce-scatter / exchange unit).
        subrows = np.array(
            [
                [b - a for a, b in block_ranges(hi - lo, s)]
                for lo, hi in row_ranges
            ],
            dtype=np.float64,
        )
        shard = subrows  # shard[i, k]: same s-way sub-split, viewed per row
        # Sparse block (i, j, k): rows_i x (layer k's j-th column sub-split).
        col_bounds = [0]
        for k0, k1 in row_ranges:  # layer split == p1 split (cubic mesh)
            col_bounds.extend(
                k0 + hi for _, hi in block_ranges(k1 - k0, s)
            )
        cells = graph.cell_nnz(s, np.asarray(col_bounds))  # (i, k*s + j)
        nnz_ikj = cells.reshape(s, s, s)  # [i, k, j]
        cells_a = (
            nnz_ikj
            if graph.symmetric
            else graph.cell_nnz(
                s, np.asarray(col_bounds), transpose=True
            ).reshape(s, s, s)
        )
        # Per-rank dense row counts, flattened over (i, j, k).
        rows_of_rank = np.broadcast_to(
            subrows.T[:, None, :], (s, s, s)
        ).reshape(-1)
        group_rows = subrows.T.reshape(-1)  # row groups (i, k)

        def fsplit_widths(f: int) -> np.ndarray:
            return np.array(
                [hi - lo for lo, hi in block_ranges(f, s)],
                dtype=np.float64,
            )

        def outw_of_rank(f: int) -> np.ndarray:
            return np.broadcast_to(
                fsplit_widths(f)[None, :, None], (s, s, s)
            ).reshape(-1)

        b = ScheduleBuilder(p)

        # Fiber-plane exchange operands: transfer (i, j, k) [i != k] moves
        # shard[i, k] x fw[j]; its source rank concurrently receives the
        # partner transfer (k, j, i) of shard[k, i] x fw[j].
        ii, kk = np.meshgrid(np.arange(s), np.arange(s), indexing="ij")
        off_diag = (ii != kk).reshape(-1)
        shard_fwd = shard.reshape(-1)[off_diag]
        shard_rev = shard.T.reshape(-1)[off_diag]

        def grid_spmm(f: int, backward: bool) -> None:
            nz = cells_a if backward else nnz_ikj
            fw = fsplit_widths(f)
            for t in range(s):
                # Sparse: row groups (i, k) get block (i, t, k).
                b.broadcast(
                    Category.SCOMM, s,
                    sparse_wire_bytes(
                        nz[:, :, t], rows[:, None]
                    ).reshape(-1),
                    pipelined=True,
                )
                # Dense: column groups (j, k) get block (t, j, k).
                b.broadcast(
                    Category.DCOMM, s,
                    (np.outer(fw, subrows[:, t]) * WB).reshape(-1),
                    pipelined=True,
                )
                # Local SpMM on every rank (i, j, k).
                b.spmm(
                    np.broadcast_to(
                        nz[:, None, :, t], (s, s, s)
                    ).reshape(-1),
                    np.broadcast_to(
                        rows[:, None, None], (s, s, s)
                    ).reshape(-1),
                    outw_of_rank(f),
                )
            # Fiber reduce-scatter over (i, j).
            b.reduce_scatter(
                Category.DCOMM, s,
                (np.outer(rows, fw) * WB).reshape(-1),
            )
            # Fiber-plane exchange (i, j, k) -> (k, j, i), i != k.
            if off_diag.any():
                b.sendrecv(
                    Category.DCOMM,
                    (shard_fwd[:, None] * fw[None, :] * WB).reshape(-1),
                    (shard_rev[:, None] * fw[None, :] * WB).reshape(-1),
                )

        def matmul_w(f_in: int, f_out: int) -> None:
            emit_replicated_matmul(
                b, group_rows, s, rows_of_rank, outw_of_rank(f_out),
                fsplit_widths(f_in),
            )

        def weight_grad(f_in: int, f_out: int) -> None:
            matmul_w(f_in, f_out)
            b.allreduce(Category.DCOMM, p, f_in * f_out * WB)

        def row_allgather(f: int) -> None:
            b.allgather(Category.DCOMM, s, group_rows * (f * WB))

        def epoch_transpose() -> None:
            # Symmetric operands share the A^T grid block for block: no
            # exchange, no charge (mirrors `_charge_epoch_transpose`).
            if not graph.symmetric:
                b.transpose(
                    sparse_wire_bytes(
                        cells_a.transpose(0, 2, 1), rows[:, None, None]
                    ).reshape(-1)
                )

        emit_grid_epoch(
            b, widths, rows_of_rank, outw_of_rank, grid_spmm, matmul_w,
            weight_grad, row_allgather, epoch_transpose,
        )
        return b.build(
            algorithm="3d", p=p, mesh=(s, s, s), graph=graph.name,
            widths=tuple(int(w) for w in widths),
        )
