"""The paper's contribution: distributed GCN training algorithms.

Four algorithm families over the virtual runtime (Section IV), all
verified bit-close against the serial reference:

* :class:`DistGCN1D`  -- 1D block rows, with ``symmetric`` / ``outer`` /
  ``outer_sparse`` / ``transpose`` backward variants (Algorithm 1);
* :class:`DistGCN15D` -- 1.5D replicated block rows (replication ``c``);
* :class:`DistGCN2D`  -- 2D SUMMA on a (possibly rectangular) grid
  (Algorithm 2);
* :class:`DistGCN3D`  -- Split-3D-SpMM on a cubic mesh.

:data:`ALGORITHMS` / :func:`make_algorithm` / :func:`make_runtime_for`
form the facade everything downstream (CLI, examples, benchmarks) uses.
"""

from repro.dist.algo_1d import DistGCN1D
from repro.dist.algo_15d import DistGCN15D
from repro.dist.algo_2d import DistGCN2D, summa_stage_ranges
from repro.dist.algo_3d import DistGCN3D
from repro.dist.base import (
    DistAlgorithm,
    DistTrainHistory,
    EpochStats,
    clone_optimizer,
)
from repro.dist.distribution import (
    PARTITION_KINDS,
    Distribution,
    GhostStructure,
    ghost_structure,
)
from repro.dist.registry import (
    ALGORITHMS,
    make_algorithm,
    make_distribution,
    make_runtime_for,
)

__all__ = [
    "DistAlgorithm",
    "DistTrainHistory",
    "EpochStats",
    "DistGCN1D",
    "DistGCN15D",
    "DistGCN2D",
    "DistGCN3D",
    "summa_stage_ranges",
    "clone_optimizer",
    "Distribution",
    "GhostStructure",
    "ghost_structure",
    "PARTITION_KINDS",
    "ALGORITHMS",
    "make_algorithm",
    "make_distribution",
    "make_runtime_for",
]
