"""The 1D block-row algorithm (Algorithm 1) and its backward variants.

Data distribution (Table III): ``A^T`` in block rows (rank ``i`` owns rows
``range_of(n, P, i)``), ``H^l``/``G^l`` in matching block rows, ``W^l``
replicated.  The forward SpMM gathers the full dense operand (the paper's
broadcast loop, charged as one all-gather) and multiplies it against the
local block row -- so 1D retains the full average degree and pays no
hypersparsity penalty.

The backward pass computing ``A G^l`` is where the variants diverge
(Sections IV-A.3, IV-A.6, IV-A.7):

* ``outer``        -- the general (directed) case: rank ``i`` forms the
  outer product ``A[:, rows_i] G_i`` (an ``n x f`` partial) and a
  reduce-scatter turns the partials into block rows of ``A G^l``;
* ``outer_sparse`` -- same, but the reduction ships only nonzero partial
  rows (the SparCML-style trade that wins once ``P > d``);
* ``symmetric``    -- for ``A == A^T``, trade the outer product for a
  second block-row SpMM against a re-gathered ``G^l``;
* ``transpose``    -- materialise the block rows of ``A`` by a per-epoch
  transpose exchange (charged to ``trpose``), then proceed as the
  symmetric trade does;
* ``ghost``        -- for ``A == A^T``, replace *both* full all-gathers
  with a sparsity-aware ghost-row exchange (Section IV-A.8's
  partitioned training): each rank fetches only the distinct
  remote-neighbour rows its local block references, so per-rank
  expansion volume is exactly ``r_i * f`` words and partition quality
  (``edgecut_P(A)``) becomes visible in the executed ledger;
* ``auto``         -- ``symmetric`` when the operand is symmetric,
  ``outer`` otherwise.

A :class:`~repro.dist.distribution.Distribution` additionally relabels
the vertices part-major and hands each rank its part's (possibly
uneven) row range -- numerics are unchanged up to the relabelling, only
the ghost structure (and hence the ``ghost`` variant's traffic) moves.

The epoch structure itself (forward sweep, loss reduction, backward
recursion) lives in :class:`repro.dist.base.BlockRowAlgorithm`, shared
with the 1.5D algorithm.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis import sanitize as _sanitize
from repro.comm.runtime import VirtualRuntime
from repro.comm.tracker import Category
from repro.dist.base import BlockRowAlgorithm
from repro.dist.distribution import Distribution, ghost_structure
from repro.nn.optim import Optimizer
from repro.sparse.csr import CSRMatrix
from repro.sparse.distribute import block_ranges, gather_dense_1d_rows
from repro.sparse.spmm import spmm

__all__ = ["DistGCN1D"]

VARIANTS = ("symmetric", "outer", "outer_sparse", "transpose", "ghost",
            "auto")

#: Variants whose backward trade requires ``A == A^T``.
_SYMMETRIC_ONLY = ("symmetric", "ghost")


def resolve_1d_variant(variant: str, symmetric: bool) -> str:
    """Validate and resolve a 1D backward variant against the operand.

    Every error surfaces here, at resolution time: an unknown name and a
    directed operand under a symmetric-only variant (``symmetric``,
    ``ghost``) raise the same ``ValueError`` shape instead of failing
    deep inside setup.
    """
    if variant not in VARIANTS:
        raise ValueError(
            f"unknown 1D variant {variant!r}; choose from {VARIANTS}"
        )
    if variant == "auto":
        return "symmetric" if symmetric else "outer"
    if variant in _SYMMETRIC_ONLY and not symmetric:
        raise ValueError(
            f"the {variant} variant requires a symmetric operand "
            "(A == A^T); use 'outer' or 'transpose' for directed graphs"
        )
    return variant


class DistGCN1D(BlockRowAlgorithm):
    """1D block-row distributed GCN training (Algorithm 1)."""

    def __init__(
        self,
        rt: VirtualRuntime,
        a_t: CSRMatrix,
        widths: Sequence[int],
        seed: int = 0,
        optimizer: Optional[Optimizer] = None,
        variant: str = "auto",
        distribution: Optional[Distribution] = None,
    ):
        super().__init__(rt, a_t, widths, seed=seed, optimizer=optimizer,
                         distribution=distribution)
        self.variant = variant = resolve_1d_variant(variant, self.symmetric)
        self.p = rt.size
        if distribution is not None and distribution.nparts != self.p:
            raise ValueError(
                f"distribution has {distribution.nparts} parts for "
                f"P={self.p} ranks"
            )
        self.world = tuple(range(self.p))
        # Rank row ranges: the distribution's (possibly uneven) parts,
        # or the paper's near-equal contiguous split.
        self.row_ranges = tuple(
            distribution.row_ranges if distribution is not None
            else block_ranges(self.n, self.p)
        )
        self.a_t_rows = {
            r: self.a_t.row_slice(lo, hi)
            for r, (lo, hi) in enumerate(self.row_ranges)
        }
        # Backward operands per variant.  The outer variants' column
        # blocks and the transpose variant's A block rows are derived
        # locally at setup; only the transpose variant *communicates*
        # them, which it charges per epoch (Section IV-A.7's
        # ``2 alpha P^2 + 2 beta nnz/P`` term).  The ghost variant
        # derives its exchange structure + compact (referenced-columns
        # -only) blocks instead.
        if self.variant in ("outer", "outer_sparse"):
            self.a_cols = {
                r: self.a.block(0, self.n, c0, c1)
                for r, (c0, c1) in enumerate(self.row_ranges)
            }
        elif self.variant == "ghost":
            self.a_rows = self.a_t_rows  # A == A^T guaranteed
            self._setup_ghost()
        else:
            self.a_rows = (
                self.a_t_rows
                if self.symmetric
                else {
                    r: self.a.row_slice(lo, hi)
                    for r, (lo, hi) in enumerate(self.row_ranges)
                }
            )

    def _setup_ghost(self) -> None:
        """Derive the ghost exchange structure and compact blocks.

        The structure (who fetches which rows from whom) is pure graph
        structure, interned in the runtime's plan; each *local* rank
        gets a compact copy of its block whose column indices are
        remapped onto its referenced-column space -- the remap is
        monotone, so every row's nonzero order (hence every SpMM row
        sum) is bitwise the full-width block's.
        """
        # Keyed by the operand object itself (identity hash): plans
        # outlive algorithms, and two algorithms sharing a runtime must
        # not share structure derived from different matrices.
        self._ghost = self._plan().memo(
            ("ghost", self.a_t, self.row_ranges),
            lambda: ghost_structure(self.a_t, self.row_ranges),
        )
        g = self._ghost
        self.a_t_compact = {}
        for r in self._local(self.world):
            blk = self.a_t_rows[r]
            self.a_t_compact[r] = CSRMatrix(
                blk.indptr,
                np.searchsorted(g.ref_cols[r], blk.indices),
                blk.data,
                (blk.nrows, g.width[r]),
                validate=False,
            )

    # ------------------------------------------------------------------ #
    # BlockRowAlgorithm hooks
    # ------------------------------------------------------------------ #
    @property
    def _block_ranks(self):
        return self.world

    def _row_range(self, rank: int):
        return self.row_ranges[rank]

    def _setup_data(self, features: np.ndarray) -> None:
        self._h0 = {
            r: np.ascontiguousarray(features[lo:hi])
            for r, (lo, hi) in enumerate(self.row_ranges)
            if self._is_local(r)
        }

    def _assemble(self, blocks: Dict[int, np.ndarray]) -> np.ndarray:
        return gather_dense_1d_rows(self.rt.gather_blocks(blocks), self.p)

    def _replicated_allreduce(
        self, values: Dict[int, np.ndarray]
    ) -> Dict[int, np.ndarray]:
        return self._obs_call(
            "allreduce", Category.DCOMM, self.rt.coll.allreduce,
            self.world, values, category=Category.DCOMM,
        )

    def _allgather_rows(
        self, blocks: Dict[int, np.ndarray]
    ) -> Dict[int, np.ndarray]:
        """All ranks receive the full dense matrix (charged all-gather).

        Every rank receives the same contributions, so the full operand
        is assembled once (into a reused workspace) and shared read-only
        -- P identical concatenations collapsed into one; the all-gather
        charge is untouched.
        """
        received = self._obs_call(
            "allgather", Category.DCOMM, self.rt.coll.allgather,
            self.world, blocks, category=Category.DCOMM,
        )
        parts = next(iter(received.values()))
        f = parts[0].shape[1]
        full = self._ws(("gather", f), (self.n, f))
        np.concatenate(parts, axis=0, out=full)
        shared = full.view()
        shared.flags.writeable = False
        return {r: shared for r in self._local(self.world)}

    def _ghost_operand(
        self, blocks: Dict[int, np.ndarray], f: int
    ) -> Dict[int, np.ndarray]:
        """Each local rank's compact operand: own referenced rows plus
        the fetched ghosts, in referenced-column order.

        The charge is the receive-side exact volume (``r_i * f *
        itemsize`` per rank), replayed from a cached list; the data
        plane moves only the requested rows (really crossing process
        boundaries on the multiprocess backend).  Values are exact
        copies of the full operand's rows, so the compact SpMM is
        bitwise the all-gather path's.
        """
        g = self._ghost
        charges = self._cache.get(("gch", f))
        if charges is None:
            charges = self.rt.coll.gather_rows_charges_sized(
                [(r, g.ghost_rows[r] * f * self.WB, g.nsources[r])
                 for r in self.world]
            )
            self._cache[("gch", f)] = charges
        self.rt.tracker.charge_many(Category.DCOMM, charges)
        received = self._obs_call(
            "gather_rows", Category.DCOMM, self.rt.coll.gather_rows_data,
            g.pairs, blocks,
        )
        san = _sanitize.ACTIVE
        if san is not None:
            # The ghost exchange is receive-side exact (`r_i * f * WB`
            # per rank): the charged bytes for local ranks must equal
            # the bytes of the rows that actually arrived.
            san.check_exchange(
                f"gather_rows:f={f}",
                sum(c[2] for c in charges if self._is_local(c[0])),
                sum(rows.nbytes for rows in received if rows is not None),
            )
        out: Dict[int, np.ndarray] = {}
        for r in self._local(self.world):
            buf = self._ws(("ghost", r, f), (g.width[r], f))
            buf[g.own_pos[r]] = blocks[r][g.own_idx[r]]
            out[r] = buf
        for i, rows in enumerate(received):
            if rows is None:
                continue
            dst = g.pairs[i][1]
            lo, hi = g.pair_slots[i]
            out[dst][lo:hi] = rows
        return out

    def _ghost_spmm(
        self, blocks: Dict[int, np.ndarray], f: int, key
    ) -> Dict[int, np.ndarray]:
        """Ghost-row exchange + compact block-row SpMM (``A^T == A``)."""
        operand = self._ghost_operand(blocks, f)
        out: Dict[int, np.ndarray] = {}
        for r in self._local(self.world):
            out[r] = spmm(self.a_t_compact[r], operand[r])
        self._charge_spmm_cached(
            key,
            lambda: (
                (r, self.a_t_rows[r].nnz, self.a_t_rows[r].nrows, f)
                for r in self.world
            ),
        )
        return out

    def _forward_spmm(
        self, blocks: Dict[int, np.ndarray], f: int
    ) -> Dict[int, np.ndarray]:
        """``A^T X``: gather the (needed) operand, multiply the block row."""
        if self.variant == "ghost":
            return self._ghost_spmm(blocks, f, ("fsp", f))
        full = self._allgather_rows(blocks)
        out: Dict[int, np.ndarray] = {}
        for r in self._local(self.world):
            out[r] = spmm(self.a_t_rows[r], full[r])
        self._charge_spmm_cached(
            ("fsp", f),
            lambda: (
                (r, self.a_t_rows[r].nnz, self.a_t_rows[r].nrows, f)
                for r in self.world
            ),
        )
        return out

    def _pre_backward(self) -> None:
        if self.variant == "transpose":
            # Per-epoch exchange materialising the block rows of A.
            self._charge_transpose_step(
                ((r, self.a_rows[r].nbytes_on_wire) for r in self.world),
                key=("trp",),
            )

    def _backward_spmm(
        self, g_blocks: Dict[int, np.ndarray], f_out: int
    ) -> Dict[int, np.ndarray]:
        """Block rows of ``A G^l`` under the selected variant."""
        if self.variant == "ghost":
            return self._ghost_spmm(g_blocks, f_out, ("bsp", f_out))
        if self.variant in ("symmetric", "transpose"):
            g_full = self._allgather_rows(g_blocks)
            ag_blocks: Dict[int, np.ndarray] = {}
            for r in self._local(self.world):
                ag_blocks[r] = spmm(self.a_rows[r], g_full[r])
            self._charge_spmm_cached(
                ("bsp", f_out),
                lambda: (
                    (r, self.a_rows[r].nnz, self.a_rows[r].nrows, f_out)
                    for r in self.world
                ),
            )
            return ag_blocks
        # Outer-product path: full-height partials, then reduce-scatter
        # sharded at the rank row ranges (== the near-equal split for
        # the default distribution).
        partials: Dict[int, np.ndarray] = {}
        for r in self._local(self.world):
            partials[r] = spmm(self.a_cols[r], g_blocks[r])
        self._charge_spmm_cached(
            ("osp", f_out),
            lambda: (
                (r, self.a_cols[r].nnz, self.a_cols[r].nrows, f_out)
                for r in self.world
            ),
        )
        if self.variant == "outer_sparse":
            return self._obs_call(
                "reduce_scatter", Category.DCOMM,
                self.rt.coll.sparse_reduce_scatter,
                self.world, partials, category=Category.DCOMM, axis=0,
                bounds=self.row_ranges,
            )
        return self._obs_call(
            "reduce_scatter", Category.DCOMM, self.rt.coll.reduce_scatter,
            self.world, partials, category=Category.DCOMM, axis=0,
            bounds=self.row_ranges,
        )

    def _stored_dense_rows(self) -> int:
        return max(hi - lo for lo, hi in self.row_ranges)

    # ------------------------------------------------------------------ #
    # symbolic schedule emission (repro.simulate)
    # ------------------------------------------------------------------ #
    @classmethod
    def emit_comm_schedule(
        cls, graph, widths: Sequence[int], p: int, variant: str = "auto",
        distribution: Optional[Distribution] = None, **_ignored,
    ):
        """Emit this family's per-epoch schedule without building ranks.

        Phase-for-phase mirror of the executed epoch: forward all-gathers
        (or, for the ``ghost`` variant, the partition-aware ghost-row
        exchanges), variant-specific backward SpMM data movement, loss
        and weight all-reduces, and every charged local kernel.
        ``distribution`` reproduces a partition-aware run: rank ranges
        come from the partition and exact-mode graphs are relabelled the
        same way the executed algorithm relabels its operand.  Exact-mode
        graphs reproduce the executed ledger byte for byte.
        """
        from repro.comm.tracker import Category
        from repro.config import INDEX_BYTES
        from repro.simulate.schedule import (
            WB,
            GraphModel,
            ScheduleBuilder,
            emit_blockrow_epoch,
            sparse_wire_bytes,
        )

        graph = GraphModel.coerce(graph)
        variant = resolve_1d_variant(variant, graph.symmetric)
        n = graph.n
        meta_extra = {}
        if distribution is not None:
            if distribution.n != n:
                raise ValueError(
                    f"distribution covers {distribution.n} vertices, "
                    f"graph has {n}"
                )
            if distribution.nparts != p:
                raise ValueError(
                    f"distribution has {distribution.nparts} parts for "
                    f"P={p} ranks"
                )
            row_ranges = distribution.row_ranges
            if graph.exact and not distribution.is_identity:
                graph = GraphModel.from_csr(
                    distribution.permute_matrix(graph.csr),
                    name=graph.name, features=graph.features,
                    n_classes=graph.n_classes,
                )
            meta_extra["partition"] = distribution.kind
        else:
            row_ranges = block_ranges(n, p)
        bounds = np.array([0] + [hi for _, hi in row_ranges],
                          dtype=np.int64)
        rows = np.diff(bounds).astype(np.float64)
        nnz_at_rows = graph.row_block_nnz(p, bounds=bounds)
        b = ScheduleBuilder(p)

        if variant == "ghost":
            ghosts, nsrc = graph.ghost_row_counts(bounds)

            def forward_spmm(f: int) -> None:
                b.gather_rows(Category.DCOMM, ghosts * (f * WB), nsrc)
                b.spmm(nnz_at_rows, rows, f)

            backward_spmm = forward_spmm  # A == A^T: same exchange
        else:
            def forward_spmm(f: int) -> None:
                b.allgather(Category.DCOMM, p, n * f * WB)
                b.spmm(nnz_at_rows, rows, f)

        if variant in ("symmetric", "transpose"):
            # Block rows of A: the stored A^T rows when symmetric, its
            # column structure otherwise (rows of A = columns of A^T).
            nnz_a_rows = (
                nnz_at_rows if graph.symmetric
                else graph.col_block_nnz(p, bounds=bounds)
            )

            def backward_spmm(f: int) -> None:
                b.allgather(Category.DCOMM, p, n * f * WB)
                b.spmm(nnz_a_rows, rows, f)

        elif variant != "ghost":
            # Outer-product path: block columns of A (full height), then a
            # reduce-scatter of the n x f partials.
            nnz_a_cols = (
                graph.col_block_nnz(p, bounds=bounds)
                if graph.symmetric
                else graph.row_block_nnz(p, bounds=bounds)
            )
            if variant == "outer_sparse":
                nz_rows = graph.col_block_nonzero_rows(
                    p, transpose=not graph.symmetric, bounds=bounds
                )

            def backward_spmm(f: int) -> None:
                b.spmm(nnz_a_cols, n, f)
                if variant == "outer_sparse":
                    wire = float(np.max(nz_rows * (f * WB + INDEX_BYTES)))
                    b.reduce_scatter(Category.DCOMM, p, wire)
                else:
                    b.reduce_scatter(Category.DCOMM, p, n * f * WB)

        def replicated_allreduce(nbytes: int) -> None:
            b.allreduce(Category.DCOMM, p, nbytes)

        pre_backward = None
        if variant == "transpose":
            trpose_bytes = sparse_wire_bytes(nnz_a_rows, rows)

            def pre_backward() -> None:
                b.transpose(trpose_bytes)

        emit_blockrow_epoch(
            b, widths, rows, forward_spmm, backward_spmm,
            replicated_allreduce, pre_backward,
        )
        return b.build(
            algorithm="1d", p=p, variant=variant, graph=graph.name,
            widths=tuple(int(w) for w in widths), **meta_extra,
        )
