"""The 1.5D block-row algorithm: trading replication for bandwidth.

Section IV-B: the ``P`` ranks form a ``P/c x c`` grid.  The graph is
block-row partitioned over the ``q = P/c`` process-grid rows ("groups"),
and each group's blocks -- the sparse block row of ``A^T`` and the dense
block rows of ``H``/``G`` -- are **replicated** on the group's ``c``
ranks.  During an SpMM the ``q`` source blocks of the dense operand are
split among the ``c`` replicas: replica ``j`` receives only its
``~q/c``-block slab (broadcasts confined to its replica column), computes
the partial product against the matching column slab of ``A^T``, and a
``c``-way all-reduce along the fiber combines the partials.

Per-rank words therefore follow ``~ n f / c`` (broadcasts, falling with
``c``) plus ``~ 2 n f c / P`` (fiber all-reduce, rising with ``c``) --
minimised at ``c* = sqrt(P/2)``, with memory growing by the replication
factor ``c`` (Section IV-B's cost table).  With ``c = 1`` the algorithm
degenerates to the 1D symmetric algorithm exactly, including bitwise
numerics: the slab is the whole gathered operand and the fiber
all-reduce is a no-op.

The epoch structure is :class:`repro.dist.base.BlockRowAlgorithm`'s,
shared with the 1D algorithm; this module only supplies the replicated
data movement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.runtime import VirtualRuntime
from repro.comm.tracker import Category
from repro.dist.base import BlockRowAlgorithm
from repro.nn.optim import Optimizer
from repro.obs import spans as _spans
from repro.sparse.csr import CSRMatrix
from repro.sparse.distribute import block_ranges
from repro.sparse.spmm import spmm

__all__ = ["DistGCN15D"]


class DistGCN15D(BlockRowAlgorithm):
    """1.5D replicated block-row distributed GCN training."""

    def __init__(
        self,
        rt: VirtualRuntime,
        a_t: CSRMatrix,
        widths: Sequence[int],
        replication: int = 1,
        seed: int = 0,
        optimizer: Optional[Optimizer] = None,
        distribution=None,
    ):
        # A distribution contributes its part-major relabelling (applied
        # in the base class); the 1.5D layout keeps its own near-equal
        # block split -- partition-aware row ranges are a 1D feature.
        super().__init__(rt, a_t, widths, seed=seed, optimizer=optimizer,
                         distribution=distribution)
        p = rt.size
        c = int(replication)
        if c < 1 or p % c != 0:
            raise ValueError(
                f"replication c={c} must divide the rank count P={p}"
            )
        if not self.symmetric:
            raise ValueError(
                "the 1.5D algorithm requires a symmetric operand (A == A^T); "
                "its backward pass reuses the replicated block rows of A^T"
            )
        self.p = p
        self.c = c
        self.q = p // c
        self.group_ranges = block_ranges(self.n, self.q)
        #: replica ``j`` of every group handles source groups ``subsets[j]``.
        self.subsets = block_ranges(self.q, c)
        # Communication groups, enumerated once and interned in the plan
        # (every epoch's broadcasts and all-reduces reuse the tuples).
        plan = self._plan()
        self._column_groups = [
            plan.group(self._column_group(j)) for j in range(c)
        ]
        self._fiber_groups = [
            plan.group(self._fiber_group(g)) for g in range(self.q)
        ]
        # Per-rank column slab of the group's A^T block row: contiguous
        # source groups map to a contiguous column range.
        self.a_slabs: Dict[int, CSRMatrix] = {}
        for r in range(p):
            g, j = self._coords(r)
            g0, g1 = self.group_ranges[g]
            s0, s1 = self.subsets[j]
            c0 = self.group_ranges[s0][0] if s0 < self.q else self.n
            c1 = self.group_ranges[s1 - 1][1] if s1 > s0 else c0
            band = self.a_t.row_slice(g0, g1)
            self.a_slabs[r] = band.block(0, g1 - g0, c0, c1)

    # ------------------------------------------------------------------ #
    # grid helpers
    # ------------------------------------------------------------------ #
    def _coords(self, rank: int) -> Tuple[int, int]:
        """Rank -> (group g, replica column j)."""
        return rank // self.c, rank % self.c

    def _rank_of(self, g: int, j: int) -> int:
        return g * self.c + j

    def _column_group(self, j: int) -> Tuple[int, ...]:
        """One rank per group: the ranks replica column ``j`` comprises."""
        return tuple(self._rank_of(g, j) for g in range(self.q))

    def _fiber_group(self, g: int) -> Tuple[int, ...]:
        """The ``c`` replicas of group ``g`` (the all-reduce dimension)."""
        return tuple(self._rank_of(g, j) for j in range(self.c))

    # ------------------------------------------------------------------ #
    # BlockRowAlgorithm hooks
    # ------------------------------------------------------------------ #
    @property
    def _block_ranks(self):
        return range(self.p)

    def _row_range(self, rank: int) -> Tuple[int, int]:
        return self.group_ranges[self._coords(rank)[0]]

    def _setup_data(self, features: np.ndarray) -> None:
        # Dense block rows, replicated across each group's c ranks.  The
        # replicas share one buffer (they are bit-identical by
        # construction), which lets the epoch's replica-dedup compute
        # each group's kernels once.
        group_blocks = [
            np.ascontiguousarray(features[g0:g1])
            for g0, g1 in self.group_ranges
        ]
        self._h0 = {
            r: group_blocks[self._coords(r)[0]]
            for r in self._local(range(self.p))
        }

    def _assemble(self, blocks: Dict[int, np.ndarray]) -> np.ndarray:
        blocks = self.rt.gather_blocks(blocks)
        return np.concatenate(
            [blocks[self._rank_of(g, 0)] for g in range(self.q)], axis=0
        )

    def _forward_spmm(self, blocks, f):
        return self._replicated_spmm(blocks, f)

    def _backward_spmm(self, blocks, f):
        # Symmetric trade only (enforced at construction): A == A^T.
        return self._replicated_spmm(blocks, f)

    def _replicated_spmm(
        self, blocks: Dict[int, np.ndarray], f: int
    ) -> Dict[int, np.ndarray]:
        """``A^T X`` for block-row-replicated ``X``: slab broadcasts,
        partial SpMM, fiber all-reduce.

        Every rank of replica column ``j`` receives the same source
        blocks, so the slab is assembled once per column (into a reused
        workspace) instead of once per rank; the per-rank partial SpMMs
        against distinct ``A^T`` slabs -- the genuinely per-rank work --
        are unchanged, as is every charge.
        """
        # Broadcast rounds: round t moves each column's t-th source block,
        # concurrently across the c replica columns.
        col_parts: List[List[np.ndarray]] = [[] for _ in range(self.c)]
        max_rounds = max(s1 - s0 for s0, s1 in self.subsets)
        nbytes = lambda root: (self._rows_of(root) * f * self.WB)
        for t in range(max_rounds):
            routes = []
            active = []
            for j in range(self.c):
                s0, s1 = self.subsets[j]
                if t >= s1 - s0:
                    continue
                routes.append(
                    (self._column_groups[j], self._rank_of(s0 + t, j))
                )
                active.append(j)
            got = self._broadcast_routed(("brch", f, t), routes, blocks,
                                         Category.DCOMM, pipelined=False,
                                         nbytes=nbytes)
            for j, payload in zip(active, got):
                if payload is not None:
                    col_parts[j].append(payload)
        local_ranks = self._local(range(self.p))
        local_cols = {self._coords(r)[1] for r in local_ranks}
        slabs: Dict[int, np.ndarray] = {}
        for j in local_cols:
            parts = col_parts[j]
            if not parts:
                slabs[j] = np.zeros((0, f))
            elif len(parts) == 1:
                # c >= q: the slab IS the single broadcast block -- no copy.
                slabs[j] = parts[0]
            else:
                rows = sum(p.shape[0] for p in parts)
                slab = self._ws(("slab", j, f), (rows, f))
                np.concatenate(parts, axis=0, out=slab)
                slabs[j] = slab
        partials: Dict[int, np.ndarray] = {}
        for r in local_ranks:
            g, j = self._coords(r)
            if j == 0:
                # The fiber leader's partial is donated to the all-reduce
                # below and escapes as the shared result: fresh buffer.
                partials[r] = spmm(self.a_slabs[r], slabs[j])
            else:
                # Non-leading partials are only read during the reduction
                # -- their output buffers are reused across epochs.
                g0, g1 = self.group_ranges[g]
                buf = self._ws(("part", r, f), (g1 - g0, f))
                partials[r] = spmm(self.a_slabs[r], slabs[j], out=buf)
        self._charge_spmm_cached(
            ("rsch", f),
            lambda: (
                (r, self.a_slabs[r].nnz, self.a_slabs[r].nrows, f)
                for r in range(self.p)
            ),
        )
        # Fiber all-reduces: global cached charges, local data movement.
        # The partials are freshly-owned per-rank SpMM outputs used
        # nowhere else, so the leading one is donated as the in-place
        # accumulator (NCCL-style).
        charges = self._cache.get(("farch", f))
        if charges is None:
            charges = self.rt.coll.allreduce_charges([
                (self._fiber_groups[g],
                 (self.group_ranges[g][1] - self.group_ranges[g][0])
                 * f * self.WB)
                for g in range(self.q)
            ])
            self._cache[("farch", f)] = charges
        self.rt.tracker.charge_many(Category.DCOMM, charges)
        rec = _spans.ACTIVE
        t0 = rec.clock() if rec is not None else 0.0
        out: Dict[int, np.ndarray] = {}
        for g in range(self.q):
            fiber = self._fiber_groups[g]
            contribs = {r: partials[r] for r in fiber if r in partials}
            if contribs:
                out.update(self.rt.coll.allreduce_data(
                    fiber, contribs, donate_first=True,
                ))
        if rec is not None:
            rec.record("allreduce", Category.DCOMM, t0, rec.clock())
        return out

    def _replicated_allreduce(
        self, values: Dict[int, np.ndarray]
    ) -> Dict[int, np.ndarray]:
        """Sum one contribution per group: concurrent per-column
        all-reduces, each column covering every group exactly once.
        Charges are global (sized from the local contribution's shape,
        identical on every rank) and replayed from a cached list; the
        data plane reduces only the columns this process has ranks in."""
        nbytes = int(next(iter(values.values())).nbytes)
        key = ("carch", nbytes)
        charges = self._cache.get(key)
        if charges is None:
            charges = self.rt.coll.allreduce_charges([
                (self._column_groups[j], nbytes) for j in range(self.c)
            ])
            self._cache[key] = charges
        self.rt.tracker.charge_many(Category.DCOMM, charges)
        rec = _spans.ACTIVE
        t0 = rec.clock() if rec is not None else 0.0
        out: Dict[int, np.ndarray] = {}
        for j in range(self.c):
            group = self._column_groups[j]
            contribs = {r: values[r] for r in group if r in values}
            if contribs:
                out.update(self.rt.coll.allreduce_data(group, contribs))
        if rec is not None:
            rec.record("allreduce", Category.DCOMM, t0, rec.clock())
        return out

    def _stored_dense_rows(self) -> int:
        return max(hi - lo for lo, hi in self.group_ranges)

    # ------------------------------------------------------------------ #
    # symbolic schedule emission (repro.simulate)
    # ------------------------------------------------------------------ #
    @classmethod
    def emit_comm_schedule(
        cls, graph, widths: Sequence[int], p: int, replication: int = 1,
        **_ignored,
    ):
        """Emit the replicated block-row epoch without building ranks.

        Mirrors ``_replicated_spmm`` (per-round slab broadcasts, partial
        SpMM, fiber all-reduce) and ``_replicated_allreduce`` (concurrent
        per-column reductions) phase for phase.
        """
        from repro.comm.tracker import Category
        from repro.simulate.schedule import (
            WB,
            GraphModel,
            ScheduleBuilder,
            emit_blockrow_epoch,
        )

        graph = GraphModel.coerce(graph)
        c = int(replication)
        if c < 1 or p % c != 0:
            raise ValueError(
                f"replication c={c} must divide the rank count P={p}"
            )
        if not graph.symmetric:
            raise ValueError(
                "the 1.5D algorithm requires a symmetric operand (A == A^T)"
            )
        n = graph.n
        q = p // c
        group_ranges = block_ranges(n, q)
        grows = np.array(
            [hi - lo for lo, hi in group_ranges], dtype=np.float64
        )
        subsets = block_ranges(q, c)
        # Per-rank slab nonzeros: cell (group g, replica column j) of the
        # q-way row split x the subsets' contiguous column ranges.
        col_bounds = [0] + [
            group_ranges[s1 - 1][1] if s1 > s0 else (
                group_ranges[s0][0] if s0 < q else n
            )
            for s0, s1 in subsets
        ]
        cells = graph.cell_nnz(q, np.asarray(col_bounds))  # (q, c)
        slab_nnz = cells.reshape(-1)  # rank order r = g * c + j
        rows_per_rank = np.repeat(grows, c)
        b = ScheduleBuilder(p)

        def replicated_spmm(f: int) -> None:
            max_rounds = max(s1 - s0 for s0, s1 in subsets)
            for t in range(max_rounds):
                sources = [
                    s0 + t for s0, s1 in subsets if t < s1 - s0
                ]
                b.broadcast(
                    Category.DCOMM, q,
                    grows[sources] * (f * WB),
                )
            b.spmm(slab_nnz, rows_per_rank, f)
            b.allreduce(Category.DCOMM, c, grows * (f * WB))

        def replicated_allreduce(nbytes: int) -> None:
            b.allreduce(Category.DCOMM, q, np.full(c, float(nbytes)))

        emit_blockrow_epoch(
            b, widths, rows_per_rank, replicated_spmm, replicated_spmm,
            replicated_allreduce,
        )
        return b.build(
            algorithm="1.5d", p=p, replication=c, graph=graph.name,
            widths=tuple(int(w) for w in widths),
        )
