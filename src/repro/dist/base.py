"""The shared skeleton of every distributed training algorithm.

All four CAGNET algorithm families (1D, 1.5D, 2D SUMMA, Split-3D) differ
only in *how* they lay out the adjacency/activation blocks and *which*
collectives move them; everything else -- the training loop, the weight
replicas and their redundant optimiser step, per-epoch ledger deltas, the
serial-equivalence verification, inference, and held-out evaluation -- is
identical.  :class:`DistAlgorithm` owns that shared machinery so each
``algo_*`` module only implements three hooks:

* ``_setup_data``   -- distribute features/labels onto the mesh;
* ``_run_epoch``    -- one full forward/loss/backward/update sweep,
  charging every data movement through :mod:`repro.comm.collectives` and
  every local kernel through the runtime's charge helpers;
* ``_forward_pass`` -- a forward-only sweep returning the assembled
  ``n x n_classes`` log-probabilities (inference, Section I's "all of our
  algorithms are applicable to GNN inference").

Weights are **replicated**: every virtual rank applies the same optimiser
update to the same gradient ("This step does not require communication",
Section III-D), which the simulation represents with a single canonical
:class:`~repro.nn.model.GCN` whose update each algorithm charges nothing
for.  The local block math reuses the exact serial kernels from
:mod:`repro.nn.layers`, which is what makes the paper's bit-close
verification (`verify_against_serial`) possible.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Sequence, Tuple, Union)

import numpy as np

from repro.analysis import sanitize as _sanitize
from repro.comm.collectives import _readonly, payload_nbytes
from repro.comm.plan import CommPlan
from repro.comm.runtime import Runtime, VirtualRuntime
from repro.dist.distribution import Distribution
from repro.comm.tracker import Category, CommTracker
from repro.config import FP64_BYTES
from repro.nn.activations import LogSoftmax, ReLU
from repro.nn.layers import forward_gemm, hidden_gradient, weight_gradient
from repro.nn.loss import accuracy, nll_loss
from repro.nn.model import GCN, SerialTrainer
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn import serialize as _serialize
from repro.obs import events as _events
from repro.obs import spans as _spans
from repro.sparse.csr import CSRMatrix
from repro.sparse.perfmodel import SpmmPerfModel

if TYPE_CHECKING:  # import would cycle: simulate -> dist -> simulate
    from repro.simulate.schedule import CommSchedule

__all__ = [
    "EpochStats",
    "DistTrainHistory",
    "DistAlgorithm",
    "BlockRowAlgorithm",
    "GridAlgorithm",
    "clone_optimizer",
]


def _emit_epoch_event(stats, replayed: bool = False) -> None:
    """Append one ``epoch`` event to the active event log (no-op when
    no log is enabled -- i.e. always inside SPMD workers, where the
    driver owns the log)."""
    if _events.ACTIVE is None:
        return
    data = {"epoch": int(stats.epoch), "loss": float(stats.loss),
            "train_accuracy": float(stats.train_accuracy)}
    if replayed:
        data["replayed"] = True
    _events.emit("epoch", **data)


def clone_optimizer(opt: Optimizer) -> Optimizer:
    """A fresh, state-free optimiser with the same hyper-parameters.

    Verification trains the serial reference and the distributed run from
    identical starting points; a shared (stateful) optimiser instance
    would couple the two trajectories.
    """
    if isinstance(opt, SGD):
        return SGD(lr=opt.lr, momentum=opt.momentum)
    if isinstance(opt, Adam):
        return Adam(lr=opt.lr, beta1=opt.beta1, beta2=opt.beta2, eps=opt.eps)
    raise TypeError(f"cannot clone optimiser of type {type(opt).__name__}")


@dataclass(frozen=True)
class EpochStats:
    """One training epoch's result plus its exact ledger delta.

    ``seconds_by_category`` is the bulk-synchronous **wall clock** the
    epoch added (slowest rank per step, per Fig. 3's convention);
    ``bytes_by_category`` sums exact bytes over all ranks;
    ``max_rank_comm_bytes`` is the paper's per-process metric.
    """

    epoch: int
    loss: float
    train_accuracy: float
    seconds_by_category: Dict[str, float]
    bytes_by_category: Dict[str, int]
    max_rank_comm_bytes: int

    @property
    def modeled_seconds(self) -> float:
        return sum(self.seconds_by_category.values())

    @property
    def dcomm_bytes(self) -> int:
        return self.bytes_by_category[Category.DCOMM]

    @property
    def scomm_bytes(self) -> int:
        return self.bytes_by_category[Category.SCOMM]

    @property
    def comm_bytes(self) -> int:
        """Total network traffic over all ranks (scomm + dcomm + trpose)."""
        return sum(self.bytes_by_category[c] for c in Category.COMM)


@dataclass
class DistTrainHistory:
    """Per-epoch records of one distributed training run."""

    epochs: List[EpochStats] = field(default_factory=list)

    @property
    def losses(self) -> List[float]:
        return [e.loss for e in self.epochs]

    @property
    def final_loss(self) -> float:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1].loss

    def _selected(self, skip_first: bool) -> List[EpochStats]:
        picked = self.epochs[1:] if skip_first and len(self.epochs) > 1 else self.epochs
        if not picked:
            raise ValueError("no epochs recorded")
        return picked

    def mean_breakdown(self, skip_first: bool = False) -> Dict[str, float]:
        """Mean per-epoch wall seconds per category (a Fig. 3 bar).

        ``skip_first=True`` drops epoch 0, which includes one-time
        distribution warm-up in real systems.
        """
        picked = self._selected(skip_first)
        return {
            c: sum(e.seconds_by_category[c] for e in picked) / len(picked)
            for c in Category.ALL
        }

    def mean_epoch_seconds(self, skip_first: bool = False) -> float:
        picked = self._selected(skip_first)
        return sum(e.modeled_seconds for e in picked) / len(picked)


class DistAlgorithm:
    """Base class: runtime + replicated weights + the shared training loop.

    Subclasses receive the forward-pass SpMM operand ``a_t`` (the paper's
    ``A^T``, equal to ``A`` for GCN-normalised undirected graphs) and the
    layer ``widths`` ``(f^0, ..., f^L)``.  The backward operand ``A`` is
    derived once here (transpose for directed inputs), mirroring
    :class:`repro.nn.model.SerialTrainer`'s ``a_t``/``a`` pair.
    """

    #: bytes per dense element; the reproduction executes in fp64.
    WB = FP64_BYTES

    def __init__(
        self,
        rt: Runtime,
        a_t: CSRMatrix,
        widths: Sequence[int],
        seed: int = 0,
        optimizer: Optional[Optimizer] = None,
        distribution: Optional[Distribution] = None,
    ):
        if a_t.nrows != a_t.ncols:
            raise ValueError(f"adjacency must be square, got {a_t.shape}")
        if distribution is not None and distribution.n != a_t.nrows:
            raise ValueError(
                f"distribution covers {distribution.n} vertices, "
                f"graph has {a_t.nrows}"
            )
        # Partition-aware layout: the operand is relabelled part-major
        # once, here; setup() relabels the dense inputs to match and the
        # prediction surface maps back, so callers never see internal
        # ids.  The block-row family additionally adopts the
        # distribution's per-rank row ranges (see DistGCN1D); the grid
        # families use the relabelling alone.
        self.distribution = distribution
        if distribution is not None:
            a_t = distribution.permute_matrix(a_t)
        self.rt = rt
        self.a_t = a_t
        self.n = a_t.nrows
        self.widths = tuple(int(w) for w in widths)
        self.seed = seed
        self.optimizer = optimizer if optimizer is not None else SGD(lr=0.1)
        self.model = GCN(self.widths, seed=seed)
        self.symmetric = self._is_symmetric(a_t)
        self.a = a_t if self.symmetric else a_t.transpose()
        self.perf = SpmmPerfModel.from_profile(rt.profile)
        self._ready = False
        self._labels_provisional = False
        self._features: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None
        self._mask: Optional[np.ndarray] = None
        self._mask_count = 0
        self._last_log_probs: Optional[np.ndarray] = None
        #: the last epoch's distributed output blocks, assembled lazily:
        #: on the process backend the assembly is a cross-process
        #: shipment, so paying it every epoch just to fill a cache that
        #: is usually never read would tax the scaling path.
        self._last_out_blocks = None
        self.relu = ReLU()
        self.logsm = LogSoftmax()
        #: the world group, interned once (every epoch reuses the tuple).
        self.world_group = self._plan().group(range(rt.size))
        # Backend locality: the data loops touch only `rt.local_ranks`
        # (every rank on the virtual backend; this process's ranks on the
        # multiprocess backend), while the charge paths stay global --
        # charging is pure structure, so every process keeps the complete
        # world ledger and the cross-backend ledger oracle can demand
        # byte-for-byte equality.
        self._local_set = frozenset(rt.local_ranks)
        self._spmd = len(self._local_set) != rt.size
        self._local_seq_cache: Dict[Any, Tuple[int, ...]] = {}
        #: steady-state scratch buffers; see :meth:`_ws`.
        self.workspace: Dict[Any, np.ndarray] = {}
        #: cached non-array epoch invariants (e.g. precomputed kernel
        #: charge lists); structure-dependent only, so never invalidated.
        self._cache: Dict[Any, Any] = {}
        # Per-epoch invariants hoisted out of the epoch loop: masked loss
        # row indices and output-layer one-hot gradients depend only on
        # (labels, mask, row ranges), fixed between setup() calls.
        self._loss_cache: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self._grad_cache: Dict[Tuple[int, int, int], np.ndarray] = {}
        #: fault-tolerance accounting, read back through the process
        #: backend's ``stats`` op: checkpoints this instance has written
        #: and the wall seconds they cost.
        self.checkpoints_written = 0
        self.checkpoint_seconds = 0.0

    # ------------------------------------------------------------------ #
    # hooks for subclasses
    # ------------------------------------------------------------------ #
    def _setup_data(self, features: np.ndarray) -> None:
        """Distribute the dense inputs onto the mesh."""
        raise NotImplementedError

    def _run_epoch(self) -> Tuple[float, float]:
        """One charged forward/loss/backward/update; returns (loss, acc)."""
        raise NotImplementedError

    def _forward_pass(self) -> np.ndarray:
        """Charged forward-only sweep; returns full ``n x f^L`` log-probs."""
        raise NotImplementedError

    def _stored_dense_rows(self) -> int:
        """Max dense rows any rank keeps resident (memory accounting)."""
        raise NotImplementedError

    def _stored_dense_width(self, f: int) -> int:
        """Resident columns of an ``f``-wide dense matrix per rank.

        Block-row layouts keep full rows (width ``f``); 2D/3D layouts
        override with their feature-column split.
        """
        return f

    @classmethod
    def emit_comm_schedule(cls, graph: Any, widths: Sequence[int], p: int,
                           **kwargs: Any) -> "CommSchedule":
        """Emit this family's symbolic per-epoch communication schedule.

        The scaling-simulator hook (:mod:`repro.simulate`): subclasses
        replay their epoch loop symbolically -- every collective with its
        group size and payload bytes, every charged local kernel -- into a
        :class:`repro.simulate.schedule.CommSchedule`, without
        instantiating ``p`` virtual ranks.  ``graph`` is anything
        :meth:`repro.simulate.schedule.GraphModel.coerce` accepts; keyword
        arguments mirror the constructor (``variant``, ``replication``,
        ``grid``, ``summa_block``).

        Contract (tested): a schedule emitted from the actual adjacency
        predicts one executed ``train_epoch`` ledger delta byte for byte.
        """
        raise NotImplementedError(
            f"{cls.__name__} does not emit communication schedules"
        )

    # ------------------------------------------------------------------ #
    # fast-path plumbing: comm plan, workspaces, replica dedup
    # ------------------------------------------------------------------ #
    def _plan(self) -> CommPlan:
        """The runtime's communication plan (shared with its collectives).

        Group membership, split boundaries, and SUMMA stage structure are
        interned here once per ``setup()`` instead of re-derived every
        epoch; collectives routed through the same plan hit the caches.
        """
        return self.rt.plan

    def _is_local(self, rank: int) -> bool:
        """Does this process hold ``rank``'s buffers?  (Virtual: always.)"""
        return not self._spmd or rank in self._local_set

    def _local(self, ranks) -> Tuple[int, ...]:
        """Order-preserving restriction of ``ranks`` to the local ranks.

        Interned per input (the epoch loops pass the same group tuples
        every epoch).  The identity on the virtual backend.
        """
        key = ranks if type(ranks) is tuple else tuple(ranks)
        cached = self._local_seq_cache.get(key)
        if cached is None:
            cached = (key if not self._spmd
                      else tuple(r for r in key if r in self._local_set))
            self._local_seq_cache[key] = cached
        return cached

    def _ws(self, key, shape: Tuple[int, ...]) -> np.ndarray:
        """A reusable scratch array owned by this algorithm.

        Steady-state epochs reuse the same buffers (zero fresh
        allocations for gather targets, SUMMA accumulators, slab
        concatenations).  Keys must encode enough context (role, layer,
        group) that no two *live* uses share a buffer; contents are
        whatever the previous epoch left, so callers fully overwrite.

        Deliberately **per-algorithm**, not the runtime-level
        :meth:`CommPlan.workspace`: two algorithm instances sharing one
        runtime would collide on plan-held scratch keyed only by
        (role, shape), silently corrupting each other's live buffers.
        """
        wkey = (key, shape)
        buf = self.workspace.get(wkey)
        if buf is None:
            buf = np.empty(shape)
            self.workspace[wkey] = buf
        return buf

    @staticmethod
    def _obs_call(_obs_name, _obs_cat, _obs_fn, *args, **kwargs):
        """Run ``_obs_fn`` under a wall-clock span when tracing is enabled.

        With tracing off (the default) this is a plain call -- one global
        read and one ``is None`` test of overhead.  The span wraps only
        the *data-plane* call, never the ledger charges, so traced runs
        stay bit-identical.  The positional parameters carry an ``_obs``
        prefix so they cannot collide with keyword arguments forwarded to
        the wrapped call (several collectives take ``category=``).
        """
        rec = _spans.ACTIVE
        if rec is None:
            return _obs_fn(*args, **kwargs)
        t0 = rec.clock()
        out = _obs_fn(*args, **kwargs)
        rec.record(_obs_name, _obs_cat, t0, rec.clock())
        return out

    def _broadcast_routed(self, key, routes, blocks, category: str,
                          pipelined: bool = True, nbytes=None) -> list:
        """Concurrent broadcasts along precomputed ``(group, root)``
        routes, with the (static) charges replayed from the cache.

        The payload shapes along a route are fixed at setup, so the full
        per-rank charge list is computed once via
        :meth:`Collectives.broadcast_charges_sized` and replayed with
        ``charge_many`` on later epochs -- identical ledger entries.
        ``nbytes(root)`` supplies the wire size of a route's payload from
        structure alone; without it the payload itself is sized (only
        valid when every root's payload is present, i.e. static operand
        dicts).  Returns the received payload per route (shared read-only
        views); routes with no local member yield ``None`` on the
        multiprocess backend.
        """
        charges = self._cache.get(key)
        if charges is None:
            charges = self.rt.coll.broadcast_charges_sized(
                [(group, root,
                  nbytes(root) if nbytes is not None
                  else payload_nbytes(blocks[root]))
                 for group, root in routes],
                pipelined,
            )
            self._cache[key] = charges
        self.rt.tracker.charge_many(category, charges)
        return self._obs_call(
            "bcast", category, self.rt.coll.routed_broadcast_data,
            routes, blocks,
        )

    def _sendrecv_routed(self, key, pairs, payloads, category: str,
                         nbytes=None) -> list:
        """Point-to-point exchange along precomputed ``(src, dst)`` pairs
        with cached charge replay; returns what each ``dst`` receives
        (``None`` for non-local destinations on the multiprocess
        backend).  ``nbytes(src, dst)`` supplies structural wire sizes,
        as in :meth:`_broadcast_routed`."""
        charges = self._cache.get(key)
        if charges is None:
            charges = self.rt.coll.sendrecv_charges_sized(
                [(src, dst,
                  nbytes(src, dst) if nbytes is not None
                  else payload_nbytes(payloads[src]))
                 for src, dst in pairs]
            )
            self._cache[key] = charges
        self.rt.tracker.charge_many(category, charges)
        out = self._obs_call(
            "sendrecv", category, self.rt.coll.routed_sendrecv_data,
            pairs, payloads,
        )
        san = _sanitize.ACTIVE
        if san is not None:
            # Point-to-point routes are exact-accounting: the nbytes on
            # the dst charge entries must equal the payload bytes the
            # data plane actually delivered to local ranks (self-sends
            # are uncharged and pass the payload through).
            san.check_exchange(
                f"sendrecv:{key!r}",
                sum(c[2] for c in charges if self._is_local(c[0])),
                sum(payload_nbytes(got)
                    for (src, dst), got in zip(pairs, out)
                    if src != dst and got is not None),
            )
        return out

    @staticmethod
    def _map_blocks(blocks: Dict[int, np.ndarray],
                    fn: Callable[[np.ndarray], np.ndarray]) -> Dict[int, np.ndarray]:
        """Apply ``fn`` once per *distinct* block object.

        Replicated layouts hand several ranks the same buffer (1.5D
        fiber replicas after the copy-on-write all-reduce, grid row
        groups after a row all-gather).  Identical inputs give identical
        outputs, so the redundant replica compute is executed once and
        the result shared -- numerics and per-rank charges unchanged
        (charge helpers still iterate every rank).
        """
        memo: Dict[int, np.ndarray] = {}
        out: Dict[int, np.ndarray] = {}
        for r, block in blocks.items():
            key = id(block)
            res = memo.get(key)
            if res is None:
                res = fn(block)
                memo[key] = res
            out[r] = res
        return out

    @staticmethod
    def _dedup(ranks, key_fn: Callable[[int], Any],
               compute_fn: Callable[[int], np.ndarray]) -> Dict[int, np.ndarray]:
        """Per-rank results computed once per distinct ``key_fn(rank)``."""
        memo: Dict[Any, np.ndarray] = {}
        out: Dict[int, np.ndarray] = {}
        for r in ranks:
            key = key_fn(r)
            res = memo.get(key)
            if res is None:
                res = compute_fn(r)
                memo[key] = res
            out[r] = res
        return out

    # ------------------------------------------------------------------ #
    # distribution relabelling (identity when no distribution is set)
    # ------------------------------------------------------------------ #
    def _to_internal(self, x: np.ndarray) -> np.ndarray:
        """Rows reordered into the internal (part-major) vertex order."""
        if self.distribution is None:
            return x
        return self.distribution.permute_rows(x)

    def _from_internal(self, x: np.ndarray) -> np.ndarray:
        """Rows mapped back to the caller's original vertex order."""
        if self.distribution is None:
            return x
        return self.distribution.unpermute_rows(x)

    # ------------------------------------------------------------------ #
    # static helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _is_symmetric(a: CSRMatrix) -> bool:
        """Exact structural + numerical symmetry check (``A == A^T``)."""
        t = a.transpose()
        return (
            a.shape == t.shape
            and np.array_equal(a.indptr, t.indptr)
            and np.array_equal(a.indices, t.indices)
            and np.array_equal(a.data, t.data)
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def setup(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """Validate and distribute the training inputs."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape != (self.n, self.widths[0]):
            raise ValueError(
                f"features shape {features.shape} does not match "
                f"(n={self.n}, f^0={self.widths[0]})"
            )
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (self.n,):
            raise ValueError(f"labels shape {labels.shape} != ({self.n},)")
        if mask is None:
            mask = np.ones(self.n, dtype=bool)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n,):
            raise ValueError(f"mask shape {mask.shape} != ({self.n},)")
        count = int(mask.sum())
        if count == 0:
            raise ValueError("empty training mask")
        # Internal state lives in the distribution's part-major order.
        features = self._to_internal(features)
        labels = self._to_internal(labels)
        mask = self._to_internal(mask)
        self._features = features
        self._labels = labels
        self._mask = mask
        self._mask_count = count
        # New labels/mask invalidate the hoisted per-epoch invariants.
        self._loss_cache.clear()
        self._grad_cache.clear()
        self._setup_data(features)
        self._ready = True
        self._labels_provisional = False

    def train_epoch(self, epoch: int = 0) -> EpochStats:
        """Run one charged training epoch; returns stats + ledger delta."""
        if not self._ready or self._labels_provisional:
            raise RuntimeError("call setup(features, labels) before training")
        tracker = self.rt.tracker
        # Compact ledger mark: only wall seconds and per-rank byte
        # counters are needed for the epoch delta -- a full
        # ``tracker.snapshot()`` deep copy per epoch was measurable
        # overhead at higher rank counts.
        before_wall = dict(tracker.wall)
        before_bytes = [
            {c: t.bytes for c, t in rank.items()}
            for rank in tracker.per_rank
        ]
        loss, acc = self._run_epoch()
        san = _sanitize.ACTIVE
        if san is not None:
            # Re-hash the copy-on-write receipts handed out this epoch:
            # the writeable flag stops receivers, this catches senders
            # writing through a buffer their peers still alias.
            san.verify_cow(f"end of epoch {epoch}")
        return self._stats_since_marks(
            before_wall, before_bytes, epoch, loss, acc
        )

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        mask: Optional[np.ndarray] = None,
        on_epoch: Optional[Callable[["EpochStats"], None]] = None,
        checkpoint_path: Optional[Union[str, "os.PathLike[str]"]] = None,
        checkpoint_every: int = 0,
        resume: bool = False,
        checkpoint_writer: bool = True,
    ) -> DistTrainHistory:
        """Full-batch training for ``epochs`` epochs (sets up first).

        ``on_epoch``, when given, is called with each epoch's
        :class:`EpochStats` as it completes -- the process backend's
        resident workers use it to report liveness (and, under paranoid
        mode, per-epoch ledger digests) from inside the loop.

        With ``checkpoint_path`` and ``checkpoint_every=k``, the full
        training state -- weights, optimizer moments, completed-epoch
        counter, ledger state, and per-epoch history -- is written
        atomically every ``k`` epochs (SPMD pools set
        ``checkpoint_writer`` on exactly one worker so only one process
        writes the shared file).  ``resume=True`` restores that state
        before the loop: the already-completed epochs are replayed from
        the checkpoint's history (``on_epoch`` still fires for them, so
        callbacks see the full epoch stream) and live training
        continues from the next epoch with a ledger that proceeds
        byte-for-byte as if the run had never stopped.
        """
        self.setup(features, labels, mask)
        history = DistTrainHistory()
        start = 0
        if (resume and checkpoint_path is not None
                and os.path.exists(checkpoint_path)):
            start = self._restore_checkpoint(checkpoint_path, history)
            for stats in history.epochs:
                _emit_epoch_event(stats, replayed=True)
                if on_epoch is not None:
                    on_epoch(stats)
        rec = _spans.ACTIVE
        for epoch in range(start, epochs):
            if rec is None:
                stats = self.train_epoch(epoch)
            else:
                t0 = rec.clock()
                stats = self.train_epoch(epoch)
                rec.record("epoch", "epoch", t0, rec.clock(), (epoch,))
            history.epochs.append(stats)
            _emit_epoch_event(stats)
            # Checkpoint before on_epoch so injected faults that fire at
            # the epoch-boundary callback happen strictly after the save
            # -- the state a recovery reloads is exactly this boundary.
            if (checkpoint_writer and checkpoint_every > 0
                    and checkpoint_path is not None
                    and (epoch + 1) % checkpoint_every == 0):
                self._write_checkpoint(checkpoint_path, history)
            if on_epoch is not None:
                on_epoch(stats)
        return history

    def _write_checkpoint(self, path, history: DistTrainHistory) -> None:
        """Atomically persist full training state at an epoch boundary."""
        rec = _spans.ACTIVE
        t0c = rec.clock() if rec is not None else None
        t_start = time.monotonic()
        stats = history.epochs
        ncat = len(Category.ALL)
        hist = {
            "loss": np.asarray([s.loss for s in stats], dtype=np.float64),
            "acc": np.asarray([s.train_accuracy for s in stats],
                              dtype=np.float64),
            "seconds": np.asarray(
                [[s.seconds_by_category[c] for c in Category.ALL]
                 for s in stats], dtype=np.float64
            ).reshape(len(stats), ncat),
            "bytes": np.asarray(
                [[s.bytes_by_category[c] for c in Category.ALL]
                 for s in stats], dtype=np.int64
            ).reshape(len(stats), ncat),
            "maxrank": np.asarray([s.max_rank_comm_bytes for s in stats],
                                  dtype=np.int64),
            "epoch": np.asarray([s.epoch for s in stats], dtype=np.int64),
        }
        _serialize.save_checkpoint(
            path,
            weights=self.model.weights,
            optimizer=self.optimizer,
            epoch=len(stats),
            tracker_state=self.rt.tracker.state_bytes(),
            categories=Category.ALL,
            history=hist,
        )
        self.checkpoints_written += 1
        self.checkpoint_seconds += time.monotonic() - t_start
        _events.emit("checkpoint", path=str(path), epochs=len(stats))
        if rec is not None:
            rec.record("checkpoint", "misc", t0c, rec.clock(),
                       (len(stats),))

    def _restore_checkpoint(self, path,
                            history: DistTrainHistory) -> int:
        """Install a checkpoint's state; returns the epochs completed.

        Runs after :meth:`setup` (which re-charges the distribution
        cost), so the ledger is *overwritten* with the saved state: the
        resumed run's ledger continues from the checkpoint and the
        final digest matches a never-interrupted run's byte for byte.
        """
        state = _serialize.load_checkpoint(path)
        if tuple(state["categories"]) != tuple(Category.ALL):
            raise ValueError(
                f"checkpoint {path} was written with ledger categories "
                f"{state['categories']}, this build uses "
                f"{list(Category.ALL)}")
        self.model.set_weights(
            [np.array(w, copy=True) for w in state["weights"]])
        _serialize.restore_optimizer(
            self.optimizer, state["optimizer"], state["opt_arrays"])
        if state["tracker_state"] is not None:
            self.rt.tracker.restore_state_bytes(state["tracker_state"])
        hist = state["history"]
        for i in range(state["epoch"]):
            seconds = {c: float(hist["seconds"][i, j])
                       for j, c in enumerate(Category.ALL)}
            nbytes = {c: int(hist["bytes"][i, j])
                      for j, c in enumerate(Category.ALL)}
            history.epochs.append(EpochStats(
                epoch=int(hist["epoch"][i]),
                loss=float(hist["loss"][i]),
                train_accuracy=float(hist["acc"][i]),
                seconds_by_category=seconds,
                bytes_by_category=nbytes,
                max_rank_comm_bytes=int(hist["maxrank"][i]),
            ))
        return int(state["epoch"])

    def predict(self, features: Optional[np.ndarray] = None) -> np.ndarray:
        """Distributed inference: log-probabilities for every vertex.

        Pays only the forward pass's communication.  With ``features``
        given, the inputs are (re)distributed first; otherwise the last
        ``setup``/``fit`` inputs are reused.
        """
        if features is not None:
            if self._ready:
                # Redistribute the inputs but keep the training labels
                # and mask intact (inference must not corrupt training).
                features = np.asarray(features, dtype=np.float64)
                if features.shape != (self.n, self.widths[0]):
                    raise ValueError(
                        f"features shape {features.shape} does not match "
                        f"(n={self.n}, f^0={self.widths[0]})"
                    )
                features = self._to_internal(features)
                self._features = features
                self._setup_data(features)
            else:
                # Inference-only setup: placeholder labels, flagged so a
                # later train_epoch() insists on real ones.
                self.setup(features, np.zeros(self.n, dtype=np.int64))
                self._labels_provisional = True
        elif not self._ready:
            raise RuntimeError("call setup(features, labels) or pass features")
        log_probs = self._from_internal(self._forward_pass())
        self._last_log_probs = log_probs
        self._last_out_blocks = None
        return log_probs

    def evaluate(
        self, labels: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> Tuple[float, float]:
        """Held-out (masked) loss and accuracy with the current weights."""
        log_probs = self.predict()
        loss, _ = nll_loss(log_probs, labels, mask)
        return loss, accuracy(log_probs, labels, mask)

    def _set_epoch_output(self, blocks) -> None:
        """Record an epoch's output blocks for lazy assembly.

        On the process backend the lazy read-out is a *collective*
        (``rt.gather_blocks``), so it must run on every worker in the
        same program position -- which the command fan-out guarantees.
        """
        self._last_out_blocks = blocks
        self._last_log_probs = None

    def gather_log_probs(self) -> np.ndarray:
        """The most recent forward pass's full output (verification view).

        Reassembled from the distributed blocks without charging the
        ledger -- the read-out a driver script would do once at the end,
        deferred until someone actually asks.
        """
        if self._last_log_probs is None:
            if self._last_out_blocks is None:
                raise RuntimeError(
                    "no forward pass has run yet; call fit/predict"
                )
            self._last_log_probs = self._from_internal(
                self._assemble(self._last_out_blocks)
            )
        return self._last_log_probs

    def verify_against_serial(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        seed: Optional[int] = None,
        mask: Optional[np.ndarray] = None,
    ) -> float:
        """Train serially and distributed from identical weights; return
        the largest divergence observed.

        This is the paper's correctness claim ("outputs the same
        embeddings up to floating point accumulation errors"): the metric
        is the max over per-epoch loss differences, final weight
        differences, and final log-probability differences.
        """
        seed = self.seed if seed is None else seed
        serial = SerialTrainer(
            GCN(self.widths, seed=seed),
            self.a_t,
            a=self.a,
            optimizer=clone_optimizer(self.optimizer),
        )
        # ``self.a_t`` is the internal operand (relabelled when a
        # distribution is set), so the serial reference consumes the
        # internally-ordered inputs and its predictions map back.
        s_features = self._to_internal(
            np.asarray(features, dtype=np.float64)
        )
        s_labels = self._to_internal(np.asarray(labels, dtype=np.int64))
        s_mask = None if mask is None else self._to_internal(
            np.asarray(mask, dtype=bool)
        )
        s_hist = serial.train(s_features, s_labels, epochs, mask=s_mask)
        s_lp = self._from_internal(serial.model.predict(self.a_t, s_features))

        self.model = GCN(self.widths, seed=seed)
        self.optimizer = clone_optimizer(self.optimizer)
        d_hist = self.fit(features, labels, epochs, mask=mask)
        d_lp = self.predict()

        diff = max(
            abs(a - b) for a, b in zip(d_hist.losses, [e.loss for e in s_hist.epochs])
        )
        for w_d, w_s in zip(self.model.weights, serial.model.weights):
            diff = max(diff, float(np.max(np.abs(w_d - w_s))) if w_d.size else 0.0)
        diff = max(diff, float(np.max(np.abs(d_lp - s_lp))))
        return diff

    def dense_memory_words_per_rank(self) -> int:
        """Resident dense words on the most loaded rank (Section V-C).

        Counts the per-layer activation stack (``H``, the cached SpMM
        result ``T``/``Z``, and the gradient working set) at the rank's
        stored row count, plus the replicated weights.
        """
        rows = self._stored_dense_rows()
        acts = sum(
            self._stored_dense_width(self.widths[l])
            + 2 * self._stored_dense_width(self.widths[l + 1])
            for l in range(len(self.widths) - 1)
        )
        weights = sum(
            self.widths[l] * self.widths[l + 1]
            for l in range(len(self.widths) - 1)
        )
        return rows * acts + weights

    # ------------------------------------------------------------------ #
    # shared charging helpers (every charge sits in a step scope so the
    # bulk-synchronous wall clock and the step tracer see it)
    # ------------------------------------------------------------------ #
    def _charge_spmm_step(self, charges: Sequence[Tuple[int, int, int, int]]) -> None:
        """Charge concurrent local SpMM kernels: (rank, nnz, nrows, f)."""
        self.rt.tracker.charge_many(Category.SPMM, [
            (rank, self.perf.seconds(int(nnz), int(nrows), int(f)), 0, 0,
             2 * int(nnz) * int(f))
            for rank, nnz, nrows, f in charges
        ])

    def _charge_spmm_cached(self, key, builder) -> None:
        """Charge a static SpMM sweep from a precomputed charge list.

        ``builder()`` yields the same ``(rank, nnz, nrows, f)`` tuples
        every epoch (block structure is fixed at setup), so the modeled
        seconds and flop counts are computed once and replayed from the
        cache -- identical charges, none of the per-epoch list building.
        """
        items = self._cache.get(key)
        if items is None:
            items = [
                (rank, self.perf.seconds(int(nnz), int(nrows), int(f)),
                 0, 0, 2 * int(nnz) * int(f))
                for rank, nnz, nrows, f in builder()
            ]
            self._cache[key] = items
        self.rt.tracker.charge_many(Category.SPMM, items)

    def _gemm_seconds(self, flops: float) -> float:
        profile = self.rt.profile
        return flops / profile.gemm_flops + profile.kernel_launch_overhead

    def _charge_gemm_step(self, charges: Sequence[Tuple[int, float]]) -> None:
        """Charge concurrent local GEMMs: (rank, flops)."""
        self.rt.tracker.charge_many(Category.MISC, [
            (rank, self._gemm_seconds(flops), 0, 0, int(flops))
            for rank, flops in charges
        ])

    def _charge_gemm_cached(self, key, builder) -> None:
        """Charge a static GEMM sweep from a precomputed charge list."""
        items = self._cache.get(key)
        if items is None:
            items = [
                (rank, self._gemm_seconds(flops), 0, 0, int(flops))
                for rank, flops in builder()
            ]
            self._cache[key] = items
        self.rt.tracker.charge_many(Category.MISC, items)

    def _charge_elementwise_step(self, charges: Sequence[Tuple[int, float]]) -> None:
        """Charge concurrent elementwise kernels: (rank, bytes touched)."""
        profile = self.rt.profile
        bw = profile.memory_bandwidth
        overhead = profile.kernel_launch_overhead
        self.rt.tracker.charge_many(Category.MISC, [
            (rank, int(nbytes) / bw + overhead, 0, 0, 0)
            for rank, nbytes in charges
        ])

    def _charge_transpose_step(self, charges: Sequence[Tuple[int, int]],
                               key=None) -> None:
        """Charge a concurrent pairwise transpose exchange: (rank, bytes).

        The exchange bytes are fixed at setup, so call sites pass a
        ``key`` and the charge list replays from the cache each epoch.
        """
        items = self._cache.get(key) if key is not None else None
        if items is None:
            profile = self.rt.profile
            alpha, beta = profile.alpha, profile.beta
            items = [
                (rank, alpha + beta * int(nbytes), int(nbytes), 1, 0)
                for rank, nbytes in charges
            ]
            if key is not None:
                self._cache[key] = items
        self.rt.tracker.charge_many(Category.TRPOSE, items)

    def _loss_rows(self, rows_lo: int, rows_hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """(masked local row indices, their labels) for a row range, cached.

        Depends only on the fixed labels/mask, so it is derived once per
        ``setup()`` per range instead of once per rank per epoch.
        """
        key = (rows_lo, rows_hi)
        cached = self._loss_cache.get(key)
        if cached is None:
            rows = np.flatnonzero(self._mask[rows_lo:rows_hi])
            cached = (rows, self._labels[rows_lo:rows_hi][rows])
            self._loss_cache[key] = cached
        return cached

    def _masked_loss_terms(
        self, rows_lo: int, rows_hi: int, log_probs_rows: np.ndarray
    ) -> np.ndarray:
        """Local ``[sum_picked, correct]`` contribution for a row range."""
        rows, labels = self._loss_rows(rows_lo, rows_hi)
        if rows.size == 0:
            return np.zeros(2)
        picked = log_probs_rows[rows, labels]
        correct = np.count_nonzero(
            log_probs_rows[rows].argmax(axis=1) == labels
        )
        return np.array([float(picked.sum()), float(correct)])

    def _grad_out_rows(self, rows_lo: int, rows_hi: int, f_out: int) -> np.ndarray:
        """``dL/d log_probs`` for a row range of the output layer.

        The label one-hot is constant across epochs, so it is built once
        per (range, width) and returned read-only (every consumer --
        ``LogSoftmax.backward`` -- is pure).
        """
        key = (rows_lo, rows_hi, f_out)
        grad = self._grad_cache.get(key)
        if grad is None:
            rows, labels = self._loss_rows(rows_lo, rows_hi)
            grad = np.zeros((rows_hi - rows_lo, f_out))
            grad[rows, labels] = -1.0 / self._mask_count
            grad.flags.writeable = False
            self._grad_cache[key] = grad
        return grad

    def _finish_loss(self, totals: np.ndarray) -> Tuple[float, float]:
        """Turn an all-reduced ``[sum_picked, correct]`` into (loss, acc)."""
        loss = -float(totals[0]) / self._mask_count
        acc = float(totals[1]) / self._mask_count
        return loss, acc

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _charge_elementwise_cached(self, key, builder) -> None:
        """Charge a static elementwise sweep from a precomputed list."""
        items = self._cache.get(key)
        if items is None:
            profile = self.rt.profile
            bw = profile.memory_bandwidth
            overhead = profile.kernel_launch_overhead
            items = [
                (rank, int(nbytes) / bw + overhead, 0, 0, 0)
                for rank, nbytes in builder()
            ]
            self._cache[key] = items
        self.rt.tracker.charge_many(Category.MISC, items)

    def _stats_since_marks(
        self,
        before_wall: Dict[str, float],
        before_bytes: List[Dict[str, int]],
        epoch: int,
        loss: float,
        acc: float,
    ) -> EpochStats:
        tracker = self.rt.tracker
        seconds = {
            c: tracker.wall.get(c, 0.0) - before_wall.get(c, 0.0)
            for c in Category.ALL
        }
        nbytes = {c: 0 for c in Category.ALL}
        max_rank = 0
        for r in range(tracker.nranks):
            rank_now = tracker.per_rank[r]
            rank_before = before_bytes[r]
            comm = 0
            for c in Category.ALL:
                delta = rank_now[c].bytes - rank_before.get(c, 0)
                nbytes[c] += delta
                if c in Category.COMM:
                    comm += delta
            if comm > max_rank:
                max_rank = comm
        return EpochStats(
            epoch=epoch,
            loss=loss,
            train_accuracy=acc,
            seconds_by_category=seconds,
            bytes_by_category=nbytes,
            max_rank_comm_bytes=int(max_rank),
        )


class BlockRowAlgorithm(DistAlgorithm):
    """The block-row family's shared epoch (1D and 1.5D).

    Both algorithms keep complete dense rows on every rank, so their
    forward sweep, loss reduction, and backward recursion are the same
    program; they differ only in *which collective* realises the SpMM
    and which group replicates scalars/gradients.  Subclasses provide:

    * ``_block_ranks``           -- the ranks holding dense row blocks;
    * ``_row_range(rank)``       -- the global rows a rank owns;
    * ``_forward_spmm(blocks, f)``  / ``_backward_spmm(blocks, f)``
      -- charged distributed ``A^T X`` / ``A X`` sweeps;
    * ``_replicated_allreduce(values)`` -- the sum that leaves every
      rank with an identical copy (loss terms, weight gradients);
    * ``_assemble(blocks)``      -- uncharged full-matrix read-out;
    * ``_pre_backward()``        -- optional per-epoch charge hook
      (the 1D transpose variant's exchange).
    """

    def _row_range(self, rank: int) -> Tuple[int, int]:
        raise NotImplementedError

    def _rows_of(self, rank: int) -> int:
        """Dense rows ``rank`` holds -- structure, hence backend-global."""
        lo, hi = self._row_range(rank)
        return hi - lo

    @property
    def _local_block_ranks(self) -> Tuple[int, ...]:
        """The locally-held block ranks (all of them on the virtual
        backend) -- the data loops iterate these; charges stay global."""
        return self._local(self._block_ranks)

    def _forward_spmm(self, blocks, f: int):
        raise NotImplementedError

    def _backward_spmm(self, blocks, f: int):
        raise NotImplementedError

    def _replicated_allreduce(self, values):
        raise NotImplementedError

    def _assemble(self, blocks) -> np.ndarray:
        raise NotImplementedError

    def _pre_backward(self) -> None:
        """Per-epoch charges before the backward recursion (default none)."""

    # ------------------------------------------------------------------ #
    def _charge_rows_gemm(self, key, flops_per_row: float) -> None:
        """Charge a GEMM over every block rank at ``rows x flops/row``.

        Built from block structure (``_rows_of``), not from the data
        dicts -- a multiprocess worker holds only its own ranks' blocks
        but must still replay the full world's charges.
        """
        self._charge_gemm_cached(
            key,
            lambda: ((r, self._rows_of(r) * flops_per_row)
                     for r in self._block_ranks),
        )

    def _charge_rows_elementwise(self, key, bytes_per_row: float) -> None:
        """Structural elementwise charge over every block rank."""
        self._charge_elementwise_cached(
            key,
            lambda: ((r, self._rows_of(r) * bytes_per_row)
                     for r in self._block_ranks),
        )

    def _forward_layers(self, h_blocks):
        """Shared forward sweep; returns output blocks + per-layer caches.

        Local kernels run through :meth:`_map_blocks`: replicated layouts
        (1.5D) hand every fiber replica the same buffer, so the identical
        replica compute executes once while every rank is still charged.
        """
        caches = []
        for l, layer in enumerate(self.model.layers):
            f_in, f_out = layer.f_in, layer.f_out
            weight = layer.weight
            t_blocks = self._obs_call(
                "spmm.fwd", "spmm", self._forward_spmm, h_blocks, f_in
            )
            z_blocks = self._map_blocks(
                t_blocks, lambda t: forward_gemm(t, weight)
            )
            self._charge_rows_gemm(("cbg", l), 2.0 * f_in * f_out)
            # Rows are complete locally, so even log_softmax is local.
            h_blocks = self._map_blocks(z_blocks, layer.activation.forward)
            self._charge_rows_elementwise(("cbf", l), 2.0 * f_out * self.WB)
            caches.append({"t": t_blocks, "z": z_blocks})
        return h_blocks, caches

    def _forward_pass(self) -> np.ndarray:
        out_blocks, _ = self._forward_layers(self._h0)
        return self._assemble(out_blocks)

    def _run_epoch(self) -> Tuple[float, float]:
        out_blocks, caches = self._forward_layers(self._h0)
        self._set_epoch_output(out_blocks)
        f_last = self.widths[-1]
        ranks = self._local_block_ranks

        # ---- loss: one scalar-sized replicated all-reduce ----
        terms = self._dedup(
            ranks,
            lambda r: id(out_blocks[r]),
            lambda r: self._masked_loss_terms(*self._row_range(r),
                                              out_blocks[r]),
        )
        totals = self._replicated_allreduce(terms)
        loss, acc = self._finish_loss(next(iter(totals.values())))

        # ---- backward ----
        z_last = caches[-1]["z"]

        def grad_out(r: int) -> np.ndarray:
            lo, hi = self._row_range(r)
            return self.logsm.backward(
                z_last[r], self._grad_out_rows(lo, hi, f_last)
            )

        g_blocks = self._dedup(ranks, lambda r: id(z_last[r]), grad_out)
        self._charge_rows_elementwise(("cbe-out",), 3.0 * f_last * self.WB)
        self._pre_backward()

        grads: List[Optional[np.ndarray]] = [None] * self.model.num_layers
        for l in range(self.model.num_layers - 1, -1, -1):
            layer = self.model.layers[l]
            f_in, f_out = layer.f_in, layer.f_out
            # A G^l is computed (and charged) at every layer, including
            # l = 0 where grad_h is unused -- mirroring the serial layer
            # kernel and the Model1D/Model2D charge patterns, which
            # follow the paper's AG^l-reuse implementation.
            ag_blocks = self._obs_call(
                "spmm.bwd", "spmm", self._backward_spmm, g_blocks, f_out
            )
            # Y^l = sum_i T_i^T G_i, all-reduced so W's update is replicated.
            t_l = caches[l]["t"]
            partials = self._dedup(
                ranks,
                lambda r: (id(t_l[r]), id(g_blocks[r])),
                lambda r: weight_gradient(t_l[r], g_blocks[r]),
            )
            self._charge_rows_gemm(("cbw", l), 2.0 * f_in * f_out)
            y = self._replicated_allreduce(partials)
            grads[l] = next(iter(y.values()))
            if l > 0:
                weight = layer.weight
                gh_blocks = self._map_blocks(
                    ag_blocks, lambda ag: hidden_gradient(ag, weight)
                )
                self._charge_rows_gemm(("cbh", l), 2.0 * f_out * f_in)
                z_prev = caches[l - 1]["z"]
                backward = self.model.layers[l - 1].activation.backward
                g_blocks = self._dedup(
                    ranks,
                    lambda r: (id(z_prev[r]), id(gh_blocks[r])),
                    lambda r: backward(z_prev[r], gh_blocks[r]),
                )
                self._charge_rows_elementwise(("cbb", l), 3.0 * f_in * self.WB)
        self.optimizer.step(self.model.weights, grads)
        return loss, acc


class GridAlgorithm(DistAlgorithm):
    """The 2D-layout family's shared epoch (2D SUMMA and Split-3D).

    Both algorithms split the feature columns of every dense matrix
    across "row groups" of ranks that jointly hold complete rows, so
    the replicated-weight GEMMs, the Equation-3 weight gradient, the
    last-layer row all-gather for log_softmax, the column-0 loss terms,
    and the backward recursion are the same program; they differ only
    in the distributed SpMM itself and in the mesh's group enumeration.
    Subclasses provide:

    * ``_grid_spmm(sparse_blocks, dense_blocks, f)`` -- the charged
      distributed SpMM sweep (SUMMA / Split-3D);
    * ``_row_groups()`` -- rank tuples sharing the same global rows,
      each ordered by feature-column index (so ``group[t]`` owns the
      ``t``-th feature-column block);
    * ``_out_col(rank)`` / ``_rank_rows(rank)`` -- a rank's feature
      -column index and its global row range;
    * ``_fsplit(f)`` -- the feature-column split;
    * ``_charge_epoch_transpose()`` -- the per-epoch ``trpose`` charge
      policy (2D: always; 3D: directed operands only);
    * ``_assemble(out_full)`` -- uncharged full-output read-out;
    * ``a_t_blocks`` / ``a_blocks`` -- the distributed sparse operands.
    """

    def _grid_spmm(self, sparse_blocks, dense_blocks, f: int,
                   ws_key=None):
        raise NotImplementedError

    def _row_groups(self):
        raise NotImplementedError

    @property
    def _row_group_list(self):
        """The row groups, enumerated once and interned in the plan.

        ``_row_groups()`` builds fresh tuples on every call; the grid
        epoch consults the groups once per SUMMA stage, so the list is
        derived once per algorithm instead.
        """
        groups = getattr(self, "_row_group_cache", None)
        if groups is None:
            plan = self._plan()
            groups = tuple(plan.group(g) for g in self._row_groups())
            self._row_group_cache = groups
        return groups

    def _out_col(self, rank: int) -> int:
        raise NotImplementedError

    def _rank_rows(self, rank: int) -> Tuple[int, int]:
        raise NotImplementedError

    def _rows_of(self, rank: int) -> int:
        lo, hi = self._rank_rows(rank)
        return hi - lo

    def _fsplit(self, f: int):
        raise NotImplementedError

    def _charge_epoch_transpose(self) -> None:
        raise NotImplementedError

    def _assemble(self, out_full) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # shared building blocks
    # ------------------------------------------------------------------ #
    @property
    def _local_group_info(self):
        """Per *local* row group: ``(gi, group, members, (c_lo, c_hi))``.

        ``gi`` indexes :attr:`_row_group_list`; ``members`` are the
        locally-held ranks of the group (all of them on the virtual
        backend) and ``(c_lo, c_hi)`` the half-open range of their
        feature-column indices.  Block rank-to-process ownership keeps a
        group's local members contiguous in column order, so one
        contiguous *span* of every group-wide dense matrix covers exactly
        the local blocks -- the group-level kernels below compute once
        per span (the whole width when everything is local, which is
        bitwise the pre-refactor fast path).
        """
        info = getattr(self, "_local_group_info_cache", None)
        if info is None:
            info = []
            for gi, group in enumerate(self._row_group_list):
                members = [r for r in group if self._is_local(r)]
                if not members:
                    continue
                cols = [self._out_col(r) for r in members]
                if cols != list(range(cols[0], cols[-1] + 1)):
                    raise AssertionError(
                        f"non-contiguous local columns {cols} in row group "
                        f"{group}: rank ownership must be block-contiguous"
                    )
                info.append((gi, group, tuple(members),
                             (cols[0], cols[-1] + 1)))
            self._local_group_info_cache = info
        return info

    def _grows(self, group) -> int:
        """Dense rows a row group holds (shared by all its members)."""
        return self._rows_of(group[0])

    @staticmethod
    def _pick_span_key(full: bool, base: Tuple, c_lo: int,
                       c_hi: int) -> Tuple:
        """Workspace key for a span join: the historical full-width key
        when the span covers everything (bitwise the pre-refactor fast
        path), a span-suffixed key otherwise."""
        return base if full else base + (c_lo, c_hi)

    def _join_span(self, parts, rows: int, width: int, key) -> np.ndarray:
        """One dense stage operand from received feature-column pieces:
        the piece itself for a single-column span (no copy), else a
        concatenation into the ``key`` workspace."""
        if len(parts) == 1:
            return parts[0]
        buf = self._ws(key, (rows, width))
        np.concatenate(parts, axis=1, out=buf)
        return buf

    def _span(self, fsplit, c_lo: int, c_hi: int) -> Tuple[int, int]:
        """Feature-column span covered by column indices [c_lo, c_hi)."""
        return fsplit[c_lo][0], fsplit[c_hi - 1][1]

    def _stage_broadcast(self, blocks, t: int, f: int, key=None):
        """Stage ``t`` of a replicated-W product: every row group's
        ``t``-th member broadcasts its feature-column block row-wise.
        Returns the received payloads indexed like
        :attr:`_row_group_list` (shared by the whole group under
        copy-on-write; ``None`` for non-local groups on the multiprocess
        backend).  ``key`` enables cached charge replay (payload shapes
        along a stage are fixed at setup); ``f`` sizes the charges from
        structure (the broadcast block is ``group rows x stage width``).
        """
        fcols = self._fsplit(f)

        def nbytes(root: int) -> int:
            lo, hi = fcols[self._out_col(root)]
            return self._rows_of(root) * (hi - lo) * self.WB

        if key is not None:
            return self._broadcast_routed(
                key,
                [(group, group[t]) for group in self._row_group_list],
                blocks, Category.DCOMM, nbytes=nbytes,
            )
        return self.rt.coll.broadcast_many(
            [(group, group[t], blocks[group[t]])
             for group in self._row_group_list],
            category=Category.DCOMM, pipelined=True,
        )

    def _matmul_w(self, t_blocks, w: np.ndarray, f_in: int, f_out: int,
                  ws_key=None):
        """``T W`` for grid-distributed ``T`` and replicated ``W``.

        Each stage computes one GEMM per *local* row group over the
        group's local feature-column span (the received stage block times
        the matching ``W`` column span) and every local rank's block is a
        view of its group's accumulator -- column blocks of a product are
        independent, so per-rank results are unchanged while the GEMM
        count drops from ``stages x P`` to ``stages x Pr``.  With every
        rank local the span is the whole width, which is bitwise the
        historical full-width fast path; a multiprocess worker computes
        just its own ranks' columns.  Per-rank GEMM charges are global
        and untouched.  ``ws_key`` names a workspace for the group
        accumulators (callers whose result is cached across the epoch
        pass a per-layer key).
        """
        groups_info = self._local_group_info
        fouts = self._fsplit(f_out)
        accs = []
        for gi, group, members, (c_lo, c_hi) in groups_info:
            rows = self._grows(group)
            o_lo, o_hi = self._span(fouts, c_lo, c_hi)
            if ws_key is not None:
                acc = self._ws(("mw", ws_key, gi), (rows, o_hi - o_lo))
                acc.fill(0.0)
            else:
                acc = np.zeros((rows, o_hi - o_lo))
            accs.append((acc, o_lo, o_hi))

        def stage_charges(lo: int, hi: int):
            for group in self._row_group_list:
                rows = self._grows(group)
                for r in group:
                    o0, o1 = fouts[self._out_col(r)]
                    yield r, 2.0 * rows * (hi - lo) * (o1 - o0)

        for t, (lo, hi) in enumerate(self._fsplit(f_in)):
            if hi == lo:
                continue
            recv = self._stage_broadcast(t_blocks, t, f_in,
                                         key=("sbch", f_in, t))
            w_stage = w[lo:hi, :]
            for idx, (gi, group, members, span) in enumerate(groups_info):
                acc, o_lo, o_hi = accs[idx]
                w_span = (w_stage if o_hi - o_lo == f_out
                          else w_stage[:, o_lo:o_hi])
                acc += forward_gemm(recv[gi], w_span)
            self._charge_gemm_cached(
                ("mwch", f_in, f_out, t),
                lambda lo=lo, hi=hi: stage_charges(lo, hi),
            )
        out = {}
        for idx, (gi, group, members, span) in enumerate(groups_info):
            acc, o_lo, o_hi = accs[idx]
            for r in members:
                o0, o1 = fouts[self._out_col(r)]
                out[r] = acc[:, o0 - o_lo : o1 - o_lo]
        return out

    def _weight_grad(self, t_blocks, g_blocks, f_in: int, f_out: int):
        """``Y^l = T^T G`` (Equation 3): stage broadcasts of T's column
        blocks, partial outer GEMMs, one world all-reduce.

        Like :meth:`_matmul_w`, the outer GEMM runs once per row group
        against the group's full-width ``G`` rows (re-assembled once per
        call) and each rank's zero-padded partial takes its column band
        from the shared product; bands of ``T^T [G_0 | ... ]`` equal the
        per-band GEMMs, and the world all-reduce of the padded partials
        is exactly the historical reduction -- same charges, same result.
        """
        groups_info = self._local_group_info
        fouts = self._fsplit(f_out)
        g_rows = []
        for gi, group, members, (c_lo, c_hi) in groups_info:
            parts = [g_blocks[r] for r in members]
            o_lo, o_hi = self._span(fouts, c_lo, c_hi)
            buf = self._ws(("grows", gi, f_out),
                           (parts[0].shape[0], o_hi - o_lo))
            np.concatenate(parts, axis=1, out=buf)
            g_rows.append((buf, o_lo))
        partials = {}
        for r in t_blocks:
            buf = self._ws(("wgp", r, f_in, f_out), (f_in, f_out))
            buf.fill(0.0)
            partials[r] = buf

        def stage_charges(lo: int, hi: int):
            for group in self._row_group_list:
                rows = self._grows(group)
                for r in group:
                    o0, o1 = fouts[self._out_col(r)]
                    yield r, 2.0 * (hi - lo) * rows * (o1 - o0)

        for t, (lo, hi) in enumerate(self._fsplit(f_in)):
            if hi == lo:
                continue
            recv = self._stage_broadcast(t_blocks, t, f_in,
                                         key=("sbch", f_in, t))
            for idx, (gi, group, members, span) in enumerate(groups_info):
                buf, o_lo = g_rows[idx]
                band = weight_gradient(recv[gi], buf)  # (hi-lo, local span)
                for r in members:
                    o0, o1 = fouts[self._out_col(r)]
                    partials[r][lo:hi, o0:o1] += band[:, o0 - o_lo : o1 - o_lo]
            self._charge_gemm_cached(
                ("wgch", f_in, f_out, t),
                lambda lo=lo, hi=hi: stage_charges(lo, hi),
            )
        y = self._obs_call(
            "allreduce", Category.DCOMM, self.rt.coll.allreduce,
            self.world_group, partials, category=Category.DCOMM,
        )
        return next(iter(y.values()))

    def _row_allgather(self, blocks, f: int):
        """Full rows on every local rank (concurrent per-row-group
        gathers) -- what the row-wise log_softmax needs.  Every member of
        a row group receives the same contributions, so the concatenation
        happens once per (local) group and the joined rows are shared
        read-only.  Charges are global and replayed from a cached list
        sized from structure (``group rows x f``); the data plane moves
        only the groups this process participates in."""
        key = ("ragch", f)
        charges = self._cache.get(key)
        if charges is None:
            charges = self.rt.coll.allgather_charges([
                (group, self._grows(group) * f * self.WB)
                for group in self._row_group_list
            ])
            self._cache[key] = charges
        self.rt.tracker.charge_many(Category.DCOMM, charges)
        rec = _spans.ACTIVE
        t0 = rec.clock() if rec is not None else 0.0
        full = {}
        for gi, group, members, span in self._local_group_info:
            got = self.rt.coll.allgather_data(
                group, {r: blocks[r] for r in group if r in blocks}
            )
            joined = np.concatenate(next(iter(got.values())), axis=1)
            joined.flags.writeable = False
            for r in got:
                full[r] = joined
        if rec is not None:
            rec.record("row_allgather", Category.DCOMM, t0, rec.clock())
        return full

    # ------------------------------------------------------------------ #
    # the shared epoch
    # ------------------------------------------------------------------ #
    def _charge_band_elementwise(self, key, f: int,
                                 bytes_per_elem: float) -> None:
        """Structural elementwise charge over every rank's ``f``-split
        feature-column block (``rows x band`` elements each)."""
        def builder():
            fcols = self._fsplit(f)
            for group in self._row_group_list:
                rows = self._grows(group)
                for r in group:
                    b0, b1 = fcols[self._out_col(r)]
                    yield r, rows * (b1 - b0) * bytes_per_elem
        self._charge_elementwise_cached(key, builder)

    def _charge_full_elementwise(self, key, f: int,
                                 bytes_per_elem: float) -> None:
        """Structural elementwise charge over every rank's *full-width*
        gathered rows (``rows x f`` elements each)."""
        def builder():
            for group in self._row_group_list:
                rows = self._grows(group)
                for r in group:
                    yield r, rows * f * bytes_per_elem
        self._charge_elementwise_cached(key, builder)

    def _forward_layers(self, h_blocks):
        caches = []
        last = self.model.num_layers - 1
        for l, layer in enumerate(self.model.layers):
            f_in, f_out = layer.f_in, layer.f_out
            t_blocks = self._obs_call(
                "spmm.fwd", "spmm", self._grid_spmm,
                self.a_t_blocks, h_blocks, f_in, ws_key=("t", l),
            )
            z_blocks = self._matmul_w(t_blocks, layer.weight, f_in, f_out,
                                      ws_key=("z", l))
            cache = {"t": t_blocks, "z": z_blocks}
            if l < last:
                h_blocks = {r: layer.activation.forward(z_blocks[r])
                            for r in z_blocks}
                self._charge_band_elementwise(("gef", l), f_out,
                                              2.0 * self.WB)
            else:
                # log_softmax is row-wise: gather full rows first.  The
                # gathered rows are shared per row group, so the forward
                # runs once per group; the per-rank column re-extraction
                # of the final H was dead work (both callers read
                # ``out_full``) and is skipped.
                z_full = self._row_allgather(z_blocks, f_out)
                h_full = self._map_blocks(z_full, layer.activation.forward)
                self._charge_full_elementwise(("gel",), f_out, 2.0 * self.WB)
                h_blocks = {}
                cache["z_full"] = z_full
                cache["out_full"] = h_full
            caches.append(cache)
        return h_blocks, caches

    def _forward_pass(self) -> np.ndarray:
        _, caches = self._forward_layers(self._h0)
        return self._assemble(caches[-1]["out_full"])

    def _run_epoch(self) -> Tuple[float, float]:
        _, caches = self._forward_layers(self._h0)
        self._set_epoch_output(caches[-1]["out_full"])
        f_last = self.widths[-1]
        out_full = caches[-1]["out_full"]

        # ---- loss: feature-column 0 contributes, everyone receives ----
        zeros2 = np.zeros(2)
        terms = self._dedup(
            out_full,
            lambda r: (id(out_full[r])
                       if self._out_col(r) == 0 else "zero"),
            lambda r: (self._masked_loss_terms(*self._rank_rows(r),
                                               out_full[r])
                       if self._out_col(r) == 0 else zeros2),
        )
        totals = self._obs_call(
            "allreduce", Category.DCOMM, self.rt.coll.allreduce,
            self.world_group, terms, category=Category.DCOMM,
        )
        loss, acc = self._finish_loss(next(iter(totals.values())))

        # ---- backward ----
        fcols = self._fsplit(f_last)
        z_full_last = caches[-1]["z_full"]

        def grad_full(r: int) -> np.ndarray:
            lo, hi = self._rank_rows(r)
            return self.logsm.backward(
                z_full_last[r], self._grad_out_rows(lo, hi, f_last)
            )

        g_full = self._dedup(out_full, lambda r: id(z_full_last[r]),
                             grad_full)
        g_blocks = {}
        for r in out_full:
            c0, c1 = fcols[self._out_col(r)]
            g_blocks[r] = g_full[r][:, c0:c1]
        self._charge_full_elementwise(("geg",), f_last, 3.0 * self.WB)
        self._charge_epoch_transpose()

        grads: List[Optional[np.ndarray]] = [None] * self.model.num_layers
        for l in range(self.model.num_layers - 1, -1, -1):
            layer = self.model.layers[l]
            f_in, f_out = layer.f_in, layer.f_out
            # A G^l is charged at every layer (incl. l = 0), mirroring
            # the serial kernel and the analytic models.
            ag_blocks = self._obs_call(
                "spmm.bwd", "spmm", self._grid_spmm,
                self.a_blocks, g_blocks, f_out, ws_key=("ag",),
            )
            grads[l] = self._weight_grad(caches[l]["t"], g_blocks, f_in, f_out)
            if l > 0:
                gh_blocks = self._matmul_w(
                    ag_blocks, layer.weight.T, f_out, f_in
                )
                z_prev = caches[l - 1]["z"]
                g_blocks = {
                    r: self.model.layers[l - 1].activation.backward(
                        z_prev[r], gh_blocks[r]
                    )
                    for r in gh_blocks
                }
                self._charge_band_elementwise(("geb", l), f_in, 3.0 * self.WB)
        self.optimizer.step(self.model.weights, grads)
        return loss, acc
