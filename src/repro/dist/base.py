"""The shared skeleton of every distributed training algorithm.

All four CAGNET algorithm families (1D, 1.5D, 2D SUMMA, Split-3D) differ
only in *how* they lay out the adjacency/activation blocks and *which*
collectives move them; everything else -- the training loop, the weight
replicas and their redundant optimiser step, per-epoch ledger deltas, the
serial-equivalence verification, inference, and held-out evaluation -- is
identical.  :class:`DistAlgorithm` owns that shared machinery so each
``algo_*`` module only implements three hooks:

* ``_setup_data``   -- distribute features/labels onto the mesh;
* ``_run_epoch``    -- one full forward/loss/backward/update sweep,
  charging every data movement through :mod:`repro.comm.collectives` and
  every local kernel through the runtime's charge helpers;
* ``_forward_pass`` -- a forward-only sweep returning the assembled
  ``n x n_classes`` log-probabilities (inference, Section I's "all of our
  algorithms are applicable to GNN inference").

Weights are **replicated**: every virtual rank applies the same optimiser
update to the same gradient ("This step does not require communication",
Section III-D), which the simulation represents with a single canonical
:class:`~repro.nn.model.GCN` whose update each algorithm charges nothing
for.  The local block math reuses the exact serial kernels from
:mod:`repro.nn.layers`, which is what makes the paper's bit-close
verification (`verify_against_serial`) possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.runtime import VirtualRuntime
from repro.comm.tracker import Category, CommTracker
from repro.config import FP64_BYTES
from repro.nn.activations import LogSoftmax, ReLU
from repro.nn.layers import forward_gemm, hidden_gradient, weight_gradient
from repro.nn.loss import accuracy, nll_loss
from repro.nn.model import GCN, SerialTrainer
from repro.nn.optim import SGD, Adam, Optimizer
from repro.sparse.csr import CSRMatrix
from repro.sparse.perfmodel import SpmmPerfModel

__all__ = [
    "EpochStats",
    "DistTrainHistory",
    "DistAlgorithm",
    "BlockRowAlgorithm",
    "GridAlgorithm",
    "clone_optimizer",
]


def clone_optimizer(opt: Optimizer) -> Optimizer:
    """A fresh, state-free optimiser with the same hyper-parameters.

    Verification trains the serial reference and the distributed run from
    identical starting points; a shared (stateful) optimiser instance
    would couple the two trajectories.
    """
    if isinstance(opt, SGD):
        return SGD(lr=opt.lr, momentum=opt.momentum)
    if isinstance(opt, Adam):
        return Adam(lr=opt.lr, beta1=opt.beta1, beta2=opt.beta2, eps=opt.eps)
    raise TypeError(f"cannot clone optimiser of type {type(opt).__name__}")


@dataclass(frozen=True)
class EpochStats:
    """One training epoch's result plus its exact ledger delta.

    ``seconds_by_category`` is the bulk-synchronous **wall clock** the
    epoch added (slowest rank per step, per Fig. 3's convention);
    ``bytes_by_category`` sums exact bytes over all ranks;
    ``max_rank_comm_bytes`` is the paper's per-process metric.
    """

    epoch: int
    loss: float
    train_accuracy: float
    seconds_by_category: Dict[str, float]
    bytes_by_category: Dict[str, int]
    max_rank_comm_bytes: int

    @property
    def modeled_seconds(self) -> float:
        return sum(self.seconds_by_category.values())

    @property
    def dcomm_bytes(self) -> int:
        return self.bytes_by_category[Category.DCOMM]

    @property
    def scomm_bytes(self) -> int:
        return self.bytes_by_category[Category.SCOMM]

    @property
    def comm_bytes(self) -> int:
        """Total network traffic over all ranks (scomm + dcomm + trpose)."""
        return sum(self.bytes_by_category[c] for c in Category.COMM)


@dataclass
class DistTrainHistory:
    """Per-epoch records of one distributed training run."""

    epochs: List[EpochStats] = field(default_factory=list)

    @property
    def losses(self) -> List[float]:
        return [e.loss for e in self.epochs]

    @property
    def final_loss(self) -> float:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1].loss

    def _selected(self, skip_first: bool) -> List[EpochStats]:
        picked = self.epochs[1:] if skip_first and len(self.epochs) > 1 else self.epochs
        if not picked:
            raise ValueError("no epochs recorded")
        return picked

    def mean_breakdown(self, skip_first: bool = False) -> Dict[str, float]:
        """Mean per-epoch wall seconds per category (a Fig. 3 bar).

        ``skip_first=True`` drops epoch 0, which includes one-time
        distribution warm-up in real systems.
        """
        picked = self._selected(skip_first)
        return {
            c: sum(e.seconds_by_category[c] for e in picked) / len(picked)
            for c in Category.ALL
        }

    def mean_epoch_seconds(self, skip_first: bool = False) -> float:
        picked = self._selected(skip_first)
        return sum(e.modeled_seconds for e in picked) / len(picked)


class DistAlgorithm:
    """Base class: runtime + replicated weights + the shared training loop.

    Subclasses receive the forward-pass SpMM operand ``a_t`` (the paper's
    ``A^T``, equal to ``A`` for GCN-normalised undirected graphs) and the
    layer ``widths`` ``(f^0, ..., f^L)``.  The backward operand ``A`` is
    derived once here (transpose for directed inputs), mirroring
    :class:`repro.nn.model.SerialTrainer`'s ``a_t``/``a`` pair.
    """

    #: bytes per dense element; the reproduction executes in fp64.
    WB = FP64_BYTES

    def __init__(
        self,
        rt: VirtualRuntime,
        a_t: CSRMatrix,
        widths: Sequence[int],
        seed: int = 0,
        optimizer: Optional[Optimizer] = None,
    ):
        if a_t.nrows != a_t.ncols:
            raise ValueError(f"adjacency must be square, got {a_t.shape}")
        self.rt = rt
        self.a_t = a_t
        self.n = a_t.nrows
        self.widths = tuple(int(w) for w in widths)
        self.seed = seed
        self.optimizer = optimizer if optimizer is not None else SGD(lr=0.1)
        self.model = GCN(self.widths, seed=seed)
        self.symmetric = self._is_symmetric(a_t)
        self.a = a_t if self.symmetric else a_t.transpose()
        self.perf = SpmmPerfModel.from_profile(rt.profile)
        self._ready = False
        self._labels_provisional = False
        self._features: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None
        self._mask: Optional[np.ndarray] = None
        self._mask_count = 0
        self._last_log_probs: Optional[np.ndarray] = None
        self.relu = ReLU()
        self.logsm = LogSoftmax()

    # ------------------------------------------------------------------ #
    # hooks for subclasses
    # ------------------------------------------------------------------ #
    def _setup_data(self, features: np.ndarray) -> None:
        """Distribute the dense inputs onto the mesh."""
        raise NotImplementedError

    def _run_epoch(self) -> Tuple[float, float]:
        """One charged forward/loss/backward/update; returns (loss, acc)."""
        raise NotImplementedError

    def _forward_pass(self) -> np.ndarray:
        """Charged forward-only sweep; returns full ``n x f^L`` log-probs."""
        raise NotImplementedError

    def _stored_dense_rows(self) -> int:
        """Max dense rows any rank keeps resident (memory accounting)."""
        raise NotImplementedError

    def _stored_dense_width(self, f: int) -> int:
        """Resident columns of an ``f``-wide dense matrix per rank.

        Block-row layouts keep full rows (width ``f``); 2D/3D layouts
        override with their feature-column split.
        """
        return f

    @classmethod
    def emit_comm_schedule(cls, graph, widths: Sequence[int], p: int,
                           **kwargs):
        """Emit this family's symbolic per-epoch communication schedule.

        The scaling-simulator hook (:mod:`repro.simulate`): subclasses
        replay their epoch loop symbolically -- every collective with its
        group size and payload bytes, every charged local kernel -- into a
        :class:`repro.simulate.schedule.CommSchedule`, without
        instantiating ``p`` virtual ranks.  ``graph`` is anything
        :meth:`repro.simulate.schedule.GraphModel.coerce` accepts; keyword
        arguments mirror the constructor (``variant``, ``replication``,
        ``grid``, ``summa_block``).

        Contract (tested): a schedule emitted from the actual adjacency
        predicts one executed ``train_epoch`` ledger delta byte for byte.
        """
        raise NotImplementedError(
            f"{cls.__name__} does not emit communication schedules"
        )

    # ------------------------------------------------------------------ #
    # static helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _is_symmetric(a: CSRMatrix) -> bool:
        """Exact structural + numerical symmetry check (``A == A^T``)."""
        t = a.transpose()
        return (
            a.shape == t.shape
            and np.array_equal(a.indptr, t.indptr)
            and np.array_equal(a.indices, t.indices)
            and np.array_equal(a.data, t.data)
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def setup(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """Validate and distribute the training inputs."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape != (self.n, self.widths[0]):
            raise ValueError(
                f"features shape {features.shape} does not match "
                f"(n={self.n}, f^0={self.widths[0]})"
            )
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (self.n,):
            raise ValueError(f"labels shape {labels.shape} != ({self.n},)")
        if mask is None:
            mask = np.ones(self.n, dtype=bool)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n,):
            raise ValueError(f"mask shape {mask.shape} != ({self.n},)")
        count = int(mask.sum())
        if count == 0:
            raise ValueError("empty training mask")
        self._features = features
        self._labels = labels
        self._mask = mask
        self._mask_count = count
        self._setup_data(features)
        self._ready = True
        self._labels_provisional = False

    def train_epoch(self, epoch: int = 0) -> EpochStats:
        """Run one charged training epoch; returns stats + ledger delta."""
        if not self._ready or self._labels_provisional:
            raise RuntimeError("call setup(features, labels) before training")
        tracker = self.rt.tracker
        before = tracker.snapshot()
        loss, acc = self._run_epoch()
        return self._stats_since(before, epoch, loss, acc)

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        mask: Optional[np.ndarray] = None,
    ) -> DistTrainHistory:
        """Full-batch training for ``epochs`` epochs (sets up first)."""
        self.setup(features, labels, mask)
        history = DistTrainHistory()
        for epoch in range(epochs):
            history.epochs.append(self.train_epoch(epoch))
        return history

    def predict(self, features: Optional[np.ndarray] = None) -> np.ndarray:
        """Distributed inference: log-probabilities for every vertex.

        Pays only the forward pass's communication.  With ``features``
        given, the inputs are (re)distributed first; otherwise the last
        ``setup``/``fit`` inputs are reused.
        """
        if features is not None:
            if self._ready:
                # Redistribute the inputs but keep the training labels
                # and mask intact (inference must not corrupt training).
                features = np.asarray(features, dtype=np.float64)
                if features.shape != (self.n, self.widths[0]):
                    raise ValueError(
                        f"features shape {features.shape} does not match "
                        f"(n={self.n}, f^0={self.widths[0]})"
                    )
                self._features = features
                self._setup_data(features)
            else:
                # Inference-only setup: placeholder labels, flagged so a
                # later train_epoch() insists on real ones.
                self.setup(features, np.zeros(self.n, dtype=np.int64))
                self._labels_provisional = True
        elif not self._ready:
            raise RuntimeError("call setup(features, labels) or pass features")
        log_probs = self._forward_pass()
        self._last_log_probs = log_probs
        return log_probs

    def evaluate(
        self, labels: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> Tuple[float, float]:
        """Held-out (masked) loss and accuracy with the current weights."""
        log_probs = self.predict()
        loss, _ = nll_loss(log_probs, labels, mask)
        return loss, accuracy(log_probs, labels, mask)

    def gather_log_probs(self) -> np.ndarray:
        """The most recent forward pass's full output (verification view).

        Reassembled from the distributed blocks without charging the
        ledger -- the read-out a driver script would do once at the end.
        """
        if self._last_log_probs is None:
            raise RuntimeError("no forward pass has run yet; call fit/predict")
        return self._last_log_probs

    def verify_against_serial(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        seed: Optional[int] = None,
        mask: Optional[np.ndarray] = None,
    ) -> float:
        """Train serially and distributed from identical weights; return
        the largest divergence observed.

        This is the paper's correctness claim ("outputs the same
        embeddings up to floating point accumulation errors"): the metric
        is the max over per-epoch loss differences, final weight
        differences, and final log-probability differences.
        """
        seed = self.seed if seed is None else seed
        serial = SerialTrainer(
            GCN(self.widths, seed=seed),
            self.a_t,
            a=self.a,
            optimizer=clone_optimizer(self.optimizer),
        )
        s_hist = serial.train(features, labels, epochs, mask=mask)
        s_lp = serial.model.predict(self.a_t, features)

        self.model = GCN(self.widths, seed=seed)
        self.optimizer = clone_optimizer(self.optimizer)
        d_hist = self.fit(features, labels, epochs, mask=mask)
        d_lp = self.predict()

        diff = max(
            abs(a - b) for a, b in zip(d_hist.losses, [e.loss for e in s_hist.epochs])
        )
        for w_d, w_s in zip(self.model.weights, serial.model.weights):
            diff = max(diff, float(np.max(np.abs(w_d - w_s))) if w_d.size else 0.0)
        diff = max(diff, float(np.max(np.abs(d_lp - s_lp))))
        return diff

    def dense_memory_words_per_rank(self) -> int:
        """Resident dense words on the most loaded rank (Section V-C).

        Counts the per-layer activation stack (``H``, the cached SpMM
        result ``T``/``Z``, and the gradient working set) at the rank's
        stored row count, plus the replicated weights.
        """
        rows = self._stored_dense_rows()
        acts = sum(
            self._stored_dense_width(self.widths[l])
            + 2 * self._stored_dense_width(self.widths[l + 1])
            for l in range(len(self.widths) - 1)
        )
        weights = sum(
            self.widths[l] * self.widths[l + 1]
            for l in range(len(self.widths) - 1)
        )
        return rows * acts + weights

    # ------------------------------------------------------------------ #
    # shared charging helpers (every charge sits in a step scope so the
    # bulk-synchronous wall clock and the step tracer see it)
    # ------------------------------------------------------------------ #
    def _charge_spmm_step(self, charges: Sequence[Tuple[int, int, int, int]]) -> None:
        """Charge concurrent local SpMM kernels: (rank, nnz, nrows, f)."""
        with self.rt.tracker.step_scope():
            for rank, nnz, nrows, f in charges:
                seconds = self.perf.seconds(int(nnz), int(nrows), int(f))
                self.rt.charge_spmm(rank, 2 * int(nnz) * int(f), seconds)

    def _charge_gemm_step(self, charges: Sequence[Tuple[int, float]]) -> None:
        """Charge concurrent local GEMMs: (rank, flops)."""
        with self.rt.tracker.step_scope():
            for rank, flops in charges:
                self.rt.charge_gemm(rank, int(flops))

    def _charge_elementwise_step(self, charges: Sequence[Tuple[int, float]]) -> None:
        """Charge concurrent elementwise kernels: (rank, bytes touched)."""
        with self.rt.tracker.step_scope():
            for rank, nbytes in charges:
                self.rt.charge_elementwise(rank, int(nbytes))

    def _charge_transpose_step(self, charges: Sequence[Tuple[int, int]]) -> None:
        """Charge a concurrent pairwise transpose exchange: (rank, bytes)."""
        with self.rt.tracker.step_scope():
            for rank, nbytes in charges:
                self.rt.charge_transpose(rank, int(nbytes))

    def _masked_loss_terms(
        self, rows_lo: int, rows_hi: int, log_probs_rows: np.ndarray
    ) -> np.ndarray:
        """Local ``[sum_picked, correct]`` contribution for a row range."""
        labels = self._labels[rows_lo:rows_hi]
        mask = self._mask[rows_lo:rows_hi]
        rows = np.flatnonzero(mask)
        if rows.size == 0:
            return np.zeros(2)
        picked = log_probs_rows[rows, labels[rows]]
        correct = np.count_nonzero(
            log_probs_rows[rows].argmax(axis=1) == labels[rows]
        )
        return np.array([float(picked.sum()), float(correct)])

    def _grad_out_rows(self, rows_lo: int, rows_hi: int, f_out: int) -> np.ndarray:
        """``dL/d log_probs`` for a row range of the output layer."""
        labels = self._labels[rows_lo:rows_hi]
        mask = self._mask[rows_lo:rows_hi]
        grad = np.zeros((rows_hi - rows_lo, f_out))
        rows = np.flatnonzero(mask)
        grad[rows, labels[rows]] = -1.0 / self._mask_count
        return grad

    def _finish_loss(self, totals: np.ndarray) -> Tuple[float, float]:
        """Turn an all-reduced ``[sum_picked, correct]`` into (loss, acc)."""
        loss = -float(totals[0]) / self._mask_count
        acc = float(totals[1]) / self._mask_count
        return loss, acc

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _charge_block_gemm(self, blocks, flops_per_row: float) -> None:
        """Charge a GEMM over per-rank row blocks (rows x flops/row)."""
        self._charge_gemm_step(
            (r, blocks[r].shape[0] * flops_per_row) for r in blocks
        )

    def _charge_block_elementwise(self, blocks, bytes_per_row: float) -> None:
        self._charge_elementwise_step(
            (r, blocks[r].shape[0] * bytes_per_row) for r in blocks
        )

    def _stats_since(
        self, before: CommTracker, epoch: int, loss: float, acc: float
    ) -> EpochStats:
        tracker = self.rt.tracker
        seconds = {
            c: tracker.wall.get(c, 0.0) - before.wall.get(c, 0.0)
            for c in Category.ALL
        }
        nbytes = {
            c: sum(
                tracker.per_rank[r][c].bytes - before.per_rank[r][c].bytes
                for r in range(tracker.nranks)
            )
            for c in Category.ALL
        }
        max_rank = max(
            sum(
                tracker.per_rank[r][c].bytes - before.per_rank[r][c].bytes
                for c in Category.COMM
            )
            for r in range(tracker.nranks)
        )
        return EpochStats(
            epoch=epoch,
            loss=loss,
            train_accuracy=acc,
            seconds_by_category=seconds,
            bytes_by_category=nbytes,
            max_rank_comm_bytes=int(max_rank),
        )


class BlockRowAlgorithm(DistAlgorithm):
    """The block-row family's shared epoch (1D and 1.5D).

    Both algorithms keep complete dense rows on every rank, so their
    forward sweep, loss reduction, and backward recursion are the same
    program; they differ only in *which collective* realises the SpMM
    and which group replicates scalars/gradients.  Subclasses provide:

    * ``_block_ranks``           -- the ranks holding dense row blocks;
    * ``_row_range(rank)``       -- the global rows a rank owns;
    * ``_forward_spmm(blocks, f)``  / ``_backward_spmm(blocks, f)``
      -- charged distributed ``A^T X`` / ``A X`` sweeps;
    * ``_replicated_allreduce(values)`` -- the sum that leaves every
      rank with an identical copy (loss terms, weight gradients);
    * ``_assemble(blocks)``      -- uncharged full-matrix read-out;
    * ``_pre_backward()``        -- optional per-epoch charge hook
      (the 1D transpose variant's exchange).
    """

    def _row_range(self, rank: int) -> Tuple[int, int]:
        raise NotImplementedError

    def _forward_spmm(self, blocks, f: int):
        raise NotImplementedError

    def _backward_spmm(self, blocks, f: int):
        raise NotImplementedError

    def _replicated_allreduce(self, values):
        raise NotImplementedError

    def _assemble(self, blocks) -> np.ndarray:
        raise NotImplementedError

    def _pre_backward(self) -> None:
        """Per-epoch charges before the backward recursion (default none)."""

    # ------------------------------------------------------------------ #
    def _forward_layers(self, h_blocks):
        """Shared forward sweep; returns output blocks + per-layer caches."""
        caches = []
        for layer in self.model.layers:
            f_in, f_out = layer.f_in, layer.f_out
            t_blocks = self._forward_spmm(h_blocks, f_in)
            z_blocks = {r: forward_gemm(t_blocks[r], layer.weight)
                        for r in self._block_ranks}
            self._charge_block_gemm(z_blocks, 2.0 * f_in * f_out)
            # Rows are complete locally, so even log_softmax is local.
            h_blocks = {r: layer.activation.forward(z_blocks[r])
                        for r in self._block_ranks}
            self._charge_block_elementwise(z_blocks, 2.0 * f_out * self.WB)
            caches.append({"t": t_blocks, "z": z_blocks})
        return h_blocks, caches

    def _forward_pass(self) -> np.ndarray:
        out_blocks, _ = self._forward_layers(self._h0)
        return self._assemble(out_blocks)

    def _run_epoch(self) -> Tuple[float, float]:
        out_blocks, caches = self._forward_layers(self._h0)
        self._last_log_probs = self._assemble(out_blocks)
        f_last = self.widths[-1]

        # ---- loss: one scalar-sized replicated all-reduce ----
        terms = {
            r: self._masked_loss_terms(*self._row_range(r), out_blocks[r])
            for r in self._block_ranks
        }
        totals = self._replicated_allreduce(terms)
        loss, acc = self._finish_loss(next(iter(totals.values())))

        # ---- backward ----
        g_blocks = {}
        for r in self._block_ranks:
            lo, hi = self._row_range(r)
            grad = self._grad_out_rows(lo, hi, f_last)
            g_blocks[r] = self.logsm.backward(caches[-1]["z"][r], grad)
        self._charge_block_elementwise(g_blocks, 3.0 * f_last * self.WB)
        self._pre_backward()

        grads: List[Optional[np.ndarray]] = [None] * self.model.num_layers
        for l in range(self.model.num_layers - 1, -1, -1):
            layer = self.model.layers[l]
            f_in, f_out = layer.f_in, layer.f_out
            # A G^l is computed (and charged) at every layer, including
            # l = 0 where grad_h is unused -- mirroring the serial layer
            # kernel and the Model1D/Model2D charge patterns, which
            # follow the paper's AG^l-reuse implementation.
            ag_blocks = self._backward_spmm(g_blocks, f_out)
            # Y^l = sum_i T_i^T G_i, all-reduced so W's update is replicated.
            partials = {r: weight_gradient(caches[l]["t"][r], g_blocks[r])
                        for r in self._block_ranks}
            self._charge_block_gemm(g_blocks, 2.0 * f_in * f_out)
            y = self._replicated_allreduce(partials)
            grads[l] = next(iter(y.values()))
            if l > 0:
                gh_blocks = {r: hidden_gradient(ag_blocks[r], layer.weight)
                             for r in self._block_ranks}
                self._charge_block_gemm(gh_blocks, 2.0 * f_out * f_in)
                z_prev = caches[l - 1]["z"]
                g_blocks = {
                    r: self.model.layers[l - 1].activation.backward(
                        z_prev[r], gh_blocks[r]
                    )
                    for r in self._block_ranks
                }
                self._charge_block_elementwise(g_blocks, 3.0 * f_in * self.WB)
        self.optimizer.step(self.model.weights, grads)
        return loss, acc


class GridAlgorithm(DistAlgorithm):
    """The 2D-layout family's shared epoch (2D SUMMA and Split-3D).

    Both algorithms split the feature columns of every dense matrix
    across "row groups" of ranks that jointly hold complete rows, so
    the replicated-weight GEMMs, the Equation-3 weight gradient, the
    last-layer row all-gather for log_softmax, the column-0 loss terms,
    and the backward recursion are the same program; they differ only
    in the distributed SpMM itself and in the mesh's group enumeration.
    Subclasses provide:

    * ``_grid_spmm(sparse_blocks, dense_blocks, f)`` -- the charged
      distributed SpMM sweep (SUMMA / Split-3D);
    * ``_row_groups()`` -- rank tuples sharing the same global rows,
      each ordered by feature-column index (so ``group[t]`` owns the
      ``t``-th feature-column block);
    * ``_out_col(rank)`` / ``_rank_rows(rank)`` -- a rank's feature
      -column index and its global row range;
    * ``_fsplit(f)`` -- the feature-column split;
    * ``_charge_epoch_transpose()`` -- the per-epoch ``trpose`` charge
      policy (2D: always; 3D: directed operands only);
    * ``_assemble(out_full)`` -- uncharged full-output read-out;
    * ``a_t_blocks`` / ``a_blocks`` -- the distributed sparse operands.
    """

    def _grid_spmm(self, sparse_blocks, dense_blocks, f: int):
        raise NotImplementedError

    def _row_groups(self):
        raise NotImplementedError

    def _out_col(self, rank: int) -> int:
        raise NotImplementedError

    def _rank_rows(self, rank: int) -> Tuple[int, int]:
        raise NotImplementedError

    def _fsplit(self, f: int):
        raise NotImplementedError

    def _charge_epoch_transpose(self) -> None:
        raise NotImplementedError

    def _assemble(self, out_full) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # shared building blocks
    # ------------------------------------------------------------------ #
    def _stage_broadcast(self, blocks, t: int):
        """Stage ``t`` of a replicated-W product: every row group's
        ``t``-th member broadcasts its feature-column block row-wise."""
        recv = {}
        with self.rt.tracker.step_scope():
            for group in self._row_groups():
                root = group[t]
                got = self.rt.coll.broadcast(
                    group, root, blocks[root],
                    category=Category.DCOMM, pipelined=True,
                )
                recv.update(got)
        return recv

    def _matmul_w(self, t_blocks, w: np.ndarray, f_in: int, f_out: int):
        """``T W`` for grid-distributed ``T`` and replicated ``W``."""
        fouts = self._fsplit(f_out)
        acc = {
            r: np.zeros(
                (t_blocks[r].shape[0],
                 fouts[self._out_col(r)][1] - fouts[self._out_col(r)][0])
            )
            for r in t_blocks
        }
        for t, (lo, hi) in enumerate(self._fsplit(f_in)):
            if hi == lo:
                continue
            recv = self._stage_broadcast(t_blocks, t)
            charges = []
            for r in acc:
                o0, o1 = fouts[self._out_col(r)]
                acc[r] += forward_gemm(recv[r], w[lo:hi, o0:o1])
                charges.append(
                    (r, 2.0 * recv[r].shape[0] * (hi - lo) * (o1 - o0))
                )
            self._charge_gemm_step(charges)
        return acc

    def _weight_grad(self, t_blocks, g_blocks, f_in: int, f_out: int):
        """``Y^l = T^T G`` (Equation 3): stage broadcasts of T's column
        blocks, partial outer GEMMs, one world all-reduce."""
        fouts = self._fsplit(f_out)
        partials = {r: np.zeros((f_in, f_out)) for r in t_blocks}
        for t, (lo, hi) in enumerate(self._fsplit(f_in)):
            if hi == lo:
                continue
            recv = self._stage_broadcast(t_blocks, t)
            charges = []
            for r in partials:
                o0, o1 = fouts[self._out_col(r)]
                partials[r][lo:hi, o0:o1] += weight_gradient(
                    recv[r], g_blocks[r]
                )
                charges.append(
                    (r, 2.0 * (hi - lo) * recv[r].shape[0] * (o1 - o0))
                )
            self._charge_gemm_step(charges)
        world = tuple(range(self.rt.size))
        y = self.rt.coll.allreduce(world, partials, category=Category.DCOMM)
        return next(iter(y.values()))

    def _row_allgather(self, blocks):
        """Full rows on every rank (concurrent per-row-group gathers) --
        what the row-wise log_softmax needs."""
        full = {}
        with self.rt.tracker.step_scope():
            for group in self._row_groups():
                got = self.rt.coll.allgather(
                    group, {r: blocks[r] for r in group},
                    category=Category.DCOMM,
                )
                for r in group:
                    full[r] = np.concatenate(got[r], axis=1)
        return full

    # ------------------------------------------------------------------ #
    # the shared epoch
    # ------------------------------------------------------------------ #
    def _forward_layers(self, h_blocks):
        caches = []
        last = self.model.num_layers - 1
        for l, layer in enumerate(self.model.layers):
            f_in, f_out = layer.f_in, layer.f_out
            t_blocks = self._grid_spmm(self.a_t_blocks, h_blocks, f_in)
            z_blocks = self._matmul_w(t_blocks, layer.weight, f_in, f_out)
            cache = {"t": t_blocks, "z": z_blocks}
            if l < last:
                h_blocks = {r: layer.activation.forward(z_blocks[r])
                            for r in z_blocks}
                self._charge_elementwise_step(
                    (r, 2.0 * z_blocks[r].size * self.WB) for r in z_blocks
                )
            else:
                # log_softmax is row-wise: gather full rows first.
                z_full = self._row_allgather(z_blocks)
                h_full = {r: layer.activation.forward(z_full[r])
                          for r in z_full}
                self._charge_elementwise_step(
                    (r, 2.0 * z_full[r].size * self.WB) for r in z_full
                )
                fcols = self._fsplit(f_out)
                h_blocks = {}
                for r in z_blocks:
                    c0, c1 = fcols[self._out_col(r)]
                    h_blocks[r] = np.ascontiguousarray(h_full[r][:, c0:c1])
                cache["z_full"] = z_full
                cache["out_full"] = h_full
            caches.append(cache)
        return h_blocks, caches

    def _forward_pass(self) -> np.ndarray:
        _, caches = self._forward_layers(self._h0)
        return self._assemble(caches[-1]["out_full"])

    def _run_epoch(self) -> Tuple[float, float]:
        _, caches = self._forward_layers(self._h0)
        self._last_log_probs = self._assemble(caches[-1]["out_full"])
        f_last = self.widths[-1]
        out_full = caches[-1]["out_full"]

        # ---- loss: feature-column 0 contributes, everyone receives ----
        terms = {}
        for r in out_full:
            lo, hi = self._rank_rows(r)
            terms[r] = (
                self._masked_loss_terms(lo, hi, out_full[r])
                if self._out_col(r) == 0 else np.zeros(2)
            )
        world = tuple(range(self.rt.size))
        totals = self.rt.coll.allreduce(world, terms, category=Category.DCOMM)
        loss, acc = self._finish_loss(next(iter(totals.values())))

        # ---- backward ----
        fcols = self._fsplit(f_last)
        g_blocks = {}
        for r in out_full:
            lo, hi = self._rank_rows(r)
            grad_full = self._grad_out_rows(lo, hi, f_last)
            g_full = self.logsm.backward(caches[-1]["z_full"][r], grad_full)
            c0, c1 = fcols[self._out_col(r)]
            g_blocks[r] = np.ascontiguousarray(g_full[:, c0:c1])
        self._charge_elementwise_step(
            (r, 3.0 * caches[-1]["z_full"][r].size * self.WB)
            for r in g_blocks
        )
        self._charge_epoch_transpose()

        grads: List[Optional[np.ndarray]] = [None] * self.model.num_layers
        for l in range(self.model.num_layers - 1, -1, -1):
            layer = self.model.layers[l]
            f_in, f_out = layer.f_in, layer.f_out
            # A G^l is charged at every layer (incl. l = 0), mirroring
            # the serial kernel and the analytic models.
            ag_blocks = self._grid_spmm(self.a_blocks, g_blocks, f_out)
            grads[l] = self._weight_grad(caches[l]["t"], g_blocks, f_in, f_out)
            if l > 0:
                gh_blocks = self._matmul_w(
                    ag_blocks, layer.weight.T, f_out, f_in
                )
                z_prev = caches[l - 1]["z"]
                g_blocks = {
                    r: self.model.layers[l - 1].activation.backward(
                        z_prev[r], gh_blocks[r]
                    )
                    for r in gh_blocks
                }
                self._charge_elementwise_step(
                    (r, 3.0 * g_blocks[r].size * self.WB) for r in g_blocks
                )
        self.optimizer.step(self.model.weights, grads)
        return loss, acc
