"""Sampling substrate: k-hop analysis, layer sampling, mini-batch training.

The paper's Section VII future work ("our distributed training algorithms
... carefully combined with sophisticated sampling based methods") and the
Section I neighbourhood-explosion motivation, implemented.
"""

from repro.sampling.khop import (
    ExplosionStats,
    khop_frontiers,
    neighborhood_explosion_stats,
    receptive_field,
)
from repro.sampling.minibatch import MiniBatchEpoch, MiniBatchGCN, MiniBatchTrainer
from repro.sampling.sampler import LayerSampler, SampledSubgraph

__all__ = [
    "khop_frontiers",
    "receptive_field",
    "ExplosionStats",
    "neighborhood_explosion_stats",
    "LayerSampler",
    "SampledSubgraph",
    "MiniBatchGCN",
    "MiniBatchEpoch",
    "MiniBatchTrainer",
]
