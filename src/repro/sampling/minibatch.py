"""Mini-batch GCN training over sampled neighbourhood pyramids.

The paper trains full batch and argues (via ROC) that sampling can cost
accuracy; its future work wants the two combined.  This trainer is the
sampling side of that combination: SGD over mini-batches whose forward
and backward passes run on :class:`~repro.sampling.sampler.SampledSubgraph`
pyramids.

Correctness anchors (tested):

* with ``fanouts=None`` (full neighbourhoods) the mini-batch forward
  reproduces the full-graph forward restricted to the batch exactly;
* with ``batch_size = n`` and full neighbourhoods, one epoch equals one
  full-batch epoch of :class:`repro.nn.model.SerialTrainer` (same loss,
  same weight update);
* with finite fanouts, the sampled aggregation is an unbiased estimator
  (Horvitz-Thompson rescaling), so the expected mini-batch gradient
  approaches the full gradient -- the variance is the paper's
  "approximation error".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.nn.activations import LogSoftmax, ReLU
from repro.nn.init import init_gcn_weights
from repro.nn.loss import accuracy, nll_loss
from repro.nn.optim import SGD, Optimizer
from repro.sampling.sampler import LayerSampler, SampledSubgraph
from repro.sparse.csr import CSRMatrix
from repro.sparse.spmm import spmm

__all__ = ["MiniBatchGCN", "MiniBatchEpoch", "MiniBatchTrainer"]


@dataclass
class MiniBatchEpoch:
    """Per-epoch record: batch losses and the epoch means."""

    epoch: int
    batch_losses: List[float] = field(default_factory=list)
    batch_accuracies: List[float] = field(default_factory=list)

    @property
    def mean_loss(self) -> float:
        return float(np.mean(self.batch_losses))

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.batch_accuracies))


class MiniBatchGCN:
    """A GCN evaluated on sampled pyramids (weights shared across batches)."""

    def __init__(self, widths: Sequence[int], seed: int = 0):
        if len(widths) < 2:
            raise ValueError("need at least (f_in, f_out) widths")
        self.widths = tuple(int(w) for w in widths)
        self.weights = init_gcn_weights(self.widths, seed)
        relu, logsm = ReLU(), LogSoftmax()
        self.activations = [
            logsm if l == len(self.weights) - 1 else relu
            for l in range(len(self.weights))
        ]

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    def forward(self, sub: SampledSubgraph, features: np.ndarray):
        """Forward through the pyramid; returns (log_probs, caches)."""
        if sub.num_layers != self.num_layers:
            raise ValueError(
                f"pyramid has {sub.num_layers} layers, model {self.num_layers}"
            )
        h = features[sub.input_vertices]
        caches = []
        for l, block in enumerate(sub.blocks):
            t = spmm(block, h)
            z = t @ self.weights[l]
            h_out = self.activations[l].forward(z)
            caches.append((h, t, z, block))
            h = h_out
        return h, caches

    def backward(self, caches, grad_out: np.ndarray) -> List[np.ndarray]:
        """Explicit backward through the pyramid (paper's Eq. 1-3 shapes)."""
        grads: List[Optional[np.ndarray]] = [None] * self.num_layers
        grad_h = grad_out
        for l in range(self.num_layers - 1, -1, -1):
            h_in, t, z, block = caches[l]
            g = self.activations[l].backward(z, grad_h)
            grads[l] = t.T @ g
            if l > 0:
                # dL/dH^{l-1}_local = B^T g W^T; B^T via CSR transpose.
                grad_h = spmm(block.transpose(), g @ self.weights[l].T)
        return grads  # type: ignore[return-value]


class MiniBatchTrainer:
    """SGD over sampled mini-batches.

    ``fanouts=None`` trains with full neighbourhoods (exact gradients on
    each batch's receptive field); finite fanouts bound memory at the
    price of gradient variance.
    """

    def __init__(
        self,
        model: MiniBatchGCN,
        at: CSRMatrix,
        fanouts: Optional[Sequence[Optional[int]]] = None,
        batch_size: int = 64,
        optimizer: Optional[Optimizer] = None,
        seed: int = 0,
    ):
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        self.model = model
        self.sampler = LayerSampler(
            at, model.num_layers, fanouts=fanouts, seed=seed
        )
        self.batch_size = batch_size
        self.optimizer = optimizer if optimizer is not None else SGD(lr=1e-2)
        self._rng = np.random.default_rng(seed + 1)
        self.n = at.nrows

    def predict_batch(self, features: np.ndarray, batch: Sequence[int]) -> np.ndarray:
        """Log-probabilities for ``batch`` via its sampled pyramid."""
        sub = self.sampler.sample(batch)
        out, _ = self.model.forward(sub, features)
        return out

    def train_epoch(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        mask: Optional[np.ndarray] = None,
        epoch: int = 0,
        shuffle: bool = True,
    ) -> MiniBatchEpoch:
        """One pass over the supervised vertices in mini-batches."""
        labels = np.asarray(labels, dtype=np.int64)
        if mask is None:
            pool = np.arange(self.n, dtype=np.int64)
        else:
            pool = np.flatnonzero(np.asarray(mask, dtype=bool))
        if pool.size == 0:
            raise ValueError("no supervised vertices to train on")
        order = self._rng.permutation(pool) if shuffle else pool
        record = MiniBatchEpoch(epoch=epoch)
        for start in range(0, order.size, self.batch_size):
            batch = np.sort(order[start : start + self.batch_size])
            sub = self.sampler.sample(batch)
            log_probs, caches = self.model.forward(sub, features)
            loss, grad = nll_loss(log_probs, labels[sub.batch])
            acc = accuracy(log_probs, labels[sub.batch])
            grads = self.model.backward(caches, grad)
            self.optimizer.step(self.model.weights, grads)
            record.batch_losses.append(loss)
            record.batch_accuracies.append(acc)
        return record

    def train(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        mask: Optional[np.ndarray] = None,
    ) -> List[MiniBatchEpoch]:
        return [
            self.train_epoch(features, labels, mask, epoch)
            for epoch in range(epochs)
        ]
