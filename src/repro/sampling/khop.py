"""k-hop neighbourhoods and the neighbourhood-explosion analysis.

Section I motivates full-batch distributed training with the
*neighbourhood explosion*: "After only a few layers, the chosen mini-batch
ends up being dependent on the whole graph.  This phenomenon ... completely
nullifies the memory reduction goals" of mini-batching.

This module quantifies that claim: :func:`khop_frontiers` expands a seed
set hop by hop (vectorised through the CSR structure), and
:func:`neighborhood_explosion_stats` measures what fraction of the graph
an L-layer GCN's receptive field touches for a given batch size -- the
number that motivates either sampling (with its approximation error) or
the paper's communication-avoiding full-batch training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "khop_frontiers",
    "receptive_field",
    "ExplosionStats",
    "neighborhood_explosion_stats",
]


def _expand_once(adj: CSRMatrix, frontier: np.ndarray) -> np.ndarray:
    """All vertices adjacent to ``frontier`` (unique, sorted)."""
    if frontier.size == 0:
        return frontier
    starts = adj.indptr[frontier]
    ends = adj.indptr[frontier + 1]
    counts = ends - starts
    if counts.sum() == 0:
        return np.empty(0, dtype=np.int64)
    # Gather all neighbour lists with one fancy-index: build the flat
    # positions [starts[i], ends[i]) for every frontier vertex.
    offsets = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                        counts)
    positions = np.arange(int(counts.sum()), dtype=np.int64) + offsets
    return np.unique(adj.indices[positions])


def khop_frontiers(
    adj: CSRMatrix, seeds: Sequence[int], hops: int
) -> List[np.ndarray]:
    """Receptive-field sets per hop: ``[seeds, N(seeds), N^2(seeds), ...]``.

    Entry ``k`` holds every vertex within ``k`` hops of the seed set --
    the rows of ``H^{L-k}`` an L-layer GCN needs to produce the seeds'
    outputs.  Always includes the previous frontier (self loops are part
    of the GCN's modified adjacency).
    """
    if hops < 0:
        raise ValueError(f"hops must be >= 0, got {hops}")
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    if frontier.size and (frontier.min() < 0 or frontier.max() >= adj.nrows):
        raise ValueError("seed vertex out of range")
    out = [frontier]
    for _ in range(hops):
        nxt = _expand_once(adj, out[-1])
        out.append(np.union1d(out[-1], nxt))
    return out


def receptive_field(adj: CSRMatrix, seeds: Sequence[int], hops: int) -> np.ndarray:
    """The full ``hops``-hop receptive field of ``seeds`` (sorted ids)."""
    return khop_frontiers(adj, seeds, hops)[-1]


@dataclass(frozen=True)
class ExplosionStats:
    """Average receptive-field growth of random mini-batches."""

    batch_size: int
    hops: int
    n: int
    #: mean number of vertices within k hops, k = 0..hops
    mean_frontier_sizes: Tuple[float, ...]

    @property
    def final_fraction(self) -> float:
        """Fraction of the graph the L-hop receptive field touches."""
        return self.mean_frontier_sizes[-1] / self.n

    @property
    def blowup(self) -> float:
        """Receptive field size over batch size."""
        return self.mean_frontier_sizes[-1] / max(1, self.batch_size)


def neighborhood_explosion_stats(
    adj: CSRMatrix,
    batch_size: int,
    hops: int,
    trials: int = 5,
    seed: int = 0,
) -> ExplosionStats:
    """Measure the neighbourhood explosion for random batches.

    Draws ``trials`` random batches of ``batch_size`` vertices and
    averages the per-hop receptive-field sizes.
    """
    n = adj.nrows
    if not 1 <= batch_size <= n:
        raise ValueError(f"batch size {batch_size} outside [1, {n}]")
    rng = np.random.default_rng(seed)
    sums = np.zeros(hops + 1, dtype=np.float64)
    for _ in range(trials):
        seeds = rng.choice(n, size=batch_size, replace=False)
        frontiers = khop_frontiers(adj, seeds, hops)
        sums += [f.size for f in frontiers]
    means = tuple(float(s / trials) for s in sums)
    return ExplosionStats(
        batch_size=batch_size, hops=hops, n=n, mean_frontier_sizes=means
    )
