"""GraphSAGE-style layer-wise neighbourhood sampling.

The paper's future work (Section VII) envisions combining its distributed
algorithms "with sophisticated sampling based methods to achieve the best
of both worlds"; its related work notes that "sampling algorithms,
however, come with approximation errors".  This module provides the
sampling substrate:

* :class:`LayerSampler` draws, per GCN layer, up to ``fanout`` in-
  neighbours for every output vertex (Hamilton et al.'s neighbourhood
  sampling, cited as [17]) and materialises the bipartite adjacency
  blocks a mini-batch forward pass multiplies through;
* ``fanout=None`` keeps *all* neighbours: the sampled computation is then
  exactly the full computation restricted to the batch's receptive field,
  which the tests exploit to verify the machinery end to end;
* sampled edges are rescaled by ``degree / sample_size`` so the sampled
  aggregation is an unbiased estimator of the full one -- the source of
  the "approximation error" the paper references is the estimator's
  variance, measurable here directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["SampledSubgraph", "LayerSampler"]


@dataclass
class SampledSubgraph:
    """The multiplication pyramid of one sampled mini-batch.

    ``frontiers[0]`` is the deepest (input) vertex set and
    ``frontiers[-1]`` the batch itself; ``blocks[l]`` is the sampled
    bipartite operator of layer ``l`` with shape
    ``(len(frontiers[l+1]), len(frontiers[l]))``, so the forward pass is
    ``H^{l+1}_local = sigma(blocks[l] @ H^l_local @ W^l)``.
    """

    frontiers: List[np.ndarray]
    blocks: List[CSRMatrix]

    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    @property
    def batch(self) -> np.ndarray:
        return self.frontiers[-1]

    @property
    def input_vertices(self) -> np.ndarray:
        return self.frontiers[0]

    def total_edges(self) -> int:
        return sum(b.nnz for b in self.blocks)


class LayerSampler:
    """Samples an L-layer multiplication pyramid for a batch of vertices.

    ``at`` is the operator applied in the forward pass (the paper's
    ``A^T`` -- rows index outputs, columns inputs).  ``fanouts`` gives the
    per-layer neighbour budget from the output layer downwards;
    ``None`` entries (or ``fanouts=None``) disable sampling for that
    layer (full neighbourhood).
    """

    def __init__(
        self,
        at: CSRMatrix,
        num_layers: int,
        fanouts: Optional[Sequence[Optional[int]]] = None,
        seed: int = 0,
    ):
        if at.nrows != at.ncols:
            raise ValueError("sampler expects a square operator")
        if num_layers < 1:
            raise ValueError(f"need >= 1 layer, got {num_layers}")
        if fanouts is None:
            fanouts = [None] * num_layers
        if len(fanouts) != num_layers:
            raise ValueError(
                f"{len(fanouts)} fanouts for {num_layers} layers"
            )
        for f in fanouts:
            if f is not None and f < 1:
                raise ValueError(f"fanout must be >= 1 or None, got {f}")
        self.at = at
        self.num_layers = num_layers
        self.fanouts = list(fanouts)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def _sample_row(self, u: int, fanout: Optional[int]):
        """Sampled (cols, vals) of row ``u``, rescaled for unbiasedness."""
        lo, hi = int(self.at.indptr[u]), int(self.at.indptr[u + 1])
        cols = self.at.indices[lo:hi]
        vals = self.at.data[lo:hi]
        deg = hi - lo
        if fanout is None or deg <= fanout:
            return cols, vals
        pick = self._rng.choice(deg, size=fanout, replace=False)
        # Horvitz-Thompson rescale: each kept edge stands for deg/fanout.
        return cols[pick], vals[pick] * (deg / fanout)

    def sample(self, batch: Sequence[int]) -> SampledSubgraph:
        """Build the pyramid for ``batch`` (output-layer vertices)."""
        batch = np.unique(np.asarray(batch, dtype=np.int64))
        if batch.size == 0:
            raise ValueError("empty batch")
        if batch.min() < 0 or batch.max() >= self.at.nrows:
            raise ValueError("batch vertex out of range")
        # Walk from the output layer down, collecting sampled edges.
        frontiers: List[np.ndarray] = [batch]
        layer_edges: List[tuple] = []  # (out_local_row, global_col, val)
        out_frontier = batch
        for l in range(self.num_layers - 1, -1, -1):
            fanout = self.fanouts[l]
            rows_l: List[np.ndarray] = []
            cols_l: List[np.ndarray] = []
            vals_l: List[np.ndarray] = []
            for local, u in enumerate(out_frontier):
                cols, vals = self._sample_row(int(u), fanout)
                rows_l.append(np.full(cols.size, local, dtype=np.int64))
                cols_l.append(cols)
                vals_l.append(vals)
            rows_cat = np.concatenate(rows_l) if rows_l else np.empty(0, np.int64)
            cols_cat = np.concatenate(cols_l) if cols_l else np.empty(0, np.int64)
            vals_cat = np.concatenate(vals_l) if vals_l else np.empty(0)
            in_frontier = np.unique(np.concatenate([out_frontier, cols_cat]))
            layer_edges.append((rows_cat, cols_cat, vals_cat, out_frontier))
            frontiers.append(in_frontier)
            out_frontier = in_frontier
        frontiers.reverse()          # deepest first
        layer_edges.reverse()
        # Localise column ids against each layer's input frontier.
        blocks: List[CSRMatrix] = []
        for l, (rows_cat, cols_cat, vals_cat, out_f) in enumerate(layer_edges):
            in_f = frontiers[l]
            local_cols = np.searchsorted(in_f, cols_cat)
            blocks.append(
                CSRMatrix.from_coo(
                    rows_cat, local_cols, vals_cat,
                    (out_f.size, in_f.size),
                    sum_duplicates=True,
                )
            )
        return SampledSubgraph(frontiers=frontiers, blocks=blocks)
