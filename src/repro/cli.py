"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user the paper's headline artefacts without writing
code:

* ``table6``      -- the dataset table (published + stand-in check);
* ``figure2``     -- epoch throughput of the 2D algorithm, published sizes;
* ``figure3``     -- the per-epoch time breakdown;
* ``crossover``   -- the 1D-vs-2D words crossover per dataset;
* ``train``       -- train a GCN on a synthetic graph or a Table VI
  stand-in with any of the four algorithms and report loss, accuracy, and
  the communication ledger;
* ``simulate``    -- predict one epoch on a named machine profile at any
  rank count (no execution, Section IV's analysis made concrete);
* ``sweep``       -- evaluate (algorithm x P x machine) grids up to
  P >= 16384 and report the per-point winner, with JSON output;
* ``bench``       -- run the benchmark harness (executed epochs, SpMM
  kernels, figures) and optionally the perf guard against a committed
  baseline (``--against BENCH_dist.json``);
* ``explosion``   -- measure the neighbourhood explosion on a stand-in;
* ``report``      -- the model-vs-measured drift tables from a trace
  file written by ``train --trace`` (per-category seconds: modeled
  ledger vs simulator prediction vs measured wall clock, plus phases
  and stragglers);
* ``obs``         -- observability utilities: ``obs diff a.json b.json``
  flags per-category/per-phase regressions between two traces;
  ``obs validate-events log.jsonl`` checks an event log's hash chain;
* ``lint``        -- the repro-lint invariant checker: AST rules R1-R8
  over a source tree (exit 1 on violations).

Examples::

    python -m repro figure2
    python -m repro train --algorithm 2d --gpus 16 --dataset reddit
    python -m repro train --algorithm 1.5d --gpus 8 --replication 2
    python -m repro simulate --algorithm 2d --gpus 4096 --dataset reddit \
        --machine cori-gpu
    python -m repro sweep --dataset reddit --max-p 16384 --json sweep.json
    python -m repro crossover
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence


def _print_table(header: Sequence[str], rows: Sequence[Sequence]) -> None:
    rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(header)
    ]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def cmd_table6(_args: argparse.Namespace) -> int:
    from repro.graph import PUBLISHED

    rows = [
        (s.name, f"{s.vertices:,}", f"{s.edges:,}", s.features, s.labels,
         f"{s.avg_degree:.1f}")
        for s in PUBLISHED.values()
    ]
    print("Table VI -- dataset characteristics (published):\n")
    _print_table(
        ("name", "vertices", "edges", "features", "labels", "avg degree"),
        rows,
    )
    return 0


def cmd_figure2(args: argparse.Namespace) -> int:
    from repro.analysis.figures import figure2_throughput

    points = figure2_throughput(
        [args.dataset] if args.dataset else None
    )
    print("Figure 2 -- 2D epoch throughput (modeled, published sizes):\n")
    _print_table(
        ("dataset", "GPUs", "epochs/s", "sec/epoch", "dominant"),
        [
            (pt.dataset, pt.gpus, f"{pt.epochs_per_second:.3f}",
             f"{pt.epoch_seconds:.3f}", pt.dominant_category)
            for pt in points
        ],
    )
    return 0


def cmd_figure3(args: argparse.Namespace) -> int:
    from repro.analysis.figures import figure3_breakdown

    points = figure3_breakdown(
        [args.dataset] if args.dataset else None
    )
    print("Figure 3 -- 2D per-epoch time breakdown (seconds, modeled):\n")
    _print_table(
        ("dataset", "GPUs", "spmm", "dcomm", "scomm", "trpose", "misc"),
        [
            (
                pt.dataset, pt.gpus,
                *(f"{pt.breakdown[c]:.4f}"
                  for c in ("spmm", "dcomm", "scomm", "trpose", "misc")),
            )
            for pt in points
        ],
    )
    return 0


def cmd_crossover(_args: argparse.Namespace) -> int:
    from repro.analysis.formulas import crossover_p_2d_vs_1d
    from repro.graph import PUBLISHED

    rows = []
    for name, spec in PUBLISHED.items():
        cross = crossover_p_2d_vs_1d(
            spec.vertices, spec.edges, float(spec.features), 3
        )
        rows.append((name, cross))
    print("1D-vs-2D words crossover (first square P where 2D wins):\n")
    _print_table(("dataset", "crossover P"), rows)
    print("\npaper: 2D is competitive once sqrt(P) >= 5 (P ~ 25).")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from repro.dist import make_algorithm
    from repro.graph import make_standin, make_synthetic
    from repro.nn import SGD

    if args.sanitize:
        import os

        from repro.analysis import sanitize as _sanitize

        # Env + in-process enable: the variable reaches spawned workers,
        # the in-process sanitizer covers the virtual backend / driver.
        os.environ[_sanitize.ENV_FLAG] = "1"
        _sanitize.enable()
    if args.dataset:
        ds = make_standin(args.dataset, scale_divisor=args.scale, seed=args.seed)
    else:
        ds = make_synthetic(
            n=args.vertices, avg_degree=args.degree, f=args.features,
            n_classes=args.classes, seed=args.seed,
        )
    kwargs = {}
    if args.algorithm == "1.5d":
        kwargs["replication"] = args.replication
    if args.algorithm == "1d":
        kwargs["variant"] = args.variant
    elif args.variant != "auto":
        print(f"--variant only applies to --algorithm 1d, "
              f"got {args.algorithm!r}", file=sys.stderr)
        return 2
    if args.partition:
        kwargs["partition"] = args.partition
    from repro.parallel import WorkerError

    try:
        algo = make_algorithm(
            args.algorithm, args.gpus, ds, hidden=args.hidden,
            seed=args.seed, optimizer=SGD(lr=args.lr),
            backend=args.backend, workers=args.workers,
            transport=args.transport if args.backend == "process" else None,
            faults=args.faults, max_restarts=args.max_restarts,
            **kwargs,
        )
    except ValueError as exc:
        return _usage_error(exc)
    except WorkerError as exc:
        # Worker-side construction errors carry a full remote traceback;
        # surface just the underlying error line, argparse-style, for
        # parity with the virtual backend's usage errors.
        print(str(exc).strip().splitlines()[-1], file=sys.stderr)
        return 2
    quiet = bool(args.json)
    tracing = bool(args.trace or args.metrics or args.profile)
    if not quiet:
        print(f"dataset : {ds.name}  {ds.summary()}")
        print(f"machine : {algo.rt.describe()}")
        if args.partition:
            extras = (f"variant={args.variant}  "
                      if args.algorithm == "1d" else "")
            print(f"layout  : {extras}partition={args.partition} "
                  "(part-major vertex relabelling)")
    backend_stats = None
    trace = None
    machine = algo.rt.profile.name
    config = {
        "algorithm": args.algorithm, "gpus": args.gpus,
        "hidden": args.hidden, "epochs": args.epochs,
        "seed": args.seed, "lr": args.lr,
        "variant": args.variant if args.algorithm == "1d" else None,
        "replication": (args.replication
                        if args.algorithm == "1.5d" else None),
        "partition": args.partition, "dataset": args.dataset,
        "scale": args.scale, "vertices": args.vertices,
        "degree": args.degree, "features": args.features,
        "classes": args.classes, "backend": args.backend,
        "transport": (args.transport
                      if args.backend == "process" else None),
        "workers": args.workers, "machine": machine,
    }
    live_server = None
    live_state = {}
    events_on = bool(args.events)
    if events_on:
        from repro.obs import events as _events

        _events.enable(args.events)
        _events.emit("run_start", config=config)
        if args.faults:
            _events.emit("fault_plan", plan=args.faults)
    status = "failed"
    try:
        import time as _time

        t0 = _time.perf_counter()
        fit_kwargs = {}
        if args.checkpoint:
            fit_kwargs["checkpoint_path"] = args.checkpoint
            fit_kwargs["checkpoint_every"] = args.checkpoint_every
        if args.metrics_port is not None:
            from repro.obs import LiveServer

            if args.backend == "process":
                # Zero extra dispatches: the sampler reads only the
                # backend's shared state while the driver blocks in
                # the single fit dispatch.
                sampler = algo.rt.live_sample
            else:
                def _live_on_epoch(stats):
                    live_state["epoch"] = stats.epoch + 1
                    live_state["loss"] = float(stats.loss)

                def sampler():
                    sample = dict(live_state)
                    sample["workers"] = 1
                    sample["checkpoints"] = getattr(
                        algo, "checkpoints_written", 0)
                    return sample

                fit_kwargs["on_epoch"] = _live_on_epoch
            live_server = LiveServer(sampler, port=args.metrics_port)
            if not quiet:
                print(f"live metrics: {live_server.url}")
        if tracing:
            from repro.obs import traced_fit

            history, trace = traced_fit(algo, ds.features, ds.labels,
                                        args.epochs,
                                        profile=bool(args.profile),
                                        **fit_kwargs)
        else:
            history = algo.fit(ds.features, ds.labels, epochs=args.epochs,
                               **fit_kwargs)
        elapsed = _time.perf_counter() - t0
        status = "ok"
        if args.backend == "process":
            backend_stats = algo.rt.backend_stats()
    finally:
        if live_server is not None:
            live_server.close()
        if args.backend == "process":
            algo.rt.close()
        if events_on:
            from repro.obs import events as _events

            if status == "ok":
                _events.emit("run_end", status=status,
                             epochs=len(history.epochs),
                             final_loss=float(history.losses[-1])
                             if history.losses else None,
                             wall_seconds=elapsed)
            else:
                _events.emit("run_end", status=status)
            _events.disable()
            if not quiet:
                print(f"wrote event log {args.events}")
    last = history.epochs[-1]
    bd = history.mean_breakdown(skip_first=True)
    if not quiet:
        print(f"\n{'epoch':>5s} {'loss':>9s} {'acc':>6s}")
        step = max(1, args.epochs // 10)
        for e in history.epochs[::step] + history.epochs[-1:]:
            print(f"{e.epoch:5d} {e.loss:9.4f} {e.train_accuracy:6.3f}")
        print(f"\nper-epoch communication: dcomm {last.dcomm_bytes} B, "
              f"scomm {last.scomm_bytes} B, "
              f"max/rank {last.max_rank_comm_bytes} B")
        total = sum(bd.values()) or 1.0
        print("modeled epoch breakdown: " + ", ".join(
            f"{k} {v / total:.0%}"
            for k, v in sorted(bd.items(), key=lambda kv: -kv[1])
        ))
        print(f"wall clock: {elapsed:.2f}s for {args.epochs} epochs "
              f"({args.backend} backend)")
        if args.sanitize:
            from repro.analysis import sanitize as _sanitize

            san = _sanitize.ACTIVE
            if san is not None:
                note = (" (driver-side; workers check their own shares "
                        "in-process)" if args.backend == "process" else "")
                print("sanitizers: "
                      f"{san.stats['cow_verified']} COW receipts verified, "
                      f"{san.stats['exchanges_checked']} exchange ledgers "
                      f"checked{note}")
        if backend_stats is not None:
            st = backend_stats
            print(f"process backend [{st['transport']}]: "
                  f"{st['dispatches']} dispatches for "
                  f"{st['commands']} commands "
                  f"({st['fit_dispatches']} resident fits, "
                  f"{st['fused_batches']} fused batches), "
                  f"{st['digest_checks']} digest checks, "
                  f"{st['channel_bytes'] / 1e6:.2f} MB channel traffic")
            if st.get("restarts"):
                print(f"elastic recovery: {st['restarts']} restart(s), "
                      f"{st['recovery_dispatches']} recovery "
                      f"dispatches, failure detection "
                      f"{st['detect_seconds']:.2f}s total")
            if st.get("checkpoints_written"):
                print(f"checkpoints: {st['checkpoints_written']} written "
                      f"in {st['checkpoint_seconds']:.3f}s")
    if trace is not None:
        from repro.obs import (build_trace_meta, export_chrome_trace,
                               metrics_from_trace, write_metrics)

        if args.trace:
            meta = build_trace_meta(config, history, trace, elapsed)
            export_chrome_trace(trace, args.trace, extra=meta)
            if not quiet:
                print(f"wrote trace {args.trace} "
                      f"({len(trace.spans)} spans; open in "
                      "ui.perfetto.dev or chrome://tracing)")
        if args.metrics:
            write_metrics(
                metrics_from_trace(trace, history,
                                   backend_stats=backend_stats),
                args.metrics)
            if not quiet:
                print(f"wrote metrics {args.metrics}")
    if args.json:
        import json

        doc = {
            "schema": "repro-train/1",
            "dataset": ds.name,
            "algorithm": args.algorithm,
            "gpus": args.gpus,
            "backend": args.backend,
            "transport": (args.transport
                          if args.backend == "process" else None),
            "workers": args.workers,
            "machine": machine,
            "epochs": args.epochs,
            "final_loss": last.loss,
            "final_accuracy": last.train_accuracy,
            "losses": history.losses,
            "wall_seconds": elapsed,
            "modeled_epoch_breakdown": bd,
            "per_epoch_comm_bytes": {
                "dcomm": last.dcomm_bytes,
                "scomm": last.scomm_bytes,
                "max_rank": last.max_rank_comm_bytes,
            },
            "backend_stats": backend_stats,
            "trace": None if trace is None else trace.summary(),
            "trace_path": args.trace or None,
            "metrics_path": args.metrics or None,
            "events_path": args.events or None,
        }
        print(json.dumps(doc, indent=2))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (drift_report, format_drift_report,
                           validate_chrome_trace)

    with open(args.trace, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    problems = validate_chrome_trace(payload)
    if problems:
        for p in problems[:20]:
            print(f"invalid trace: {p}", file=sys.stderr)
        if len(problems) > 20:
            print(f"... and {len(problems) - 20} more problems",
                  file=sys.stderr)
        return 1
    report = drift_report(payload)
    print(format_drift_report(report))
    _write_json(report, args.json)
    return 0


def _obs_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs import diff_traces, format_trace_diff

    payloads = []
    for path in (args.trace_a, args.trace_b):
        with open(path, "r", encoding="utf-8") as fh:
            payloads.append(json.load(fh))
    try:
        report = diff_traces(payloads[0], payloads[1],
                             threshold=args.threshold,
                             min_seconds=args.min_seconds,
                             a_name=args.trace_a, b_name=args.trace_b)
    except ValueError as exc:
        return _usage_error(exc)
    print(format_trace_diff(report))
    _write_json(report, args.json)
    return 1 if report["verdict"] == "regression" else 0


def _obs_validate_events(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.obs import read_event_log, validate_event_log

    problems = validate_event_log(args.log)
    if problems:
        for p in problems[:20]:
            print(f"invalid event log: {p}", file=sys.stderr)
        if len(problems) > 20:
            print(f"... and {len(problems) - 20} more problems",
                  file=sys.stderr)
        return 1
    events = read_event_log(args.log)
    counts = Counter(e["type"] for e in events)
    print(f"{args.log}: {len(events)} event(s), chain intact")
    _print_table(("type", "count"),
                 [(t, str(n)) for t, n in sorted(counts.items())])
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "diff":
        return _obs_diff(args)
    return _obs_validate_events(args)


def cmd_lint(args: argparse.Namespace) -> int:
    import os

    from repro.analysis.lint import default_rules, format_violations, run_lint

    if args.list_rules:
        _print_table(
            ("id", "rule"),
            [(rule.id, rule.title) for rule in default_rules()],
        )
        return 0
    paths = list(args.paths)
    if not paths:
        import repro

        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    violations, nfiles = run_lint(paths)
    print(format_violations(violations, nfiles))
    return 1 if violations else 0


def cmd_memory(_args: argparse.Namespace) -> int:
    from repro.analysis.memory import feasibility_table, memory_2d
    from repro.graph.datasets import layer_widths, published_spec

    table = feasibility_table()
    rows = []
    for name, fits in table.items():
        spec = published_spec(name)
        widths = layer_widths(spec.features, spec.labels)
        nnz = spec.edges + spec.vertices
        for gpus, ok in fits.items():
            est = memory_2d(spec.vertices, nnz, widths, gpus)
            rows.append(
                (name, gpus, f"{est.total_gib:.1f}",
                 "fits" if ok else "OOM")
            )
    print("Section V-C memory feasibility (2D algorithm, 16 GB V100):\n")
    _print_table(("dataset", "GPUs", "GiB/rank", "verdict"), rows)
    print("\npaper: amazon omitted at 4 GPUs; protein omitted at 4 and 16.")
    return 0


def _simulate_graph(args: argparse.Namespace):
    """The graph a simulate/sweep invocation runs against.

    ``--dataset`` with ``--scale`` builds the executable stand-in (exact
    block statistics); ``--dataset`` alone uses the full published size
    under the uniform-nonzeros model; otherwise a synthetic graph shape.
    """
    from repro.simulate.schedule import GraphModel

    if args.dataset and args.scale:
        from repro.graph import make_standin

        return GraphModel.from_dataset(
            make_standin(args.dataset, scale_divisor=args.scale,
                         seed=args.seed)
        )
    if args.dataset:
        return GraphModel.from_published(args.dataset)
    return GraphModel.uniform(
        args.vertices,
        int(args.vertices * (args.degree + 1)),
        name=f"uniform-n{args.vertices}",
        features=args.features,
        n_classes=args.classes,
    )


def _write_json(payload: dict, path: Optional[str]) -> None:
    if not path:
        return
    import json

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {path}")


def _usage_error(exc: Exception) -> int:
    """Print a bad-input error the way argparse would: message, exit 2."""
    message = exc.args[0] if exc.args else exc
    print(message, file=sys.stderr)
    return 2


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulate import predict_epoch

    graph = _simulate_graph(args)
    kwargs = {}
    if args.algorithm == "1.5d":
        kwargs["replication"] = args.replication
    if args.algorithm == "1d":
        kwargs["variant"] = args.variant
    if args.partition:
        if args.algorithm != "1d":
            print("--partition currently drives the 1D schedule only",
                  file=sys.stderr)
            return 2
        if graph.exact:
            from repro.dist import Distribution

            kwargs["distribution"] = Distribution.build(
                args.partition, graph.csr, args.gpus, seed=args.seed
            )
        elif args.partition != "block":
            # Uniform shape-only graphs have nothing to partition; block
            # is the identity layout the emitter already assumes.
            print(f"--partition {args.partition} needs an executable "
                  "stand-in (pass --scale); shape-only graphs model the "
                  "block layout", file=sys.stderr)
            return 2
    try:
        point = predict_epoch(
            args.algorithm, graph, args.gpus, machine=args.machine,
            hidden=args.hidden, **kwargs,
        )
    except (KeyError, ValueError) as exc:
        # Unknown machine, infeasible mesh/replication for --gpus, ...
        return _usage_error(exc)
    mode = "exact" if graph.exact else "uniform"
    print(f"graph   : {graph.name}  n={graph.n} nnz={graph.nnz} ({mode})")
    print(f"machine : {point.machine}  P={point.p}  "
          f"algorithm={point.algorithm} {point.params.get('variant', '')}")
    print(f"\npredicted epoch: {point.seconds:.6f} s "
          f"({point.epochs_per_second:.2f} epochs/s)")
    print(f"  compute   {point.compute_seconds:.6f} s")
    print(f"  latency   {point.latency_seconds:.6f} s")
    print(f"  bandwidth {point.bandwidth_seconds:.6f} s")
    _print_table(
        ("category", "seconds", "bytes (all ranks)"),
        [
            (c, f"{point.seconds_by_category[c]:.6f}",
             f"{point.bytes_by_category[c]:,}")
            for c in ("spmm", "dcomm", "scomm", "trpose", "misc")
        ],
    )
    _write_json(point.to_dict(), args.json)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.scaling import (
        format_crossovers,
        format_scaling_table,
    )
    from repro.simulate import DEFAULT_P_GRID, sweep

    graph = _simulate_graph(args)
    if args.p_grid:
        try:
            ps = tuple(int(tok) for tok in args.p_grid.split(","))
        except ValueError:
            print(f"invalid --p-grid {args.p_grid!r}: expected "
                  "comma-separated integers", file=sys.stderr)
            return 2
        if any(p < 1 for p in ps):
            print(f"invalid --p-grid {args.p_grid!r}: rank counts must "
                  "be >= 1", file=sys.stderr)
            return 2
    else:
        ps = tuple(p for p in DEFAULT_P_GRID if p <= args.max_p)
    if not ps:
        print(f"--max-p {args.max_p} is below the smallest default grid "
              f"point ({min(DEFAULT_P_GRID)}); pass --p-grid explicitly",
              file=sys.stderr)
        return 2
    machines = tuple(args.machines.split(","))
    algorithms = tuple(args.algorithms.split(","))
    try:
        result = sweep(graph, algorithms=algorithms, ps=ps,
                       machines=machines, hidden=args.hidden)
    except (KeyError, ValueError) as exc:
        # Unknown machine or algorithm names surface argparse-style.
        return _usage_error(exc)
    print(
        f"swept {len(result.points)} points "
        f"({len(algorithms)} algorithms x {len(machines)} machines x "
        f"P up to {max(ps)}) in {result.elapsed_seconds:.2f}s\n"
    )
    for machine in result.machines:
        print(format_scaling_table(result, graph.name, machine))
        print()
    print(format_crossovers(result))
    _write_json(result.to_dict(), args.json)
    return 0


def _find_benchmarks_dir():
    """Locate the repo's ``benchmarks/`` directory (source checkouts)."""
    from pathlib import Path

    for root in (
        Path(__file__).resolve().parents[2],  # src/repro/cli.py -> repo
        Path.cwd(),
    ):
        cand = root / "benchmarks" / "run_benchmarks.py"
        if cand.is_file():
            return cand
    return None


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the dependency-free bench harness (``benchmarks/run_benchmarks.py``).

    ``--against BASELINE.json`` additionally runs the perf guard,
    comparing the fresh report's ``mean_s`` against the baseline and
    failing on a > ``--threshold`` regression (the same check CI runs).
    """
    import importlib.util

    script = _find_benchmarks_dir()
    if script is None:
        print("benchmarks/run_benchmarks.py not found; `repro bench` "
              "needs a source checkout (git clone), not just an "
              "installed package", file=sys.stderr)
        return 2

    def load(path, name):
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    harness = load(script, "repro_bench_harness")
    output = args.output
    if output is None and args.against:
        # Guard mode must never clobber the baseline it compares against
        # (the harness's default output path IS the committed baseline,
        # which would turn the comparison into fresh-vs-itself).
        output = str(script.parent.parent / "BENCH_fresh.json")
    from pathlib import Path

    if args.against and output and (
        Path(output).resolve() == Path(args.against).resolve()
    ):
        print("--output and --against point at the same file; the perf "
              "guard would compare the fresh report against itself",
              file=sys.stderr)
        return 2
    argv = []
    if args.smoke:
        argv.append("--smoke")
    if args.select:
        argv.extend(["--select", args.select])
    if args.rounds is not None:
        argv.extend(["--rounds", str(args.rounds)])
    if output:
        argv.extend(["--output", output])
    if args.verbose:
        argv.append("--verbose")
    rc = harness.main(argv)
    if rc != 0 or not args.against:
        return rc
    checker = load(script.parent / "check_regression.py",
                   "repro_bench_checker")
    return checker.main(
        [output, args.against, "--threshold", str(args.threshold)]
    )


def cmd_explosion(args: argparse.Namespace) -> int:
    from repro.graph import make_standin
    from repro.sampling import neighborhood_explosion_stats

    ds = make_standin(args.dataset or "reddit", scale_divisor=args.scale,
                      seed=args.seed)
    print(f"dataset: {ds.name}  n={ds.num_vertices}\n")
    rows = []
    for batch in (8, 32, 128):
        batch = min(batch, ds.num_vertices)
        stats = neighborhood_explosion_stats(
            ds.adjacency, batch_size=batch, hops=args.hops, trials=3,
            seed=args.seed,
        )
        rows.append(
            (batch, *(int(s) for s in stats.mean_frontier_sizes),
             f"{stats.final_fraction:.1%}")
        )
    _print_table(
        ("batch",) + tuple(f"hop{k}" for k in range(args.hops + 1))
        + ("fraction",),
        rows,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAGNET (SC 2020) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table6", help="Table VI dataset characteristics")

    for name in ("figure2", "figure3"):
        p = sub.add_parser(name, help=f"reproduce {name}")
        p.add_argument("--dataset", choices=("reddit", "amazon", "protein"))

    sub.add_parser("crossover", help="1D-vs-2D crossover per dataset")

    sub.add_parser("memory", help="Section V-C memory feasibility table")

    p = sub.add_parser("train", help="train a GCN on a virtual cluster")
    p.add_argument("--algorithm", default="2d",
                   choices=("1d", "1.5d", "2d", "3d"))
    p.add_argument("--gpus", type=int, default=4)
    p.add_argument("--dataset", choices=("reddit", "amazon", "protein"),
                   help="Table VI stand-in (default: synthetic)")
    p.add_argument("--scale", type=int, default=1024,
                   help="stand-in scale divisor")
    p.add_argument("--vertices", type=int, default=512)
    p.add_argument("--degree", type=float, default=8.0)
    p.add_argument("--features", type=int, default=32)
    p.add_argument("--classes", type=int, default=4)
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--lr", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--replication", type=int, default=2,
                   help="1.5D replication factor c")
    p.add_argument("--variant", default="auto",
                   choices=("auto", "symmetric", "outer", "outer_sparse",
                            "transpose", "ghost"),
                   help="1D backward variant; 'ghost' replaces the full "
                        "all-gather with a partition-aware ghost-row "
                        "exchange")
    p.add_argument("--partition", default=None,
                   choices=("block", "random", "multilevel"),
                   help="partition-aware vertex distribution (part-major "
                        "relabelling; pairs with --variant ghost)")
    p.add_argument("--backend", default="virtual",
                   choices=("virtual", "process"),
                   help="execution backend: 'virtual' simulates ranks in "
                        "one process; 'process' runs them as real OS "
                        "processes with shared-memory collectives")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for --backend process "
                        "(default: one per rank)")
    p.add_argument("--transport", default="shm",
                   choices=("shm", "tcp"),
                   help="peer fabric for --backend process: 'shm' "
                        "(queues + shared memory, single host) or 'tcp' "
                        "(length-prefixed socket frames; spans hosts via "
                        "REPRO_PARALLEL_HOSTS)")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="write the full training state (weights, "
                        "optimizer moments, epoch counter, ledger) "
                        "atomically to this .npz at epoch boundaries; "
                        "elastic recovery resumes from it")
    p.add_argument("--checkpoint-every", type=int, default=1,
                   metavar="N",
                   help="checkpoint cadence in epochs for --checkpoint "
                        "(default 1)")
    p.add_argument("--max-restarts", type=int, default=None, metavar="N",
                   help="pool-restart budget for --backend process: on "
                        "a dead/stalled worker or transport failure, "
                        "respawn, reload the last checkpoint, and "
                        "resume, up to N times (default: "
                        "REPRO_PARALLEL_MAX_RESTARTS or 0 = fail fast)")
    p.add_argument("--faults", default=None, metavar="PLAN",
                   help="deterministic fault-injection plan for "
                        "--backend process, e.g. "
                        "'kill:worker=1,epoch=2' (see "
                        "repro.parallel.faults; also "
                        "REPRO_PARALLEL_FAULTS)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="record wall-clock spans and write a Chrome/"
                        "Perfetto trace-event JSON here (losses and "
                        "ledger stay bit-identical)")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="write Prometheus text-format metrics of the "
                        "traced run here")
    p.add_argument("--metrics-port", type=int, default=None, metavar="N",
                   help="serve live Prometheus metrics on "
                        "127.0.0.1:N/metrics *while* fit runs (0 = "
                        "ephemeral port); zero extra dispatches on the "
                        "process backend")
    p.add_argument("--events", default=None, metavar="PATH",
                   help="append a hash-chained JSON-lines event log "
                        "(run lifecycle, epochs, checkpoints, recovery "
                        "taxonomy) here; validate with "
                        "'repro obs validate-events'")
    p.add_argument("--sanitize", action="store_true",
                   help="arm the runtime sanitizers (COW receipts, exact "
                        "exchange ledgers, tag ordering) in the driver "
                        "and every worker; bit-equal to an unsanitized "
                        "run (REPRO_SANITIZE=1 does the same)")
    p.add_argument("--profile", action="store_true",
                   help="per-kernel flop/byte/second counters (SpMM, "
                        "GEMMs, reduction folds) plus memory gauges; "
                        "rides the trace and feeds the drift report's "
                        "compute table")
    p.add_argument("--json", action="store_true",
                   help="print one machine-readable JSON document "
                        "instead of the human tables")

    def _sim_graph_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", choices=("reddit", "amazon", "protein"),
                       help="published dataset (default: synthetic shape)")
        p.add_argument("--scale", type=int, default=0,
                       help="use the executable stand-in at this scale "
                            "divisor (0 = full published size, uniform "
                            "nonzeros)")
        p.add_argument("--vertices", type=int, default=1 << 20)
        p.add_argument("--degree", type=float, default=16.0)
        p.add_argument("--features", type=int, default=128)
        p.add_argument("--classes", type=int, default=16)
        p.add_argument("--hidden", type=int, default=16)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--json", help="write the result as JSON here")

    p = sub.add_parser(
        "simulate",
        help="predict one epoch on a machine profile at any P",
    )
    p.add_argument("--algorithm", default="2d",
                   choices=("1d", "1.5d", "2d", "3d"))
    p.add_argument("--gpus", type=int, default=1024)
    p.add_argument("--machine", default="summit",
                   help="machine preset (summit, cori-gpu, ethernet, ...)")
    p.add_argument("--variant", default="auto",
                   help="1D backward variant")
    p.add_argument("--replication", type=int, default=2,
                   help="1.5D replication factor c")
    p.add_argument("--partition", default=None,
                   choices=("block", "random", "multilevel"),
                   help="1D partition-aware layout (non-block partitions "
                        "need an executable stand-in via --scale)")
    _sim_graph_args(p)

    p = sub.add_parser(
        "sweep",
        help="sweep (algorithm x P x machine) and report winners",
    )
    p.add_argument("--algorithms", default="1d,1.5d,2d,3d")
    p.add_argument("--machines", default="summit,cori-gpu,ethernet")
    p.add_argument("--max-p", type=int, default=16384,
                   help="sweep the default P grid up to this rank count")
    p.add_argument("--p-grid",
                   help="explicit comma-separated P values (overrides "
                        "--max-p)")
    _sim_graph_args(p)

    p = sub.add_parser(
        "bench",
        help="run the executed/bench harness and write BENCH JSON",
    )
    p.add_argument("--smoke", action="store_true",
                   help="single round per benchmark")
    p.add_argument("--select", help="substring filter on module.name")
    p.add_argument("--rounds", type=int, default=None,
                   help="timing rounds per benchmark")
    p.add_argument("--output", help="JSON report path "
                                    "(default: BENCH_dist.json)")
    p.add_argument("--against",
                   help="baseline BENCH JSON to run the perf guard "
                        "against after benching")
    p.add_argument("--threshold", type=float, default=2.0,
                   help="perf-guard regression factor (default 2.0)")
    p.add_argument("--verbose", action="store_true",
                   help="stream benchmark tables to stdout")

    p = sub.add_parser("explosion", help="neighbourhood explosion stats")
    p.add_argument("--dataset", choices=("reddit", "amazon", "protein"))
    p.add_argument("--scale", type=int, default=512)
    p.add_argument("--hops", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "report",
        help="model-vs-measured drift report from a --trace file",
    )
    p.add_argument("trace", help="Chrome-trace JSON written by "
                                 "'repro train --trace'")
    p.add_argument("--json", help="also write the report as JSON here")

    p = sub.add_parser("obs", help="observability utilities")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    d = obs_sub.add_parser(
        "diff",
        help="per-category/per-phase regression diff of two trace files "
             "(exit 1 on regression verdict)",
    )
    d.add_argument("trace_a", help="reference trace JSON")
    d.add_argument("trace_b", help="candidate trace JSON")
    d.add_argument("--threshold", type=float, default=1.25,
                   help="B/A per-epoch-seconds ratio above which a row "
                        "regresses (default 1.25)")
    d.add_argument("--min-seconds", type=float, default=1e-4,
                   help="absolute per-epoch growth noise floor "
                        "(default 1e-4 s)")
    d.add_argument("--json", help="also write the diff document here")
    v = obs_sub.add_parser(
        "validate-events",
        help="verify an event log's schema, sequence, and hash chain",
    )
    v.add_argument("log", help="JSON-lines event log written by "
                               "'repro train --events'")

    p = sub.add_parser(
        "lint",
        help="repro-lint invariant checker (AST rules R1-R8; exit 1 on "
             "violations)",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories to check (default: the "
                        "installed repro package)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule table and exit")

    return parser


COMMANDS = {
    "table6": cmd_table6,
    "figure2": cmd_figure2,
    "figure3": cmd_figure3,
    "crossover": cmd_crossover,
    "memory": cmd_memory,
    "train": cmd_train,
    "simulate": cmd_simulate,
    "sweep": cmd_sweep,
    "bench": cmd_bench,
    "explosion": cmd_explosion,
    "report": cmd_report,
    "obs": cmd_obs,
    "lint": cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
