"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user the paper's headline artefacts without writing
code:

* ``table6``      -- the dataset table (published + stand-in check);
* ``figure2``     -- epoch throughput of the 2D algorithm, published sizes;
* ``figure3``     -- the per-epoch time breakdown;
* ``crossover``   -- the 1D-vs-2D words crossover per dataset;
* ``train``       -- train a GCN on a synthetic graph or a Table VI
  stand-in with any of the four algorithms and report loss, accuracy, and
  the communication ledger;
* ``explosion``   -- measure the neighbourhood explosion on a stand-in.

Examples::

    python -m repro figure2
    python -m repro train --algorithm 2d --gpus 16 --dataset reddit
    python -m repro train --algorithm 1.5d --gpus 8 --replication 2
    python -m repro crossover
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence


def _print_table(header: Sequence[str], rows: Sequence[Sequence]) -> None:
    rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(header)
    ]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def cmd_table6(_args: argparse.Namespace) -> int:
    from repro.graph import PUBLISHED

    rows = [
        (s.name, f"{s.vertices:,}", f"{s.edges:,}", s.features, s.labels,
         f"{s.avg_degree:.1f}")
        for s in PUBLISHED.values()
    ]
    print("Table VI -- dataset characteristics (published):\n")
    _print_table(
        ("name", "vertices", "edges", "features", "labels", "avg degree"),
        rows,
    )
    return 0


def cmd_figure2(args: argparse.Namespace) -> int:
    from repro.analysis.figures import figure2_throughput

    points = figure2_throughput(
        [args.dataset] if args.dataset else None
    )
    print("Figure 2 -- 2D epoch throughput (modeled, published sizes):\n")
    _print_table(
        ("dataset", "GPUs", "epochs/s", "sec/epoch", "dominant"),
        [
            (pt.dataset, pt.gpus, f"{pt.epochs_per_second:.3f}",
             f"{pt.epoch_seconds:.3f}", pt.dominant_category)
            for pt in points
        ],
    )
    return 0


def cmd_figure3(args: argparse.Namespace) -> int:
    from repro.analysis.figures import figure3_breakdown

    points = figure3_breakdown(
        [args.dataset] if args.dataset else None
    )
    print("Figure 3 -- 2D per-epoch time breakdown (seconds, modeled):\n")
    _print_table(
        ("dataset", "GPUs", "spmm", "dcomm", "scomm", "trpose", "misc"),
        [
            (
                pt.dataset, pt.gpus,
                *(f"{pt.breakdown[c]:.4f}"
                  for c in ("spmm", "dcomm", "scomm", "trpose", "misc")),
            )
            for pt in points
        ],
    )
    return 0


def cmd_crossover(_args: argparse.Namespace) -> int:
    from repro.analysis.formulas import crossover_p_2d_vs_1d
    from repro.graph import PUBLISHED

    rows = []
    for name, spec in PUBLISHED.items():
        cross = crossover_p_2d_vs_1d(
            spec.vertices, spec.edges, float(spec.features), 3
        )
        rows.append((name, cross))
    print("1D-vs-2D words crossover (first square P where 2D wins):\n")
    _print_table(("dataset", "crossover P"), rows)
    print("\npaper: 2D is competitive once sqrt(P) >= 5 (P ~ 25).")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from repro.dist import make_algorithm
    from repro.graph import make_standin, make_synthetic
    from repro.nn import SGD

    if args.dataset:
        ds = make_standin(args.dataset, scale_divisor=args.scale, seed=args.seed)
    else:
        ds = make_synthetic(
            n=args.vertices, avg_degree=args.degree, f=args.features,
            n_classes=args.classes, seed=args.seed,
        )
    kwargs = {}
    if args.algorithm == "1.5d":
        kwargs["replication"] = args.replication
    algo = make_algorithm(
        args.algorithm, args.gpus, ds, hidden=args.hidden, seed=args.seed,
        optimizer=SGD(lr=args.lr), **kwargs,
    )
    print(f"dataset : {ds.name}  {ds.summary()}")
    print(f"machine : {algo.rt.describe()}")
    history = algo.fit(ds.features, ds.labels, epochs=args.epochs)
    print(f"\n{'epoch':>5s} {'loss':>9s} {'acc':>6s}")
    step = max(1, args.epochs // 10)
    for e in history.epochs[::step] + history.epochs[-1:]:
        print(f"{e.epoch:5d} {e.loss:9.4f} {e.train_accuracy:6.3f}")
    last = history.epochs[-1]
    print(f"\nper-epoch communication: dcomm {last.dcomm_bytes} B, "
          f"scomm {last.scomm_bytes} B, max/rank {last.max_rank_comm_bytes} B")
    bd = history.mean_breakdown(skip_first=True)
    total = sum(bd.values()) or 1.0
    print("modeled epoch breakdown: " + ", ".join(
        f"{k} {v / total:.0%}" for k, v in sorted(bd.items(), key=lambda kv: -kv[1])
    ))
    return 0


def cmd_memory(_args: argparse.Namespace) -> int:
    from repro.analysis.memory import feasibility_table, memory_2d
    from repro.graph.datasets import layer_widths, published_spec

    table = feasibility_table()
    rows = []
    for name, fits in table.items():
        spec = published_spec(name)
        widths = layer_widths(spec.features, spec.labels)
        nnz = spec.edges + spec.vertices
        for gpus, ok in fits.items():
            est = memory_2d(spec.vertices, nnz, widths, gpus)
            rows.append(
                (name, gpus, f"{est.total_gib:.1f}",
                 "fits" if ok else "OOM")
            )
    print("Section V-C memory feasibility (2D algorithm, 16 GB V100):\n")
    _print_table(("dataset", "GPUs", "GiB/rank", "verdict"), rows)
    print("\npaper: amazon omitted at 4 GPUs; protein omitted at 4 and 16.")
    return 0


def cmd_explosion(args: argparse.Namespace) -> int:
    from repro.graph import make_standin
    from repro.sampling import neighborhood_explosion_stats

    ds = make_standin(args.dataset or "reddit", scale_divisor=args.scale,
                      seed=args.seed)
    print(f"dataset: {ds.name}  n={ds.num_vertices}\n")
    rows = []
    for batch in (8, 32, 128):
        batch = min(batch, ds.num_vertices)
        stats = neighborhood_explosion_stats(
            ds.adjacency, batch_size=batch, hops=args.hops, trials=3,
            seed=args.seed,
        )
        rows.append(
            (batch, *(int(s) for s in stats.mean_frontier_sizes),
             f"{stats.final_fraction:.1%}")
        )
    _print_table(
        ("batch",) + tuple(f"hop{k}" for k in range(args.hops + 1))
        + ("fraction",),
        rows,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAGNET (SC 2020) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table6", help="Table VI dataset characteristics")

    for name in ("figure2", "figure3"):
        p = sub.add_parser(name, help=f"reproduce {name}")
        p.add_argument("--dataset", choices=("reddit", "amazon", "protein"))

    sub.add_parser("crossover", help="1D-vs-2D crossover per dataset")

    sub.add_parser("memory", help="Section V-C memory feasibility table")

    p = sub.add_parser("train", help="train a GCN on a virtual cluster")
    p.add_argument("--algorithm", default="2d",
                   choices=("1d", "1.5d", "2d", "3d"))
    p.add_argument("--gpus", type=int, default=4)
    p.add_argument("--dataset", choices=("reddit", "amazon", "protein"),
                   help="Table VI stand-in (default: synthetic)")
    p.add_argument("--scale", type=int, default=1024,
                   help="stand-in scale divisor")
    p.add_argument("--vertices", type=int, default=512)
    p.add_argument("--degree", type=float, default=8.0)
    p.add_argument("--features", type=int, default=32)
    p.add_argument("--classes", type=int, default=4)
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--lr", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--replication", type=int, default=2,
                   help="1.5D replication factor c")

    p = sub.add_parser("explosion", help="neighbourhood explosion stats")
    p.add_argument("--dataset", choices=("reddit", "amazon", "protein"))
    p.add_argument("--scale", type=int, default=512)
    p.add_argument("--hops", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)

    return parser


COMMANDS = {
    "table6": cmd_table6,
    "figure2": cmd_figure2,
    "figure3": cmd_figure3,
    "crossover": cmd_crossover,
    "memory": cmd_memory,
    "train": cmd_train,
    "explosion": cmd_explosion,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
