"""Chrome / Perfetto trace-event export and validation.

A :class:`~repro.obs.tracing.MergedTrace` serialises to the Trace Event
Format (the JSON ``chrome://tracing`` and https://ui.perfetto.dev load):
one ``"X"`` complete event per span with microsecond timestamps relative
to the earliest span, ``pid`` = worker, ``tid`` = lead mesh rank, and
``"M"`` metadata events naming each row.  The exported document also
carries a top-level ``"repro"`` object (ignored by trace viewers) with
the worker table and -- when written by ``repro train`` -- the recorded
run config and modeled ledger breakdown, which is what makes a trace
file self-contained input for ``repro report``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.spans import SPAN_CATEGORIES
from repro.obs.tracing import MergedTrace, TraceSpan

__all__ = [
    "chrome_events",
    "export_chrome_trace",
    "trace_from_chrome",
    "validate_chrome_trace",
]

#: Monotonic stamps can collide at microsecond resolution; the exporter
#: bumps ties by this many microseconds so ``ts`` is strictly increasing
#: per (pid, tid) -- which the validator (and CI) then asserts.
_TS_EPSILON_US = 1e-3


def _span_args(span: TraceSpan) -> Optional[dict]:
    """Human-readable ``args`` for the trace viewer's detail pane."""
    meta = span.meta
    if meta is None:
        return None
    if span.cat == "epoch":
        return {"epoch": int(meta[0])} if meta else None
    if span.cat == "xchg" and len(meta) >= 5:
        return {
            "gkey": str(meta[0]),
            "serialize_ms": round(float(meta[1]) * 1e3, 6),
            "wait_ms": round(float(meta[2]) * 1e3, 6),
            "copy_ms": round(float(meta[3]) * 1e3, 6),
            "bytes": int(meta[4]),
        }
    return {"meta": list(meta)}


def chrome_events(trace: MergedTrace) -> List[dict]:
    """The ``traceEvents`` array: metadata rows + one X event per span."""
    events: List[dict] = []
    for pid, info in sorted(trace.workers.items()):
        ranks = info.get("ranks") or []
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"worker {pid} (ranks {ranks})"},
        })
        tid = min(ranks) if ranks else 0
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": f"rank {tid}"},
        })
    base = trace.base
    last_ts: Dict[Tuple[int, int], float] = {}
    for span in trace.spans:  # already sorted by (pid, tid, t0)
        ts = (span.t0 - base) * 1e6
        key = (span.pid, span.tid)
        prev = last_ts.get(key)
        if prev is not None and ts <= prev:
            ts = prev + _TS_EPSILON_US
        last_ts[key] = ts
        event = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": ts,
            "dur": max(0.0, span.dur * 1e6),
            "pid": span.pid,
            "tid": span.tid,
        }
        args = _span_args(span)
        if args is not None:
            event["args"] = args
        events.append(event)
    return events


def export_chrome_trace(trace: MergedTrace, path: str,
                        extra: Optional[dict] = None) -> dict:
    """Write ``trace`` to ``path`` as trace-event JSON; returns the doc.

    ``extra`` (e.g. :func:`repro.obs.report.build_trace_meta`'s payload)
    is merged into the top-level ``"repro"`` object alongside the worker
    table, making the file sufficient for a later ``repro report``.
    """
    repro_meta = dict(extra or {})
    repro_meta.setdefault("workers", {
        str(pid): dict(info) for pid, info in sorted(trace.workers.items())
    })
    doc = {
        "traceEvents": chrome_events(trace),
        "displayTimeUnit": "ms",
        "repro": repro_meta,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc


def validate_chrome_trace(payload: dict) -> List[str]:
    """Schema problems with a trace-event document ([] when valid).

    Checks what CI relies on: ``traceEvents`` is a list, every complete
    event carries the required fields, categories are known, durations
    are non-negative, and ``ts`` strictly increases per (pid, tid).
    """
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    last_ts: Dict[Tuple[int, int], float] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            problems.append(f"event {i}: unexpected ph {ph!r}")
            continue
        missing = [k for k in ("name", "cat", "ts", "dur", "pid", "tid")
                   if k not in ev]
        if missing:
            problems.append(f"event {i}: missing {missing}")
            continue
        if ev["cat"] not in SPAN_CATEGORIES:
            problems.append(f"event {i}: unknown category {ev['cat']!r}")
        if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
            problems.append(f"event {i}: negative or non-numeric dur")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: non-numeric ts")
            continue
        key = (ev["pid"], ev["tid"])
        prev = last_ts.get(key)
        if prev is not None and ts <= prev:
            problems.append(
                f"event {i}: ts {ts} not strictly increasing on "
                f"pid={key[0]} tid={key[1]} (prev {prev})"
            )
        last_ts[key] = ts
    return problems


def _meta_from_args(cat: str, args: Optional[dict]) -> Optional[tuple]:
    """Invert :func:`_span_args` (lossy only in float rounding)."""
    if not args:
        return None
    if cat == "epoch" and "epoch" in args:
        return (int(args["epoch"]),)
    if cat == "xchg" and "gkey" in args:
        return (args["gkey"],
                float(args.get("serialize_ms", 0.0)) / 1e3,
                float(args.get("wait_ms", 0.0)) / 1e3,
                float(args.get("copy_ms", 0.0)) / 1e3,
                int(args.get("bytes", 0)))
    if "meta" in args:
        return tuple(args["meta"])
    return None


def trace_from_chrome(payload: dict) -> MergedTrace:
    """Rebuild a :class:`MergedTrace` from an exported document.

    This is how ``repro report`` analyses a trace file offline; times
    come back in seconds relative to the original base (absolute bases
    are not preserved, which no analysis needs).
    """
    spans = []
    for ev in payload.get("traceEvents", []):
        if not isinstance(ev, dict) or ev.get("ph") != "X":
            continue
        t0 = float(ev["ts"]) / 1e6
        t1 = t0 + float(ev["dur"]) / 1e6
        spans.append(TraceSpan(
            name=str(ev["name"]), cat=str(ev["cat"]), t0=t0, t1=t1,
            pid=int(ev["pid"]), tid=int(ev["tid"]),
            meta=_meta_from_args(str(ev["cat"]), ev.get("args")),
        ))
    workers: Dict[int, dict] = {}
    meta = payload.get("repro") or {}
    for pid, info in (meta.get("workers") or {}).items():
        try:
            workers[int(pid)] = dict(info)
        except (TypeError, ValueError):
            continue
    return MergedTrace(spans, workers)
