"""Per-kernel compute/memory profiling (flops, bytes, seconds).

The ledger models *communication*; spans measure *wall clock*; this
module closes the third gap: what the hot **compute kernels** actually
did -- floating-point operations, bytes touched, and seconds spent --
so the drift report can put a measured arithmetic-intensity/roofline
row next to the :class:`~repro.sparse.perfmodel.SpmmPerfModel` and
``MachineProfile.gemm_flops`` predictions.

Instrumented kernels (each site pays one ``is None`` test when off):

=================  =====================================================
``spmm``           every sparse-dense multiply through
                   :func:`repro.sparse.spmm.spmm` (extras accumulate
                   nnz / rows / cols so the report can re-run the
                   SpMM perf model on the average operand shape)
``gemm.forward``   ``forward_gemm`` (``H @ W``) in :mod:`repro.nn.layers`
``gemm.wgrad``     ``weight_gradient`` (``H^T @ G``)
``gemm.hgrad``     ``hidden_gradient`` (``AG @ W^T``)
``reduce.fold``    the group-order reduction fold every allreduce /
                   reduce-scatter funnels through
                   (:meth:`repro.comm.collectives.Collectives._reduce_arrays`,
                   inherited by the process backend's collectives)
=================  =====================================================

Memory gauges ride along: peak RSS from ``resource.getrusage`` and the
shared-memory arena's high-water occupancy / ephemeral-spill counters
(:mod:`repro.parallel.shm`).  Like spans, profiling is strictly
observational -- it never touches the ledger, so profiled runs stay
bit-identical in losses and ledger digests.  On the process backend
each worker profiles locally and the snapshot rides back on the
existing single fit dispatch next to its spans.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = [
    "ACTIVE",
    "KernelProfiler",
    "disable",
    "enable",
    "is_enabled",
    "merge_profiles",
    "peak_rss_bytes",
]


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes.  Windows has no ``resource`` module -- report 0 rather than
    fail, the gauge is advisory.
    """
    try:
        import resource
        import sys
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(rss) if sys.platform == "darwin" else int(rss) * 1024
    except (ImportError, OSError, ValueError):  # pragma: no cover - non-POSIX
        return 0


class KernelProfiler:
    """Accumulates per-kernel call / flop / byte / second counters.

    One profiler per process, no locks (same single-writer discipline
    as :class:`~repro.obs.spans.SpanRecorder`).  ``add`` is the hot
    call: a dict lookup plus five float adds.
    """

    __slots__ = ("kernels", "clock", "t_enabled")

    #: per-kernel accumulator layout
    _FIELDS = ("calls", "seconds", "flops", "bytes")

    def __init__(self):
        #: kernel name -> [calls, seconds, flops, bytes, *extras]
        self.kernels: Dict[str, List[float]] = {}
        self.clock = time.perf_counter
        self.t_enabled = self.clock()

    def add(self, kernel: str, seconds: float, flops: float,
            nbytes: float, *extras: float) -> None:
        """Record one kernel invocation.

        ``extras`` accumulate positionally into the same slot list --
        the SpMM site uses them for (nnz, nrows, ncols) sums so the
        report can reconstruct the average operand shape.
        """
        acc = self.kernels.get(kernel)
        if acc is None:
            acc = self.kernels[kernel] = [0.0, 0.0, 0.0, 0.0,
                                          *([0.0] * len(extras))]
        acc[0] += 1
        acc[1] += seconds
        acc[2] += flops
        acc[3] += nbytes
        for i, x in enumerate(extras):
            acc[4 + i] += x

    def snapshot(self, arena=None) -> dict:
        """JSON-able summary: kernels, intensities, memory gauges.

        ``arena`` is an optional :class:`repro.parallel.shm.Arena`
        whose occupancy/overflow gauges are folded in (process-backend
        workers pass their payload arena).
        """
        kernels = {}
        for name, acc in sorted(self.kernels.items()):
            calls, seconds, flops, nbytes = acc[:4]
            entry = {
                "calls": int(calls),
                "seconds": seconds,
                "flops": flops,
                "bytes": nbytes,
                # arithmetic intensity: flops per byte moved; the
                # roofline x-axis (0 for pure-copy kernels)
                "intensity": flops / nbytes if nbytes else 0.0,
                "gflops_per_s": flops / seconds / 1e9 if seconds else 0.0,
            }
            if len(acc) > 4:
                entry["extras"] = list(acc[4:])
            kernels[name] = entry
        out = {
            "kernels": kernels,
            "elapsed_s": self.clock() - self.t_enabled,
            "peak_rss_bytes": peak_rss_bytes(),
        }
        if arena is not None:
            out["arena"] = {
                "size_bytes": arena.size,
                "high_water_bytes": arena.high_water,
                "occupancy": (arena.high_water / arena.size
                              if arena.size else 0.0),
                "spills": arena.spills,
            }
        return out


#: The process-wide profiler kernel sites consult (``None`` = off).
ACTIVE: Optional[KernelProfiler] = None


def enable() -> KernelProfiler:
    """Install (and return) a fresh profiler as the active one."""
    global ACTIVE
    ACTIVE = KernelProfiler()
    return ACTIVE


def disable() -> Optional[KernelProfiler]:
    """Deactivate profiling; returns the profiler that was active."""
    global ACTIVE
    prof, ACTIVE = ACTIVE, None
    return prof


def is_enabled() -> bool:
    return ACTIVE is not None


def merge_profiles(snapshots: List[Optional[dict]]) -> dict:
    """Fold per-worker profile snapshots into one run-level summary.

    Kernel counters sum across workers; memory gauges take the max
    (peak RSS / arena occupancy are per-process peaks, and the report
    cares about the worst worker).  ``None`` entries are skipped.
    """
    kernels: Dict[str, dict] = {}
    peak_rss = 0
    arena = None
    nworkers = 0
    for snap in snapshots:
        if not snap:
            continue
        nworkers += 1
        peak_rss = max(peak_rss, snap.get("peak_rss_bytes", 0))
        a = snap.get("arena")
        if a and (arena is None
                  or a.get("occupancy", 0) > arena.get("occupancy", 0)):
            arena = dict(a)
        for name, entry in snap.get("kernels", {}).items():
            acc = kernels.get(name)
            if acc is None:
                acc = kernels[name] = {
                    "calls": 0, "seconds": 0.0, "flops": 0.0,
                    "bytes": 0.0,
                }
            acc["calls"] += entry.get("calls", 0)
            acc["seconds"] += entry.get("seconds", 0.0)
            acc["flops"] += entry.get("flops", 0.0)
            acc["bytes"] += entry.get("bytes", 0.0)
            extras = entry.get("extras")
            if extras:
                have = acc.setdefault("extras", [0.0] * len(extras))
                for i, x in enumerate(extras):
                    have[i] += x
    for acc in kernels.values():
        acc["intensity"] = (acc["flops"] / acc["bytes"]
                            if acc["bytes"] else 0.0)
        acc["gflops_per_s"] = (acc["flops"] / acc["seconds"] / 1e9
                               if acc["seconds"] else 0.0)
    out = {
        "workers": nworkers,
        "kernels": dict(sorted(kernels.items())),
        "peak_rss_bytes": peak_rss,
    }
    if arena is not None:
        out["arena"] = arena
    return out
