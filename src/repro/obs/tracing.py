"""Merging worker span streams into one driver-clock trace.

Each process records spans against its own ``time.monotonic()``.  On one
host that clock is system-wide, so worker and driver timestamps already
share a base and the merge is a concatenation.  Across hosts (the TCP
transport) each host has its own monotonic base, so the driver aligns
every worker stream by the offset between its fit-dispatch timestamp and
the worker's fit-start timestamp.  That offset includes the command
queue latency (milliseconds), which would *corrupt* same-host traces --
so it is only applied when it exceeds :data:`CLOCK_SKEW_THRESHOLD`
seconds, i.e. when the bases are unmistakably different clocks.

:class:`MergedTrace` is the analysis surface: per-category wall seconds
with correct nesting (an SpMM span's time excludes the broadcast it
contains), per-epoch stats and the pacesetting worker, and the exchange
wait/serialize/copy totals.  ``xchg`` spans are transparent to the
category accounting -- a channel exchange happens *inside* a comm span
and its time already belongs to that span's ledger category; the
exchange phase split is reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import groupby
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import spans as _spans

__all__ = [
    "CLOCK_SKEW_THRESHOLD",
    "MergedTrace",
    "TraceSpan",
    "merge_worker_obs",
    "traced_fit",
]

#: Monotonic bases on one host agree to microseconds; across hosts they
#: differ by uptime (typically hours).  An offset below this many
#: seconds is queue latency, not clock skew, and is not applied.
CLOCK_SKEW_THRESHOLD = 60.0

#: Sub-second slack when deciding whether span B nests inside span A
#: (guards against floating-point equality at shared endpoints).
_EPS = 1e-9


@dataclass(frozen=True)
class TraceSpan:
    """One merged span on the driver's clock.

    ``pid`` is the recording worker (0 for the driver / virtual
    backend); ``tid`` its lead mesh rank, so Chrome/Perfetto rows read
    as "worker pid, ranks from tid".
    """

    name: str
    cat: str
    t0: float
    t1: float
    pid: int
    tid: int
    meta: Optional[tuple] = None

    @property
    def dur(self) -> float:
        return self.t1 - self.t0


class MergedTrace:
    """All workers' spans on one clock, plus per-worker metadata."""

    def __init__(self, spans: Iterable[TraceSpan],
                 workers: Optional[Dict[int, dict]] = None):
        self.spans: List[TraceSpan] = sorted(
            spans, key=lambda s: (s.pid, s.tid, s.t0, -s.t1)
        )
        #: ``{pid: {"ranks": [...], "offset": s, "dropped": n}}``
        self.workers: Dict[int, dict] = dict(workers or {})
        self.base = min((s.t0 for s in self.spans), default=0.0)

    # ------------------------------------------------------------------ #
    # nesting analysis
    # ------------------------------------------------------------------ #
    def _annotated(self) -> List[Tuple[TraceSpan, float, Optional[int]]]:
        """``(span, self_seconds, epoch_index)`` for every non-xchg span.

        Self seconds subtract the span's *immediate* children, so a
        category total never double-counts nested work (the SpMM sweep
        minus the broadcasts it performs).  ``epoch_index`` is inherited
        from the nearest enclosing ``epoch`` span (``None`` outside any
        epoch, e.g. a traced predict).
        """
        cached = getattr(self, "_ann", None)
        if cached is not None:
            return cached
        ann: List[Tuple[TraceSpan, float, Optional[int]]] = []
        for _, group in groupby(self.spans, key=lambda s: (s.pid, s.tid)):
            tree = [s for s in group if s.cat != "xchg"]
            child = [0.0] * len(tree)
            epoch_of: List[Optional[int]] = [None] * len(tree)
            stack: List[int] = []
            for i, s in enumerate(tree):
                while stack and tree[stack[-1]].t1 <= s.t0 + _EPS:
                    stack.pop()
                if stack:
                    parent = stack[-1]
                    child[parent] += s.dur
                    epoch_of[i] = epoch_of[parent]
                if s.cat == "epoch" and s.meta:
                    epoch_of[i] = int(s.meta[0])
                stack.append(i)
            for i, s in enumerate(tree):
                ann.append((s, max(0.0, s.dur - child[i]), epoch_of[i]))
        self._ann = ann
        return ann

    def _epoch_indices(self) -> List[int]:
        return sorted({e for _, _, e in self._annotated() if e is not None})

    def _counted_epochs(self, skip_first: bool) -> List[int]:
        """Epoch indices the breakdowns average over (epoch 0 carries
        one-time warm-up -- workspace allocation, arena growth -- so it
        is dropped when there is anything else to average)."""
        eset = self._epoch_indices()
        if skip_first and len(eset) > 1:
            return eset[1:]
        return eset

    # ------------------------------------------------------------------ #
    # breakdowns
    # ------------------------------------------------------------------ #
    def per_worker_breakdown(self, skip_first: bool = True
                             ) -> Dict[int, Dict[str, float]]:
        """``{pid: {category: self wall seconds}}`` over counted epochs.

        The ``epoch`` span's own self time (loss finishing, optimiser
        step, everything not under a finer span) lands in ``misc`` --
        the same residual the ledger's misc category models.
        """
        counted = set(self._counted_epochs(skip_first))
        out: Dict[int, Dict[str, float]] = {}
        for s, self_s, e in self._annotated():
            if e is None or e not in counted:
                continue
            cat = "misc" if s.cat == "epoch" else s.cat
            d = out.setdefault(s.pid, {})
            d[cat] = d.get(cat, 0.0) + self_s
        return out

    def measured_epoch_breakdown(self, skip_first: bool = True
                                 ) -> Dict[str, float]:
        """Mean measured wall seconds per epoch per category.

        Aggregated as the **max over workers** -- the bulk-synchronous
        run is paced by its slowest worker, matching the ledger's
        slowest-rank-per-step convention (Fig. 3).
        """
        counted = self._counted_epochs(skip_first)
        if not counted:
            return {}
        per = self.per_worker_breakdown(skip_first)
        cats = sorted({c for d in per.values() for c in d})
        n = len(counted)
        return {
            c: max((d.get(c, 0.0) for d in per.values()), default=0.0) / n
            for c in cats
        }

    def phase_breakdown(self, skip_first: bool = True) -> Dict[str, dict]:
        """Per span name: count and summed self seconds (all workers).

        Phases are disjoint by construction (self time), so they sum to
        the per-worker totals.
        """
        counted = set(self._counted_epochs(skip_first))
        out: Dict[str, dict] = {}
        for s, self_s, e in self._annotated():
            if s.cat == "epoch" or e is None or e not in counted:
                continue
            d = out.setdefault(
                s.name, {"category": s.cat, "count": 0, "seconds": 0.0}
            )
            d["count"] += 1
            d["seconds"] += self_s
        return out

    # ------------------------------------------------------------------ #
    # epochs, stragglers, exchanges
    # ------------------------------------------------------------------ #
    def epoch_stats(self) -> List[dict]:
        """Per epoch: wall seconds per worker and who set the pace.

        The pacesetter is the worker whose epoch span *ended last* on
        the aligned clock; with a single recorder (virtual backend, one
        worker) there is no one to straggle against and the sentinel
        ``-1`` is reported, mirroring ``StepTracer``.
        """
        per: Dict[int, Dict[int, Tuple[float, float]]] = {}
        for s in self.spans:
            if s.cat != "epoch":
                continue
            e = int(s.meta[0]) if s.meta else 0
            per.setdefault(e, {})[s.pid] = (s.dur, s.t1)
        out = []
        for e in sorted(per):
            pids = per[e]
            if len(pids) <= 1:
                pace = -1
            else:
                pace = max(pids, key=lambda p: pids[p][1])
            out.append({
                "epoch": e,
                "seconds": max(d for d, _ in pids.values()),
                "pacesetter": pace,
                "per_worker": {p: d for p, (d, _) in sorted(pids.items())},
            })
        return out

    def straggler_counts(self) -> Dict[int, int]:
        """How many epochs each worker paced (``-1``: nothing to pace)."""
        out: Dict[int, int] = {}
        for rec in self.epoch_stats():
            p = rec["pacesetter"]
            out[p] = out.get(p, 0) + 1
        return out

    def exchange_summary(self) -> dict:
        """Channel-exchange totals: wait vs serialize vs copy seconds."""
        n = 0
        dur = ser = wait = copy = 0.0
        nbytes = 0
        for s in self.spans:
            if s.cat != "xchg":
                continue
            n += 1
            dur += s.dur
            if s.meta and len(s.meta) >= 5:
                ser += float(s.meta[1])
                wait += float(s.meta[2])
                copy += float(s.meta[3])
                nbytes += int(s.meta[4])
        return {"count": n, "seconds": dur, "serialize_s": ser,
                "wait_s": wait, "copy_s": copy, "bytes_sent": nbytes}

    def profile_summary(self) -> Optional[dict]:
        """Run-level kernel-profile summary (``None`` if unprofiled).

        Folds the per-worker :mod:`repro.obs.profile` snapshots that
        rode back on the fit dispatch (kernel counters sum; memory
        gauges take the worst worker).
        """
        blobs = [info.get("profile") for info in self.workers.values()]
        if not any(blobs):
            return None
        from repro.obs.profile import merge_profiles
        return merge_profiles(blobs)

    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """A JSON-able digest (the ``--json`` / drift-report input)."""
        epochs = self.epoch_stats()
        out = {
            "spans": len(self.spans),
            "epochs": len(epochs),
            "epoch_seconds": [round(r["seconds"], 9) for r in epochs],
            "measured_epoch_breakdown": self.measured_epoch_breakdown(),
            "stragglers": {str(k): v
                           for k, v in self.straggler_counts().items()},
            "exchange": self.exchange_summary(),
            "workers": {str(pid): dict(info)
                        for pid, info in sorted(self.workers.items())},
            "dropped": sum(int(info.get("dropped", 0))
                           for info in self.workers.values()),
        }
        profile = self.profile_summary()
        if profile is not None:
            out["profile"] = profile
        return out


def merge_worker_obs(blobs: Sequence[Optional[dict]],
                     t_dispatch: Optional[float] = None,
                     skew_threshold: float = CLOCK_SKEW_THRESHOLD
                     ) -> MergedTrace:
    """Merge per-worker obs blobs (see ``backend._handle``'s fit path).

    ``t_dispatch`` is the driver's monotonic timestamp just before the
    fit dispatch; a worker whose fit-start timestamp differs by more
    than ``skew_threshold`` is on another host's clock and its spans are
    shifted onto the driver's.  Same-host offsets (queue latency) are
    left at zero -- the clocks already agree.
    """
    spans: List[TraceSpan] = []
    workers: Dict[int, dict] = {}
    for blob in blobs:
        if not blob:
            continue
        offset = 0.0
        if t_dispatch is not None:
            raw = t_dispatch - float(blob.get("align", t_dispatch))
            if abs(raw) >= skew_threshold:
                offset = raw
        pid = int(blob.get("worker", 0))
        ranks = list(blob.get("ranks") or [pid])
        tid = min(ranks)
        raw_spans = blob.get("spans") or []
        for name, cat, t0, t1, meta in raw_spans:
            spans.append(TraceSpan(name, cat, t0 + offset, t1 + offset,
                                   pid, tid, meta))
        workers[pid] = {
            "ranks": ranks,
            "offset": offset,
            "dropped": int(blob.get("dropped", 0)),
            "nspans": len(raw_spans),
        }
        if blob.get("profile"):
            workers[pid]["profile"] = blob["profile"]
    return MergedTrace(spans, workers)


def traced_fit(algo, features, labels, epochs: int, mask=None,
               capacity: int = _spans.DEFAULT_CAPACITY,
               profile: bool = False, **fit_kwargs):
    """Run ``algo.fit`` under span tracing; returns ``(history, trace)``.

    Works on both backends: a :class:`~repro.parallel.ParallelAlgorithm`
    piggy-backs worker-recorded spans on its single fit dispatch; any
    other algorithm (virtual runtime) records driver-side spans around
    the same instrumented epoch loop.  Tracing never touches the ledger,
    so the returned history is bit-identical to an untraced fit.

    ``profile=True`` additionally enables per-kernel compute/memory
    profiling (:mod:`repro.obs.profile`); the per-worker snapshots land
    in the trace's worker table and ``MergedTrace.profile_summary()``.

    Extra keyword arguments (e.g. ``checkpoint_path`` /
    ``checkpoint_every``) pass straight through to ``algo.fit``.
    """
    try:
        from repro.parallel.runtime import ParallelAlgorithm
    except ImportError:  # pragma: no cover - parallel always importable
        ParallelAlgorithm = None
    if ParallelAlgorithm is not None and isinstance(algo, ParallelAlgorithm):
        history = algo.fit(features, labels, epochs, mask=mask,
                           trace={"capacity": int(capacity),
                                  "profile": bool(profile)},
                           **fit_kwargs)
        return history, algo.last_trace
    from repro.obs import profile as _profile
    rec = _spans.enable(capacity)
    prof = _profile.enable() if profile else None
    align = rec.clock()
    try:
        history = algo.fit(features, labels, epochs, mask=mask,
                           **fit_kwargs)
    finally:
        _spans.disable()
        if profile:
            _profile.disable()
    rt = getattr(algo, "rt", None)
    ranks = list(range(rt.size)) if rt is not None else [0]
    blob = {
        "worker": 0,
        "ranks": ranks,
        "align": align,
        "spans": rec.drain(),
        "dropped": rec.dropped,
    }
    if prof is not None:
        blob["profile"] = prof.snapshot()
    return history, merge_worker_obs([blob], align)
