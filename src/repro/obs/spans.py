"""Low-overhead wall-clock span recording.

The ledger (:mod:`repro.comm.tracker`) answers "what *should* this epoch
cost on the modeled machine"; spans answer "where did the wall clock
*actually* go".  A :class:`SpanRecorder` is a preallocated ring buffer of
``(name, category, t0, t1, meta)`` tuples stamped with
``time.monotonic()`` -- no allocation beyond the tuple itself, no locks
(each process records into its own recorder), and **~zero cost when
disabled**: instrumentation sites read the module global :data:`ACTIVE`
once and skip both clock calls when it is ``None``::

    rec = _spans.ACTIVE
    if rec is None:
        out = do_work()
    else:
        t0 = rec.clock()
        out = do_work()
        rec.record("bcast", Category.DCOMM, t0, rec.clock())

Spans are strictly observational: they never touch the
:class:`~repro.comm.tracker.CommTracker` ledger, so traced and untraced
runs stay bit-identical in losses and ledger bytes (tested).  On the
process backend each worker enables its own recorder for the duration of
a resident ``fit`` and the drained spans ride back on the existing
single fit-result dispatch (:mod:`repro.parallel.backend`).

This module is deliberately stdlib-only so the hot paths
(:mod:`repro.dist.base`, :mod:`repro.parallel.channel`) can import it
without pulling in anything else.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Tuple

__all__ = [
    "ACTIVE",
    "DEFAULT_CAPACITY",
    "SPAN_CATEGORIES",
    "SpanRecorder",
    "disable",
    "enable",
    "is_enabled",
]

#: Default ring capacity: at ~5 ledger categories x a few dozen spans per
#: epoch, 64k spans cover hundreds of epochs before the ring wraps.
DEFAULT_CAPACITY = 65536

#: Every category a span may carry: the ledger's Fig. 3 categories
#: (mirroring ``Category.ALL`` without importing it) plus the two
#: obs-only ones -- ``epoch`` (one span per training epoch) and ``xchg``
#: (one span per channel exchange, nested inside the comm span that
#: triggered it).
SPAN_CATEGORIES = ("scomm", "dcomm", "trpose", "spmm", "misc",
                   "epoch", "xchg")

#: A raw span as stored in the ring: ``(name, category, t0, t1, meta)``
#: with monotonic-clock endpoint seconds and an optional small tuple of
#: site-specific detail (epoch index; exchange phase seconds).
RawSpan = Tuple[str, str, float, float, Optional[tuple]]


class SpanRecorder:
    """A preallocated ring buffer of wall-clock spans.

    When the ring is full the oldest spans are overwritten (the most
    recent window survives) and :attr:`dropped` counts the casualties --
    a trace must degrade by forgetting the distant past, never by
    stalling the hot path with a growing list.
    """

    __slots__ = ("capacity", "dropped", "clock", "cat_seconds",
                 "_ring", "_n")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"span capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: spans overwritten because the ring wrapped
        self.dropped = 0
        #: the clock spans are stamped with; monotonic so merging across
        #: processes reduces to a per-worker offset (same host: zero)
        self.clock = time.monotonic
        #: running per-category span seconds since construction.  Unlike
        #: the ring these survive both wrap-around and :meth:`drain`, so
        #: a live sampler can publish totals mid-run without racing the
        #: drain that ships spans back to the driver.
        self.cat_seconds = {c: 0.0 for c in SPAN_CATEGORIES}
        self._ring: List[Optional[RawSpan]] = [None] * capacity
        self._n = 0

    def __len__(self) -> int:
        return min(self._n, self.capacity)

    def record(self, name: str, category: str, t0: float, t1: float,
               meta: Optional[tuple] = None) -> None:
        """Append one completed span (endpoints from :attr:`clock`)."""
        i = self._n
        if i >= self.capacity:
            self.dropped += 1
        self._ring[i % self.capacity] = (name, category, t0, t1, meta)
        self._n = i + 1
        if category in self.cat_seconds:
            self.cat_seconds[category] += t1 - t0

    def category_seconds(self) -> dict:
        """Copy of the running per-category totals (drain-proof)."""
        return dict(self.cat_seconds)

    def drain(self) -> List[RawSpan]:
        """All recorded spans in record order; resets the ring.

        :attr:`dropped` is left readable so callers can report how much
        history the ring forgot.
        """
        if self._n <= self.capacity:
            out = [s for s in self._ring[: self._n]]
        else:
            i = self._n % self.capacity
            out = [s for s in self._ring[i:] + self._ring[:i]]
        self._ring = [None] * self.capacity
        self._n = 0
        return out


#: The process-wide recorder instrumentation sites consult.  ``None``
#: means tracing is off and every site skips its clock calls.
ACTIVE: Optional[SpanRecorder] = None


def enable(capacity: int = DEFAULT_CAPACITY) -> SpanRecorder:
    """Install (and return) a fresh recorder as the active one."""
    global ACTIVE
    ACTIVE = SpanRecorder(capacity)
    return ACTIVE


def disable() -> Optional[SpanRecorder]:
    """Deactivate tracing; returns the recorder that was active."""
    global ACTIVE
    rec, ACTIVE = ACTIVE, None
    return rec


def is_enabled() -> bool:
    return ACTIVE is not None
