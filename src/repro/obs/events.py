"""Structured JSON-lines event log for live and post-mortem runs.

Spans (:mod:`repro.obs.spans`) answer "where did the wall clock go";
events answer "what *happened*, in order": run lifecycle, epoch
completions, checkpoint writes, configured fault plans, and the full
recovery taxonomy (``WorkerDead``/``WorkerStalled``/``TransportError``
-> backoff -> respawn -> resume).  A multi-hour elastic fit leaves a
line-per-event audit trail that is readable while the run is alive --
each line is flushed as soon as it happens -- and verifiable after it
is dead.

Format (schema ``repro-events/1``)
----------------------------------
One compact JSON object per line::

    {"schema": "repro-events/1", "seq": 3, "ts": 1754500000.1,
     "type": "epoch", "link": "9f2c41d08a1b", "data": {"epoch": 2, ...}}

* ``seq`` is contiguous from 0 -- a deleted line breaks the sequence;
* ``link`` is the first 12 hex chars of the SHA-1 of the *previous raw
  line* (the genesis line links to the schema string), so an edited
  line breaks every link after it;
* a crash mid-write can only truncate the final line, which then fails
  to parse -- earlier lines are already durable (``flush`` per event).

:func:`validate_event_log` checks all of the above plus that every
``type`` is known, so a tampered or truncated log is rejected instead
of silently trusted.

Emission sites consult the module-global :data:`ACTIVE` sink with the
same ``is None`` fast path as span recording, so runs without
``--events`` pay nothing.  On the process backend the *driver* owns the
log: worker-side epochs/checkpoints are journalled from the driver's
replay of the adopted history (deterministic, same order), and the
recovery loop journals failures live as it handles them.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Union

__all__ = [
    "ACTIVE",
    "EVENTS_SCHEMA",
    "EVENT_TYPES",
    "EventLog",
    "disable",
    "emit",
    "enable",
    "read_event_log",
    "validate_event_log",
]

EVENTS_SCHEMA = "repro-events/1"

#: Every event type a ``repro-events/1`` log may carry.  The validator
#: rejects unknown types, so extending the taxonomy means bumping this
#: tuple (and the schema if the change is incompatible).
EVENT_TYPES = (
    "run_start",     # config snapshot; first event of a run
    "run_end",       # wall seconds, final loss, restart count
    "epoch",         # one completed training epoch (index, loss)
    "checkpoint",    # atomic checkpoint published (path, epoch)
    "fault_plan",    # configured fault-injection specs (chaos runs)
    "failure",       # a recoverable failure was caught (kind, attempt)
    "backoff",       # pre-respawn exponential-backoff sleep (seconds)
    "respawn",       # worker pool respawned (attempt, workers)
    "resume",        # fit re-dispatched with resume=True (from_epoch)
    "error",         # a non-recoverable error surfaced
)

_LINK_CHARS = 12


def _link_of(raw_line: str) -> str:
    return hashlib.sha1(raw_line.encode("utf-8")).hexdigest()[:_LINK_CHARS]


class EventLog:
    """An append-only, hash-chained JSON-lines event sink.

    Lines are written through one file handle opened in append mode and
    flushed per event: every published line is durable and immediately
    readable by a tail/follower, and a crash can only cost the line in
    flight (which the validator then flags as truncated).
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._seq = 0
        self._prev_link = _link_of(EVENTS_SCHEMA)
        self.clock = time.time

    def emit(self, type: str, **data: Any) -> Dict[str, Any]:
        """Append one event; returns the event dict as written."""
        if type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {type!r}; expected one of "
                f"{', '.join(EVENT_TYPES)}")
        event = {
            "schema": EVENTS_SCHEMA,
            "seq": self._seq,
            "ts": self.clock(),
            "type": type,
            "link": self._prev_link,
            "data": data,
        }
        raw = json.dumps(event, sort_keys=True, separators=(",", ":"))
        self._fh.write(raw + "\n")
        self._fh.flush()
        self._seq += 1
        self._prev_link = _link_of(raw)
        return event

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def validate_event_log(
    source: Union[str, os.PathLike, Sequence[str]],
) -> List[str]:
    """Structural validation of an event log; returns problem strings.

    ``source`` is a path or an iterable of raw lines.  Checks, in order
    of how a log usually breaks: JSON parse per line (truncation),
    schema tag, contiguous ``seq`` from 0 (deleted lines), the SHA-1
    hash chain (edited lines), and known ``type`` values.  An empty log
    is a problem too -- a run that wrote nothing has no audit trail.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(os.fspath(source), encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    else:
        lines = list(source)
    problems: List[str] = []
    if not lines:
        return ["event log is empty"]
    prev_link = _link_of(EVENTS_SCHEMA)
    for i, raw in enumerate(lines):
        try:
            event = json.loads(raw)
        except (json.JSONDecodeError, ValueError):
            problems.append(
                f"line {i}: not valid JSON (truncated or corrupt)")
            # Nothing after a broken line can be chain-verified.
            break
        if not isinstance(event, dict):
            problems.append(f"line {i}: not a JSON object")
            break
        if event.get("schema") != EVENTS_SCHEMA:
            problems.append(
                f"line {i}: schema {event.get('schema')!r} != "
                f"{EVENTS_SCHEMA!r}")
        if event.get("seq") != i:
            problems.append(
                f"line {i}: seq {event.get('seq')!r} is not contiguous "
                f"(expected {i}; a line was deleted or reordered)")
        if event.get("link") != prev_link:
            problems.append(
                f"line {i}: hash chain broken (link "
                f"{event.get('link')!r} != expected {prev_link!r}; "
                "an earlier line was edited)")
        if event.get("type") not in EVENT_TYPES:
            problems.append(
                f"line {i}: unknown event type {event.get('type')!r}")
        if not isinstance(event.get("data"), dict):
            problems.append(f"line {i}: data is not an object")
        prev_link = _link_of(raw)
    return problems


def read_event_log(
    path: Union[str, os.PathLike],
) -> List[Dict[str, Any]]:
    """Load and validate an event log; raises ``ValueError`` if bad."""
    problems = validate_event_log(path)
    if problems:
        raise ValueError(
            f"{os.fspath(path)} failed event-log validation: "
            + "; ".join(problems[:5]))
    with open(os.fspath(path), encoding="utf-8") as fh:
        return [json.loads(line) for line in fh.read().splitlines()]


#: The process-wide event sink emission sites consult (``None`` = off).
ACTIVE: Optional[EventLog] = None


def enable(path: Union[str, os.PathLike]) -> EventLog:
    """Install (and return) a fresh event log as the active sink."""
    global ACTIVE
    ACTIVE = EventLog(path)
    return ACTIVE


def disable() -> Optional[EventLog]:
    """Deactivate (and close) the active sink; returns it."""
    global ACTIVE
    log, ACTIVE = ACTIVE, None
    if log is not None:
        log.close()
    return log


def emit(type: str, **data: Any) -> None:
    """Emit through the active sink if one is installed (else no-op)."""
    log = ACTIVE
    if log is not None:
        log.emit(type, **data)
