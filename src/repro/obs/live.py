"""In-flight Prometheus endpoint: scrape a run *while* it trains.

PR 7's metrics are post-hoc (``metrics_from_trace`` after ``fit``
returns); a multi-hour elastic run needs to answer "what epoch are you
on, is anything recovering, how stale is each worker's heartbeat"
**now**.  :class:`LiveServer` is a stdlib ``http.server`` background
thread serving Prometheus text exposition built fresh per scrape from a
caller-supplied ``sampler()``.

The sampler contract keeps the transport constraints honest: on the
process backend the driver blocks inside the single fit dispatch, so
the sampler may only read **driver-visible shared state** -- the
backend's counters, the heartbeat array, and the per-epoch ``livestats``
slots each worker updates from its ``on_epoch`` hook (one aligned-double
write per field per epoch; no locks, single writer per slot block).
``fit`` stays one dispatch and live sampling adds zero driver
round-trips.  On the virtual backend the driver *is* the trainer, so an
``on_epoch`` callback feeds the same sample dict.

Serving is read-only and lock-free by construction: a sample is a
snapshot dict, rendering never mutates trainer state, and a scrape that
races a worker update sees a slightly stale float -- coherent text
either way (asserted under an injected fault + recovery in the tests).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SPAN_CATEGORIES

__all__ = ["LiveServer", "render_live_sample"]


def render_live_sample(sample: Dict) -> str:
    """Render one live sample dict as Prometheus text exposition.

    Recognised keys (all optional -- a sparse sample renders what it
    has): ``epoch``, ``loss``, ``workers``, ``restarts``,
    ``fit_dispatches``, ``recovery_dispatches``, ``checkpoints``,
    ``bytes_sent``, ``exchanges``, ``recovering``,
    ``heartbeat_age_s`` (worker -> seconds), ``span_seconds``
    (category -> seconds), ``worker_epoch`` (worker -> epochs done).
    """
    reg = MetricsRegistry()
    reg.gauge("repro_up", "1 while the run is being served live.").set(1)
    if "epoch" in sample:
        reg.gauge("repro_live_epoch",
                  "Completed training epochs (max across workers)."
                  ).set(sample["epoch"])
    if sample.get("loss") is not None:
        reg.gauge("repro_live_loss",
                  "Training loss of the most recent epoch."
                  ).set(sample["loss"])
    if "workers" in sample:
        reg.gauge("repro_workers", "Worker processes in the pool."
                  ).set(sample["workers"])
    for key, name, help_ in (
        ("restarts", "repro_restarts_total",
         "Elastic pool respawns so far."),
        ("fit_dispatches", "repro_fit_dispatches_total",
         "Resident fit dispatches (one per fit)."),
        ("recovery_dispatches", "repro_recovery_dispatches_total",
         "Dispatches spent rebuilding state after a recovery."),
        ("checkpoints", "repro_checkpoints_written_total",
         "Atomic checkpoints published so far."),
        ("exchanges", "repro_channel_exchanges_total",
         "Channel exchanges across all workers."),
    ):
        if key in sample:
            reg.counter(name, help_).inc(max(0, int(sample[key])))
    if "bytes_sent" in sample:
        reg.counter("repro_channel_bytes_total",
                    "Payload bytes shipped through the channel, all "
                    "workers.").inc(max(0.0, float(sample["bytes_sent"])))
    if "recovering" in sample:
        reg.gauge("repro_recovering",
                  "1 while the driver is inside the recovery loop."
                  ).set(1 if sample["recovering"] else 0)
    for worker, age in sorted((sample.get("heartbeat_age_s") or {}).items()):
        reg.gauge("repro_heartbeat_age_seconds",
                  "Seconds since this worker's heartbeat last advanced.",
                  {"worker": str(worker)}).set(max(0.0, float(age)))
    for worker, ep in sorted((sample.get("worker_epoch") or {}).items()):
        reg.gauge("repro_worker_epoch",
                  "Completed epochs as reported by this worker.",
                  {"worker": str(worker)}).set(float(ep))
    span_seconds = sample.get("span_seconds") or {}
    for cat in SPAN_CATEGORIES:
        if cat in span_seconds:
            reg.counter("repro_live_span_seconds_total",
                        "Running wall seconds recorded in spans of this "
                        "category (traced runs; 0 otherwise).",
                        {"category": cat}
                        ).inc(max(0.0, float(span_seconds[cat])))
    return reg.render()


class _Handler(BaseHTTPRequestHandler):
    # quiet: per-scrape request logging would spam the training console
    def log_message(self, *args) -> None:  # noqa: D102
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path not in ("/", "/metrics"):
            self.send_error(404, "try /metrics")
            return
        try:
            text = self.server.render()  # type: ignore[attr-defined]
        except Exception as exc:  # noqa: BLE001 - a scrape must not kill fit
            self.send_error(500, f"sampler failed: {exc}")
            return
        body = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class LiveServer:
    """Background HTTP server exposing live run metrics on ``/metrics``.

    ``sampler`` is called per scrape and must return a sample dict
    (rendered via :func:`render_live_sample`) or a ready Prometheus
    string.  ``port=0`` binds an ephemeral port (tests); the bound port
    is readable as :attr:`port` after construction.
    """

    def __init__(self, sampler: Callable[[], object], port: int = 0,
                 host: str = "127.0.0.1"):
        self.sampler = sampler

        def render() -> str:
            sample = self.sampler()
            if isinstance(sample, str):
                return sample
            return render_live_sample(sample or {})

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.render = render  # type: ignore[attr-defined]
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-live-metrics",
            daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "LiveServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
