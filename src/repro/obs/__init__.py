"""repro.obs -- wall-clock observability for the training runtimes.

Four layers, each usable alone:

* :mod:`repro.obs.spans` -- the in-process span recorder instrumentation
  sites consult (~zero cost when disabled);
* :mod:`repro.obs.tracing` -- merging worker span streams onto the
  driver's clock and analysing them (breakdowns, stragglers, exchanges);
* :mod:`repro.obs.chrome` -- Chrome/Perfetto trace-event export,
  validation, and re-import;
* :mod:`repro.obs.metrics` -- Prometheus text-format counters, gauges,
  and quantile summaries;
* :mod:`repro.obs.report` -- the model-vs-measured drift report behind
  ``repro report``.

Everything here is observational: spans never touch the ledger, so
traced runs stay bit-identical to untraced ones in losses and ledger
bytes.
"""

from repro.obs.chrome import (
    chrome_events,
    export_chrome_trace,
    trace_from_chrome,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Summary,
    metrics_from_trace,
    write_metrics,
)
from repro.obs.report import (
    build_trace_meta,
    drift_report,
    format_drift_report,
)
from repro.obs.spans import (
    DEFAULT_CAPACITY,
    SPAN_CATEGORIES,
    SpanRecorder,
    disable,
    enable,
    is_enabled,
)
from repro.obs.tracing import (
    MergedTrace,
    TraceSpan,
    merge_worker_obs,
    traced_fit,
)

__all__ = [
    "Counter",
    "DEFAULT_CAPACITY",
    "Gauge",
    "MergedTrace",
    "MetricsRegistry",
    "SPAN_CATEGORIES",
    "SpanRecorder",
    "Summary",
    "TraceSpan",
    "build_trace_meta",
    "chrome_events",
    "disable",
    "drift_report",
    "enable",
    "export_chrome_trace",
    "format_drift_report",
    "is_enabled",
    "merge_worker_obs",
    "metrics_from_trace",
    "trace_from_chrome",
    "traced_fit",
    "validate_chrome_trace",
    "write_metrics",
]
