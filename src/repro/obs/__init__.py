"""repro.obs -- wall-clock observability for the training runtimes.

Four layers, each usable alone:

* :mod:`repro.obs.spans` -- the in-process span recorder instrumentation
  sites consult (~zero cost when disabled);
* :mod:`repro.obs.tracing` -- merging worker span streams onto the
  driver's clock and analysing them (breakdowns, stragglers, exchanges);
* :mod:`repro.obs.chrome` -- Chrome/Perfetto trace-event export,
  validation, and re-import;
* :mod:`repro.obs.metrics` -- Prometheus text-format counters, gauges,
  and quantile summaries;
* :mod:`repro.obs.report` -- the model-vs-measured drift report behind
  ``repro report``;
* :mod:`repro.obs.events` -- the hash-chained JSON-lines event log
  (run lifecycle, epochs, checkpoints, recovery taxonomy);
* :mod:`repro.obs.live` -- the in-flight Prometheus endpoint served
  while ``fit`` runs;
* :mod:`repro.obs.profile` -- per-kernel flop/byte/second counters and
  memory gauges;
* :mod:`repro.obs.diff` -- per-phase/per-category trace diffing with a
  machine-readable verdict (``repro obs diff``).

Everything here is observational: spans never touch the ledger, so
traced runs stay bit-identical to untraced ones in losses and ledger
bytes.
"""

from repro.obs.chrome import (
    chrome_events,
    export_chrome_trace,
    trace_from_chrome,
    validate_chrome_trace,
)
from repro.obs.diff import (
    DIFF_SCHEMA,
    diff_traces,
    format_trace_diff,
)
from repro.obs.events import (
    EVENTS_SCHEMA,
    EVENT_TYPES,
    EventLog,
    read_event_log,
    validate_event_log,
)
from repro.obs.live import (
    LiveServer,
    render_live_sample,
)
from repro.obs.profile import (
    KernelProfiler,
    merge_profiles,
    peak_rss_bytes,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Summary,
    metrics_from_trace,
    write_metrics,
)
from repro.obs.report import (
    build_trace_meta,
    drift_report,
    format_drift_report,
)
from repro.obs.spans import (
    DEFAULT_CAPACITY,
    SPAN_CATEGORIES,
    SpanRecorder,
    disable,
    enable,
    is_enabled,
)
from repro.obs.tracing import (
    MergedTrace,
    TraceSpan,
    merge_worker_obs,
    traced_fit,
)

__all__ = [
    "Counter",
    "DEFAULT_CAPACITY",
    "DIFF_SCHEMA",
    "EVENTS_SCHEMA",
    "EVENT_TYPES",
    "EventLog",
    "Gauge",
    "KernelProfiler",
    "LiveServer",
    "MergedTrace",
    "MetricsRegistry",
    "SPAN_CATEGORIES",
    "SpanRecorder",
    "Summary",
    "TraceSpan",
    "build_trace_meta",
    "chrome_events",
    "diff_traces",
    "disable",
    "drift_report",
    "enable",
    "export_chrome_trace",
    "format_drift_report",
    "format_trace_diff",
    "is_enabled",
    "merge_profiles",
    "merge_worker_obs",
    "metrics_from_trace",
    "peak_rss_bytes",
    "read_event_log",
    "render_live_sample",
    "trace_from_chrome",
    "traced_fit",
    "validate_chrome_trace",
    "validate_event_log",
    "write_metrics",
]
