"""The model-vs-measured drift report behind ``repro report``.

The repo has three answers to "how long is an epoch":

* **modeled** -- the executed ledger's seconds (``CommTracker`` charges
  replayed during the real run, Fig. 3's per-category bars);
* **simulated** -- ``repro.simulate.predict_epoch`` pricing the symbolic
  comm schedule on the same machine profile, without running anything;
* **measured** -- the wall clock, from merged spans.

This module lines the three up per category (and per algorithm phase)
and reports the drift ratio measured/modeled.  A trace file written by
``repro train --trace`` embeds the run config and the modeled
breakdown in its ``"repro"`` object, so a report needs nothing but the
file: the simulated column is recomputed from the recorded config
(dataset regenerated from the recorded seed).

Reading the drift honestly: modeled/simulated seconds price a *virtual*
machine profile (GPU-rate GEMMs, network alpha-beta), while measured
seconds are numpy on the host, so the interesting signal is the
*shape* -- which categories dominate and how that differs.  ``trpose``
is charge-only (2D/3D transposes move no data in this implementation),
so its measured column is ~0 by design.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.chrome import trace_from_chrome
from repro.obs.tracing import MergedTrace

__all__ = [
    "build_trace_meta",
    "drift_report",
    "format_drift_report",
]

#: Config keys forwarded to ``predict_epoch`` as algorithm kwargs.
_ALGO_KWARG_KEYS = ("variant", "replication")


def build_trace_meta(config: dict, history, trace: MergedTrace,
                     wall_seconds: float) -> dict:
    """The ``"repro"`` object ``repro train --trace`` embeds.

    ``config`` records how the run was invoked (enough to regenerate
    the dataset and re-simulate); ``history`` supplies the modeled
    ledger side; ``trace`` the measured side.
    """
    modeled: Dict[str, object] = {"epochs": len(history.epochs)}
    if history.losses:
        modeled["final_loss"] = float(history.losses[-1])
    try:
        modeled["epoch_breakdown"] = {
            str(k): float(v)
            for k, v in history.mean_breakdown(skip_first=True).items()
        }
    except (ValueError, ZeroDivisionError):
        pass
    return {
        "schema": "repro-trace/1",
        "config": dict(config),
        "modeled": modeled,
        "measured": trace.summary(),
        "wall_seconds": float(wall_seconds),
    }


def _simulated_breakdown(config: dict
                         ) -> Tuple[Optional[Dict[str, float]], str]:
    """Re-run the simulator from a recorded config.

    Returns ``(per-category seconds, note)``; the breakdown is ``None``
    with the reason in ``note`` when the config is missing pieces or the
    simulator rejects it (e.g. a trace from an older schema).
    """
    algorithm = config.get("algorithm")
    gpus = config.get("gpus")
    if not algorithm or not gpus:
        return None, "config lacks algorithm/gpus; cannot simulate"
    try:
        from repro.graph import make_standin, make_synthetic
        from repro.simulate import predict_epoch

        if config.get("dataset"):
            ds = make_standin(
                config["dataset"],
                scale_divisor=int(config.get("scale", 1024)),
                seed=int(config.get("seed", 0)),
            )
        else:
            ds = make_synthetic(
                n=int(config.get("vertices", 256)),
                avg_degree=float(config.get("degree", 8.0)),
                f=int(config.get("features", 32)),
                n_classes=int(config.get("classes", 4)),
                seed=int(config.get("seed", 0)),
            )
        kwargs = {}
        for key in _ALGO_KWARG_KEYS:
            if config.get(key) is not None:
                kwargs[key] = config[key]
        if config.get("partition") and str(algorithm) == "1d":
            from repro.dist import Distribution

            kwargs["distribution"] = Distribution.build(
                config["partition"], ds.adjacency, int(gpus),
                seed=int(config.get("seed", 0)),
            )
        point = predict_epoch(
            str(algorithm), ds, int(gpus),
            machine=config.get("machine"),
            hidden=int(config.get("hidden", 16)),
            **kwargs,
        )
    except (KeyError, ValueError, TypeError) as exc:
        # Simulator rejection (unknown machine, infeasible grid, odd
        # config values) is a note in the report, not a crash.
        return None, f"simulation unavailable: {exc}"
    return (
        {str(k): float(v) for k, v in point.seconds_by_category.items()},
        "",
    )


def _compute_section(trace: MergedTrace, config: dict
                     ) -> Tuple[Optional[dict], str]:
    """Per-kernel measured-vs-modeled compute table.

    ``None`` when the trace carries no kernel profile (run without
    ``--profile``).  Modeled seconds price each kernel with the same
    machine rates the ledger charges: SpMM via
    :class:`~repro.sparse.perfmodel.SpmmPerfModel` on the average
    operand shape, GEMMs at ``gemm_flops``, reduction folds at
    ``memory_bandwidth`` -- plus the per-call launch overhead.
    """
    prof = trace.profile_summary()
    if prof is None:
        return None, ""
    try:
        from repro.simulate.machines import get_machine
        from repro.sparse.perfmodel import SpmmPerfModel

        machine = get_machine(config.get("machine"))
        spmm_model = SpmmPerfModel.from_profile(machine)
    except (ImportError, KeyError, ValueError, TypeError) as exc:
        # An unknown machine name or missing perf-model rates degrades
        # to a measured-only profile table, never a crash.
        return None, f"kernel profile unusable: {exc}"
    rows = []
    for name, k in sorted(prof.get("kernels", {}).items()):
        calls = int(k["calls"])
        modeled = None
        if calls:
            launch = calls * machine.kernel_launch_overhead
            extras = k.get("extras") or ()
            if name == "spmm" and len(extras) >= 3:
                nnz, nrows, ncols = (e / calls for e in extras[:3])
                modeled = calls * spmm_model.seconds(nnz, nrows, ncols)
            elif name.startswith("gemm."):
                modeled = float(k["flops"]) / machine.gemm_flops + launch
            elif name == "reduce.fold":
                modeled = (float(k["bytes"]) / machine.memory_bandwidth
                           + launch)
        measured = float(k["seconds"])
        rows.append({
            "kernel": name,
            "calls": calls,
            "measured_s": measured,
            "modeled_s": modeled,
            "drift": (measured / modeled) if modeled else None,
            "gflops": float(k["flops"]) / 1e9,
            "intensity": k.get("intensity"),
        })
    section = {
        "machine": machine.name,
        "kernels": rows,
        "peak_rss_bytes": prof.get("peak_rss_bytes"),
    }
    if prof.get("arena"):
        section["arena"] = dict(prof["arena"])
    return section, ""


def drift_report(payload: dict) -> dict:
    """Build the drift tables from an exported trace document.

    Returns a JSON-able dict with ``categories`` (modeled vs simulated
    vs measured seconds per ledger category plus measured/modeled drift
    ratio), ``phases`` (measured self seconds per span name),
    ``stragglers`` (pacesetter counts per worker), ``exchange`` totals,
    and ``notes`` explaining any missing column.
    """
    meta = payload.get("repro") or {}
    config = dict(meta.get("config") or {})
    modeled = {
        str(k): float(v)
        for k, v in (meta.get("modeled", {}).get("epoch_breakdown")
                     or {}).items()
    }
    trace = trace_from_chrome(payload)
    measured = trace.measured_epoch_breakdown()
    notes: List[str] = []
    if not modeled:
        notes.append("trace carries no modeled breakdown "
                     "(written without --trace via repro train?)")
    simulated, sim_note = _simulated_breakdown(config)
    if sim_note:
        notes.append(sim_note)
    ledger_cats = sorted(
        set(modeled) | set(simulated or {})
        | {c for c in measured if c not in ("epoch", "xchg")}
    )
    rows = []
    for cat in ledger_cats:
        m = modeled.get(cat)
        s = (simulated or {}).get(cat)
        w = measured.get(cat, 0.0)
        drift = (w / m) if m else None
        rows.append({
            "category": cat,
            "modeled_s": m,
            "simulated_s": s,
            "measured_s": w,
            "drift": drift,
        })
    compute, compute_note = _compute_section(trace, config)
    if compute_note:
        notes.append(compute_note)
    dropped = sum(int(info.get("dropped", 0))
                  for info in trace.workers.values())
    if dropped:
        notes.append(
            f"WARNING: {dropped} span(s) dropped (recorder ring filled); "
            "measured columns undercount -- re-run with a larger trace "
            "capacity")
    total_modeled = sum(v for v in modeled.values()) or None
    total_measured = sum(measured.values())
    return {
        "schema": "repro-report/1",
        "config": config,
        "dropped_spans": dropped,
        "compute": compute,
        "categories": rows,
        "totals": {
            "modeled_s": total_modeled,
            "simulated_s": (sum(simulated.values()) if simulated else None),
            "measured_s": total_measured,
            "drift": (total_measured / total_modeled
                      if total_modeled else None),
        },
        "phases": trace.phase_breakdown(),
        "stragglers": {str(k): v
                       for k, v in trace.straggler_counts().items()},
        "epochs": trace.epoch_stats(),
        "exchange": trace.exchange_summary(),
        "notes": notes,
    }


def _num(value: Optional[float], unit: str = "s") -> str:
    if value is None:
        return "-"
    if unit == "x":
        return f"{value:8.2f}x"
    return f"{value:.6f}"


def format_drift_report(report: dict) -> str:
    """Render the drift report as aligned text tables."""
    lines: List[str] = []
    config = report.get("config") or {}
    if config:
        lines.append(
            "run: algorithm={algorithm} P={gpus} backend={backend} "
            "epochs={epochs}".format(
                algorithm=config.get("algorithm", "?"),
                gpus=config.get("gpus", "?"),
                backend=config.get("backend", "?"),
                epochs=config.get("epochs", "?"),
            )
        )
        lines.append("")
    lines.append("per-category epoch seconds "
                 "(drift = measured / modeled):")
    header = ("category", "modeled", "simulated", "measured", "drift")
    rows = [
        (r["category"], _num(r["modeled_s"]), _num(r["simulated_s"]),
         _num(r["measured_s"]),
         _num(r["drift"], "x") if r["drift"] is not None else "-")
        for r in report.get("categories", [])
    ]
    totals = report.get("totals") or {}
    rows.append((
        "total", _num(totals.get("modeled_s")),
        _num(totals.get("simulated_s")), _num(totals.get("measured_s")),
        _num(totals.get("drift"), "x")
        if totals.get("drift") is not None else "-",
    ))
    lines.extend(_table(header, rows))
    compute = report.get("compute") or {}
    if compute.get("kernels"):
        lines.append("")
        lines.append("kernel compute (measured vs modeled on "
                     f"{compute.get('machine', '?')} rates):")
        lines.extend(_table(
            ("kernel", "calls", "measured", "modeled", "drift", "flop/B"),
            [(r["kernel"], str(r["calls"]), _num(r["measured_s"]),
              _num(r["modeled_s"]),
              _num(r["drift"], "x") if r["drift"] is not None else "-",
              (f"{r['intensity']:.2f}"
               if r.get("intensity") is not None else "-"))
             for r in compute["kernels"]],
        ))
        rss = compute.get("peak_rss_bytes")
        if rss:
            lines.append(f"peak RSS: {rss / 1e6:.1f} MB")
        arena = compute.get("arena") or {}
        if arena:
            lines.append(
                "shm arena: high water {hw} of {size} B ({occ:.0%}), "
                "{spills} spill(s)".format(
                    hw=arena.get("high_water_bytes", 0),
                    size=arena.get("size_bytes", 0),
                    occ=arena.get("occupancy", 0.0),
                    spills=arena.get("spills", 0)))
    phases = report.get("phases") or {}
    if phases:
        lines.append("")
        lines.append("measured phases (self seconds, nested work "
                     "excluded):")
        lines.extend(_table(
            ("phase", "category", "count", "seconds"),
            [(name, d["category"], str(d["count"]),
              _num(d["seconds"]))
             for name, d in sorted(phases.items(),
                                   key=lambda kv: -kv[1]["seconds"])],
        ))
    stragglers = report.get("stragglers") or {}
    if stragglers:
        lines.append("")
        lines.append("pacesetters (worker that ended each epoch last; "
                     "-1 = single recorder):")
        lines.extend(_table(
            ("worker", "epochs paced"),
            [(k, str(v)) for k, v in sorted(stragglers.items())],
        ))
    xchg = report.get("exchange") or {}
    if xchg.get("count"):
        lines.append("")
        lines.append(
            "exchanges: {count} totalling {seconds:.6f}s "
            "(serialize {serialize_s:.6f}s, wait {wait_s:.6f}s, "
            "copy {copy_s:.6f}s, {bytes_sent} B sent)".format(**xchg)
        )
    for note in report.get("notes") or []:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _table(header, rows) -> List[str]:
    widths = [len(h) for h in header]
    for row in rows:
        widths = [max(w, len(str(c))) for w, c in zip(widths, row)]
    fmt = "  ".join(f"{{:>{w}s}}" for w in widths)
    out = [fmt.format(*header)]
    out.append(fmt.format(*("-" * w for w in widths)))
    out.extend(fmt.format(*(str(c) for c in row)) for row in rows)
    return out
