"""Counters, gauges, and summaries with Prometheus text exposition.

A tiny dependency-free metrics surface: ``repro train --metrics out.prom``
renders one scrape-able snapshot of a run (span counts, per-category
wall seconds with p50/p99, exchange wait/serialize/copy totals, final
loss, modeled per-epoch seconds) in the Prometheus text format, so the
numbers land in the same dashboards as any other service.  Quantiles
use the nearest-rank method over the stored observations -- exact, and
fine at trace scale (thousands of points, not millions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Summary",
    "metrics_from_trace",
    "write_metrics",
]

LabelSet = Tuple[Tuple[str, str], ...]


def _fmt(value: float) -> str:
    """Prometheus-friendly number: integers stay integral."""
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _labels_str(labels: LabelSet) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can be set to anything."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Summary:
    """Stored observations exposed as quantiles + _sum/_count."""

    kind = "summary"

    def __init__(self, quantiles: Sequence[float] = (0.5, 0.99)) -> None:
        self.quantiles = tuple(quantiles)
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the observations (0 when empty)."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        idx = int(round(q * (len(ordered) - 1)))
        return ordered[idx]


class MetricsRegistry:
    """Get-or-create metric store keyed by (name, labels)."""

    def __init__(self) -> None:
        # name -> (help, kind, {labels: metric}); insertion-ordered.
        self._families: Dict[str, Tuple[str, str, Dict[LabelSet, object]]] = {}

    def _get(self, cls, name: str, help_text: str,
             labels: Optional[Dict[str, str]] = None, **kwargs):
        key: LabelSet = tuple(sorted((labels or {}).items()))
        if name not in self._families:
            self._families[name] = (help_text, cls.kind, {})
        help_text0, kind, series = self._families[name]
        if kind != cls.kind:
            raise ValueError(
                f"metric {name!r} already registered as {kind}, not {cls.kind}"
            )
        if key not in series:
            series[key] = cls(**kwargs)
        return series[key]

    def counter(self, name: str, help_text: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get(Gauge, name, help_text, labels)

    def summary(self, name: str, help_text: str = "",
                labels: Optional[Dict[str, str]] = None,
                quantiles: Sequence[float] = (0.5, 0.99)) -> Summary:
        return self._get(Summary, name, help_text, labels,
                         quantiles=quantiles)

    def render(self) -> str:
        """The Prometheus text exposition format, one family at a time."""
        lines: List[str] = []
        for name, (help_text, kind, series) in self._families.items():
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, metric in series.items():
                if kind == "summary":
                    for q in metric.quantiles:
                        qlabels = labels + (("quantile", _fmt(q)),)
                        lines.append(
                            f"{name}{_labels_str(qlabels)} "
                            f"{_fmt(metric.quantile(q))}"
                        )
                    lines.append(
                        f"{name}_sum{_labels_str(labels)} "
                        f"{_fmt(sum(metric.values))}"
                    )
                    lines.append(
                        f"{name}_count{_labels_str(labels)} "
                        f"{_fmt(len(metric.values))}"
                    )
                else:
                    lines.append(
                        f"{name}{_labels_str(labels)} {_fmt(metric.value)}"
                    )
        return "\n".join(lines) + "\n"


def metrics_from_trace(trace, history=None,
                       backend_stats=None) -> MetricsRegistry:
    """Populate a registry from a merged trace (and optional history).

    ``trace`` is a :class:`~repro.obs.tracing.MergedTrace`; ``history``
    the :class:`~repro.dist.base.FitHistory`-like object ``fit`` returns
    (used for the final loss and the modeled ledger breakdown, so the
    scrape carries both sides of the drift comparison).
    ``backend_stats`` (a :meth:`ProcessBackend.stats` snapshot) adds the
    elastic fault-tolerance counters: restarts, recovery dispatches,
    failure-detection seconds, and checkpoint count/seconds.
    """
    reg = MetricsRegistry()
    span_count = {}
    for span, self_s, _ in trace._annotated():
        cat = span.cat
        span_count[cat] = span_count.get(cat, 0) + 1
        reg.summary(
            "repro_span_seconds",
            "Self wall seconds per span (nested children excluded)",
            labels={"category": cat},
        ).observe(self_s)
    for cat, n in sorted(span_count.items()):
        reg.counter(
            "repro_spans_total", "Spans recorded",
            labels={"category": cat},
        ).inc(n)
    epoch_summary = reg.summary(
        "repro_epoch_seconds", "Wall seconds per epoch (slowest worker)"
    )
    for rec in trace.epoch_stats():
        epoch_summary.observe(rec["seconds"])
    xchg = trace.exchange_summary()
    reg.counter("repro_exchanges_total",
                "Channel exchanges observed").inc(xchg["count"])
    for phase in ("serialize", "wait", "copy"):
        reg.counter(
            f"repro_exchange_{phase}_seconds_total",
            f"Seconds spent in exchange {phase}",
        ).inc(xchg[f"{phase}_s"])
    reg.counter("repro_exchange_bytes_total",
                "Payload bytes sent through channel exchanges"
                ).inc(xchg["bytes_sent"])
    reg.gauge("repro_workers", "Workers that contributed spans"
              ).set(len(trace.workers))
    reg.counter("repro_dropped_spans_total",
                "Spans overwritten by ring wrap").inc(
        sum(int(info.get("dropped", 0)) for info in trace.workers.values())
    )
    if history is not None:
        losses = getattr(history, "losses", None)
        if losses:
            reg.gauge("repro_final_loss", "Final training loss"
                      ).set(losses[-1])
        try:
            modeled = history.mean_breakdown(skip_first=True)
        except (AttributeError, TypeError, ZeroDivisionError):
            modeled = None
        if modeled:
            for cat, sec in sorted(modeled.items()):
                reg.gauge(
                    "repro_modeled_epoch_seconds",
                    "Modeled ledger seconds per epoch",
                    labels={"category": str(cat)},
                ).set(sec)
    if backend_stats:
        reg.counter("repro_restarts_total",
                    "Elastic pool restarts").inc(
            int(backend_stats.get("restarts", 0)))
        reg.counter("repro_recovery_dispatches_total",
                    "Dispatches issued by the recovery loop").inc(
            int(backend_stats.get("recovery_dispatches", 0)))
        reg.counter("repro_failure_detect_seconds_total",
                    "Seconds from last progress to failure detection"
                    ).inc(float(backend_stats.get("detect_seconds", 0.0)))
        reg.counter("repro_checkpoints_written_total",
                    "Training checkpoints written").inc(
            int(backend_stats.get("checkpoints_written", 0)))
        reg.counter("repro_checkpoint_seconds_total",
                    "Wall seconds spent writing checkpoints").inc(
            float(backend_stats.get("checkpoint_seconds", 0.0)))
    return reg


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(registry.render())
