"""Trace diffing: per-phase/per-category regressions between two runs.

``repro obs diff a.json b.json`` compares two Chrome-trace files (as
written by ``repro train --trace``) and produces a machine-readable
verdict: for every span category and every phase, the per-epoch seconds
of run B over run A, flagged as a regression when the ratio exceeds a
threshold *and* the absolute growth clears a noise floor.  CI wires
this through ``check_regression.py`` to hold a fresh traced run against
a committed reference shape -- and a run diffed against itself must
report zero drift (the self-check the observability-smoke job runs).

The comparison is shape-aware, not wall-clock-naive: categories are
compared on ``measured_epoch_breakdown`` (max-over-workers self seconds
per warm epoch), so a diff between runs with different epoch counts is
still apples to apples.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.chrome import trace_from_chrome, validate_chrome_trace

__all__ = ["DIFF_SCHEMA", "diff_traces", "format_trace_diff"]

DIFF_SCHEMA = "repro-diff/1"

#: Ratios below this absolute per-epoch growth are never regressions:
#: micro-benchmark categories jitter by microseconds run to run.
DEFAULT_MIN_SECONDS = 1e-4

DEFAULT_THRESHOLD = 1.25


def _rows(a: Dict[str, float], b: Dict[str, float], threshold: float,
          min_seconds: float, key: str) -> List[dict]:
    rows = []
    for name in sorted(set(a) | set(b)):
        a_s = float(a.get(name, 0.0))
        b_s = float(b.get(name, 0.0))
        ratio = (b_s / a_s) if a_s > 0 else (None if b_s > 0 else 1.0)
        regressed = bool(
            (b_s - a_s) > min_seconds
            and (ratio is None or ratio > threshold)
        )
        rows.append({key: name, "a_s": a_s, "b_s": b_s,
                     "ratio": ratio, "regressed": regressed})
    return rows


def diff_traces(a_payload: dict, b_payload: dict, *,
                threshold: float = DEFAULT_THRESHOLD,
                min_seconds: float = DEFAULT_MIN_SECONDS,
                a_name: str = "a", b_name: str = "b") -> dict:
    """Compare two Chrome-trace payloads; returns a ``repro-diff/1`` doc.

    ``threshold`` is the B/A per-epoch-seconds ratio above which a
    category or phase counts as regressed (with ``min_seconds`` as an
    absolute-growth noise floor).  Both payloads are validated first;
    an invalid trace raises ``ValueError`` rather than producing a
    verdict from garbage.
    """
    for label, payload in ((a_name, a_payload), (b_name, b_payload)):
        problems = validate_chrome_trace(payload)
        if problems:
            raise ValueError(
                f"trace {label!r} failed validation: "
                + "; ".join(problems[:5]))
    ta = trace_from_chrome(a_payload)
    tb = trace_from_chrome(b_payload)
    cat_a = ta.measured_epoch_breakdown(skip_first=True)
    cat_b = tb.measured_epoch_breakdown(skip_first=True)
    ph_a = {name: row["seconds"]
            for name, row in ta.phase_breakdown(skip_first=True).items()}
    ph_b = {name: row["seconds"]
            for name, row in tb.phase_breakdown(skip_first=True).items()}
    categories = _rows(cat_a, cat_b, threshold, min_seconds, "category")
    phases = _rows(ph_a, ph_b, threshold, min_seconds, "phase")

    sa, sb = ta.summary(), tb.summary()
    wall_a = (a_payload.get("repro") or {}).get("wall_seconds")
    wall_b = (b_payload.get("repro") or {}).get("wall_seconds")
    regressions = ([f"category {r['category']}" for r in categories
                    if r["regressed"]]
                   + [f"phase {r['phase']}" for r in phases
                      if r["regressed"]])
    ratios = [r["ratio"] for r in categories + phases
              if r["ratio"] is not None]
    return {
        "schema": DIFF_SCHEMA,
        "a": {"name": a_name, "epochs": sa.get("epochs"),
              "workers": len(ta.workers), "wall_seconds": wall_a},
        "b": {"name": b_name, "epochs": sb.get("epochs"),
              "workers": len(tb.workers), "wall_seconds": wall_b},
        "threshold": threshold,
        "min_seconds": min_seconds,
        "categories": categories,
        "phases": phases,
        "max_drift": max((abs(r - 1.0) for r in ratios), default=0.0),
        "regressions": regressions,
        "verdict": "regression" if regressions else "ok",
    }


def _num(v: Optional[float], unit: str = "") -> str:
    if v is None:
        return "-"
    return f"{v * 1e3:.3f}{unit}" if unit == "ms" else f"{v:.2f}x"


def format_trace_diff(report: dict) -> str:
    """Human-readable rendering of a :func:`diff_traces` document."""
    lines = [
        f"trace diff ({report['a']['name']} -> {report['b']['name']}): "
        f"verdict {report['verdict'].upper()}, "
        f"max drift {report['max_drift'] * 100:.1f}%, "
        f"threshold {report['threshold']:.2f}x",
    ]
    for key, rows in (("category", report["categories"]),
                      ("phase", report["phases"])):
        if not rows:
            continue
        lines.append("")
        header = (key, "a ms/epoch", "b ms/epoch", "ratio", "")
        widths = [max(len(header[0]), *(len(r[key]) for r in rows)),
                  10, 10, 6, 14]
        lines.append("  ".join(str(h).ljust(w)
                               for h, w in zip(header, widths)))
        for r in rows:
            flag = "<- REGRESSION" if r["regressed"] else ""
            lines.append("  ".join([
                r[key].ljust(widths[0]),
                _num(r["a_s"], "ms").rjust(widths[1]),
                _num(r["b_s"], "ms").rjust(widths[2]),
                (_num(r["ratio"]) if r["ratio"] is not None
                 else "new").rjust(widths[3]),
                flag,
            ]).rstrip())
    if report["regressions"]:
        lines.append("")
        lines.append("regressions: " + ", ".join(report["regressions"]))
    return "\n".join(lines)
