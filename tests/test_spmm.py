"""SpMM kernels: both backends vs dense reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csr import CSRMatrix
from repro.sparse.spmm import spmm, spmm_flops, spmm_numpy, spmm_scipy


def random_csr(m, n, density, seed):
    rng = np.random.default_rng(seed)
    d = rng.standard_normal((m, n))
    d[rng.random((m, n)) > density] = 0.0
    return CSRMatrix.from_dense(d), d


class TestCorrectness:
    @pytest.mark.parametrize("backend", ["numpy", "scipy", "auto"])
    def test_matches_dense(self, backend):
        a, d = random_csr(12, 9, 0.4, 0)
        b = np.random.default_rng(1).standard_normal((9, 5))
        np.testing.assert_allclose(
            spmm(a, b, backend=backend), d @ b, rtol=1e-12, atol=1e-12
        )

    def test_backends_agree(self):
        a, _ = random_csr(40, 30, 0.2, 2)
        b = np.random.default_rng(3).standard_normal((30, 7))
        np.testing.assert_allclose(
            spmm_numpy(a, b), spmm_scipy(a, b), rtol=1e-12, atol=1e-12
        )

    def test_empty_matrix(self):
        a = CSRMatrix.zeros((4, 6))
        b = np.ones((6, 3))
        np.testing.assert_array_equal(spmm_numpy(a, b), np.zeros((4, 3)))

    def test_empty_rows_handled(self):
        # Rows 0 and 3 empty; also a trailing empty row (the reduceat trap).
        d = np.zeros((4, 4))
        d[1, 2] = 3.0
        d[2, 0] = -1.0
        a = CSRMatrix.from_dense(d)
        b = np.eye(4)
        np.testing.assert_array_equal(spmm_numpy(a, b), d)

    def test_single_column_dense(self):
        a, d = random_csr(10, 10, 0.3, 4)
        b = np.random.default_rng(5).standard_normal((10, 1))
        np.testing.assert_allclose(spmm_numpy(a, b), d @ b, atol=1e-12)

    def test_shape_mismatch_rejected(self):
        a, _ = random_csr(4, 5, 0.5, 6)
        with pytest.raises(ValueError, match="incompatible"):
            spmm_numpy(a, np.ones((4, 2)))
        with pytest.raises(ValueError, match="incompatible"):
            spmm_scipy(a, np.ones((6, 2)))

    def test_unknown_backend_rejected(self):
        a, _ = random_csr(3, 3, 0.5, 7)
        with pytest.raises(ValueError, match="backend"):
            spmm(a, np.ones((3, 1)), backend="cuda")


class TestFlops:
    def test_flop_count(self):
        a, _ = random_csr(10, 10, 0.5, 8)
        assert spmm_flops(a, 16) == 2 * a.nnz * 16

    def test_zero_columns(self):
        a, _ = random_csr(5, 5, 0.5, 9)
        assert spmm_flops(a, 0) == 0


class TestProperties:
    @given(
        seed=st.integers(0, 1000),
        m=st.integers(1, 20),
        n=st.integers(1, 20),
        f=st.integers(1, 8),
        density=st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_spmm_matches_dense_reference(self, seed, m, n, f, density):
        a, d = random_csr(m, n, density, seed)
        b = np.random.default_rng(seed + 1).standard_normal((n, f))
        got = spmm_numpy(a, b)
        np.testing.assert_allclose(got, d @ b, rtol=1e-9, atol=1e-9)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_linearity(self, seed):
        a, _ = random_csr(8, 8, 0.4, seed)
        rng = np.random.default_rng(seed)
        b1 = rng.standard_normal((8, 3))
        b2 = rng.standard_normal((8, 3))
        lhs = spmm_numpy(a, b1 + b2)
        rhs = spmm_numpy(a, b1) + spmm_numpy(a, b2)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-9)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_identity_is_noop(self, seed):
        b = np.random.default_rng(seed).standard_normal((10, 4))
        eye = CSRMatrix.eye(10)
        np.testing.assert_allclose(spmm_numpy(eye, b), b, atol=1e-12)
