"""Process meshes: coordinate bijections and group enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.mesh import (
    Mesh1D,
    Mesh2D,
    Mesh3D,
    cube_side,
    is_perfect_square,
    square_side,
    validate_group,
)


class TestMesh1D:
    def test_world_group(self):
        mesh = Mesh1D(size=5)
        assert mesh.world_group() == (0, 1, 2, 3, 4)

    def test_coords_roundtrip(self):
        mesh = Mesh1D(size=7)
        for r in range(7):
            assert mesh.rank_of(*mesh.coords(r)) == r

    def test_out_of_range(self):
        mesh = Mesh1D(size=3)
        with pytest.raises(IndexError):
            mesh.coords(3)

    def test_empty_mesh_rejected(self):
        with pytest.raises(ValueError):
            Mesh1D(size=0)


class TestMesh2D:
    def test_square_construction(self):
        mesh = Mesh2D.square(16)
        assert (mesh.rows, mesh.cols) == (4, 4)
        assert mesh.is_square

    def test_square_requires_perfect_square(self):
        with pytest.raises(ValueError, match="not a perfect square"):
            Mesh2D.square(10)

    def test_rectangular(self):
        mesh = Mesh2D.rectangular(2, 3)
        assert mesh.size == 6
        assert not mesh.is_square

    def test_row_major_rank_layout(self):
        mesh = Mesh2D.rectangular(2, 3)
        assert mesh.rank_of(0, 0) == 0
        assert mesh.rank_of(0, 2) == 2
        assert mesh.rank_of(1, 0) == 3

    def test_row_and_col_groups(self):
        mesh = Mesh2D.square(9)
        assert mesh.row_group(1) == (3, 4, 5)
        assert mesh.col_group(2) == (2, 5, 8)
        assert len(mesh.row_groups()) == 3
        assert len(mesh.col_groups()) == 3

    def test_groups_partition_the_world(self):
        mesh = Mesh2D.rectangular(3, 4)
        seen = sorted(r for g in mesh.row_groups() for r in g)
        assert seen == list(range(12))
        seen = sorted(r for g in mesh.col_groups() for r in g)
        assert seen == list(range(12))

    @given(
        rows=st.integers(min_value=1, max_value=12),
        cols=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_coords_bijection(self, rows, cols):
        mesh = Mesh2D.rectangular(rows, cols)
        coords = {mesh.coords(r) for r in range(mesh.size)}
        assert len(coords) == mesh.size
        for r in range(mesh.size):
            assert mesh.rank_of(*mesh.coords(r)) == r


class TestMesh3D:
    def test_cubic_construction(self):
        mesh = Mesh3D.cubic(27)
        assert (mesh.p1, mesh.p2, mesh.p3) == (3, 3, 3)

    def test_cubic_requires_perfect_cube(self):
        with pytest.raises(ValueError, match="not a perfect cube"):
            Mesh3D.cubic(9)

    def test_layer_group_is_full_grid(self):
        mesh = Mesh3D.cubic(8)
        layer = mesh.layer_group(0)
        assert len(layer) == 4
        assert all(mesh.coords(r)[2] == 0 for r in layer)

    def test_fiber_groups_cover_world(self):
        mesh = Mesh3D.cubic(8)
        seen = sorted(r for g in mesh.fiber_groups() for r in g)
        assert seen == list(range(8))

    def test_row_col_groups_within_layer(self):
        mesh = Mesh3D.cubic(27)
        row = mesh.row_group(1, 2)
        assert all(mesh.coords(r)[0] == 1 and mesh.coords(r)[2] == 2 for r in row)
        col = mesh.col_group(0, 1)
        assert all(mesh.coords(r)[1] == 0 and mesh.coords(r)[2] == 1 for r in col)

    @given(p=st.sampled_from([1, 2, 3, 4]))
    @settings(max_examples=10, deadline=None)
    def test_coords_bijection(self, p):
        mesh = Mesh3D.cubic(p**3)
        coords = {mesh.coords(r) for r in range(mesh.size)}
        assert len(coords) == mesh.size
        for r in range(mesh.size):
            assert mesh.rank_of(*mesh.coords(r)) == r


class TestHelpers:
    def test_square_side(self):
        assert square_side(64) == 8
        with pytest.raises(ValueError):
            square_side(50)

    def test_is_perfect_square(self):
        assert is_perfect_square(36)
        assert not is_perfect_square(35)
        assert not is_perfect_square(0)

    def test_cube_side(self):
        assert cube_side(64) == 4
        assert cube_side(1000) == 10
        with pytest.raises(ValueError):
            cube_side(100)

    def test_validate_group(self):
        assert validate_group([2, 0, 1], 4) == (2, 0, 1)
        with pytest.raises(ValueError, match="duplicate"):
            validate_group([1, 1], 4)
        with pytest.raises(IndexError):
            validate_group([5], 4)
        with pytest.raises(ValueError, match="empty"):
            validate_group([], 4)
