"""Checkpointing: bit-exact round trips and resumable training."""

import numpy as np
import pytest

from repro.graph import make_synthetic
from repro.nn import GCN, SGD, SerialTrainer
from repro.nn.optim import Adam
from repro.nn.serialize import (
    checkpoint_epochs,
    load_checkpoint,
    load_csr,
    load_weights,
    optimizer_state,
    restore_optimizer,
    save_checkpoint,
    save_csr,
    save_weights,
)


class TestWeightCheckpoints:
    def test_roundtrip_bit_exact(self, tmp_path):
        model = GCN((10, 8, 4), seed=3)
        path = tmp_path / "ckpt.npz"
        save_weights(path, model.weights, {"epoch": 7, "loss": 1.25})
        weights, meta = load_weights(path)
        assert meta == {"epoch": 7, "loss": 1.25}
        assert len(weights) == 2
        for a, b in zip(weights, model.weights):
            np.testing.assert_array_equal(a, b)

    def test_resumed_training_continues_trajectory(self, tmp_path):
        ds = make_synthetic(n=80, avg_degree=4, f=10, n_classes=3, seed=1)
        widths = ds.layer_widths(hidden=8)
        # Train 6 epochs straight through.
        ref = SerialTrainer(GCN(widths, seed=0), ds.adjacency,
                            optimizer=SGD(lr=0.2))
        ref_hist = ref.train(ds.features, ds.labels, epochs=6)
        # Train 3, checkpoint, reload, train 3 more.
        a = SerialTrainer(GCN(widths, seed=0), ds.adjacency,
                          optimizer=SGD(lr=0.2))
        a.train(ds.features, ds.labels, epochs=3)
        path = tmp_path / "mid.npz"
        save_weights(path, a.model.weights)
        weights, _ = load_weights(path)
        b_model = GCN(widths, seed=99)       # different init, overwritten
        b_model.set_weights(weights)
        b = SerialTrainer(b_model, ds.adjacency, optimizer=SGD(lr=0.2))
        resumed = b.train(ds.features, ds.labels, epochs=3)
        np.testing.assert_allclose(
            resumed.losses, ref_hist.losses[3:], rtol=1e-12
        )

    def test_non_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            load_weights(path)


class TestCsrCheckpoints:
    def test_roundtrip(self, tmp_path):
        ds = make_synthetic(n=60, avg_degree=4, f=4, n_classes=2, seed=2)
        path = tmp_path / "adj.npz"
        save_csr(path, ds.adjacency)
        loaded = load_csr(path)
        assert loaded.allclose(ds.adjacency)
        assert loaded.shape == ds.adjacency.shape

    def test_non_csr_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, indptr=np.zeros(2))
        with pytest.raises(ValueError, match="not a repro CSR"):
            load_csr(path)

    def test_loaded_matrix_validated(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            indptr=np.array([0, 5]),          # claims 5 nnz
            indices=np.array([0]),            # ...but has 1
            data=np.array([1.0]),
            shape=np.array([1, 1]),
        )
        with pytest.raises(ValueError):
            load_csr(path)


def _stepped(opt, steps=2, seed=7):
    rng = np.random.default_rng(seed)
    params = [rng.standard_normal((5, 4)), rng.standard_normal((4, 3))]
    for _ in range(steps):
        grads = [rng.standard_normal(p.shape) for p in params]
        opt.step(params, grads)
    return params


class TestOptimizerState:
    def test_adam_roundtrip_bit_exact(self):
        opt = Adam(lr=0.01, beta1=0.9, beta2=0.995, eps=1e-9)
        params = _stepped(opt)
        meta, arrays = optimizer_state(opt)
        assert meta["kind"] == "adam" and meta["t"] == 2
        clone = Adam(lr=0.01, beta1=0.9, beta2=0.995, eps=1e-9)
        restore_optimizer(clone, meta, arrays)
        assert clone._t == opt._t
        for a, b in zip(clone._m + clone._v, opt._m + opt._v):
            np.testing.assert_array_equal(a, b)
        # ...and the restored optimizer takes an identical next step.
        rng = np.random.default_rng(1)
        grads = [rng.standard_normal(p.shape) for p in params]
        p1 = [p.copy() for p in params]
        p2 = [p.copy() for p in params]
        opt.step(p1, [g.copy() for g in grads])
        clone.step(p2, [g.copy() for g in grads])
        for a, b in zip(p1, p2):
            np.testing.assert_array_equal(a, b)

    def test_sgd_momentum_roundtrip(self):
        opt = SGD(lr=0.1, momentum=0.9)
        _stepped(opt)
        meta, arrays = optimizer_state(opt)
        assert meta["kind"] == "sgd"
        clone = SGD(lr=0.1, momentum=0.9)
        restore_optimizer(clone, meta, arrays)
        for a, b in zip(clone._velocity, opt._velocity):
            np.testing.assert_array_equal(a, b)

    def test_fresh_optimizer_has_empty_state(self):
        meta, arrays = optimizer_state(SGD(lr=0.1))
        assert arrays == []
        clone = SGD(lr=0.1)
        restore_optimizer(clone, meta, arrays)

    def test_kind_mismatch_rejected(self):
        meta, arrays = optimizer_state(Adam(lr=0.01))
        with pytest.raises(ValueError, match="adam"):
            restore_optimizer(SGD(lr=0.1), meta, arrays)

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(TypeError):
            optimizer_state(object())


class TestFullCheckpoints:
    def _write(self, path, epoch=4):
        opt = Adam(lr=0.02)
        weights = _stepped(opt)
        save_checkpoint(path, weights=weights, optimizer=opt, epoch=epoch,
                        tracker_state=b"\x01\x02ledger",
                        categories=("scomm", "dcomm"),
                        history={"loss": np.array([0.9, 0.7])})
        return weights, opt

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "full.npz"
        weights, opt = self._write(path)
        state = load_checkpoint(path)
        assert state["epoch"] == 4
        assert state["tracker_state"] == b"\x01\x02ledger"
        assert state["categories"] == ("scomm", "dcomm")
        for a, b in zip(state["weights"], weights):
            np.testing.assert_array_equal(a, b)
        clone = Adam(lr=0.02)
        restore_optimizer(clone, state["optimizer"], state["opt_arrays"])
        assert clone._t == opt._t
        np.testing.assert_array_equal(state["history"]["loss"], [0.9, 0.7])
        assert checkpoint_epochs(path) == 4

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "full.npz"
        self._write(path)
        self._write(path, epoch=9)        # overwrite in place
        assert checkpoint_epochs(path) == 9
        leftovers = [p.name for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_missing_file_means_epoch_zero(self, tmp_path):
        assert checkpoint_epochs(tmp_path / "absent.npz") == 0

    def test_bit_flip_fails_digest_check(self, tmp_path):
        path = tmp_path / "full.npz"
        self._write(path)
        state = load_checkpoint(path)
        # Re-save with a flipped weight but the original meta digest.
        bad = [w.copy() for w in state["weights"]]
        bad[0][0, 0] += 1.0
        arrays = {f"weight_{i}": w for i, w in enumerate(bad)}
        for i, a in enumerate(state["opt_arrays"]):
            arrays[f"opt_{i}"] = a
        arrays["tracker_state"] = np.frombuffer(
            state["tracker_state"], dtype=np.uint8)
        arrays["hist_loss"] = state["history"]["loss"]
        import json
        arrays["__repro_meta__"] = np.frombuffer(
            json.dumps(state["meta"]).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="content-digest"):
            load_checkpoint(path)

    def test_non_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            load_checkpoint(path)
