"""Checkpointing: bit-exact round trips and resumable training."""

import numpy as np
import pytest

from repro.graph import make_synthetic
from repro.nn import GCN, SGD, SerialTrainer
from repro.nn.serialize import load_csr, load_weights, save_csr, save_weights


class TestWeightCheckpoints:
    def test_roundtrip_bit_exact(self, tmp_path):
        model = GCN((10, 8, 4), seed=3)
        path = tmp_path / "ckpt.npz"
        save_weights(path, model.weights, {"epoch": 7, "loss": 1.25})
        weights, meta = load_weights(path)
        assert meta == {"epoch": 7, "loss": 1.25}
        assert len(weights) == 2
        for a, b in zip(weights, model.weights):
            np.testing.assert_array_equal(a, b)

    def test_resumed_training_continues_trajectory(self, tmp_path):
        ds = make_synthetic(n=80, avg_degree=4, f=10, n_classes=3, seed=1)
        widths = ds.layer_widths(hidden=8)
        # Train 6 epochs straight through.
        ref = SerialTrainer(GCN(widths, seed=0), ds.adjacency,
                            optimizer=SGD(lr=0.2))
        ref_hist = ref.train(ds.features, ds.labels, epochs=6)
        # Train 3, checkpoint, reload, train 3 more.
        a = SerialTrainer(GCN(widths, seed=0), ds.adjacency,
                          optimizer=SGD(lr=0.2))
        a.train(ds.features, ds.labels, epochs=3)
        path = tmp_path / "mid.npz"
        save_weights(path, a.model.weights)
        weights, _ = load_weights(path)
        b_model = GCN(widths, seed=99)       # different init, overwritten
        b_model.set_weights(weights)
        b = SerialTrainer(b_model, ds.adjacency, optimizer=SGD(lr=0.2))
        resumed = b.train(ds.features, ds.labels, epochs=3)
        np.testing.assert_allclose(
            resumed.losses, ref_hist.losses[3:], rtol=1e-12
        )

    def test_non_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            load_weights(path)


class TestCsrCheckpoints:
    def test_roundtrip(self, tmp_path):
        ds = make_synthetic(n=60, avg_degree=4, f=4, n_classes=2, seed=2)
        path = tmp_path / "adj.npz"
        save_csr(path, ds.adjacency)
        loaded = load_csr(path)
        assert loaded.allclose(ds.adjacency)
        assert loaded.shape == ds.adjacency.shape

    def test_non_csr_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, indptr=np.zeros(2))
        with pytest.raises(ValueError, match="not a repro CSR"):
            load_csr(path)

    def test_loaded_matrix_validated(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            indptr=np.array([0, 5]),          # claims 5 nnz
            indices=np.array([0]),            # ...but has 1
            data=np.array([1.0]),
            shape=np.array([1, 1]),
        )
        with pytest.raises(ValueError):
            load_csr(path)
