"""Masked NLL loss, accuracy, and the optimisers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.activations import LogSoftmax
from repro.nn.init import init_gcn_weights, xavier_uniform
from repro.nn.loss import accuracy, nll_loss, one_hot
from repro.nn.optim import SGD, Adam


class TestNllLoss:
    def test_perfect_prediction_low_loss(self):
        lp = np.log(np.array([[0.999, 0.0005, 0.0005]]))
        loss, _ = nll_loss(lp, np.array([0]))
        assert loss < 0.01

    def test_uniform_prediction_log_k(self):
        k = 4
        lp = np.full((3, k), np.log(1.0 / k))
        loss, _ = nll_loss(lp, np.array([0, 1, 2]))
        assert loss == pytest.approx(np.log(k))

    def test_gradient_values(self):
        lp = np.log(np.full((2, 2), 0.5))
        _, grad = nll_loss(lp, np.array([0, 1]))
        np.testing.assert_allclose(
            grad, [[-0.5, 0.0], [0.0, -0.5]]
        )

    def test_mask_restricts_rows(self):
        lp = np.log(np.full((4, 2), 0.5))
        mask = np.array([True, False, True, False])
        loss, grad = nll_loss(lp, np.zeros(4, dtype=np.int64), mask)
        assert loss == pytest.approx(np.log(2))
        assert np.all(grad[1] == 0) and np.all(grad[3] == 0)
        assert grad[0, 0] == pytest.approx(-0.5)

    def test_empty_mask_rejected(self):
        lp = np.zeros((2, 2))
        with pytest.raises(ValueError, match="empty training mask"):
            nll_loss(lp, np.zeros(2, dtype=np.int64), np.zeros(2, dtype=bool))

    def test_label_shape_mismatch(self):
        with pytest.raises(ValueError):
            nll_loss(np.zeros((3, 2)), np.zeros(2, dtype=np.int64))

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_gradient_matches_finite_difference(self, seed):
        """End-to-end: d(NLL o log_softmax)/dZ via the composed backward
        equals the classic softmax-minus-onehot formula."""
        rng = np.random.default_rng(seed)
        n, k = 5, 4
        z = rng.standard_normal((n, k))
        y = rng.integers(0, k, n)
        act = LogSoftmax()
        lp = act.forward(z)
        _, grad_lp = nll_loss(lp, y)
        grad_z = act.backward(z, grad_lp)
        expected = (np.exp(lp) - one_hot(y, k)) / n
        np.testing.assert_allclose(grad_z, expected, atol=1e-10)


class TestAccuracy:
    def test_all_correct(self):
        lp = np.log(np.array([[0.9, 0.1], [0.2, 0.8]]))
        assert accuracy(lp, np.array([0, 1])) == 1.0

    def test_masked_accuracy(self):
        lp = np.log(np.array([[0.9, 0.1], [0.9, 0.1], [0.2, 0.8]]))
        y = np.array([0, 1, 1])
        mask = np.array([True, True, False])
        assert accuracy(lp, y, mask) == pytest.approx(0.5)


class TestOneHot:
    def test_values(self):
        oh = one_hot(np.array([1, 0, 2]), 3)
        np.testing.assert_array_equal(
            oh, [[0, 1, 0], [1, 0, 0], [0, 0, 1]]
        )

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)


class TestInit:
    def test_xavier_bounds(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform(100, 50, rng)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound
        assert w.shape == (100, 50)

    def test_gcn_weights_deterministic(self):
        a = init_gcn_weights([10, 8, 4], seed=3)
        b = init_gcn_weights([10, 8, 4], seed=3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_gcn_weights_shapes(self):
        ws = init_gcn_weights([10, 16, 16, 5], seed=0)
        assert [w.shape for w in ws] == [(10, 16), (16, 16), (16, 5)]

    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            init_gcn_weights([10], seed=0)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            xavier_uniform(0, 5, rng)


class TestSGD:
    def test_plain_step(self):
        p = [np.array([1.0, 2.0])]
        g = [np.array([0.5, -1.0])]
        SGD(lr=0.1).step(p, g)
        np.testing.assert_allclose(p[0], [0.95, 2.1])

    def test_updates_in_place(self):
        arr = np.array([1.0])
        SGD(lr=1.0).step([arr], [np.array([1.0])])
        assert arr[0] == 0.0  # the same buffer was mutated

    def test_momentum_accumulates(self):
        opt = SGD(lr=1.0, momentum=0.5)
        p = [np.zeros(1)]
        g = [np.ones(1)]
        opt.step(p, g)     # v=1, p=-1
        opt.step(p, g)     # v=1.5, p=-2.5
        np.testing.assert_allclose(p[0], [-2.5])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SGD().step([np.zeros(2)], [np.zeros(3)])

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, |step 1| == lr for any gradient scale."""
        for scale in (1e-3, 1.0, 1e3):
            opt = Adam(lr=0.01)
            p = [np.zeros(1)]
            opt.step(p, [np.full(1, scale)])
            # |step| = lr * |g| / (|g| + eps): within eps/|g| of lr.
            np.testing.assert_allclose(np.abs(p[0]), 0.01, rtol=1e-4)

    def test_descends_quadratic(self):
        opt = Adam(lr=0.1)
        p = [np.array([5.0])]
        for _ in range(200):
            opt.step(p, [2.0 * p[0]])  # grad of x^2
        assert abs(p[0][0]) < 0.5

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            Adam(lr=-1.0)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
