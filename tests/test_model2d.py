"""Analytic 2D epoch model vs measured execution, and full-scale shapes."""

import pytest

from repro.analysis.model2d import Model2DEpoch
from repro.comm import VirtualRuntime
from repro.comm.tracker import Category
from repro.dist.algo_2d import DistGCN2D
from repro.graph import make_synthetic, published_spec


class TestModelVsExecution:
    """The model replays the executed charge pattern: on a uniform graph
    every category must agree closely with the measured accounting."""

    @pytest.mark.parametrize("p", [4, 9, 16])
    def test_categories_match_measured(self, uniform_dataset, p):
        ds = uniform_dataset
        widths = ds.layer_widths(hidden=16)
        rt = VirtualRuntime.make_2d(p)
        algo = DistGCN2D(rt, ds.adjacency, widths, seed=0)
        algo.setup(ds.features, ds.labels)
        measured = algo.train_epoch(0)
        modeled = Model2DEpoch(
            ds.num_vertices, ds.adjacency.nnz, widths, p, dtype_bytes=8
        ).run()
        for cat in Category.ALL:
            m = modeled.seconds_by_category[cat]
            e = measured.seconds_by_category[cat]
            assert m == pytest.approx(e, rel=0.15), cat

    def test_total_close(self, uniform_dataset):
        ds = uniform_dataset
        widths = ds.layer_widths(hidden=16)
        rt = VirtualRuntime.make_2d(9)
        algo = DistGCN2D(rt, ds.adjacency, widths, seed=0)
        algo.setup(ds.features, ds.labels)
        measured = algo.train_epoch(0)
        modeled = Model2DEpoch(
            ds.num_vertices, ds.adjacency.nnz, widths, 9, dtype_bytes=8
        ).run()
        assert modeled.total_seconds == pytest.approx(
            measured.modeled_seconds, rel=0.1
        )


class TestFullScaleShapes:
    """Shape checks at the published Table VI sizes (Section VI)."""

    def test_square_p_required(self):
        with pytest.raises(ValueError, match="square"):
            Model2DEpoch(100, 1000, (8, 4), 10)

    def test_amazon_dense_comm_dominates_sparse(self):
        """Section VI-a: 'the most costly operation in training on the
        Amazon dataset is the communication of dense matrices' -- dcomm
        words exceed scomm by more than 2x."""
        for p in (16, 36, 64):
            r = Model2DEpoch.for_published_dataset("amazon", p).run()
            assert r.bytes_by_category[Category.DCOMM] > (
                2 * r.bytes_by_category[Category.SCOMM]
            )

    def test_amazon_dcomm_halves_with_4x_devices(self):
        """'time spent communicating dense matrices goes down by 2x given
        4x more devices' (16 -> 64)."""
        r16 = Model2DEpoch.for_published_dataset("amazon", 16).run()
        r64 = Model2DEpoch.for_published_dataset("amazon", 64).run()
        ratio = (
            r16.seconds_by_category[Category.DCOMM]
            / r64.seconds_by_category[Category.DCOMM]
        )
        assert ratio == pytest.approx(2.0, rel=0.2)

    def test_amazon_overall_speedup_16_to_64(self):
        """'we still see an overall speedup 1.8x when going from 16 to 64
        processes in epoch throughput.'"""
        r16 = Model2DEpoch.for_published_dataset("amazon", 16).run()
        r64 = Model2DEpoch.for_published_dataset("amazon", 64).run()
        speedup = r16.total_seconds / r64.total_seconds
        assert speedup == pytest.approx(1.8, rel=0.25)

    def test_protein_comm_scales_1p65x_36_to_100(self):
        """'from 36 to 100 processes, the total communication goes down by
        roughly 1.65x ... consistent with sqrt(P) = 10/6.'"""
        r36 = Model2DEpoch.for_published_dataset("protein", 36).run()
        r100 = Model2DEpoch.for_published_dataset("protein", 100).run()
        comm36 = sum(r36.seconds_by_category[c] for c in Category.COMM)
        comm100 = sum(r100.seconds_by_category[c] for c in Category.COMM)
        assert comm36 / comm100 == pytest.approx(10 / 6, rel=0.15)

    def test_protein_spmm_speedup_limited(self):
        """'the SpMM time goes down by roughly 1.33x from 36 to 100' --
        sublinear because hypersparsity degrades the local rate.  We allow
        a window around the paper's figure but require it to be far below
        the ideal 100/36 = 2.78x."""
        r36 = Model2DEpoch.for_published_dataset("protein", 36).run()
        r100 = Model2DEpoch.for_published_dataset("protein", 100).run()
        speedup = (
            r36.seconds_by_category[Category.SPMM]
            / r100.seconds_by_category[Category.SPMM]
        )
        assert 1.1 < speedup < 2.0

    def test_reddit_spmm_dominates(self):
        """Reddit is dense (d ~ 493): local SpMM dominates its epochs and
        scales well (5.23x from 4 to 64 in the paper)."""
        r4 = Model2DEpoch.for_published_dataset("reddit", 4).run()
        assert (
            r4.seconds_by_category[Category.SPMM]
            > r4.seconds_by_category[Category.DCOMM]
        )
        r64 = Model2DEpoch.for_published_dataset("reddit", 64).run()
        spmm_speedup = (
            r4.seconds_by_category[Category.SPMM]
            / r64.seconds_by_category[Category.SPMM]
        )
        assert 3.0 < spmm_speedup < 16.0

    def test_throughput_increases_with_gpus_on_all_datasets(self):
        """Fig. 2's headline: epoch throughput rises with device count on
        every dataset."""
        for name, counts in (
            ("reddit", (4, 16, 36, 64)),
            ("amazon", (16, 36, 64)),
            ("protein", (36, 64, 100)),
        ):
            eps = [
                Model2DEpoch.for_published_dataset(name, p).run().epochs_per_second
                for p in counts
            ]
            assert eps == sorted(eps), name

    def test_published_spec_wiring(self):
        spec = published_spec("protein")
        model = Model2DEpoch.for_published_dataset("protein", 36)
        assert model.n == spec.vertices
        assert model.nnz == spec.edges + spec.vertices  # self loops
        assert model.widths == (128, 16, 16, 256)
