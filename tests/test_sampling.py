"""Sampling substrate: k-hop explosion, layer sampler, mini-batch training."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import make_synthetic
from repro.graph.generators import ring_graph, star_graph
from repro.graph.normalize import gcn_normalize
from repro.nn import GCN, SGD, SerialTrainer
from repro.sampling import (
    LayerSampler,
    MiniBatchGCN,
    MiniBatchTrainer,
    khop_frontiers,
    neighborhood_explosion_stats,
    receptive_field,
)


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=180, avg_degree=6, f=10, n_classes=3, seed=41)


class TestKhop:
    def test_ring_frontier_growth(self):
        """On a ring, the k-hop ball of one vertex has 2k+1 vertices."""
        a = gcn_normalize(ring_graph(30))
        fronts = khop_frontiers(a, [0], 4)
        # Self loops mean hop k includes the seed; ball sizes 1,3,5,7,9.
        assert [f.size for f in fronts] == [1, 3, 5, 7, 9]

    def test_star_explodes_in_two_hops(self):
        """One leaf of a star reaches the whole graph in 2 hops -- the
        extreme neighbourhood explosion."""
        a = gcn_normalize(star_graph(50))
        fronts = khop_frontiers(a, [1], 2)
        assert fronts[1].size == 2          # leaf + hub
        assert fronts[2].size == 50         # everything

    def test_frontiers_are_nested(self, ds):
        fronts = khop_frontiers(ds.adjacency, [0, 5, 9], 3)
        for smaller, larger in zip(fronts, fronts[1:]):
            assert np.all(np.isin(smaller, larger))

    def test_receptive_field_is_last_frontier(self, ds):
        fronts = khop_frontiers(ds.adjacency, [3], 2)
        np.testing.assert_array_equal(
            receptive_field(ds.adjacency, [3], 2), fronts[-1]
        )

    def test_invalid_args(self, ds):
        with pytest.raises(ValueError):
            khop_frontiers(ds.adjacency, [0], -1)
        with pytest.raises(ValueError):
            khop_frontiers(ds.adjacency, [10**6], 1)

    def test_explosion_stats(self, ds):
        """The paper's Section I claim: a few layers touch most of the
        graph even for a small batch."""
        stats = neighborhood_explosion_stats(
            ds.adjacency, batch_size=8, hops=3, trials=4, seed=0
        )
        sizes = stats.mean_frontier_sizes
        assert sizes[0] == 8.0
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))
        assert stats.final_fraction > 0.3   # explosion happened
        assert stats.blowup > 5

    def test_explosion_invalid_batch(self, ds):
        with pytest.raises(ValueError):
            neighborhood_explosion_stats(ds.adjacency, batch_size=0, hops=2)


class TestLayerSampler:
    def test_full_neighborhood_blocks_are_exact_submatrices(self, ds):
        sampler = LayerSampler(ds.adjacency, 2, fanouts=None, seed=0)
        sub = sampler.sample([1, 4, 7])
        # Top block: rows = batch, cols = 1-hop frontier; values must
        # equal the adjacency entries exactly (no rescaling).
        top = sub.blocks[-1]
        dense = ds.adjacency.to_dense()
        batch, frontier = sub.frontiers[-1], sub.frontiers[-2]
        np.testing.assert_allclose(
            top.to_dense(), dense[np.ix_(batch, frontier)], atol=1e-12
        )

    def test_fanout_limits_row_nnz(self, ds):
        sampler = LayerSampler(ds.adjacency, 2, fanouts=[3, 3], seed=0)
        sub = sampler.sample(np.arange(20))
        for block in sub.blocks:
            assert block.row_degrees().max() <= 3

    def test_sampling_is_unbiased(self):
        """Horvitz-Thompson rescale: the expected sampled row sum equals
        the full row sum."""
        a = gcn_normalize(star_graph(40))
        full_sum = a.to_dense()[0].sum()  # hub row
        estimates = []
        for seed in range(200):
            sampler = LayerSampler(a, 1, fanouts=[5], seed=seed)
            sub = sampler.sample([0])
            estimates.append(sub.blocks[0].data.sum())
        assert np.mean(estimates) == pytest.approx(full_sum, rel=0.05)

    def test_frontier_contains_batch(self, ds):
        sampler = LayerSampler(ds.adjacency, 3, fanouts=[2, 2, 2], seed=1)
        sub = sampler.sample([0, 50, 100])
        for frontier in sub.frontiers:
            assert np.all(np.isin(sub.batch, frontier))

    def test_invalid_construction(self, ds):
        with pytest.raises(ValueError, match="fanouts"):
            LayerSampler(ds.adjacency, 2, fanouts=[3])
        with pytest.raises(ValueError, match="fanout"):
            LayerSampler(ds.adjacency, 1, fanouts=[0])
        with pytest.raises(ValueError, match="layer"):
            LayerSampler(ds.adjacency, 0)

    def test_invalid_batch(self, ds):
        sampler = LayerSampler(ds.adjacency, 1)
        with pytest.raises(ValueError, match="empty"):
            sampler.sample([])
        with pytest.raises(ValueError, match="range"):
            sampler.sample([10**6])


class TestMiniBatchExactness:
    def test_full_neighborhood_forward_matches_full_graph(self, ds):
        """fanouts=None: mini-batch predictions == full-graph predictions
        restricted to the batch."""
        widths = ds.layer_widths(hidden=8)
        full = GCN(widths, seed=2)
        lp_full = full.predict(ds.adjacency, ds.features)
        mb = MiniBatchGCN(widths, seed=2)
        sampler = LayerSampler(ds.adjacency, mb.num_layers, fanouts=None)
        batch = np.array([0, 17, 63, 179])
        sub = sampler.sample(batch)
        lp_batch, _ = mb.forward(sub, ds.features)
        np.testing.assert_allclose(lp_batch, lp_full[batch], atol=1e-10)

    def test_whole_graph_batch_equals_serial_epoch(self, ds):
        """batch = V with full neighbourhoods reproduces full-batch GD."""
        widths = ds.layer_widths(hidden=8)
        serial = SerialTrainer(
            GCN(widths, seed=3), ds.adjacency, optimizer=SGD(lr=0.1)
        )
        e = serial.train_epoch(ds.features, ds.labels)
        mb = MiniBatchGCN(widths, seed=3)
        trainer = MiniBatchTrainer(
            mb, ds.adjacency, fanouts=None,
            batch_size=ds.num_vertices, optimizer=SGD(lr=0.1),
        )
        rec = trainer.train_epoch(ds.features, ds.labels, shuffle=False)
        assert rec.mean_loss == pytest.approx(e.loss, rel=1e-12)
        for w_serial, w_mb in zip(serial.model.weights, mb.weights):
            np.testing.assert_allclose(w_serial, w_mb, atol=1e-12)

    def test_gradient_check_through_pyramid(self, ds):
        """Finite differences through sampled blocks (fixed pyramid)."""
        from repro.nn.loss import nll_loss

        widths = (10, 6, 3)
        mb = MiniBatchGCN(widths, seed=4)
        sampler = LayerSampler(ds.adjacency, 2, fanouts=[4, 4], seed=5)
        sub = sampler.sample(np.arange(12))
        lp, caches = mb.forward(sub, ds.features)
        labels = ds.labels[sub.batch]
        loss, grad = nll_loss(lp, labels)
        grads = mb.backward(caches, grad)
        eps = 1e-6
        rng = np.random.default_rng(0)
        for li, w in enumerate(mb.weights):
            i = int(rng.integers(w.shape[0]))
            j = int(rng.integers(w.shape[1]))
            w[i, j] += eps
            lp2, _ = mb.forward(sub, ds.features)
            l2, _ = nll_loss(lp2, labels)
            w[i, j] -= 2 * eps
            lp3, _ = mb.forward(sub, ds.features)
            l3, _ = nll_loss(lp3, labels)
            w[i, j] += eps
            fd = (l2 - l3) / (2 * eps)
            assert grads[li][i, j] == pytest.approx(fd, abs=1e-6)


class TestMiniBatchTraining:
    def test_sampled_training_decreases_loss(self, ds):
        mb = MiniBatchGCN(ds.layer_widths(hidden=8), seed=5)
        trainer = MiniBatchTrainer(
            mb, ds.adjacency, fanouts=[4, 4, 4], batch_size=32,
            optimizer=SGD(lr=0.2), seed=6,
        )
        history = trainer.train(ds.features, ds.labels, epochs=10)
        assert history[-1].mean_loss < history[0].mean_loss

    def test_masked_training_pool(self, ds):
        mask = np.zeros(ds.num_vertices, dtype=bool)
        mask[:40] = True
        mb = MiniBatchGCN(ds.layer_widths(hidden=8), seed=7)
        trainer = MiniBatchTrainer(
            mb, ds.adjacency, fanouts=[3, 3, 3], batch_size=16, seed=8
        )
        rec = trainer.train_epoch(ds.features, ds.labels, mask=mask)
        # 40 supervised vertices / batch 16 -> 3 batches.
        assert len(rec.batch_losses) == 3

    def test_empty_mask_rejected(self, ds):
        mb = MiniBatchGCN(ds.layer_widths(hidden=8), seed=9)
        trainer = MiniBatchTrainer(mb, ds.adjacency, batch_size=8)
        with pytest.raises(ValueError, match="no supervised"):
            trainer.train_epoch(
                ds.features, ds.labels,
                mask=np.zeros(ds.num_vertices, dtype=bool),
            )

    def test_memory_bound_vs_explosion(self, ds):
        """The whole point of sampling: the sampled pyramid touches far
        fewer edges than the full receptive field would."""
        sampler_full = LayerSampler(ds.adjacency, 3, fanouts=None, seed=0)
        sampler_s = LayerSampler(ds.adjacency, 3, fanouts=[2, 2, 2], seed=0)
        batch = np.arange(16)
        full = sampler_full.sample(batch)
        samp = sampler_s.sample(batch)
        assert samp.total_edges() < 0.5 * full.total_edges()
        assert samp.input_vertices.size < full.input_vertices.size

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_pyramid_shapes_consistent(self, ds, seed):
        sampler = LayerSampler(ds.adjacency, 2, fanouts=[3, 5], seed=seed)
        sub = sampler.sample(np.arange(10))
        for l, block in enumerate(sub.blocks):
            assert block.shape == (
                sub.frontiers[l + 1].size, sub.frontiers[l].size
            )
