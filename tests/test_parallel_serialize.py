"""Cross-process serialization round-trips (ISSUE 4 satellite).

The process backend ships the adjacency and model state across process
boundaries two ways: pickle (spawn arguments, command payloads) and
shared-memory view reconstruction (collective payloads).  Both must
preserve dtype, shape, and values **exactly** -- the backend's
bit-equality oracle dies otherwise.
"""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.nn.model import GCN
from repro.nn.serialize import load_weights, save_weights
from repro.parallel.shm import Arena, decode_payload, encode_payload
from repro.sparse.csr import CSRMatrix


@pytest.fixture
def matrix():
    rng = np.random.default_rng(7)
    dense = (rng.random((40, 40)) < 0.15) * rng.standard_normal((40, 40))
    return CSRMatrix.from_dense(dense)


@pytest.fixture
def arena():
    shm = shared_memory.SharedMemory(create=True, size=1 << 20)
    yield Arena(shm)
    shm.close()
    shm.unlink()


def assert_csr_equal(got: CSRMatrix, want: CSRMatrix) -> None:
    assert got.shape == want.shape
    for field in ("indptr", "indices", "data"):
        g, w = getattr(got, field), getattr(want, field)
        assert g.dtype == w.dtype, field
        assert g.shape == w.shape, field
        np.testing.assert_array_equal(g, w, err_msg=field)


class TestCsrPickle:
    def test_roundtrip_exact(self, matrix):
        clone = pickle.loads(pickle.dumps(matrix))
        assert_csr_equal(clone, matrix)

    def test_scipy_cache_dropped(self, matrix):
        matrix.to_scipy()  # populate the cache
        payload = pickle.dumps(matrix)
        assert b"scipy" not in payload  # wrapper must not ship
        clone = pickle.loads(payload)
        assert clone._scipy_cache is None
        assert_csr_equal(clone, matrix)
        # The cache rebuilds lazily with identical structure.
        rebuilt = clone.to_scipy()
        np.testing.assert_array_equal(rebuilt.toarray(),
                                      matrix.to_scipy().toarray())

    def test_spawn_sized_payload(self, matrix):
        """Protocol-5 pickling (what mp.spawn uses) round-trips too."""
        clone = pickle.loads(pickle.dumps(matrix, protocol=5))
        assert_csr_equal(clone, matrix)


class TestCsrSharedMemoryView:
    def test_view_reconstruction_exact(self, matrix, arena):
        eph = []
        desc = encode_payload(arena, matrix, eph, inline_max=8)
        clone = decode_payload(desc, arena.shm.buf)
        assert_csr_equal(clone, matrix)
        assert not eph

    def test_reconstructed_blocks_slice_identically(self, matrix, arena):
        desc = encode_payload(arena, matrix, [], inline_max=8)
        clone = decode_payload(desc, arena.shm.buf)
        assert_csr_equal(clone.block(3, 21, 5, 30), matrix.block(3, 21, 5, 30))


class TestModelParameterRoundTrips:
    def test_weights_pickle_exact(self):
        model = GCN((8, 6, 3), seed=4)
        clone = pickle.loads(pickle.dumps(model.weights))
        for g, w in zip(clone, model.weights):
            assert g.dtype == w.dtype and g.shape == w.shape
            np.testing.assert_array_equal(g, w)

    def test_weights_shared_memory_exact(self, arena):
        model = GCN((8, 6, 3), seed=4)
        for w in model.weights:
            desc = encode_payload(arena, w, [], inline_max=8)
            got = decode_payload(desc, arena.shm.buf)
            assert got.dtype == w.dtype and got.shape == w.shape
            np.testing.assert_array_equal(got, w)

    def test_npz_then_pickle_chain_exact(self, tmp_path):
        """Checkpoint -> reload -> ship to a worker: still bit-exact."""
        model = GCN((8, 6, 3), seed=4)
        path = tmp_path / "w.npz"
        save_weights(path, model.weights, {"seed": 4})
        loaded, meta = load_weights(path)
        assert meta["seed"] == 4
        shipped = pickle.loads(pickle.dumps(loaded))
        for g, w in zip(shipped, model.weights):
            np.testing.assert_array_equal(g, w)
