"""Edge-cut metrics (Section IV-A's edgecut_P and the Metis-experiment
counters)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi, grid_graph, ring_graph
from repro.partition.edgecut import edge_cut_stats, edgecut_metric, ghost_rows_per_part
from repro.partition.random_part import (
    block_partition,
    partition_sizes,
    random_partition,
)


class TestBaselines:
    def test_block_partition_contiguous(self):
        a = block_partition(10, 3)
        np.testing.assert_array_equal(a, [0, 0, 0, 0, 1, 1, 1, 2, 2, 2])

    def test_random_partition_balanced(self):
        a = random_partition(103, 8, seed=0)
        sizes = partition_sizes(a, 8)
        assert sizes.max() - sizes.min() <= 1

    @given(n=st.integers(1, 300), p=st.integers(1, 16), seed=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_every_vertex_assigned_once(self, n, p, seed):
        a = random_partition(n, p, seed)
        assert a.shape == (n,)
        assert partition_sizes(a, p).sum() == n

    @given(n=st.integers(1, 40), extra=st.integers(1, 20),
           seed=st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_trailing_empty_convention(self, n, extra, seed):
        """Satellite: with nparts > n every partitioner leaves exactly
        the trailing parts empty (one shared documented convention)."""
        nparts = n + extra
        for a in (block_partition(n, nparts),
                  random_partition(n, nparts, seed)):
            sizes = partition_sizes(a, nparts)
            assert np.all(sizes[:n] == 1)
            assert np.all(sizes[n:] == 0)

    def test_partition_sizes_validation(self):
        with pytest.raises(ValueError, match="nparts must be >= 1"):
            partition_sizes(np.zeros(3, dtype=np.int64), 0)
        with pytest.raises(ValueError, match="part ids"):
            partition_sizes(np.array([0, 4]), 3)
        np.testing.assert_array_equal(
            partition_sizes(np.array([0, 0]), 4), [2, 0, 0, 0]
        )

    def test_random_partition_invalid_nparts(self):
        with pytest.raises(ValueError, match=">= 1"):
            random_partition(5, 0)


class TestCutStats:
    def test_ring_block_partition_cuts_boundary_edges(self):
        """Contiguous blocks of a ring cut exactly one undirected edge per
        block boundary: 4 boundaries -> 4 undirected = 8 directed nnz."""
        a = ring_graph(12)
        stats = edge_cut_stats(a, block_partition(12, 4), 4)
        assert stats.total_cut_edges == 8
        assert stats.undirected_cut_edges == 4
        # Each part originates one cut edge at each of its two ends.
        assert stats.max_part_cut_edges == 2
        assert stats.per_part_cut_edges == (2, 2, 2, 2)

    def test_ghost_rows_on_ring(self):
        a = ring_graph(12)
        stats = edge_cut_stats(a, block_partition(12, 4), 4)
        # Each part needs its 2 neighbouring remote vertices.
        assert stats.per_part_ghost_rows == (2, 2, 2, 2)
        assert stats.edgecut_metric == 2

    def test_single_part_no_cut(self):
        a = ring_graph(8)
        stats = edge_cut_stats(a, np.zeros(8, dtype=np.int64), 1)
        assert stats.total_cut_edges == 0
        assert stats.max_ghost_rows == 0

    def test_grid_block_partition(self):
        """Row-blocks of a grid cut exactly the vertical edges between
        block boundaries."""
        a = grid_graph(4, 5)  # vertices row-major
        assignment = block_partition(20, 2)  # rows 0-1 vs rows 2-3
        stats = edge_cut_stats(a, assignment, 2)
        # 5 vertical edges cross the boundary, both directions.
        assert stats.total_cut_edges == 10
        assert stats.per_part_ghost_rows == (5, 5)

    def test_assignment_validation(self):
        a = ring_graph(6)
        with pytest.raises(ValueError, match="covers"):
            edge_cut_stats(a, np.zeros(5, dtype=np.int64), 2)
        with pytest.raises(ValueError, match="part ids"):
            edge_cut_stats(a, np.full(6, 9, dtype=np.int64), 2)

    def test_nparts_zero_rejected_explicitly(self):
        """Satellite: nparts < 1 is an explicit ValueError, not a
        confusing 'part ids outside [0, 0)' from assignment validation."""
        a = ring_graph(6)
        for bad in (0, -1):
            with pytest.raises(ValueError, match="nparts must be >= 1"):
                edge_cut_stats(a, np.zeros(6, dtype=np.int64), bad)
            with pytest.raises(ValueError, match="nparts must be >= 1"):
                ghost_rows_per_part(a, np.zeros(6, dtype=np.int64), bad)

    def test_empty_parts_reported_explicitly(self):
        """Empty parts (nparts > n) get explicit zero entries in every
        per-part tuple rather than being dropped."""
        a = ring_graph(4)
        stats = edge_cut_stats(a, block_partition(4, 7), 7)
        assert len(stats.per_part_cut_edges) == 7
        assert len(stats.per_part_ghost_rows) == 7
        assert stats.per_part_cut_edges[4:] == (0, 0, 0)
        assert stats.per_part_ghost_rows[4:] == (0, 0, 0)
        # Each singleton part needs its two ring neighbours.
        assert stats.per_part_ghost_rows[:4] == (2, 2, 2, 2)


class TestBounds:
    def test_random_partition_bound(self):
        """Non-adversarial edgecut_P(A) <= n(P-1)/P (Section IV-A.1)."""
        n, p = 600, 8
        a = erdos_renyi(n, 12.0, seed=0)
        for seed in range(3):
            ec = edgecut_metric(a, random_partition(n, p, seed), p)
            assert ec <= n * (p - 1) / p

    def test_ghost_rows_vector_matches_stats(self):
        a = erdos_renyi(200, 6.0, seed=1)
        assignment = random_partition(200, 4, seed=2)
        v = ghost_rows_per_part(a, assignment, 4)
        stats = edge_cut_stats(a, assignment, 4)
        np.testing.assert_array_equal(v, stats.per_part_ghost_rows)
        assert v.max() == stats.edgecut_metric

    def test_ghost_rows_at_most_cut_edges(self):
        """Distinct remote neighbours never exceed cut edge count."""
        a = erdos_renyi(300, 8.0, seed=3)
        assignment = random_partition(300, 6, seed=4)
        stats = edge_cut_stats(a, assignment, 6)
        for ghosts, cuts in zip(
            stats.per_part_ghost_rows, stats.per_part_cut_edges
        ):
            assert ghosts <= cuts
