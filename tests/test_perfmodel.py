"""SpMM performance model: calibration and monotonicity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SUMMIT
from repro.sparse.perfmodel import (
    D_HALF,
    SpmmPerfModel,
    density_factor,
    width_factor,
)


class TestCalibration:
    def test_yang_et_al_degree_drop(self):
        """Degree 62 -> 8 cuts the sustained rate by exactly 3x.

        This is the calibration point the paper quotes from Yang et al.
        [33] for cuSPARSE csrmm2 (Section VI-a).
        """
        ratio = density_factor(62.0) / density_factor(8.0)
        assert ratio == pytest.approx(3.0, rel=1e-9)

    def test_d_half_value(self):
        assert D_HALF == pytest.approx(992.0 / 38.0)

    def test_model_speedup_helper(self):
        model = SpmmPerfModel.from_profile(SUMMIT)
        assert model.speedup_vs(8.0, 62.0, 32) == pytest.approx(3.0)


class TestFactors:
    def test_density_factor_bounds(self):
        assert density_factor(0.0) == 0.0
        assert 0 < density_factor(1.0) < 1
        assert density_factor(1e9) == pytest.approx(1.0, abs=1e-6)

    def test_width_factor_bounds(self):
        assert width_factor(0.0) == 0.0
        assert 0 < width_factor(2.0) < width_factor(128.0) < 1

    @given(d=st.floats(0.1, 1e6), d2=st.floats(0.1, 1e6))
    @settings(max_examples=40, deadline=None)
    def test_density_factor_monotone(self, d, d2):
        lo, hi = min(d, d2), max(d, d2)
        assert density_factor(lo) <= density_factor(hi)

    @given(w=st.floats(0.1, 1e5), w2=st.floats(0.1, 1e5))
    @settings(max_examples=40, deadline=None)
    def test_width_factor_monotone(self, w, w2):
        lo, hi = min(w, w2), max(w, w2)
        assert width_factor(lo) <= width_factor(hi)


class TestSeconds:
    def test_empty_kernel_costs_launch_overhead(self):
        model = SpmmPerfModel.from_profile(SUMMIT)
        assert model.seconds(0, 100, 16) == SUMMIT.kernel_launch_overhead
        assert model.seconds(100, 100, 0) == SUMMIT.kernel_launch_overhead

    def test_negative_rejected(self):
        model = SpmmPerfModel.from_profile(SUMMIT)
        with pytest.raises(ValueError):
            model.seconds(-1, 10, 10)

    def test_more_nnz_takes_longer(self):
        model = SpmmPerfModel.from_profile(SUMMIT)
        # Same shape, denser block -> more flops AND better rate; time must
        # still grow (flops growth dominates the rate improvement).
        t1 = model.seconds(10_000, 10_000, 32)
        t2 = model.seconds(100_000, 10_000, 32)
        assert t2 > t1

    def test_hypersparse_2d_degradation(self):
        """2D partitioning divides degree and width by sqrt(P): the per-
        block rate must degrade, reproducing Section VI-a's observation."""
        model = SpmmPerfModel.from_profile(SUMMIT)
        rate_serial = model.sustained_flops(24.0, 16.0)    # amazon-ish at p=1
        rate_p64 = model.sustained_flops(24.0 / 8, 16.0 / 8)  # p=64
        assert rate_p64 < rate_serial / 3  # multiplicative degradation

    def test_factors_multiply(self):
        model = SpmmPerfModel.from_profile(SUMMIT)
        assert model.sustained_flops(10.0, 8.0) == pytest.approx(
            model.base_flops * density_factor(10.0) * width_factor(8.0)
        )
