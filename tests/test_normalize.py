"""GCN adjacency normalisation (Section III-B)."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, ring_graph, star_graph
from repro.graph.normalize import add_self_loops, gcn_normalize, row_normalize
from repro.sparse.csr import CSRMatrix


class TestSelfLoops:
    def test_adds_diagonal(self):
        a = ring_graph(5)
        b = add_self_loops(a)
        d = b.to_dense()
        assert np.all(np.diag(d) == 1.0)
        assert b.nnz == a.nnz + 5

    def test_existing_diagonal_summed(self):
        a = CSRMatrix.from_dense(np.array([[2.0, 0], [0, 0]]))
        b = add_self_loops(a)
        assert b.to_dense()[0, 0] == 3.0

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="square"):
            add_self_loops(CSRMatrix.zeros((2, 3)))


class TestGcnNormalize:
    def test_matches_dense_formula(self):
        a = erdos_renyi(40, 4.0, seed=0)
        norm = gcn_normalize(a).to_dense()
        dense = a.to_dense() + np.eye(40)
        deg = dense.sum(axis=1)
        expected = dense / np.sqrt(deg[:, None]) / np.sqrt(deg[None, :])
        np.testing.assert_allclose(norm, expected, atol=1e-12)

    def test_symmetric_input_gives_symmetric_output(self):
        a = erdos_renyi(60, 5.0, seed=1)
        norm = gcn_normalize(a)
        assert norm.allclose(norm.transpose())

    def test_spectral_radius_at_most_one(self):
        """D^{-1/2}(A+I)D^{-1/2} has eigenvalues in [-1, 1] -- the
        'favorable spectral properties' the paper cites."""
        a = erdos_renyi(50, 4.0, seed=2)
        norm = gcn_normalize(a).to_dense()
        eigs = np.linalg.eigvalsh(norm)
        assert eigs.max() <= 1.0 + 1e-9
        assert eigs.min() >= -1.0 - 1e-9

    def test_ring_normalization_values(self):
        # Every ring vertex has modified degree 3: entries are all 1/3.
        norm = gcn_normalize(ring_graph(6)).to_dense()
        nonzero = norm[norm > 0]
        np.testing.assert_allclose(nonzero, 1.0 / 3.0)

    def test_isolated_vertex_safe(self):
        a = CSRMatrix.zeros((3, 3))
        norm = gcn_normalize(a, add_loops=False)
        assert norm.nnz == 0  # no division blow-up

    def test_star_hub_downweighted(self):
        """Normalisation shrinks high-degree (hub) edges -- the implicit
        high-degree handling the 2D algorithms rely on."""
        norm = gcn_normalize(star_graph(10)).to_dense()
        hub_edge = norm[0, 1]
        leaf_self = norm[1, 1]
        assert hub_edge < leaf_self


class TestRowNormalize:
    def test_rows_sum_to_one(self):
        a = add_self_loops(erdos_renyi(30, 4.0, seed=3))
        rn = row_normalize(a).to_dense()
        np.testing.assert_allclose(rn.sum(axis=1), 1.0, atol=1e-12)

    def test_empty_rows_stay_zero(self):
        a = CSRMatrix.from_dense(np.array([[0.0, 1], [0, 0]]))
        rn = row_normalize(a).to_dense()
        assert rn[1].sum() == 0.0
