"""Per-rank accounting and bulk-synchronous wall-clock semantics."""

import pytest

from repro.comm.tracker import Category, CategoryTotals, CommTracker


class TestCharging:
    def test_basic_charge(self):
        t = CommTracker(2)
        t.charge(0, Category.SPMM, 1.5, nbytes=100, messages=2, flops=50)
        totals = t.rank_totals(0)[Category.SPMM]
        assert totals.seconds == 1.5
        assert totals.bytes == 100
        assert totals.messages == 2
        assert totals.flops == 50

    def test_unknown_category_rejected(self):
        t = CommTracker(1)
        with pytest.raises(ValueError, match="unknown category"):
            t.charge(0, "bogus", 1.0)

    def test_bad_rank_rejected(self):
        t = CommTracker(2)
        with pytest.raises(IndexError):
            t.charge(2, Category.MISC, 1.0)

    def test_negative_charge_rejected(self):
        t = CommTracker(1)
        with pytest.raises(ValueError):
            t.charge(0, Category.MISC, -1.0)


class TestStepScope:
    def test_standalone_charge_is_own_step(self):
        t = CommTracker(4)
        t.charge(0, Category.MISC, 2.0)
        assert t.wall_seconds() == 2.0
        assert t.nsteps == 1

    def test_step_takes_max_over_ranks(self):
        t = CommTracker(4)
        with t.step_scope():
            t.charge(0, Category.SPMM, 1.0)
            t.charge(1, Category.SPMM, 3.0)
            t.charge(2, Category.SPMM, 2.0)
        # Bulk synchronous: the slowest rank (3.0s) sets the pace.
        assert t.wall_seconds() == 3.0

    def test_sequential_steps_sum(self):
        t = CommTracker(2)
        with t.step_scope():
            t.charge(0, Category.SPMM, 1.0)
        with t.step_scope():
            t.charge(1, Category.SPMM, 2.0)
        assert t.wall_seconds() == 3.0

    def test_nested_scopes_flatten(self):
        t = CommTracker(2)
        with t.step_scope():
            t.charge(0, Category.SPMM, 1.0)
            with t.step_scope():  # flattens into the outer step
                t.charge(1, Category.SPMM, 5.0)
        assert t.wall_seconds() == 5.0
        assert t.nsteps == 1

    def test_category_attribution_follows_slowest_rank(self):
        t = CommTracker(2)
        with t.step_scope():
            t.charge(0, Category.SPMM, 1.0)
            t.charge(1, Category.DCOMM, 2.0)
        # Rank 1 is slowest; the step's 2.0s goes to dcomm.
        assert t.wall_seconds(Category.DCOMM) == 2.0
        assert t.wall_seconds(Category.SPMM) == 0.0

    def test_empty_step_costs_nothing(self):
        t = CommTracker(2)
        with t.step_scope():
            pass
        assert t.wall_seconds() == 0.0


class TestQueries:
    def _tracked(self):
        t = CommTracker(3)
        t.charge(0, Category.DCOMM, 1.0, nbytes=100)
        t.charge(1, Category.DCOMM, 1.0, nbytes=300)
        t.charge(2, Category.SCOMM, 1.0, nbytes=50)
        t.charge(0, Category.SPMM, 2.0, flops=1000)
        return t

    def test_total_bytes(self):
        t = self._tracked()
        assert t.total_bytes() == 450
        assert t.total_bytes(Category.DCOMM) == 400

    def test_comm_bytes_excludes_compute(self):
        t = self._tracked()
        assert t.comm_bytes() == 450

    def test_max_rank_bytes(self):
        t = self._tracked()
        assert t.max_rank_bytes() == 300

    def test_total_flops(self):
        t = self._tracked()
        assert t.total_flops() == 1000
        assert t.total_flops(Category.SPMM) == 1000

    def test_breakdown_has_all_categories(self):
        t = self._tracked()
        bd = t.breakdown()
        assert set(bd) == set(Category.ALL)

    def test_snapshot_and_delta(self):
        t = self._tracked()
        before = t.snapshot()
        t.charge(1, Category.DCOMM, 1.0, nbytes=500)
        delta = t.delta_since(before)
        assert delta[Category.DCOMM].bytes == 500
        assert delta[Category.SCOMM].bytes == 0

    def test_snapshot_is_independent(self):
        t = self._tracked()
        snap = t.snapshot()
        t.charge(0, Category.MISC, 1.0)
        assert snap.wall_seconds() < t.wall_seconds()

    def test_reset(self):
        t = self._tracked()
        t.reset()
        assert t.wall_seconds() == 0.0
        assert t.total_bytes() == 0
        assert t.nranks == 3


class TestCategoryTotals:
    def test_merged(self):
        a = CategoryTotals(1.0, 10, 1, 100)
        b = CategoryTotals(2.0, 20, 2, 200)
        m = a.merged(b)
        assert (m.seconds, m.bytes, m.messages, m.flops) == (3.0, 30, 3, 300)

    def test_zero_rank_tracker_rejected(self):
        with pytest.raises(ValueError):
            CommTracker(0)
