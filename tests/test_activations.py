"""Activations: values and exact derivatives (finite-difference checks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.activations import Identity, LogSoftmax, ReLU, get_activation


def finite_diff_vjp(act, z, grad_h, eps=1e-6):
    """Numerical dL/dZ where L = sum(grad_h * act(z)) (VJP check)."""
    out = np.zeros_like(z)
    for idx in np.ndindex(z.shape):
        zp = z.copy()
        zp[idx] += eps
        zm = z.copy()
        zm[idx] -= eps
        out[idx] = np.sum(grad_h * (act.forward(zp) - act.forward(zm))) / (2 * eps)
    return out


class TestReLU:
    def test_forward_values(self):
        act = ReLU()
        z = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_array_equal(act.forward(z), [[0.0, 0.0, 2.0]])

    def test_backward_masks_negatives(self):
        act = ReLU()
        z = np.array([[-1.0, 3.0]])
        g = np.array([[5.0, 7.0]])
        np.testing.assert_array_equal(act.backward(z, g), [[0.0, 7.0]])

    def test_elementwise_flag(self):
        assert ReLU().elementwise

    @given(
        z=hnp.arrays(np.float64, (3, 4), elements=st.floats(-5, 5, allow_nan=False)),
        g=hnp.arrays(np.float64, (3, 4), elements=st.floats(-2, 2, allow_nan=False)),
    )
    @settings(max_examples=20, deadline=None)
    def test_vjp_matches_finite_difference(self, z, g):
        # Keep away from the kink at 0 where the subgradient is ambiguous.
        z = np.where(np.abs(z) < 1e-3, 0.5, z)
        act = ReLU()
        np.testing.assert_allclose(
            act.backward(z, g), finite_diff_vjp(act, z, g), atol=1e-5
        )


class TestLogSoftmax:
    def test_rows_are_log_probabilities(self):
        act = LogSoftmax()
        z = np.random.default_rng(0).standard_normal((5, 7))
        lp = act.forward(z)
        np.testing.assert_allclose(np.exp(lp).sum(axis=1), 1.0, atol=1e-12)

    def test_shift_invariance(self):
        act = LogSoftmax()
        z = np.random.default_rng(1).standard_normal((4, 6))
        np.testing.assert_allclose(
            act.forward(z), act.forward(z + 100.0), atol=1e-9
        )

    def test_numerically_stable_for_large_inputs(self):
        act = LogSoftmax()
        z = np.array([[1e4, 0.0], [0.0, -1e4]])
        lp = act.forward(z)
        assert np.all(np.isfinite(lp))

    def test_not_elementwise(self):
        """The flag that triggers the row all-gather in 2D/3D algorithms
        (Sections IV-C.2, IV-D.2)."""
        assert not LogSoftmax().elementwise

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_vjp_matches_finite_difference(self, seed):
        rng = np.random.default_rng(seed)
        z = rng.standard_normal((3, 5))
        g = rng.standard_normal((3, 5))
        act = LogSoftmax()
        np.testing.assert_allclose(
            act.backward(z, g), finite_diff_vjp(act, z, g), atol=1e-5
        )

    def test_row_locality(self):
        """log_softmax of a row depends only on that row -- the property
        the paper uses to limit communication to a row all-gather."""
        act = LogSoftmax()
        rng = np.random.default_rng(2)
        z = rng.standard_normal((4, 5))
        z2 = z.copy()
        z2[3] += 10.0  # perturb a different row
        np.testing.assert_array_equal(act.forward(z)[0], act.forward(z2)[0])


class TestIdentityAndRegistry:
    def test_identity(self):
        act = Identity()
        z = np.ones((2, 2))
        np.testing.assert_array_equal(act.forward(z), z)
        g = np.full((2, 2), 3.0)
        np.testing.assert_array_equal(act.backward(z, g), g)

    def test_registry_lookup(self):
        assert get_activation("relu").name == "relu"
        assert get_activation("log_softmax").name == "log_softmax"
        assert get_activation("identity").name == "identity"

    def test_registry_unknown(self):
        with pytest.raises(KeyError, match="unknown activation"):
            get_activation("gelu")
